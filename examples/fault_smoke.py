"""CI smoke check: a pilot driven by a JSON fault plan must heal and resync.

Loads ``plans/partition_heal.json`` — a half-day WAN partition starting on
day 1 — runs a small fog pilot under it, and verifies the recovery
contract end to end: the fault is injected and recovered on schedule, the
store-and-forward backlog fully drains after the link heals, and the
cloud context converges to the fog's state with no overflow loss.

Run:  python examples/fault_smoke.py          (~5 s)

Exits non-zero when any check fails, so CI can gate on it.
"""

import os
import sys

from repro.api import (
    BARREIRAS_MATOPIBA,
    LOAM,
    SOYBEAN,
    DeploymentKind,
    FaultPlan,
    PilotConfig,
    PilotRunner,
)

PLAN_PATH = os.path.join(os.path.dirname(__file__), "plans", "partition_heal.json")


def main() -> int:
    plan = FaultPlan.load(PLAN_PATH)
    runner = PilotRunner(PilotConfig(
        name="fault-smoke",
        farm="smokefarm",
        climate=BARREIRAS_MATOPIBA,
        crop=SOYBEAN,
        soil=LOAM,
        rows=2, cols=2,
        season_days=4,
        start_day_of_year=150,
        initial_theta=0.22,
        deployment=DeploymentKind.FOG,
        irrigation_kind="valves",
        scheduler_kind="smart",
        seed=5,
        fault_plan=plan,
    ))
    report = runner.run_season()

    injector = runner.fault_injector
    checks = [
        ("fault injected on schedule", injector.injected == 1),
        ("fault recovered on schedule", injector.recovered == 1),
        ("no fault left active", injector.active_count == 0),
        ("sync backlog drained after heal", runner.replicator.backlog_depth == 0),
        ("no overflow loss during partition", report.replicator_dropped == 0),
        ("cloud context resynced to fog state",
         runner.cloud.context.entity_count() == runner.fog.context.entity_count()),
        ("local loop never starved", report.skipped_no_data + report.skipped_stale == 0),
    ]
    for name, ok in checks:
        print(f"{'ok  ' if ok else 'FAIL'}  {name}")
    failed = [name for name, ok in checks if not ok]
    if failed:
        print(f"\nfault smoke FAILED: {', '.join(failed)}")
        return 1
    print(f"\nfault smoke passed: plan {plan.name!r} injected, healed and resynced")
    return 0


if __name__ == "__main__":
    sys.exit(main())
