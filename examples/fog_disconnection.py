"""Availability demo: fog vs. cloud-only under an Internet outage.

The paper requires "availability of the platform ... even in case of
Internet disconnections using local components (fog computing)".  This
example runs the same farm twice through a 5-day WAN outage:

* cloud-only: telemetry can't reach the cloud scheduler — decisions stop;
* fog: the farm-side loop keeps irrigating; the replicator back-fills the
  cloud after the link heals.

Run:  python examples/fog_disconnection.py          (~30 s)
"""

from repro.api import (
    BARREIRAS_MATOPIBA,
    DAY,
    LOAM,
    SOYBEAN,
    DeploymentKind,
    PilotConfig,
    PilotRunner,
)


def run(deployment: DeploymentKind):
    config = PilotConfig(
        name=f"outage-{deployment.value}",
        farm="farm",
        climate=BARREIRAS_MATOPIBA,
        crop=SOYBEAN,
        soil=LOAM,
        rows=2, cols=2,
        season_days=14,
        start_day_of_year=150,
        initial_theta=0.22,
        deployment=deployment,
        irrigation_kind="valves",
        scheduler_kind="smart",
        seed=21,
    )
    runner = PilotRunner(config)
    runner.schedule_wan_partition(start_s=4 * DAY, duration_s=5 * DAY)
    report = runner.run_season()
    return runner, report


def main() -> None:
    print("=== 14-day season with a 5-day Internet outage (days 4-9) ===\n")
    for deployment in (DeploymentKind.CLOUD_ONLY, DeploymentKind.FOG):
        runner, report = run(deployment)
        print(f"--- {deployment.value} deployment ---")
        print(f"decision cycles          : {report.decision_cycles}")
        print(f"decisions made           : {report.decisions}")
        print(f"decisions skipped (stale/no-data): {report.skipped_stale + report.skipped_no_data}")
        print(f"irrigation commands sent : {report.commands_sent}")
        print(f"water applied            : {report.irrigation_m3:.1f} m3")
        print(f"relative yield           : {report.relative_yield:.3f}")
        if runner.replicator is not None:
            print(f"context updates synced to cloud after heal: "
                  f"{report.replicator_synced} (dropped {report.replicator_dropped})")
        print()


if __name__ == "__main__":
    main()
