"""Quickstart: a small SWAMP farm, end to end, in two simulated weeks.

Builds a 2×2-zone farm with a fog node on premises, soil probes, valves
and the smart irrigation scheduler, runs 14 days and prints what happened
at every layer of the pipeline (device → MQTT → IoT agent → context
broker → scheduler → actuator → soil).

Run:  python examples/quickstart.py
"""

from repro.api import (
    BARREIRAS_MATOPIBA,
    LOAM,
    SOYBEAN,
    DeploymentKind,
    PilotConfig,
    PilotRunner,
)


def main() -> None:
    config = PilotConfig(
        name="quickstart",
        farm="demo-farm",
        climate=BARREIRAS_MATOPIBA,
        crop=SOYBEAN,
        soil=LOAM,
        rows=2, cols=2, zone_area_ha=1.0,
        season_days=14,
        start_day_of_year=150,       # dry season, so irrigation actually runs
        initial_theta=0.22,          # start slightly depleted
        deployment=DeploymentKind.FOG,
        irrigation_kind="valves",
        scheduler_kind="smart",
        seed=42,
    )
    runner = PilotRunner(config)
    report = runner.run_season()

    print("=== SWAMP quickstart: 14 days on a 4 ha demo farm ===")
    print(f"telemetry messages processed by the IoT agent : {report.measures_processed}")
    print(f"scheduler decision cycles                     : {report.decision_cycles}")
    print(f"irrigation commands sent                      : {report.commands_sent}")
    print(f"water applied                                 : {report.irrigation_m3:8.1f} m3"
          f"  ({report.irrigation_mm_per_ha:.1f} mm)")
    print(f"rain received                                 : {report.rain_mm:8.1f} mm")
    print(f"pumping energy                                : {report.pump_kwh:8.1f} kWh")
    print(f"context updates replicated to the cloud       : {report.replicator_synced}")

    print("\nPer-zone state after two weeks:")
    for zone in runner.field:
        entity = runner.context.get_entity(runner.zone_entity_id(zone))
        print(
            f"  {zone.zone_id:14s} true θ={zone.theta:.3f}  "
            f"sensed θ={entity.get('soilMoisture'):.3f}  "
            f"irrigated={zone.water_balance.cum_irrigation_mm:5.1f} mm"
        )

    print("\nLast three scheduler decisions:")
    for decision in runner.scheduler.decision_log[-3:]:
        print(f"  t={decision['t']/86400.0:5.2f} d  {decision}")


if __name__ == "__main__":
    main()
