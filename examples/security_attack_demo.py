"""Security demo: sensor tampering vs. the behavioral baseline.

The storyline of the paper's §III, executed end to end:

1. a farm runs cleanly for a week while the detection engine learns each
   probe's normal behaviour;
2. an attacker then biases one soil probe to read "wet" (+0.25 VWC), so
   the scheduler would stop irrigating that zone and stress the crop;
3. the detector ensemble flags the probe, the alert manager quarantines
   it, and the IoT agent stops trusting its telemetry.

Run:  python examples/security_attack_demo.py       (~30 s)
"""

from repro.api import (
    BARREIRAS_MATOPIBA,
    DAY,
    LOAM,
    SOYBEAN,
    DeploymentKind,
    PilotConfig,
    PilotRunner,
    SecurityConfig,
)
from repro.security.attacks import SensorTamper, TamperMode


def main() -> None:
    config = PilotConfig(
        name="attack-demo",
        farm="victim-farm",
        climate=BARREIRAS_MATOPIBA,
        crop=SOYBEAN,
        soil=LOAM,
        rows=2, cols=2,
        season_days=14,
        start_day_of_year=150,
        initial_theta=0.22,
        deployment=DeploymentKind.FOG,
        irrigation_kind="valves",
        scheduler_kind="smart",
        security=SecurityConfig(detection=True, detection_training_s=7 * DAY),
        seed=7,
    )
    runner = PilotRunner(config)

    victim_zone = runner.field.zone(0, 0)
    victim_probe = runner.probes[victim_zone.zone_id]
    tamper = SensorTamper(
        runner.sim, victim_probe, "soilMoisture", TamperMode.BIAS, magnitude=0.25
    )
    runner.sim.schedule_at(8 * DAY, tamper.start, label="attack")

    print("=== week 1: clean operation, baseline training ===")
    runner.run_days(8)
    manager = runner.security.alert_manager
    print(f"alerts so far            : {len(manager.alerts)}")
    print(f"samples used for training: {runner.security.detection_engine.samples_trained}")

    print("\n=== day 8: attacker biases probe",
          victim_probe.config.device_id, "by +0.25 VWC ===")
    runner.run_days(6)

    print(f"\nalerts raised            : {len(manager.alerts)}")
    flagged = manager.alerts_for(victim_probe.config.device_id)
    detectors = sorted({a.detector for a in flagged})
    print(f"alerts on tampered probe : {len(flagged)} (detectors: {', '.join(detectors)})")
    if victim_probe.config.device_id in manager.quarantined:
        when = manager.quarantined[victim_probe.config.device_id]
        print(f"QUARANTINED at day {when / DAY:.2f} — agent no longer accepts its data")
    else:
        print("probe not quarantined (tune thresholds?)")
    print(f"tampered samples sent    : {tamper.samples_tampered}")

    still_provisioned = victim_probe.config.device_id in runner.agent.provisions
    print(f"still provisioned at IoT agent: {still_provisioned}")

    false_quarantines = [
        d for d in manager.quarantined if d != victim_probe.config.device_id
    ]
    print(f"false quarantines        : {false_quarantines or 'none'}")


if __name__ == "__main__":
    main()
