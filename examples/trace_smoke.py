"""CI smoke check: causal tracing must produce valid, complete span trees.

Runs a small MATOPIBA pilot through the ``run(RunOptions(...))``
entrypoint with tracing and profiling on, exports the Chrome-trace JSON,
and verifies the tracing contract end to end:

* the span-tree invariants hold (single root per trace, resolvable
  parents, nested time ranges) — both on the live tracer and on the
  JSON round-trip;
* at least one full sensor→actuation causal chain was captured: a
  ``scheduler.decision`` linked back through ``context.update``,
  ``broker.route`` and ``mqtt.publish`` to a ``device.report`` root;
* every scheduler cycle produced a traced cycle span;
* the same run with tracing off yields a bit-identical report;
* the kernel profiler accounted for every executed event.

Run:  python examples/trace_smoke.py          (~10 s)

Exits non-zero when any check fails, so CI can gate on it.
"""

import dataclasses
import json
import os
import sys
import tempfile

if __name__ == "__main__":  # allow `python examples/trace_smoke.py`
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.api import RunOptions, run, validate_chrome_trace, validate_span_trees

PILOT_KWARGS = {"rows": 2, "cols": 2, "season_days": 3}


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = os.path.join(tmp, "trace.json")
        traced = run(RunOptions(
            pilot="matopiba", seed=5, trace=True, trace_path=trace_path,
            profile=True, pilot_kwargs=dict(PILOT_KWARGS),
        ))
        with open(trace_path, "r", encoding="utf-8") as fh:
            exported = json.load(fh)
    plain = run(RunOptions(pilot="matopiba", seed=5, pilot_kwargs=dict(PILOT_KWARGS)))

    tracer = traced.runner.tracer
    tree_problems = validate_span_trees(tracer.spans())
    chrome_problems = validate_chrome_trace(exported)

    decisions = [s for s in tracer.find("scheduler.decision") if s.links]
    full_chains = 0
    for decision in decisions:
        chain = tracer.causal_chain(decision)
        for linked in chain["linked"]:
            if linked and linked[0] == "device.report" and "context.update" in linked:
                full_chains += 1
                break

    cycles = len(tracer.find("scheduler.cycle"))
    profiler = traced.runner.profiler

    checks = [
        ("spans were collected", len(tracer) > 0),
        ("span-tree invariants hold", tree_problems == []),
        ("chrome export is valid", chrome_problems == []),
        ("export covers every span",
         len(exported["traceEvents"]) == len(tracer)),
        ("at least one full sensor->actuation chain", full_chains > 0),
        ("every scheduler cycle traced",
         cycles == traced.runner.scheduler.stats.cycles),
        ("report bit-identical with tracing off",
         dataclasses.asdict(traced.report) == dataclasses.asdict(plain.report)),
        ("profiler accounted every kernel event",
         profiler.total_events == traced.runner.sim.events_executed),
    ]

    failed = False
    for label, ok in checks:
        print(f"{'PASS' if ok else 'FAIL'}  {label}")
        failed = failed or not ok
    for problem in (tree_problems + chrome_problems)[:10]:
        print(f"      {problem}")
    print(
        f"\nspans={len(tracer)} traces={tracer.traces_sampled} "
        f"linked_decisions={len(decisions)} full_chains={full_chains} "
        f"profiled_events={profiler.total_events}"
    )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
