"""MATOPIBA pilot: a full soybean season under a VRI center pivot.

Runs the paper's main pilot — Rio das Pedras farm, Barreiras/Brazil,
soybean under a center pivot in the dry season — twice: once with the
smart per-zone (VRI) scheduler and once with the fixed-calendar practice
the paper's introduction criticises, then compares water, energy and
yield.

Run:  python examples/matopiba_vri_season.py        (~1-2 min)
"""

from repro.api import build_matopiba_pilot


def run(label: str, scheduler_kind: str):
    runner = build_matopiba_pilot(seed=11, scheduler_kind=scheduler_kind, spatial_cv=0.25)
    report = runner.run_season()
    print(f"\n--- {label} ---")
    print(f"water applied : {report.irrigation_m3:10.0f} m3  ({report.irrigation_mm_per_ha:.0f} mm)")
    print(f"energy        : {report.total_energy_kwh:10.0f} kWh "
          f"(pumping {report.pump_kwh:.0f} + pivot moves {report.pivot_move_kwh:.0f})")
    print(f"yield         : {report.yield_t:10.1f} t  (relative {report.relative_yield:.3f})")
    print(f"pipeline      : {report.measures_processed} measures, "
          f"{report.commands_sent} pivot passes commanded")
    return report


def main() -> None:
    print("=== MATOPIBA pilot: 90 ha soybean pivot, 120-day dry season ===")
    smart = run("smart VRI scheduler (SWAMP)", "smart")
    fixed = run("fixed-calendar practice (baseline)", "fixed")

    water_saving = 1.0 - smart.irrigation_m3 / fixed.irrigation_m3
    energy_saving = 1.0 - smart.total_energy_kwh / fixed.total_energy_kwh
    print("\n=== comparison ===")
    print(f"water saved by the smart scheduler  : {water_saving:6.1%}")
    print(f"energy saved                        : {energy_saving:6.1%}")
    print(f"yield ratio (smart / fixed)         : {smart.yield_t / fixed.yield_t:6.3f}")


if __name__ == "__main__":
    main()
