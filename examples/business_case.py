"""The business case: what deploying SWAMP is worth in euros.

Prices a full MATOPIBA season under the fixed-calendar practice and under
the smart VRI scheduler using representative tariffs, then prints the
margin delta — the number that decides whether a farm adopts the platform.

Run:  python examples/business_case.py              (~1-2 min)

(Or equivalently: python -m repro.cli compare matopiba)
"""

from repro.analytics import Tariffs, deployment_benefit_eur, price_season
from repro.api import build_matopiba_pilot

TARIFFS = Tariffs(water_eur_m3=0.10, energy_eur_kwh=0.16, crop_price_eur_t=390.0)


def run(scheduler_kind: str):
    runner = build_matopiba_pilot(
        seed=31, rows=4, cols=4, probe_interval_s=3600.0, scheduler_kind=scheduler_kind
    )
    report = runner.run_season()
    return report, price_season(report, TARIFFS)


def main() -> None:
    print("=== MATOPIBA season economics (90 ha soybean pivot) ===\n")
    fixed_report, fixed = run("fixed")
    smart_report, smart = run("smart")

    def show(label, report, economics):
        print(f"--- {label} ---")
        print(f"water    : {report.irrigation_m3:10.0f} m3   EUR {economics.water_cost_eur:10,.0f}")
        print(f"energy   : {report.total_energy_kwh:10.0f} kWh  EUR {economics.energy_cost_eur:10,.0f}")
        print(f"yield    : {report.yield_t:10.1f} t    EUR {economics.revenue_eur:10,.0f}")
        print(f"margin   : EUR {economics.gross_margin_eur:,.0f}\n")

    show("fixed calendar (current practice)", fixed_report, fixed)
    show("SWAMP smart VRI", smart_report, smart)

    benefit = deployment_benefit_eur(smart, fixed)
    print("=== season benefit of deploying SWAMP ===")
    print(f"EUR {benefit:,.0f} per season "
          f"({benefit / 90.0:,.0f} EUR/ha) before platform costs")


if __name__ == "__main__":
    main()
