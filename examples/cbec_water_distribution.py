"""CBEC pilot: optimizing water distribution through a canal network.

Models the Consorzio di Bonifica Emilia Centrale scenario: a reservoir
feeds a canal tree with seepage losses; member farms file daily demands;
the allocator serves them by priority with proportional rationing under
scarcity.  The demo sweeps reservoir stock from plenty to drought and
prints each farm's satisfaction.

Run:  python examples/cbec_water_distribution.py    (fast)
"""

from repro.api import Canal, DistributionNetwork, FarmOfftake, Reservoir


def build(stock_m3: float) -> DistributionNetwork:
    network = DistributionNetwork(Reservoir("po-offtake", 100_000.0, initial_m3=stock_m3))
    network.add_canal(Canal("primary", None, capacity_m3_day=40_000.0, loss_fraction=0.08))
    network.add_canal(Canal("east", "primary", capacity_m3_day=15_000.0, loss_fraction=0.05))
    network.add_canal(Canal("west", "primary", capacity_m3_day=15_000.0, loss_fraction=0.05))
    network.add_farm(FarmOfftake("tomatoes-a", "east", priority=1))   # food crop first
    network.add_farm(FarmOfftake("tomatoes-b", "east", priority=1))
    network.add_farm(FarmOfftake("orchard", "west", priority=2))
    network.add_farm(FarmOfftake("pasture", "west", priority=3))
    return network

DEMANDS = {"tomatoes-a": 4000.0, "tomatoes-b": 6000.0, "orchard": 5000.0, "pasture": 8000.0}


def main() -> None:
    print("=== CBEC canal allocation under increasing scarcity ===")
    header = f"{'stock m3':>10} | " + " | ".join(f"{farm:>11}" for farm in DEMANDS)
    print(header)
    print("-" * len(header))
    for stock in (40_000.0, 20_000.0, 12_000.0, 6_000.0, 2_000.0):
        network = build(stock)
        for farm, demand in DEMANDS.items():
            network.set_demand(farm, demand)
        allocations = network.allocate()
        row = f"{stock:10.0f} | " + " | ".join(
            f"{allocations[farm]:7.0f} m3 " for farm in DEMANDS
        )
        print(row)
    print("\n(priority 1 = tomato farms, 2 = orchard, 3 = pasture;")
    print(" equal-priority farms ration proportionally; seepage losses ~13%)")

    network = build(40_000.0)
    for farm, demand in DEMANDS.items():
        network.set_demand(farm, demand)
    network.allocate()
    print(f"\ndistribution efficiency at full stock: {network.efficiency():.1%}"
          f"  (losses {network.total_losses_m3:.0f} m3)")


if __name__ == "__main__":
    main()
