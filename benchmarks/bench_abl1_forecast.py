"""Ablation A1 — what the rain forecast contributes to water savings.

DESIGN.md calls out the scheduler's forecast-skip rule ("skip when the
rain forecast covers the deficit") as a design choice.  This ablation
quantifies it: the same rainy-climate season (Emilia-Romagna tomato, the
CBEC setting, where skipping ahead of rain can actually matter) with the
forecast quality swept from none → noisy → perfect.

Measured shape (an honest surprise): in this climate the forecast's value
shows up as *reduced deep percolation* — skipping irrigation ahead of rain
cuts drainage (leaching) by half — while total applied volume stays within
a few percent (better-timed water stays in the root zone and is
transpired, so pumping doesn't fall).  Yield is held everywhere.  The
conclusion for DESIGN.md: the forecast rule is an environmental-loss
control in humid climates and a volume control only in arid ones.
"""

from _harness import print_table, record_rows, run_once

from repro.core import DeploymentKind, PilotConfig, PilotRunner
from repro.physics import SILTY_CLAY, TOMATO_PROCESSING
from repro.physics.weather import EMILIA_ROMAGNA

QUALITIES = (0.0, 0.5, 1.0)


def _run_scenario(quality: float, seed: int = 2121):
    runner = PilotRunner(PilotConfig(
        name=f"abl1-q{quality}",
        farm="abl1",
        climate=EMILIA_ROMAGNA,
        crop=TOMATO_PROCESSING,
        soil=SILTY_CLAY,
        rows=3, cols=3,
        season_days=60,
        start_day_of_year=152,  # June: convective rain between dry spells
        deployment=DeploymentKind.FOG,
        irrigation_kind="valves",
        scheduler_kind="smart",
        forecast_quality=quality,
        seed=seed,
    ))
    report = runner.run_season()
    drainage = sum(z.water_balance.cum_drainage_mm for z in runner.field)
    return {
        "water_m3": report.irrigation_m3,
        "drainage_mm": drainage,
        "yield": report.relative_yield,
        "rain_mm": report.rain_mm,
    }


def _run_experiment():
    return {q: _run_scenario(q) for q in QUALITIES}


def test_abl1_forecast_value(benchmark):
    results = run_once(benchmark, _run_experiment)
    headers = ["forecast quality", "water m3", "drainage mm", "rel yield", "rain mm"]
    rows = [
        (q, round(r["water_m3"], 1), round(r["drainage_mm"], 1), r["yield"],
         round(r["rain_mm"], 1))
        for q, r in results.items()
    ]
    print_table("A1: rain-forecast ablation (rainy climate)", headers, rows)
    record_rows(benchmark, headers, rows)

    none, noisy, perfect = (results[q] for q in QUALITIES)
    # Same weather everywhere (identical seed/stream).
    assert none["rain_mm"] == noisy["rain_mm"] == perfect["rain_mm"]
    # The forecast's value: drainage (leaching losses) falls monotonically
    # and materially with forecast quality...
    assert perfect["drainage_mm"] < noisy["drainage_mm"] < none["drainage_mm"]
    assert perfect["drainage_mm"] < 0.7 * none["drainage_mm"]
    # ...while total applied volume stays within a few percent (the water
    # not lost to drainage is transpired instead).
    assert abs(perfect["water_m3"] - none["water_m3"]) < 0.08 * none["water_m3"]
    # Yield held in all arms.
    for r in results.values():
        assert r["yield"] > 0.97