"""E11 — Blockchain device lifecycle + smart-contract authorization.

Claim (paper §III): with blockchain "it is possible to track all the
attributes, relationships and events related to a device" across "the
supply chain and lifecycle of an IoT device", and "the use of smart
contracts is also a promising mechanism to be used in new methods for
authentication, authorization, and privacy of IoT devices".

Workload: a device fleet's lifecycle stream (manufacture → provision →
activate → rotate keys → transfer → retire) is committed to the PoA
chain, with three planted anomalies: a counterfeit clone of an active
pivot's id, a command target that was revoked, and a retroactive edit of
a committed block.  The authorization contract then gates actuator
commands.  The timed microbenchmark is chain sealing + full verification
throughput.

Expected shape: the registry replays every legitimate transition; the
clone and the bad transition surface as violations; the contract permits
commands only to the active, owned, clean device; the retroactive edit
breaks `verify_chain()`.
"""

from _harness import print_table, record_rows

from repro.security.ledger import (
    AuthorizationContract,
    Blockchain,
    DeviceLifecycleRegistry,
    DeviceState,
    LifecycleEvent,
)


def _event(device, name, actor="factory", t=0.0, **data):
    return LifecycleEvent(device, name, actor, t, data)


def _build_story():
    chain = Blockchain(validators=["coop-validator", "vendor-validator", "ag-authority"])
    story = [
        # A healthy pivot.
        _event("pivot-1", "manufactured", actor="valley-irrigation", t=1.0),
        _event("pivot-1", "provisioned", actor="matopiba", t=2.0, owner="matopiba"),
        _event("pivot-1", "activated", t=3.0),
        _event("pivot-1", "key_rotated", t=4.0),
        # A probe that gets transferred between farms.
        _event("probe-7", "manufactured", actor="sensortec", t=1.5),
        _event("probe-7", "provisioned", actor="guaspari", t=2.5, owner="guaspari"),
        _event("probe-7", "activated", t=3.5),
        _event("probe-7", "transferred", actor="guaspari", t=5.0, owner="matopiba"),
        # A compromised valve: revoked after an incident.
        _event("valve-9", "manufactured", actor="valley-irrigation", t=1.2),
        _event("valve-9", "provisioned", actor="matopiba", t=2.2, owner="matopiba"),
        _event("valve-9", "activated", t=3.2),
        _event("valve-9", "revoked", actor="ag-authority", t=6.0),
        # The counterfeit: a second 'manufactured' for pivot-1's identity.
        _event("pivot-1", "manufactured", actor="grey-market", t=7.0),
        # A device that skips provisioning (stolen, side-loaded).
        _event("ghost-3", "activated", actor="unknown", t=7.5),
    ]
    for i, event in enumerate(story):
        chain.submit(event)
        if i % 4 == 3:
            chain.seal_block(time=float(i))
    chain.seal_block(time=99.0)
    return chain


def test_exp11_device_lifecycle_ledger(benchmark):
    chain = _build_story()
    registry = DeviceLifecycleRegistry(chain)
    contract = AuthorizationContract(registry)

    decisions = [
        ("command pivot-1 from matopiba", contract.authorize("pivot-1", {"farm": "matopiba"})),
        ("command pivot-1 from guaspari", contract.authorize("pivot-1", {"farm": "guaspari"})),
        ("command probe-7 from matopiba", contract.authorize("probe-7", {"farm": "matopiba"})),
        ("command valve-9 from matopiba", contract.authorize("valve-9", {"farm": "matopiba"})),
        ("command ghost-3 from matopiba", contract.authorize("ghost-3", {"farm": "matopiba"})),
    ]

    intact_before = chain.verify_chain()
    # Retroactive edit: rewrite a committed transaction.
    chain.blocks[1].transactions[0] = _event("pivot-1", "manufactured", actor="evil", t=1.0)
    intact_after = chain.verify_chain()

    # Timed microbenchmark: seal + verify throughput on a fresh chain.
    def seal_and_verify():
        bench_chain = Blockchain(validators=["v1", "v2"])
        for i in range(50):
            bench_chain.submit(_event(f"d{i}", "manufactured", t=float(i)))
            if i % 5 == 4:
                bench_chain.seal_block(time=float(i))
        bench_chain.seal_block(time=99.0)
        return bench_chain.verify_chain()

    assert benchmark(seal_and_verify)

    rows = [(label, "PERMIT" if allowed else "DENY") for label, allowed in decisions]
    rows += [
        ("clone violations detected", len(registry.clone_violations())),
        ("total lifecycle violations", len(registry.violations)),
        ("chain intact before edit", intact_before),
        ("chain intact after retroactive edit", intact_after),
        ("pivot-1 state", registry.state_of("pivot-1").value),
        ("valve-9 state", registry.state_of("valve-9").value),
        ("probe-7 owner", registry.owner_of("probe-7")),
    ]
    print_table("E11: lifecycle ledger + contract gating", ["item", "value"], rows)
    record_rows(benchmark, ["item", "value"], rows)

    by_label = dict(decisions)
    # pivot-1 carries a clone violation: the contract fails closed even
    # for the legitimate owner (the incident must be resolved on-chain).
    assert not by_label["command pivot-1 from matopiba"]
    assert not by_label["command pivot-1 from guaspari"]
    # The transferred probe obeys its *current* owner.
    assert by_label["command probe-7 from matopiba"]
    # Revoked and never-provisioned devices are refused.
    assert not by_label["command valve-9 from matopiba"]
    assert not by_label["command ghost-3 from matopiba"]
    # Audit properties.
    assert len(registry.clone_violations()) == 1
    assert registry.state_of("valve-9") is DeviceState.REVOKED
    assert intact_before and not intact_after
