"""E15 — chaos soak: seeded fault campaigns vs the resilience layer.

Real pilot deployments proved SWAMP's availability story by surviving
actual field outages; the repo substitutes *seeded chaos*: many random
compositions of the typed fault events (partitions, jams, fog crashes,
broker restarts, sensor dropouts/stuck-at, brownouts), each audited
against platform invariants after the run (see ``repro.faults.chaos``):

* the season terminates and the decision loop never stalls,
* fault accounting balances (injected == recovered + still-active,
  nothing left active since every generated window closes in-run),
* supervision converges (no service stuck restarting, replicator alive,
  uplink breaker not latched open),
* irrigation continues through every anchor outage window, and
* the sync backlog stays bounded.

The benchmark also pins the two headline claims:

1. **Bit-identical chaos** — the same seed run twice yields the same
   SHA-256 fingerprint over (plan, report, decision log, supervision
   outcome).  Chaos here is a reproducible experiment, not noise.
2. **Degraded-mode autonomy** — the canonical fog-crash scenario run
   with and without supervision: the supervised arm's inter-decision gap
   stays bounded by the cycle interval and its journal reconciles to the
   cloud, while the naive arm simply stops deciding for the whole outage.

Run standalone (CI smoke, 3 seeds):

    python benchmarks/bench_chaos_soak.py --smoke

or the full 50-seed soak under pytest-benchmark:

    PYTHONPATH=src python -m pytest benchmarks/bench_chaos_soak.py -s
"""

import argparse
import os
import sys

if __name__ == "__main__":  # allow `python benchmarks/bench_chaos_soak.py`
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
else:
    from _harness import print_table, record_rows

from repro.faults.chaos import (
    build_chaos_runner,
    check_invariants,
    degraded_mode_scenario_plan,
    run_chaos,
)
from repro.simkernel.clock import DAY

SOAK_SEEDS = 50
SMOKE_SEEDS = 3
SEASON_DAYS = 6

HEADERS = ("seed", "events", "anchor", "restarts", "breaker opens",
           "degraded eps", "reconciled", "invariants")


def soak_row(seed: int):
    result = run_chaos(seed, season_days=SEASON_DAYS)
    anchor = next(
        e.kind for e in result.plan.events
        if e.kind in ("link_partition", "fog_crash")
    )
    failures = result.failures()
    return result, (
        seed,
        len(result.plan.events),
        anchor,
        result.report.resilience_restarts,
        result.report.breaker_opens,
        result.report.degraded_episodes,
        result.report.reconciled_decisions,
        "all green" if result.ok else "; ".join(f.name for f in failures),
    )


def run_soak(seeds):
    rows, results = [], []
    for seed in seeds:
        result, row = soak_row(seed)
        results.append(result)
        rows.append(row)
    return results, rows


def check_repeatability(seed: int) -> bool:
    """Same seed, two invocations, one fingerprint."""
    first = run_chaos(seed, season_days=SEASON_DAYS)
    second = run_chaos(seed, season_days=SEASON_DAYS)
    return first.fingerprint == second.fingerprint


def run_degraded_scenario(seed: int = 7):
    """The pinned cloud-partition scenario, supervised vs naive arms."""
    plan = degraded_mode_scenario_plan(SEASON_DAYS)
    event = plan.events[0]
    window = (event.at_s, event.at_s + event.duration_s)

    def arm(supervised: bool):
        runner = build_chaos_runner(
            plan, seed=seed, season_days=SEASON_DAYS, supervised=supervised
        )
        runner.run_season()
        decided_at = [entry["t"] for entry in runner.scheduler.decision_log]
        in_window = sum(1 for t in decided_at if window[0] <= t <= window[1])
        max_gap = max(
            (b - a for a, b in zip(decided_at, decided_at[1:])), default=float("inf")
        )
        return runner, in_window, max_gap

    supervised, sup_in_window, sup_gap = arm(True)
    naive, naive_in_window, naive_gap = arm(False)
    invariants = check_invariants(supervised, plan)
    journal_in_cloud = True
    try:
        supervised.cloud.context.get_entity(
            supervised.degraded_mode.entity_id
        )
    except Exception:
        journal_in_cloud = False
    return {
        "window_days": round((window[1] - window[0]) / DAY, 2),
        "supervised_decisions_in_window": sup_in_window,
        "supervised_max_gap_days": round(sup_gap / DAY, 2),
        "naive_decisions_in_window": naive_in_window,
        "naive_max_gap_days": round(naive_gap / DAY, 2),
        "reconciled": supervised.degraded_mode.reconciled,
        "journal_in_cloud": journal_in_cloud,
        "invariants_ok": all(r.ok for r in invariants),
        "cycle_interval_days": supervised.scheduler.cycle_interval_s / DAY,
    }


def assert_degraded_contract(scenario: dict) -> None:
    assert scenario["invariants_ok"], "supervised arm violated invariants"
    assert scenario["supervised_decisions_in_window"] > 0, (
        "supervised scheduler stopped deciding during the outage"
    )
    assert scenario["naive_decisions_in_window"] == 0, (
        "naive arm decided during the outage — scenario no longer stresses staleness"
    )
    # Bounded latency vs stall: the supervised gap never exceeds ~one
    # cycle; the naive gap spans the whole outage.
    assert scenario["supervised_max_gap_days"] <= 1.1 * scenario["cycle_interval_days"]
    assert scenario["naive_max_gap_days"] >= scenario["window_days"]
    assert scenario["reconciled"] > 0 and scenario["journal_in_cloud"], (
        "degraded-mode journal never reconciled to the cloud"
    )


def test_e15_chaos_soak(benchmark):
    from _harness import run_once

    def experiment():
        results, rows = run_soak(range(SOAK_SEEDS))
        scenario = run_degraded_scenario()
        return results, rows, scenario

    results, rows, scenario = run_once(benchmark, experiment)
    print_table("E15 chaos soak", HEADERS, rows)
    record_rows(benchmark, HEADERS, rows)
    benchmark.extra_info["degraded_scenario"] = scenario

    failed = [r for r in results if not r.ok]
    assert not failed, {
        r.seed: [(f.name, f.detail) for f in r.failures()] for r in failed
    }
    # The soak must actually exercise the machinery, not just pass vacuously.
    assert any(r.report.degraded_episodes > 0 for r in results)
    assert any(r.report.resilience_restarts > 0 for r in results)
    assert check_repeatability(seed=0), "same-seed chaos runs diverged"
    assert_degraded_contract(scenario)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help=f"{SMOKE_SEEDS} seeds + scenario checks (CI gate)")
    parser.add_argument("--seeds", type=int, default=None,
                        help="override the number of soak seeds")
    args = parser.parse_args()
    n_seeds = args.seeds if args.seeds is not None else (
        SMOKE_SEEDS if args.smoke else SOAK_SEEDS
    )

    results, rows = run_soak(range(n_seeds))
    print(f"\n=== E15 chaos soak ({n_seeds} seeds) ===")
    print(" | ".join(str(h) for h in HEADERS))
    for row in rows:
        print(" | ".join(str(v) for v in row))
    failed = [r for r in results if not r.ok]
    for result in failed:
        for failure in result.failures():
            print(f"FAIL seed {result.seed}: {failure.name} ({failure.detail})")
    if failed:
        return 1

    if not check_repeatability(seed=0):
        print("FAIL: same-seed chaos runs diverged")
        return 1
    print("\nrepeatability: same-seed fingerprints identical")

    scenario = run_degraded_scenario()
    print("degraded-mode scenario:", scenario)
    try:
        assert_degraded_contract(scenario)
    except AssertionError as failure:
        print(f"FAIL: {failure}")
        return 1
    print("degraded-mode contract holds: supervised gap "
          f"{scenario['supervised_max_gap_days']}d bounded, naive stalls "
          f"{scenario['naive_max_gap_days']}d, journal reconciled")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
