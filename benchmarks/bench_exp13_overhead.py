"""E13 — Security must be energy-efficient on constrained devices.

Claim (paper §III): "The security mechanisms have to be energy efficient,
since many IoT devices are limited in power, processing, and memory
resources."

Part A — per-message cost model: for a representative telemetry payload,
compare the energy of a plaintext report vs an AEAD-sealed report
(crypto CPU + the ciphertext's extra radio bytes), and project battery
life for a 2×AA field node at 30-minute sampling.

Part B — end-to-end check: two identical 10-day farms (plaintext vs
encrypted), comparing the probes' measured battery drain.

Part C — timed microbenchmark: seal+open throughput of the secure channel
(messages/second on this host).

Expected shape: the security overhead is a small fraction of the radio
cost (single-digit percent), battery-life impact is minor, and channel
throughput exceeds any field node's message rate by orders of magnitude —
i.e. the mechanisms meet the paper's efficiency requirement.
"""

from _harness import print_table, record_rows

from repro.core import DeploymentKind, PilotConfig, PilotRunner, SecurityConfig
from repro.physics import LOAM, SOYBEAN
from repro.physics.weather import BARREIRAS_MATOPIBA
from repro.security.crypto import SecureChannel, SecureChannelPair
from repro.simkernel import Simulator
from repro.simkernel.rng import RngRegistry

PAYLOAD_BYTES = 64  # a real soil-probe report is ~60 bytes of JSON
REPORTS_PER_DAY = 48.0
SENSE_J = 0.010
RADIO_FIXED_J = 0.05
RADIO_PER_BYTE_J = 0.0012
BATTERY_J = 25_000.0


def _per_message_model():
    plain_radio = RADIO_FIXED_J + PAYLOAD_BYTES * RADIO_PER_BYTE_J
    plain_total = SENSE_J + plain_radio
    crypto_cpu = SecureChannel.energy_cost_j(PAYLOAD_BYTES)
    extra_bytes = SecureChannel.overhead_bytes()
    sealed_radio = RADIO_FIXED_J + (PAYLOAD_BYTES + extra_bytes) * RADIO_PER_BYTE_J
    sealed_total = SENSE_J + sealed_radio + crypto_cpu
    return {
        "plain_j": plain_total,
        "sealed_j": sealed_total,
        "crypto_cpu_j": crypto_cpu,
        "extra_radio_j": sealed_radio - plain_radio,
        "overhead_fraction": sealed_total / plain_total - 1.0,
        "battery_days_plain": BATTERY_J / (plain_total * REPORTS_PER_DAY),
        "battery_days_sealed": BATTERY_J / (sealed_total * REPORTS_PER_DAY),
    }


def _end_to_end_drain(encrypted: bool, seed=1313):
    runner = PilotRunner(PilotConfig(
        name="e13",
        farm="e13farm",
        climate=BARREIRAS_MATOPIBA,
        crop=SOYBEAN,
        soil=LOAM,
        rows=2, cols=2,
        season_days=10,
        start_day_of_year=150,
        initial_theta=0.22,
        deployment=DeploymentKind.FOG,
        irrigation_kind="valves",
        scheduler_kind="smart",
        security=SecurityConfig(encryption=encrypted),
        seed=seed,
    ))
    runner.run_season()
    probes = list(runner.probes.values())
    drain = sum(p.battery.total_drawn() for p in probes) / len(probes)
    reports = sum(p.sent_reports for p in probes)
    return drain, reports


def test_exp13_security_energy_overhead(benchmark):
    model = _per_message_model()
    plain_drain, plain_reports = _end_to_end_drain(False)
    sealed_drain, sealed_reports = _end_to_end_drain(True)
    measured_overhead = sealed_drain / plain_drain - 1.0

    # Part C: channel throughput microbenchmark.
    pair = SecureChannelPair(
        RngRegistry(7).stream("a"), RngRegistry(7).stream("b")
    )
    payload = b"x" * PAYLOAD_BYTES

    def seal_open():
        wire = pair.endpoint_a.seal(payload, b"topic")
        return pair.endpoint_b.open(wire, b"topic")

    assert benchmark(seal_open) == payload

    rows = [
        ("plaintext message energy (J)", round(model["plain_j"], 5)),
        ("sealed message energy (J)", round(model["sealed_j"], 5)),
        ("  of which crypto CPU (J)", round(model["crypto_cpu_j"], 6)),
        ("  of which extra radio bytes (J)", round(model["extra_radio_j"], 5)),
        ("modelled overhead", f"{model['overhead_fraction']:.2%}"),
        ("battery life plaintext (days)", round(model["battery_days_plain"], 1)),
        ("battery life sealed (days)", round(model["battery_days_sealed"], 1)),
        ("measured fleet drain plaintext (J)", round(plain_drain, 2)),
        ("measured fleet drain sealed (J)", round(sealed_drain, 2)),
        ("measured overhead", f"{measured_overhead:.2%}"),
    ]
    print_table("E13: energy cost of security mechanisms", ["item", "value"], rows)
    record_rows(benchmark, ["item", "value"], rows)

    # The paper's requirement, quantified.  The dominant cost is NOT the
    # cipher CPU (<1% of a message) but the 24-byte wire expansion on
    # LoRa-class radio (~20% of a 64-byte report's energy) — the honest
    # engineering conclusion is that security is affordable (battery life
    # stays in the multi-season range) and that payload aggregation, not
    # a cheaper cipher, is the lever if the margin ever matters.
    assert model["crypto_cpu_j"] < 0.01 * model["plain_j"]
    assert 0.0 < model["overhead_fraction"] < 0.25
    assert 0.0 <= measured_overhead < 0.25
    assert abs(measured_overhead - model["overhead_fraction"]) < 0.05
    # Battery life stays within 25% of the plaintext node, years either way.
    assert model["battery_days_sealed"] > 0.75 * model["battery_days_plain"]
    assert model["battery_days_sealed"] > 365.0
    # Both arms did the same work.
    assert abs(sealed_reports - plain_reports) <= plain_reports * 0.02
