"""E7 — Eavesdropping leaks yield data; encryption closes the channel.

Claim (paper §III): "Using eavesdropping, intruders may have access to
private data about the farm and crop yield information and even manipulate
the commodity markets."

Workload: a probe fleet plus a weekly yield-forecast service publish over
field radio for 5 simulated days; an attacker taps every device uplink.
Arms: plaintext MQTT vs per-device AEAD secure channels.

Metrics: frames observed, readable (plaintext) records harvested, the
attacker's reconstruction of (a) mean soil moisture and (b) the farm's
yield forecast, and the market-advantage proxy.

Expected shape: plaintext leaks essentially everything (leakage ratio ≈ 1,
yield estimate within a few percent, material market advantage);
encryption reduces readable records to zero and the advantage to zero,
while the legitimate pipeline keeps working identically.
"""

from _harness import print_table, record_rows, run_once

from repro.devices import DeviceConfig, SoilMoistureProbe, encode_payload
from repro.mqtt import MqttBroker, MqttClient
from repro.network import Network, RadioModel
from repro.physics import Field, LOAM, SOYBEAN
from repro.security.attacks import Eavesdropper
from repro.security.attacks.eavesdrop import market_advantage_eur
from repro.security.crypto import SecureChannelPair
from repro.simkernel import Simulator
from repro.simkernel.clock import DAY

RADIO = RadioModel("lora-ish", latency_s=0.1, bandwidth_bps=20_000.0, loss_rate=0.01)
TRUE_YIELD_T = 310.0
DAYS = 5.0


def _run_scenario(encrypted: bool, seed: int = 707):
    sim = Simulator(seed=seed)
    net = Network(sim)
    broker = MqttBroker(sim, "broker")
    net.add_node(broker)
    field = Field("f", 3, 3, LOAM, SOYBEAN, sim.rng.stream("field"))

    taps = []
    devices = []
    for i, zone in enumerate(field):
        probe = SoilMoistureProbe(
            sim, net, DeviceConfig(f"p{i}", "farm", "SoilProbe", report_interval_s=900),
            "broker", zone=zone,
        )
        net.connect(probe.client.address, "broker", RADIO)
        if encrypted:
            pair = SecureChannelPair(
                sim.rng.stream(f"d{i}"), sim.rng.stream(f"s{i}"),
                context=f"p{i}".encode(),
            )
            probe.client.payload_encoder = pair.endpoint_a.mqtt_encoder
        probe.start()
        devices.append(probe)
        taps.append((probe.client.address, "broker"))

    # A farm service publishing the sensitive weekly yield forecast.
    forecaster = MqttClient(sim, "forecaster", "broker")
    net.add_node(forecaster)
    net.connect("forecaster", "broker", RADIO)
    if encrypted:
        pair = SecureChannelPair(sim.rng.stream("fc-a"), sim.rng.stream("fc-b"),
                                 context=b"forecaster")
        forecaster.payload_encoder = pair.endpoint_a.mqtt_encoder
    forecaster.connect()
    taps.append(("forecaster", "broker"))

    spy = Eavesdropper(sim, net, taps)
    spy.start()

    def forecast_loop():
        noise = sim.rng.stream("forecast-noise")
        while True:
            yield DAY
            payload = encode_payload(
                {"yieldForecastT": round(TRUE_YIELD_T * noise.uniform(0.98, 1.02), 1)}
            )
            forecaster.publish("swamp/farm/analytics/yield", payload)

    sim.spawn(forecast_loop(), "forecaster")
    sim.run(until=DAYS * DAY)

    stolen_yield = spy.estimate_mean("yieldForecastT")
    true_theta = sum(z.theta for z in field) / len(field)
    stolen_theta = spy.estimate_mean("soilMoisture")
    yield_error = (
        abs(stolen_yield - TRUE_YIELD_T) / TRUE_YIELD_T if stolen_yield else 1.0
    )
    return {
        "frames": spy.frames_observed,
        "readable_records": len(spy.plaintext_records),
        "leakage_ratio": spy.leakage_ratio(),
        "theta_estimate_error": (
            abs(stolen_theta - true_theta) if stolen_theta is not None else None
        ),
        "yield_estimate_error": yield_error,
        "market_advantage_eur": market_advantage_eur(yield_error, TRUE_YIELD_T),
        "legit_messages": broker.stats.publishes_in,
    }


def _run_experiment():
    return {
        "plaintext": _run_scenario(encrypted=False),
        "encrypted": _run_scenario(encrypted=True),
    }


def test_exp7_eavesdropping(benchmark):
    results = run_once(benchmark, _run_experiment)
    headers = ["channel", "frames seen", "readable", "leakage", "yield est err",
               "market adv EUR", "legit msgs"]
    rows = [
        (label, r["frames"], r["readable_records"], round(r["leakage_ratio"], 3),
         round(r["yield_estimate_error"], 3), round(r["market_advantage_eur"], 0),
         r["legit_messages"])
        for label, r in results.items()
    ]
    print_table("E7: wire leakage, plaintext vs AEAD channel", headers, rows)
    record_rows(benchmark, headers, rows)

    plain, enc = results["plaintext"], results["encrypted"]
    # Plaintext: near-total leakage and an accurate stolen yield estimate.
    assert plain["leakage_ratio"] > 0.95
    assert plain["yield_estimate_error"] < 0.05
    assert plain["theta_estimate_error"] < 0.05
    assert plain["market_advantage_eur"] > 0.5 * market_advantage_eur(0.0, TRUE_YIELD_T)
    # Encrypted: the attacker reads nothing; advantage collapses to zero.
    assert enc["readable_records"] == 0
    assert enc["leakage_ratio"] == 0.0
    assert enc["market_advantage_eur"] == 0.0
    # The legitimate pipeline is unaffected by encryption.
    assert enc["legit_messages"] > 0.9 * plain["legit_messages"]
