"""E1 — Smart irrigation optimizes water use and reduces energy (paper §I).

Claim: "In an attempt to avoid loss of productivity by under-irrigation,
farmers feed more water than is needed and as a result not only
productivity is challenged but also water and energy is wasted" — SWAMP's
IoT loop is supposed to fix this.

Workload: one MATOPIBA-style dry-season soybean season (same field, same
weather seed) under three controllers:

* ``fixed``    — calendar over-irrigation practice (every 3 days, 18 mm);
* ``uniform``  — sensor feedback, worst-zone depth applied everywhere;
* ``vri``      — sensor feedback with per-zone VRI prescriptions.

Expected shape: water(fixed) > water(uniform) > water(vri) with yield held
(relative yield within a few percent of each other), and energy ordered
with water.
"""

from _harness import print_table, record_kernel_stats, record_rows, run_once

from repro.core.pilots import build_matopiba_pilot

ARMS = (
    ("fixed", dict(scheduler_kind="fixed")),
    ("uniform", dict(scheduler_kind="smart", uniform_pivot=True)),
    ("vri", dict(scheduler_kind="smart", uniform_pivot=False)),
)


def _run_experiment():
    results = {}
    sim = None
    for label, overrides in ARMS:
        runner = build_matopiba_pilot(
            seed=101, rows=4, cols=4, probe_interval_s=3600.0, spatial_cv=0.25,
            **overrides,
        )
        report = runner.run_season()
        results[label] = report
        sim = runner.sim
    return results, sim


def test_exp1_water_savings(benchmark):
    results, sim = run_once(benchmark, _run_experiment)
    record_kernel_stats(benchmark, sim)
    headers = ["controller", "water m3", "mm/ha", "energy kWh", "rel yield", "yield t"]
    rows = [
        (
            label,
            round(report.irrigation_m3, 1),
            round(report.irrigation_mm_per_ha, 1),
            round(report.total_energy_kwh, 1),
            report.relative_yield,
            round(report.yield_t, 2),
        )
        for label, report in results.items()
    ]
    print_table("E1: seasonal water/energy/yield by controller", headers, rows)
    record_rows(benchmark, headers, rows)

    fixed, uniform, vri = results["fixed"], results["uniform"], results["vri"]
    # Who wins: the smart arms use less water and energy than the calendar.
    assert vri.irrigation_m3 < uniform.irrigation_m3 < fixed.irrigation_m3
    assert vri.total_energy_kwh < fixed.total_energy_kwh
    # Roughly what factor: smart saves a double-digit percentage.
    assert vri.irrigation_m3 < 0.9 * fixed.irrigation_m3
    # Productivity is held, not sacrificed.
    assert vri.relative_yield > 0.9
    assert uniform.relative_yield > 0.9
    assert vri.relative_yield > fixed.relative_yield - 0.1
