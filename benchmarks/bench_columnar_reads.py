"""E21 — Columnar history reads: zone-map pruning, bit-identity, kill safety.

The columnar tentpole's contract, measured at full-season scale:

* **bit-identity**: every STH query shape (raw range, lastN, minute
  rollups, aggregate) answered from sealed chunk files plus the WAL tail
  is byte-for-byte the answer an unbounded in-memory oracle gives;
* **pruning**: bounded-window queries skip most on-disk blocks via the
  per-block zone maps without reading them — the scan touches a small
  fraction of the season, where ``rebuild_from_samples`` re-folds all
  of it;
* **kill safety**: a simulated kill at every compaction crash point
  (chunk seal, meta advance, retention meta) recovers with zero
  lost/duplicated committed samples and reads identical to the
  uninterrupted run.

Two entry points:

* pytest-benchmark (``python -m pytest benchmarks/bench_columnar_reads.py -s``);
* CLI (``python benchmarks/bench_columnar_reads.py [--smoke]``): ``--smoke``
  runs a reduced season and enforces the gates.
"""

import argparse
import os
import shutil
import sys
import tempfile
import time

if __name__ == "__main__":  # allow `python benchmarks/bench_columnar_reads.py`
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
else:
    from _harness import print_table, record_rows, run_once

from repro.context.broker import ContextBroker
from repro.context.history import MINUTE_S, HistoryQuery, ShortTermHistory
from repro.simkernel.simulator import Simulator
from repro.store import (
    CompactionKilled,
    DurabilityService,
    RetentionConfig,
    RetentionPolicy,
    SegmentStore,
)

SEED = 42
EID = "urn:AgriParcel:matopiba:0-0"
ATTR = "soilMoisture"
SAMPLE_INTERVAL_S = 60.0
SEGMENT_BYTES = 16 * 1024
FLUSH_INTERVAL_S = 600.0
COMPACT_INTERVAL_S = 6 * 3600.0
KILL_STAGES = ("chunk_sealed", "meta_written", "retention_meta")
READ_HEADERS = ("query", "rows", "identical", "scanned", "pruned_blk",
                "scanned_blk", "col_ms", "mem_ms")
KILL_HEADERS = ("stage", "cut", "lost", "prefix_ok", "reads_identical")


def _rig(root, seed=SEED, retention=None, oracle_caps=True,
         compact_interval_s=COMPACT_INTERVAL_S):
    """Broker + history + durable store with compaction attached.

    The in-memory side doubles as the oracle, so its ring/bucket caps are
    raised beyond the season size — memory the columnar path never needs.
    """
    sim = Simulator(seed=seed)
    broker = ContextBroker(sim)
    caps = (dict(max_samples_per_series=2_000_000,
                 max_buckets_per_series=2_000_000) if oracle_caps else {})
    history = ShortTermHistory(broker, rollup_periods=(MINUTE_S,), **caps)
    broker.create_entity(EID, "AgriParcel")
    store = SegmentStore(root, max_segment_bytes=SEGMENT_BYTES)
    service = DurabilityService(
        sim, history, store, flush_interval_s=FLUSH_INTERVAL_S)
    service.start()
    compaction = service.enable_compaction(
        interval_s=compact_interval_s, retention=retention)
    return sim, broker, history, service, compaction


def _feed(sim, broker, n, start=0):
    for i in range(start, start + n):
        sim.run_until(sim.now + SAMPLE_INTERVAL_S)
        broker.update_attributes(EID, {ATTR: 0.2 + 0.01 * (i % 37)})


def _season_queries(season_s):
    day = 86400.0
    return [
        ("raw-window", HistoryQuery(EID, ATTR, since=season_s * 0.4,
                                    until=season_s * 0.4 + day)),
        ("lastN-60", HistoryQuery(EID, ATTR, last_n=60)),
        ("rollup-min-sum", HistoryQuery(EID, ATTR, period_s=MINUTE_S,
                                        method="sum")),
        ("rollup-window", HistoryQuery(EID, ATTR, period_s=MINUTE_S,
                                       method="mean", since=season_s * 0.6,
                                       until=season_s * 0.6 + day)),
        ("aggregate", HistoryQuery(EID, ATTR, aggregate=True)),
    ]


def read_comparison(workdir, days):
    """Feed a season, compact, answer every shape both ways; return rows."""
    samples = int(days * 86400.0 / SAMPLE_INTERVAL_S)
    root = os.path.join(workdir, "season")
    sim, broker, history, service, compaction = _rig(root)
    _feed(sim, broker, samples)
    service.flush_now()
    compaction.compact_once()

    season_s = sim.now
    rows, failures = [], []
    for name, query in _season_queries(season_s):
        t0 = time.perf_counter()
        col = history.read(query, source="columnar")
        col_ms = (time.perf_counter() - t0) * 1e3
        t0 = time.perf_counter()
        mem = history.read(query, source="memory")
        mem_ms = (time.perf_counter() - t0) * 1e3
        identical = col.rows == mem.rows and col.stats == mem.stats
        rows.append((name, len(col.rows), identical, col.scanned_samples,
                     col.pruned_blocks, col.scanned_blocks, col_ms, mem_ms))
        if not identical:
            failures.append(name)
    report = compaction.report()
    stats = {
        "season_samples": samples,
        "chunks": len(compaction.columnar.chunk_indexes()),
        "chunk_records": report["chunk_records"],
        "wal_records": service.store.appended,
        # Bounded-memory figure: the windowed scans touch this fraction
        # of the season where a rebuild re-folds all of it.
        "window_scan_fraction": max(
            r[3] for r in rows if r[0] in ("raw-window", "lastN-60")
        ) / max(1, samples),
    }
    return rows, failures, stats


def kill_matrix(workdir, days, cuts=3):
    """Kill each compaction crash point mid-season; gate on identity."""
    samples = int(days * 86400.0 / SAMPLE_INTERVAL_S)
    retention = RetentionConfig(
        default=RetentionPolicy(max_age_s=days * 86400.0 * 0.5))

    def one_run(root, cut, stage):
        # Park the pump (1e9 s) so the matrix drives compaction — and the
        # armed kill — at deterministic points, not mid-feed.
        sim, broker, history, service, compaction = _rig(
            root, retention=retention, compact_interval_s=1e9)
        compaction.kill_after = stage
        fired = lost = 0
        prefix_ok = True
        for leg, count in enumerate(
                (cut, samples - cut) if cut else (samples,)):
            if leg:
                _feed(sim, broker, count, start=cut)
            else:
                _feed(sim, broker, count)
            service.flush_now()
            try:
                compaction.compact_once()
            except CompactionKilled:
                service.crash_and_recover()
                fired += 1
                lost += service.lost_committed
                prefix_ok = prefix_ok and service.prefix_consistent
                compaction.compact_once()
        reads = [
            (history.read(q, source="columnar").rows,
             history.read(q, source="columnar").stats)
            for _name, q in _season_queries(sim.now)
        ]
        return reads, fired, lost, prefix_ok

    rows, failures = [], []
    cut_points = [samples * (i + 1) // (cuts + 1) for i in range(cuts)]
    for cut in cut_points:
        reference, _f, _l, _p = one_run(
            os.path.join(workdir, f"ref-{cut}"), cut, stage=None)
        for stage in KILL_STAGES:
            root = os.path.join(workdir, f"{stage}-{cut}")
            reads, fired, lost, prefix_ok = one_run(root, cut, stage)
            identical = reads == reference
            rows.append((stage, cut, lost, prefix_ok, identical))
            if lost or not prefix_ok or not identical or not fired:
                failures.append(rows[-1])
            shutil.rmtree(root)
        shutil.rmtree(os.path.join(workdir, f"ref-{cut}"))
    return rows, failures


def assert_gates(read_rows, read_failures, stats, kill_failures):
    assert not read_failures, (
        f"columnar answers diverged from the in-memory oracle: "
        f"{read_failures}")
    assert stats["chunks"] > 1, stats
    # Zone maps must prune on every bounded-window shape.
    window_rows = [r for r in read_rows
                   if r[0] in ("raw-window", "lastN-60", "rollup-window")]
    assert all(r[4] > 0 for r in window_rows), window_rows
    # Bounded memory: windowed scans touch a minority of the season.
    assert stats["window_scan_fraction"] < 0.5, stats
    assert not kill_failures, (
        f"{len(kill_failures)} kill points violated the compaction "
        f"recovery contract: {kill_failures[:3]}")


def test_columnar_reads(benchmark):
    workdir = tempfile.mkdtemp(prefix="bench-columnar-")
    try:
        def experiment():
            reads, read_failures, stats = read_comparison(workdir, days=14)
            kills, kill_failures = kill_matrix(workdir, days=2, cuts=3)
            return reads, read_failures, stats, kills, kill_failures

        reads, read_failures, stats, kills, kill_failures = run_once(
            benchmark, experiment)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    record_rows(benchmark, READ_HEADERS, reads)
    benchmark.extra_info["stats"] = {k: round(v, 6) if isinstance(v, float)
                                     else v for k, v in stats.items()}
    benchmark.extra_info["kill_points"] = len(kills)
    print_table(
        f"E21 columnar reads: {stats['season_samples']} samples over "
        f"{stats['chunks']} chunks, "
        f"window scan fraction {stats['window_scan_fraction']:.1%}",
        READ_HEADERS, reads)
    print_table("compaction kill matrix", KILL_HEADERS, kills)
    assert len(kills) >= 9
    assert_gates(reads, read_failures, stats, kill_failures)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced season, gated on bit-identity + pruning + kill "
             "recovery")
    parser.add_argument("--days", type=float, default=None,
                        help="season length for the read comparison")
    args = parser.parse_args(argv)

    days = args.days if args.days is not None else (3 if args.smoke else 14)
    started = time.perf_counter()
    workdir = tempfile.mkdtemp(prefix="bench-columnar-")
    try:
        reads, read_failures, stats = read_comparison(workdir, days=days)
        kills, kill_failures = kill_matrix(
            workdir, days=1 if args.smoke else 2, cuts=2 if args.smoke else 3)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    wall = time.perf_counter() - started

    print(f"season: {stats['season_samples']} samples → {stats['chunks']} "
          f"chunks ({stats['chunk_records']} records) + "
          f"{stats['wal_records']} in the WAL tail")
    for row in reads:
        print("  {:<16} rows {:>6}  identical {!s:<5}  scanned {:>7}  "
              "pruned blocks {:>5}  col {:>7.2f}ms  mem {:>7.2f}ms".format(*row))
    print(f"window scan fraction: {stats['window_scan_fraction']:.1%}")
    print(f"kill matrix: {len(kills)} points, "
          f"{sum(r[2] for r in kills)} lost")
    print(f"wall: {wall:.2f}s")

    if args.smoke:
        try:
            assert_gates(reads, read_failures, stats, kill_failures)
        except AssertionError as exc:
            print(f"FAIL: {exc}")
            return 1
        print("smoke gate passed: bit-identical columnar reads, zone maps "
              "pruning, every compaction kill point recovered clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
