"""E8 — The behavioral baseline separates normal from threat (paper §III).

Claim: "One of the most relevant security challenges ... is not only the
integration of technologies but also to understand and correlate the
expected sequence of events and behavior of agriculture applications ...
a baseline must be created to promote security effectiveness.  Regardless
of the data acquisition rate, or the number of installed sensors, the
system will probably have a partial view of the environment."

Part A — tamper-mode coverage: the same 14-day farm run once per tamper
signature (bias, slow drift, spikes, stuck, gain error) plus a clean run;
one probe is attacked on day 8 after a 7-day training window.  Metrics per
mode: alerts on the victim, time to first alert, quarantine, and false
alerts on the clean fleet.

Part B — the partial-view knob: the bias attack re-run at decreasing data
acquisition rates (30 min → 4 h sampling).  Metric: time from attack start
to quarantine.

Expected shape: every tamper signature raises alerts and the persistent
ones (bias/drift/stuck/scale) reach quarantine, with drift the slowest
(it is designed to be); clean-run false quarantines are zero; detection
time grows as the sensor view thins.
"""

from _harness import print_table, record_rows, run_once

from repro.core import DeploymentKind, PilotConfig, PilotRunner, SecurityConfig
from repro.physics import LOAM, SOYBEAN
from repro.physics.weather import BARREIRAS_MATOPIBA
from repro.security.attacks import SensorTamper, TamperMode
from repro.simkernel.clock import DAY

ATTACK_DAY = 8
SEASON_DAYS = 14

MODES = {
    "clean": None,
    "bias": dict(mode=TamperMode.BIAS, magnitude=0.12),
    "drift": dict(mode=TamperMode.DRIFT, magnitude=0.0, drift_per_day=0.05),
    "spike": dict(mode=TamperMode.SPIKE, magnitude=0.3, spike_probability=0.15),
    "stuck": dict(mode=TamperMode.STUCK, magnitude=0.0),
    "scale": dict(mode=TamperMode.SCALE, magnitude=0.5),
}


def _build(probe_interval_s: float = 1800.0, seed: int = 808) -> PilotRunner:
    return PilotRunner(PilotConfig(
        name="e8",
        farm="e8farm",
        climate=BARREIRAS_MATOPIBA,
        crop=SOYBEAN,
        soil=LOAM,
        rows=2, cols=2,
        season_days=SEASON_DAYS,
        start_day_of_year=150,
        initial_theta=0.22,
        deployment=DeploymentKind.FOG,
        irrigation_kind="valves",
        scheduler_kind="smart",
        probe_interval_s=probe_interval_s,
        security=SecurityConfig(detection=True, detection_training_s=7 * DAY),
        seed=seed,
    ))


def _run_mode(label: str, tamper_kwargs, probe_interval_s: float = 1800.0):
    runner = _build(probe_interval_s)
    victim_zone = list(runner.field)[0]
    victim = runner.probes[victim_zone.zone_id]
    if tamper_kwargs is not None:
        kwargs = dict(tamper_kwargs)
        mode = kwargs.pop("mode")
        magnitude = kwargs.pop("magnitude")
        tamper = SensorTamper(runner.sim, victim, "soilMoisture", mode, magnitude, **kwargs)
        runner.sim.schedule_at(ATTACK_DAY * DAY, tamper.start)
    runner.run_season()
    manager = runner.security.alert_manager
    victim_id = victim.config.device_id
    # Only alerts after the attack begins count toward the signature; the
    # pre-attack window measures baseline noise identically in every arm.
    victim_alerts = [
        a for a in manager.alerts_for(victim_id) if a.time >= ATTACK_DAY * DAY
    ]
    first_alert = min((a.time for a in victim_alerts), default=None)
    quarantine_time = manager.quarantined.get(victim_id)
    other_alerts = [a for a in manager.alerts if a.source_device != victim_id]
    false_quarantines = [d for d in manager.quarantined if d != victim_id]
    return {
        "victim_alerts": len(victim_alerts),
        "time_to_alert_d": (
            (first_alert - ATTACK_DAY * DAY) / DAY if first_alert is not None else None
        ),
        "time_to_quarantine_d": (
            (quarantine_time - ATTACK_DAY * DAY) / DAY if quarantine_time is not None else None
        ),
        "quarantined": quarantine_time is not None,
        "fleet_alerts": len(other_alerts),
        "false_quarantines": len(false_quarantines),
    }


def _run_experiment():
    part_a = {label: _run_mode(label, kwargs) for label, kwargs in MODES.items()}
    part_b = {
        interval: _run_mode("bias", MODES["bias"], probe_interval_s=interval)
        for interval in (900.0, 3600.0, 14400.0)
    }
    return part_a, part_b


def test_exp8_behavioral_baseline(benchmark):
    part_a, part_b = run_once(benchmark, _run_experiment)

    headers_a = ["tamper mode", "victim alerts", "t->alert (d)", "t->quarantine (d)",
                 "fleet alerts", "false quarantines"]
    rows_a = [
        (label,
         r["victim_alerts"],
         "-" if r["time_to_alert_d"] is None else round(r["time_to_alert_d"], 2),
         "-" if r["time_to_quarantine_d"] is None else round(r["time_to_quarantine_d"], 2),
         r["fleet_alerts"], r["false_quarantines"])
        for label, r in part_a.items()
    ]
    print_table("E8a: detector coverage by tamper signature", headers_a, rows_a)

    headers_b = ["sampling interval s", "victim alerts", "t->quarantine (d)"]
    rows_b = [
        (int(interval), r["victim_alerts"],
         "-" if r["time_to_quarantine_d"] is None else round(r["time_to_quarantine_d"], 2))
        for interval, r in part_b.items()
    ]
    print_table("E8b: bias detection vs data acquisition rate", headers_b, rows_b)
    record_rows(benchmark, headers_a, rows_a + rows_b)

    # Clean run: sporadic alerts (≈1/day on a thin baseline — the paper's
    # partial-profile caveat) but never enough to quarantine.
    assert part_a["clean"]["victim_alerts"] <= 8
    assert not part_a["clean"]["quarantined"]
    assert part_a["clean"]["false_quarantines"] == 0
    # Every attack signature raises alerts on the victim.
    for label in ("bias", "drift", "spike", "stuck", "scale"):
        assert part_a[label]["victim_alerts"] > part_a["clean"]["victim_alerts"], label
    # Persistent signatures reach quarantine; no clean device ever does.
    for label in ("bias", "stuck", "scale"):
        assert part_a[label]["quarantined"], label
        assert part_a[label]["false_quarantines"] == 0, label
    # Drift is caught, later than bias (it is the slow-poisoning case).
    assert part_a["drift"]["victim_alerts"] > 0
    if part_a["drift"]["quarantined"] and part_a["bias"]["quarantined"]:
        assert (part_a["drift"]["time_to_quarantine_d"]
                >= part_a["bias"]["time_to_quarantine_d"])
    # Partial view: thinner sampling detects more slowly (or not at all).
    times = [
        part_b[i]["time_to_quarantine_d"] if part_b[i]["time_to_quarantine_d"] is not None
        else float("inf")
        for i in (900.0, 3600.0, 14400.0)
    ]
    assert times[0] <= times[1] <= times[2]
    assert part_b[900.0]["quarantined"]
