"""E10 — OAuth2 + PEP enforce identified, authorized, farm-isolated access.

Claim (paper §III): "The platform must provide efficient authentication,
authorization and access control mechanisms.  It is important to keep data
apart from farms in our pilots.  The access to the platform must be
allowed only for identified and authorized users, using FIWARE security
generic enablers (GE) and the OAuth 2.0 protocol."

Part A — access matrix replay: every (principal kind × token state ×
resource farm × action) combination is replayed through the PEP and
compared with the expected verdict.  Metric: decision correctness (must be
100%) plus the audit trail.

Part B — rogue actuator end-to-end: the §III "attacker takes control of
the actuators" move replayed against an open broker and a PEP-guarded
broker.

Part C — overhead: PEP decisions per second (this one is a real
microbenchmark, timed by pytest-benchmark).

Expected shape: zero wrong verdicts; the open broker floods the field
while the guarded broker delivers nothing; PEP throughput comfortably
above the platform's message rate.
"""

from _harness import print_table, record_rows

from repro.mqtt import Connect, ConnectReturnCode
from repro.security.auth import (
    IdentityManager, OAuthServer, PepProxy, Policy, PolicyDecisionPoint,
)
from repro.simkernel import Simulator


def _build_stack(seed=1010, ttl=3600.0):
    sim = Simulator(seed=seed)
    identity = IdentityManager(sim.rng.stream("idm"))
    oauth = OAuthServer(sim, identity, sim.rng.stream("oauth"), access_token_ttl_s=ttl)
    pdp = PolicyDecisionPoint()
    pdp.add_policy(Policy("own-farm", "permit", {"read", "publish", "subscribe"},
                          r"^swamp/", same_farm=True))
    pdp.add_policy(Policy("admin-all", "permit", {"read", "publish", "subscribe", "admin"},
                          r".*", roles={"platform-admin"}))
    pep = PepProxy(sim, oauth, pdp)
    return sim, identity, oauth, pdp, pep


def _access_matrix():
    sim, identity, oauth, pdp, pep = _build_stack()
    identity.register("alice", "pw", farm="farmA", roles={"farmer"})
    identity.register("bob", "pw", farm="farmB", roles={"farmer"})
    identity.register("root", "pw", farm=None, roles={"platform-admin"})
    identity.register("probe-a", "key", kind="device", farm="farmA")

    # Issue a token, let it expire (ttl 3600s), then issue the live set.
    expired = oauth.password_grant("alice", "pw").access_token
    sim.schedule(7200.0, lambda: None)
    sim.run()
    alice2 = oauth.password_grant("alice", "pw").access_token
    bob = oauth.password_grant("bob", "pw").access_token
    root = oauth.password_grant("root", "pw").access_token
    device = oauth.device_grant("probe-a", "key").access_token
    revoked = oauth.password_grant("bob", "pw").access_token
    oauth.revoke(revoked)

    cases = [
        # (label, token, action, resource, expected)
        ("own-farm read", alice2, "read", "swamp/farmA/attrs/p1", True),
        ("cross-farm read", alice2, "read", "swamp/farmB/attrs/p1", False),
        ("own-farm publish", alice2, "publish", "swamp/farmA/cmd/v1", True),
        ("cross-farm publish", alice2, "publish", "swamp/farmB/cmd/v1", False),
        ("other farmer own", bob, "read", "swamp/farmB/attrs/p1", True),
        ("admin cross-farm", root, "read", "swamp/farmB/attrs/p1", True),
        ("admin action", root, "admin", "swamp/platform/config", True),
        ("farmer admin action", alice2, "admin", "swamp/platform/config", False),
        ("device own topic", device, "publish", "swamp/farmA/attrs/probe-a", True),
        ("device cross-farm", device, "publish", "swamp/farmB/attrs/x", False),
        ("expired token", expired, "read", "swamp/farmA/attrs/p1", False),
        ("revoked token", revoked, "read", "swamp/farmB/attrs/p1", False),
        ("garbage token", "not-a-token", "read", "swamp/farmA/attrs/p1", False),
        ("outside namespace", alice2, "read", "other/topic", False),
    ]
    rows = []
    correct = 0
    for label, token, action, resource, expected in cases:
        verdict = pep.check(token, action, resource)
        ok = verdict == expected
        correct += ok
        rows.append((label, "allow" if expected else "deny",
                     "allow" if verdict else "deny", "OK" if ok else "WRONG"))
    return rows, correct, len(cases), pep


def _rogue_actuator(guarded: bool, seed=1011):
    from repro.devices import DeviceConfig, Valve
    from repro.network import Network, RadioModel
    from repro.mqtt import MqttBroker
    from repro.physics import Field, LOAM, SOYBEAN
    from repro.security.attacks import RogueActuatorController

    sim = Simulator(seed=seed)
    net = Network(sim)
    model = RadioModel("t", 0.01, 1e6, 0.0)
    authenticator = None
    if guarded:
        identity = IdentityManager(sim.rng.stream("idm"))
        oauth = OAuthServer(sim, identity, sim.rng.stream("oauth"))
        pdp = PolicyDecisionPoint()
        pdp.add_policy(Policy("own-farm", "permit", {"publish", "subscribe"},
                              r"^swamp/", same_farm=True))
        pep = PepProxy(sim, oauth, pdp)
        identity.register("v1", "valve-key", kind="device", farm="farmA")
        valve_token = oauth.device_grant("v1", "valve-key").access_token
        authenticator = pep.mqtt_authenticator
    broker = MqttBroker(sim, "broker", authenticator=authenticator)
    net.add_node(broker)
    field = Field("f", 1, 1, LOAM, SOYBEAN, sim.rng.stream("field"))
    valve = Valve(sim, net, DeviceConfig("v1", "farmA", "Valve"), "broker",
                  zone=field.zone(0, 0))
    if guarded:
        valve.client.password = valve_token
    net.connect(valve.client.address, "broker", model)
    valve.start()
    rogue = RogueActuatorController(sim, net, "broker", model, "farmA",
                                    password="stolen-or-missing")
    rogue.start()
    sim.run(until=5.0)
    rogue.flood_field(["v1"], hours=6.0)
    sim.run(until=8 * 3600.0)
    return valve.total_applied_mm


def test_exp10_access_control(benchmark):
    rows, correct, total, pep = _access_matrix()
    open_water = _rogue_actuator(guarded=False)
    guarded_water = _rogue_actuator(guarded=True)

    # Part C: PEP decision throughput as the timed microbenchmark.
    sim, identity, oauth, pdp, pep_bench = _build_stack()
    identity.register("alice", "pw", farm="farmA", roles={"farmer"})
    token = oauth.password_grant("alice", "pw").access_token

    def pep_check():
        return pep_bench.check(token, "read", "swamp/farmA/attrs/p1")

    benchmark(pep_check)

    print_table("E10a: access-matrix replay",
                ["case", "expected", "verdict", "result"], rows)
    extra = [
        ("rogue vs open broker (mm applied)", "-", round(open_water, 1), "-"),
        ("rogue vs guarded broker (mm applied)", "-", round(guarded_water, 1), "-"),
    ]
    print_table("E10b: rogue actuator takeover",
                ["scenario", "", "water applied mm", ""], extra)
    record_rows(benchmark, ["case", "expected", "verdict", "result"], rows + extra)

    assert correct == total, "access-control verdicts must be exactly right"
    assert len(pep.denied_records()) >= 7  # denials audited
    assert open_water > 30.0       # undefended: the field is flooded
    assert guarded_water == 0.0    # PEP-guarded: nothing moves
