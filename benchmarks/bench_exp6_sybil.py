"""E6 — Sybil/fake drone data corrupts NDVI; layered defences and limits.

Claim (paper §III): "A drone or sensor node performing the Sybil attack
could send fake images and false measurements, leading to the incorrect
interpretation of the actual soil conditions, incorrect calculation of the
NDVI, and the like."

Two scenarios, each sweeping the Sybil swarm size against two honest
drones that always paint the truth:

* **mid-season** (day 60, full canopy, rows 0-1 genuinely stressed): the
  fake "0.85 healthy everywhere" is *plausible per zone*, so only
  provisioning (identity control) and the spatial majority vote can help —
  and the vote provably fails once the swarm outnumbers honest sources;
* **early-season** (day 12, bare field): 0.85 is physically impossible,
  so the crop-model band screen rejects every fake frame regardless of
  swarm size, even with stolen provisioning keys.

Expected shape: map error grows with swarm size undefended; provisioning
is flat-clean; spatial vote cleans a minority swarm and breaks at 3+;
band screening is flat-clean early season.
"""

from _harness import print_table, record_rows, run_once

from repro.analytics import NdviMapService
from repro.context import ContextBroker
from repro.physics import Field, LOAM, SOYBEAN
from repro.physics.ndvi import NdviTracker
from repro.security.detection import SpatialConsistencyDetector
from repro.simkernel import Simulator

ROWS, COLS = 4, 4
FAKE_NDVI = 0.85
STRESS_THRESHOLD = 0.70  # healthy full canopy ≈ 0.88, stressed ≈ 0.58


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    return ordered[mid] if len(ordered) % 2 else (ordered[mid - 1] + ordered[mid]) / 2


def _make_field(sim, season_day):
    field = Field("f", ROWS, COLS, LOAM, SOYBEAN, sim.rng.stream("field"))
    trackers = {}
    for zone in field:
        zone.season_day = season_day
        tracker = NdviTracker(zone)
        stressed = zone.row < 2
        for _ in range(40):
            tracker.record_day(0.05 if stressed else 1.0)
        trackers[zone.zone_id] = tracker
    return field, trackers


def _run_scenario(season_day: int, sybil_count: int, defence: str, seed: int = 606):
    sim = Simulator(seed=seed)
    field, trackers = _make_field(sim, season_day)
    context = ContextBroker(sim)
    service = NdviMapService(context, field)
    if defence == "band":
        service.enable_band_screening(SOYBEAN)
        service.set_season_day(season_day)
    spatial = SpatialConsistencyDetector(ROWS, COLS, tolerance=0.08)
    noise = sim.rng.stream("drone-noise")

    honest = ["drone-a", "drone-b"]
    sybils = [f"sybil-{i}" for i in range(sybil_count)]
    # Provisioning drops unknown identities before they reach the context.
    sources = honest + ([] if defence == "provisioning" else sybils)
    for name in honest + sybils:
        context.ensure_entity(f"urn:Drone:{name}", "Drone", {"deviceId": name})

    for name in sources:
        fake = name.startswith("sybil")
        for zone in field:
            value = (
                noise.bounded_gauss(FAKE_NDVI, 0.01, 0.0, 1.0)
                if fake
                else max(0.0, min(1.0, trackers[zone.zone_id].ndvi()
                                  + noise.gauss(0.0, 0.01)))
            )
            context.update_attributes(
                f"urn:Drone:{name}",
                {"ndvi": round(value, 4), "zone": zone.zone_id,
                 "row": zone.row, "col": zone.col},
            )
            spatial.observe(zone.row, zone.col, name, value)

    flagged = spatial.suspicious_sources(alert_threshold=1.0)
    heavily_flagged = {s for s, zones in flagged.items() if zones >= 3}
    if defence in ("median-vote", "provisioning", "band"):
        # Robust per-zone median across sources.
        consensus = service.consensus_map()
    else:
        # Naive trusting aggregator: per-zone mean.
        consensus = {
            zone_id: sum(by_source.values()) / len(by_source)
            for zone_id, by_source in service.observations.items()
            if by_source
        }

    truth = service.truth_map(trackers)
    truth_stressed = {z for z, v in truth.items() if v < STRESS_THRESHOLD}
    found_stressed = {z for z, v in consensus.items() if v < STRESS_THRESHOLD}
    errors = [abs(v - truth[z]) for z, v in consensus.items()]
    return {
        "map_error": sum(errors) / len(errors) if errors else 1.0,
        "stress_missed": len(truth_stressed - found_stressed),
        "stress_total": len(truth_stressed),
        "rejected_band": service.rejected_out_of_band,
        "sybils_flagged": sum(1 for s in sybils if s in heavily_flagged),
    }


def _run_experiment():
    results = []
    for count in (0, 1, 3, 5):
        for defence in ("none", "median-vote", "provisioning"):
            results.append(("mid", count, defence, _run_scenario(60, count, defence)))
    for count in (1, 5):
        for defence in ("none", "band"):
            results.append(("early", count, defence, _run_scenario(12, count, defence)))
    return results


def test_exp6_sybil_ndvi(benchmark):
    results = run_once(benchmark, _run_experiment)
    headers = ["season", "sybils", "defence", "map error", "stress missed",
               "rejected(band)", "sybils flagged"]
    rows = [
        (season, count, defence, round(r["map_error"], 4),
         f"{r['stress_missed']}/{r['stress_total']}",
         r["rejected_band"], r["sybils_flagged"])
        for season, count, defence, r in results
    ]
    print_table("E6: Sybil swarm vs NDVI interpretation", headers, rows)
    record_rows(benchmark, headers, rows)

    by_key = {(s, c, d): r for s, c, d, r in results}
    # Naive mean aggregation: error grows with swarm size; a majority swarm
    # erases the stressed strip from the map.
    assert by_key[("mid", 0, "none")]["map_error"] < 0.05
    assert (by_key[("mid", 5, "none")]["map_error"]
            > by_key[("mid", 1, "none")]["map_error"]
            > by_key[("mid", 0, "none")]["map_error"])
    assert by_key[("mid", 3, "none")]["stress_missed"] == \
        by_key[("mid", 3, "none")]["stress_total"] > 0
    # Provisioning: flat clean at any swarm size.
    assert by_key[("mid", 5, "provisioning")]["map_error"] < 0.05
    assert by_key[("mid", 5, "provisioning")]["stress_missed"] == 0
    # Median vote: cleans a minority swarm, breaks under a majority —
    # the honest-majority assumption made visible.
    assert by_key[("mid", 1, "median-vote")]["map_error"] < 0.05
    assert by_key[("mid", 1, "median-vote")]["sybils_flagged"] == 1
    assert by_key[("mid", 5, "median-vote")]["stress_missed"] > 0
    # Early season: the physical band rejects every fake frame, keeping
    # the map clean where the naive aggregate is catastrophically wrong.
    assert by_key[("early", 5, "none")]["map_error"] > 0.3
    assert by_key[("early", 5, "band")]["rejected_band"] >= 5 * ROWS * COLS
    assert by_key[("early", 5, "band")]["map_error"] < 0.05
    assert by_key[("early", 5, "band")]["stress_missed"] == 0
