"""E20 — Crash-safe durable history and at-least-once delivery.

Two properties the storage tentpole must hold under fire:

* **crash recovery**: killing the history+store "process" at every
  record boundary of a seeded run and recovering from disk never loses a
  committed record, always yields a bit-identical prefix of the
  uninterrupted run, and recovers fast (the recovery scan is a single
  forward pass — milliseconds at this scale);
* **delivery resilience**: against a flaky endpoint with an outage
  window, the per-endpoint circuit breaker *defers* attempts instead of
  burning them, so the post-heal success rate with the breaker beats an
  unguarded pipeline and no accepted notification is ever silently lost.

Two entry points:

* pytest-benchmark (``python -m pytest benchmarks/bench_durability.py -s``):
  runs the full kill-point matrix plus the breaker comparison and files
  the rows into ``extra_info``;
* CLI (``python benchmarks/bench_durability.py [--smoke]``): ``--smoke``
  runs a reduced matrix and enforces the gates (zero committed loss,
  prefix consistency, bounded recovery time, breaker ≥ unguarded
  success, conservation).
"""

import argparse
import os
import shutil
import sys
import tempfile
import time

if __name__ == "__main__":  # allow `python benchmarks/bench_durability.py`
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
else:
    from _harness import print_table, record_rows, run_once

from repro.context.broker import ContextBroker
from repro.context.delivery import DeliveryConfig, DeliveryManager, SimulatedEndpoint
from repro.context.history import MINUTE_S, ShortTermHistory
from repro.context.subscriptions import Subscription
from repro.simkernel.simulator import Simulator
from repro.store import DurabilityService, SegmentStore

SEED = 42
EID = "urn:AgriParcel:matopiba:0-0"
ATTR = "soilMoisture"
FLUSH_INTERVAL_S = 50.0
#: Recovery of a log this size is one forward scan; anything slower than
#: this generous bound means the recovery path regressed algorithmically.
RECOVERY_GATE_S = 1.0
MATRIX_HEADERS = ("kill_at", "surviving_b", "committed", "recovered",
                  "lost", "prefix_ok", "recovery_ms")
DELIVERY_HEADERS = ("pipeline", "accepted", "delivered", "dead",
                    "success_rate", "attempts", "deferrals")


def _history_rig(root, seed=SEED):
    sim = Simulator(seed=seed)
    broker = ContextBroker(sim)
    history = ShortTermHistory(broker, rollup_periods=(MINUTE_S,))
    service = DurabilityService(
        sim, history, SegmentStore(root), flush_interval_s=FLUSH_INTERVAL_S)
    service.start()
    broker.create_entity(EID, "AgriParcel")
    return sim, broker, history, service


def _feed(sim, broker, n, dt=10.0):
    for i in range(n):
        broker.update_attributes(EID, {ATTR: 0.1 + 0.01 * (i % 30)})
        sim.run_until(sim.now + dt)


def crash_recovery_matrix(workdir, total_records=80, step=1, seed=SEED):
    """Kill at every ``step``-th record boundary; return per-kill rows.

    The reference run records the canonical payload sequence; each matrix
    entry replays the same seeded run, crashes mid-flush with a rotating
    surviving-tail length, recovers, and checks the recovered log against
    the reference prefix byte-for-byte.
    """
    ref_root = os.path.join(workdir, "ref")
    sim, broker, _history, service = _history_rig(ref_root, seed)
    _feed(sim, broker, total_records)
    reference = service.store.read_all()

    rows, failures = [], []
    for kill_at in range(1, total_records, step):
        surviving = (kill_at * 7) % 23
        root = os.path.join(workdir, f"kill-{kill_at}")
        sim, broker, _history, service = _history_rig(root, seed)
        _feed(sim, broker, kill_at)
        committed = service.store.committed
        service.crash_and_recover(surviving_tail_bytes=surviving)
        recovered = service.store.read_all()
        prefix_ok = recovered == reference[: len(recovered)]
        rows.append((kill_at, surviving, committed, len(recovered),
                     service.lost_committed, prefix_ok,
                     service.recovery_wall_s * 1e3))
        if (service.lost_committed or not prefix_ok
                or not service.prefix_consistent
                or service.recovery_wall_s > RECOVERY_GATE_S):
            failures.append(rows[-1])
        shutil.rmtree(root)
    return rows, failures


def run_delivery(with_breaker, notifications=120, seed=SEED):
    """One seeded delivery run against a flaky endpoint with an outage.

    ``with_breaker=False`` raises the failure threshold beyond reach, so
    every attempt hammers the dead endpoint and burns its retry budget —
    the pipeline the breaker exists to protect.
    """
    sim = Simulator(seed=seed)
    broker = ContextBroker(sim)
    config = DeliveryConfig(
        pump_interval_s=1.0, timeout_s=2.0, max_attempts=6,
        backoff_base_s=2.0, backoff_cap_s=60.0,
        breaker_failure_threshold=3 if with_breaker else 10**9,
        breaker_open_timeout_s=120.0)
    manager = DeliveryManager(sim, config)
    endpoint = manager.register_endpoint(
        SimulatedEndpoint("hook", fail_rate=0.05))
    manager.start()
    broker.create_entity(EID, "AgriParcel", {ATTR: 0.2})
    sub = Subscription(callback=lambda _n: None, entity_id=EID)
    manager.bind_subscription(sub, "dash", "hook")
    broker.subscribe(sub)

    def outage():
        yield 200.0
        endpoint.down = True
        yield 600.0
        endpoint.down = False

    sim.spawn(outage(), name="outage")
    _feed(sim, broker, notifications, dt=10.0)
    sim.run_until(sim.now + 4000.0)
    audit = manager.audit()
    attempts = sum(i.attempts for i in manager._items)
    return {
        "pipeline": "breaker" if with_breaker else "unguarded",
        "audit": audit,
        "attempts": attempts,
        "success_rate": audit["delivered"] / max(1, audit["accepted"]),
    }


def delivery_rows(results):
    return [
        (r["pipeline"], r["audit"]["accepted"], r["audit"]["delivered"],
         r["audit"]["dead"], r["success_rate"], r["attempts"],
         r["audit"]["breaker_deferrals"])
        for r in results
    ]


def assert_gates(matrix_failures, guarded, unguarded):
    assert not matrix_failures, (
        f"{len(matrix_failures)} kill points violated the recovery "
        f"contract: {matrix_failures[:3]}")
    for result in (guarded, unguarded):
        assert result["audit"]["conserved"], result["pipeline"]
    assert guarded["success_rate"] > unguarded["success_rate"], (
        guarded["success_rate"], unguarded["success_rate"])
    assert guarded["attempts"] < unguarded["attempts"]


def test_durability(benchmark):
    workdir = tempfile.mkdtemp(prefix="bench-durability-")
    try:
        def experiment():
            matrix, failures = crash_recovery_matrix(
                workdir, total_records=80, step=1)
            guarded = run_delivery(with_breaker=True)
            unguarded = run_delivery(with_breaker=False)
            return matrix, failures, guarded, unguarded

        matrix, failures, guarded, unguarded = run_once(benchmark, experiment)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    rows = delivery_rows([guarded, unguarded])
    record_rows(benchmark, DELIVERY_HEADERS, rows)
    worst_ms = max(r[-1] for r in matrix)
    benchmark.extra_info["kill_points"] = len(matrix)
    benchmark.extra_info["worst_recovery_ms"] = round(worst_ms, 3)
    print_table(
        f"E20 durability: {len(matrix)} kill points, zero committed loss, "
        f"worst recovery {worst_ms:.2f}ms",
        DELIVERY_HEADERS, rows,
    )
    assert len(matrix) >= 50
    assert_gates(failures, guarded, unguarded)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced kill-point matrix, gated on zero loss + prefix "
             "consistency + recovery time + breaker advantage")
    parser.add_argument("--records", type=int, default=None,
                        help="records in the crash-recovery run")
    parser.add_argument("--seed", type=int, default=SEED)
    args = parser.parse_args(argv)

    total = args.records if args.records is not None else (
        60 if args.smoke else 120)
    step = 2 if args.smoke else 1
    started = time.perf_counter()
    workdir = tempfile.mkdtemp(prefix="bench-durability-")
    try:
        matrix, failures = crash_recovery_matrix(
            workdir, total_records=total, step=step, seed=args.seed)
        guarded = run_delivery(with_breaker=True, seed=args.seed)
        unguarded = run_delivery(with_breaker=False, seed=args.seed)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    wall = time.perf_counter() - started

    worst_ms = max(r[-1] for r in matrix)
    lost = sum(r[4] for r in matrix)
    print(f"crash matrix: {len(matrix)} kill points over {total} records  "
          f"lost_committed={lost}  worst recovery {worst_ms:.2f}ms")
    for row in delivery_rows([guarded, unguarded]):
        print("  {:<10} accepted {:>4}  delivered {:>4}  dead {:>3}  "
              "success {:>6.1%}  attempts {:>5}  deferrals {:>5}".format(*row))
    print(f"wall: {wall:.2f}s")

    if args.smoke:
        try:
            assert_gates(failures, guarded, unguarded)
        except AssertionError as exc:
            print(f"FAIL: {exc}")
            return 1
        print("smoke gate passed: zero committed loss, prefix-identical "
              "recovery, breaker beats unguarded delivery")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
