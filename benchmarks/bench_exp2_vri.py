"""E2 — VRI pays off with spatial variability (the MATOPIBA pilot goal).

Claim (paper §I): the MATOPIBA pilot's purpose is "to implement and
evaluate a smart irrigation system based on Variable Rate Irrigation (VRI)
for center pivots in soybean production and save energy used in
irrigation".

Workload: sweep the field's soil-capacity coefficient of variation
(CV ∈ {0, 0.15, 0.30}); at each point run the same season with a
uniform-rate pivot and a VRI pivot (sensor feedback in both — the
difference is purely per-zone vs worst-zone application).

Expected shape: VRI's water saving over uniform is ≈0 on a homogeneous
field and grows monotonically with CV.
"""

from _harness import print_table, record_rows, run_once

from repro.core.pilots import build_matopiba_pilot

CVS = (0.0, 0.15, 0.30)


def _run_experiment():
    results = []
    for cv in CVS:
        water = {}
        energy = {}
        yields = {}
        for label, uniform in (("uniform", True), ("vri", False)):
            runner = build_matopiba_pilot(
                seed=202, rows=4, cols=4, probe_interval_s=3600.0,
                spatial_cv=cv, uniform_pivot=uniform, season_days=90,
            )
            report = runner.run_season()
            water[label] = report.irrigation_m3
            energy[label] = report.total_energy_kwh
            yields[label] = report.relative_yield
        saving = 1.0 - water["vri"] / water["uniform"] if water["uniform"] else 0.0
        results.append((cv, water, energy, yields, saving))
    return results


def test_exp2_vri_vs_variability(benchmark):
    results = run_once(benchmark, _run_experiment)
    headers = ["spatial CV", "uniform m3", "vri m3", "water saving",
               "yield uniform", "yield vri"]
    rows = [
        (cv, round(water["uniform"], 0), round(water["vri"], 0), saving,
         yields["uniform"], yields["vri"])
        for cv, water, energy, yields, saving in results
    ]
    print_table("E2: VRI water saving vs field variability", headers, rows)
    record_rows(benchmark, headers, rows)

    savings = [saving for *_rest, saving in results]
    # Homogeneous field: VRI ≈ uniform, up to the worst-case-sizing noise
    # amplification (uniform applies the max of noisy per-zone needs).
    assert abs(savings[0]) < 0.05
    # Saving grows monotonically with variability and the *variability-
    # attributable* part is material at CV=0.3.
    assert savings[0] < savings[1] < savings[2]
    assert savings[-1] - savings[0] > 0.03
    assert savings[-1] > 0.06
    # Yield held in every arm.
    for _cv, _water, _energy, yields, _saving in results:
        assert yields["vri"] > 0.9
        assert yields["uniform"] > 0.9
