"""E14 — broker routing at scale: indexed vs linear-scan hot paths.

The ROADMAP's north star ("serves heavy traffic ... as fast as the
hardware allows") turns on the two broker hot paths: MQTT publish
routing and context-broker subscription dispatch.  Both historically
scanned every subscription per message — O(subscriptions × messages) —
and both now route through indexes (the topic-segment
:class:`~repro.mqtt.topics.TopicTrie` and the context
:class:`~repro.context.subscriptions.SubscriptionIndex`).

Workload: synthetic fleets of 10 / 100 / 1k / 10k subscriptions in the
shapes the platform actually creates (per-device command filters,
per-farm ``+`` wildcards, a few ``#`` taps; exact-id context
subscriptions with per-type and regex minorities), driving a fixed
message stream through the linear-scan reference and through the index.
Every routed message is checked for *identical delivery decisions* (same
clients, same granted QoS / same subscriptions, same order).

Expected shape: indexed throughput roughly flat in subscription count;
linear throughput decaying ~1/N; speedup ≥ 5× at 10k subscriptions.

Run standalone (CI smoke, small sizes, equivalence only):

    python benchmarks/bench_scale_routing.py --smoke

or the full sweep under pytest-benchmark:

    PYTHONPATH=src python -m pytest benchmarks/bench_scale_routing.py -s
"""

import argparse
import os
import sys
import time

if __name__ == "__main__":  # allow `python benchmarks/bench_scale_routing.py`
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
else:
    from _harness import print_table, record_rows

from repro.context import ContextEntity, Subscription, SubscriptionIndex
from repro.mqtt import TopicTrie, topic_matches

SIZES = (10, 100, 1000, 10000)
SMOKE_SIZES = (10, 100)
MESSAGES = 100
TARGET_SPEEDUP_AT_10K = 5.0


# -- corpus ------------------------------------------------------------------


def mqtt_corpus(n_subscribers):
    """(client_id -> [(filter, qos)]) in the shapes pilots create."""
    n_farms = max(1, n_subscribers // 20)
    subscriptions = {}
    for i in range(n_subscribers):
        farm = f"farm{i % n_farms}"
        client_id = f"c{i:05d}"
        if i % 10 < 7:  # per-device command subscription
            filters = [(f"swamp/{farm}/cmd/dev{i}", 1)]
        elif i % 10 < 9:  # per-farm agent-style wildcard
            filters = [(f"swamp/{farm}/attrs/+", 0), (f"swamp/{farm}/cmdexe/+", 1)]
        else:  # audit tap
            filters = [(f"swamp/{farm}/#", 0)]
        subscriptions[client_id] = filters
    return subscriptions


def mqtt_topics(n_subscribers, count):
    n_farms = max(1, n_subscribers // 20)
    return [
        f"swamp/farm{i % n_farms}/attrs/dev{(i * 7) % max(1, n_subscribers)}"
        for i in range(count)
    ]


def route_linear(subscriptions, topic):
    """The pre-index broker loop: scan every filter of every client."""
    granted = {}
    for client_id, filters in subscriptions.items():
        best = None
        for topic_filter, qos in filters:
            if topic_matches(topic_filter, topic):
                if best is None or qos > best:
                    best = qos
        if best is not None:
            granted[client_id] = best
    return granted


def route_indexed(trie, topic):
    granted = {}
    for client_id, qos in trie.match(topic):
        best = granted.get(client_id)
        if best is None or qos > best:
            granted[client_id] = qos
    return granted


def context_corpus(n_subscriptions):
    """SubscriptionIndex + the same subscriptions as a flat list."""
    index = SubscriptionIndex()
    subs = []
    sink = lambda notification: None  # noqa: E731 - delivery is not measured
    for i in range(n_subscriptions):
        if i % 20 < 16:
            sub = Subscription(sink, entity_id=f"urn:zone:{i}")
        elif i % 20 < 19:
            sub = Subscription(sink, entity_type=f"Type{i % 7}")
        else:
            sub = Subscription(sink, id_pattern=rf"^urn:zone:{i % 100}\d$")
        subs.append(sub)
        index.add(sub)
    return index, subs


def context_entities(n_subscriptions, count):
    return [
        ContextEntity(f"urn:zone:{(i * 13) % max(1, n_subscriptions)}", f"Type{i % 7}")
        for i in range(count)
    ]


def dispatch_linear(subs, entity, changed):
    return [
        s.subscription_id
        for s in sorted(subs, key=lambda s: s.subscription_id)
        if s.active and s.matches_entity(entity) and s.triggered_by(changed)
    ]


def dispatch_indexed(index, entity, changed):
    return [
        s.subscription_id
        for s in sorted(index.candidates(entity), key=lambda s: s.subscription_id)
        if s.active and s.matches_entity(entity) and s.triggered_by(changed)
    ]


# -- measurement -------------------------------------------------------------


def _throughput(fn, work_items):
    started = time.perf_counter()
    for item in work_items:
        fn(item)
    elapsed = time.perf_counter() - started
    return len(work_items) / elapsed if elapsed > 0 else float("inf")


def run_mqtt_scale(sizes, messages=MESSAGES):
    rows = []
    for size in sizes:
        subscriptions = mqtt_corpus(size)
        trie = TopicTrie()
        for client_id, filters in subscriptions.items():
            for topic_filter, qos in filters:
                trie.insert(topic_filter, client_id, qos)
        topics = mqtt_topics(size, messages)
        for topic in topics:  # equivalence gate, off the clock
            linear = route_linear(subscriptions, topic)
            indexed = route_indexed(trie, topic)
            if linear != indexed:
                raise AssertionError(
                    f"mqtt routing divergence at {size} subs for {topic!r}: "
                    f"linear={linear} indexed={indexed}"
                )
        linear_tput = _throughput(lambda t: route_linear(subscriptions, t), topics)
        indexed_tput = _throughput(lambda t: route_indexed(trie, t), topics)
        rows.append((size, linear_tput, indexed_tput, indexed_tput / linear_tput))
    return rows


def run_context_scale(sizes, messages=MESSAGES):
    rows = []
    for size in sizes:
        index, subs = context_corpus(size)
        entities = context_entities(size, messages)
        changed = ["theta"]
        for entity in entities:  # equivalence gate, off the clock
            linear = dispatch_linear(subs, entity, changed)
            indexed = dispatch_indexed(index, entity, changed)
            if linear != indexed:
                raise AssertionError(
                    f"context dispatch divergence at {size} subs for "
                    f"{entity.entity_id}: linear={linear} indexed={indexed}"
                )
        linear_tput = _throughput(lambda e: dispatch_linear(subs, e, changed), entities)
        indexed_tput = _throughput(lambda e: dispatch_indexed(index, e, changed), entities)
        rows.append((size, linear_tput, indexed_tput, indexed_tput / linear_tput))
    return rows


HEADERS = ("subscriptions", "linear msg/s", "indexed msg/s", "speedup")


def test_e14_routing_scale(benchmark):
    from _harness import run_once

    def experiment():
        return run_mqtt_scale(SIZES), run_context_scale(SIZES)

    mqtt_rows, context_rows = run_once(benchmark, experiment)
    print_table("E14a MQTT publish routing", HEADERS, mqtt_rows)
    print_table("E14b context subscription dispatch", HEADERS, context_rows)
    record_rows(benchmark, HEADERS, [("mqtt",) + r for r in mqtt_rows]
                + [("context",) + r for r in context_rows])
    # Shape: indexed routing wins and the win grows with subscription count.
    for rows in (mqtt_rows, context_rows):
        speedups = [r[3] for r in rows]
        assert speedups[-1] >= TARGET_SPEEDUP_AT_10K, (
            f"expected ≥{TARGET_SPEEDUP_AT_10K}x at {rows[-1][0]} subscriptions, "
            f"got {speedups[-1]:.1f}x"
        )
        assert speedups[-1] > speedups[0]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes, equivalence checks only (CI gate)")
    parser.add_argument("--messages", type=int, default=MESSAGES)
    args = parser.parse_args()
    sizes = SMOKE_SIZES if args.smoke else SIZES

    def show(title, rows):
        print(f"\n=== {title} ===")
        print(f"{'subs':>8} {'linear msg/s':>14} {'indexed msg/s':>14} {'speedup':>8}")
        for size, linear, indexed, speedup in rows:
            print(f"{size:>8} {linear:>14.0f} {indexed:>14.0f} {speedup:>7.1f}x")

    try:
        mqtt_rows = run_mqtt_scale(sizes, args.messages)
        context_rows = run_context_scale(sizes, args.messages)
    except AssertionError as divergence:
        print(f"FAIL: {divergence}")
        return 1
    show("E14a MQTT publish routing (trie vs linear scan)", mqtt_rows)
    show("E14b context dispatch (index vs full scan)", context_rows)
    if not args.smoke:
        for rows in (mqtt_rows, context_rows):
            if rows[-1][3] < TARGET_SPEEDUP_AT_10K:
                print(f"FAIL: speedup {rows[-1][3]:.1f}x below target "
                      f"{TARGET_SPEEDUP_AT_10K}x at {rows[-1][0]} subscriptions")
                return 1
    print("\nequivalence checks passed"
          + ("" if args.smoke else "; speedup targets met"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
