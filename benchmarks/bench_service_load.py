"""E19 — Multi-tenant service layer under the standard request load.

The north-facing NGSIv2 layer must hold three properties at once while a
pilot season runs underneath it: *isolation* (an over-quota tenant is
rejected with 429 and nobody else notices), *speed* (cache-assisted
request handling stays cheap), and *determinism* (the same seeded trace
replays to a bit-identical response log — the property every other
experiment's pinned fixtures rely on).

Two entry points:

* pytest-benchmark (``python -m pytest benchmarks/bench_service_load.py -s``):
  runs the standard four-tenant trace against a MATOPIBA season segment,
  files per-tenant outcome counts, latency percentiles, and cache stats
  into ``extra_info``, and asserts shape — quota isolation, cache hits,
  digest stability — rather than absolute speed.
* CLI (``python benchmarks/bench_service_load.py [--smoke]``): ``--smoke``
  runs a short trace twice and enforces the three gates (greedy-tenant
  429s with zero collateral, nonzero cache hit rate, identical response
  digests across the two runs).
"""

import argparse
import os
import sys
import time

if __name__ == "__main__":  # allow `python benchmarks/bench_service_load.py`
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
else:
    from _harness import print_table, record_rows, run_once

from repro.core.run import RunOptions, run
from repro.service.loadgen import standard_trace

SEED = 42
PILOT = "matopiba"
FARM = "matopiba"
GRID = 6  # matopiba is a 6x6 VRI grid
SMOKE_DURATION_S = 600.0
FULL_DURATION_S = 4 * 3600.0
TENANT_HEADERS = ("tenant", "submitted", "ok", "429", "503", "auth")

#: The greedy tenant's quota admits 10 requests/minute against a
#: 2 req/s arrival rate, so most of its traffic must bounce.
GREEDY_MIN_429 = 50
WELL_BEHAVED = ("dash-a", "dash-b", "ops")


def make_trace(seed=SEED, duration_s=SMOKE_DURATION_S):
    entity_ids = [
        f"urn:AgriParcel:{FARM}:{r}-{c}" for r in range(GRID) for c in range(GRID)
    ]
    return standard_trace(
        seed=seed, duration_s=duration_s, entity_ids=entity_ids, farm=FARM
    )


def run_service_load(seed=SEED, duration_s=SMOKE_DURATION_S, days=1):
    """One seeded run: pilot season segment + request trace on top."""
    result = run(RunOptions(
        pilot=PILOT, seed=seed, days=days, serve_trace=make_trace(seed, duration_s),
    ))
    return result.service


def tenant_rows(report):
    return [
        (name, s["submitted"], s["completed"], s["rejected_quota"],
         s["rejected_backlog"], s["rejected_auth"])
        for name, s in report["tenants"].items()
    ]


def assert_isolation(report):
    """The greedy tenant bounces; the well-behaved tenants never do."""
    tenants = report["tenants"]
    assert len(tenants) >= 4  # three well-behaved + one over-quota
    assert tenants["greedy"]["rejected_quota"] >= GREEDY_MIN_429
    for name in WELL_BEHAVED:
        assert tenants[name]["rejected_quota"] == 0, name
        assert tenants[name]["completed"] > 0, name


def test_service_load(benchmark):
    service = run_once(benchmark, lambda: run_service_load())
    report = service.report()
    rows = tenant_rows(report)
    record_rows(benchmark, TENANT_HEADERS, rows)
    latency = report["latency_s"]
    cache = report["cache"]
    benchmark.extra_info["latency_s"] = latency
    benchmark.extra_info["cache_hit_rate"] = cache["hit_rate"]
    benchmark.extra_info["digest"] = report["digest"]
    print_table(
        f"E19 service load: {report['requests']} requests, "
        f"p50 {latency['p50'] * 1e3:.2f}ms p95 {latency['p95'] * 1e3:.2f}ms "
        f"p99 {latency['p99'] * 1e3:.2f}ms, "
        f"cache hit rate {cache['hit_rate']:.1%}",
        TENANT_HEADERS, rows,
    )
    assert_isolation(report)
    assert cache["hits"] > 0
    assert report["by_status"].get("200", 0) > 0
    # Same seed, same trace: the response log digest must not move.
    assert run_service_load().report()["digest"] == report["digest"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"short trace ({SMOKE_DURATION_S:.0f}s) run twice, "
             "gated on isolation + cache + digest stability",
    )
    parser.add_argument("--duration", type=float, default=None,
                        help="trace duration in sim seconds")
    parser.add_argument("--seed", type=int, default=SEED)
    args = parser.parse_args(argv)

    duration = args.duration if args.duration is not None else (
        SMOKE_DURATION_S if args.smoke else FULL_DURATION_S
    )
    started = time.perf_counter()
    service = run_service_load(seed=args.seed, duration_s=duration)
    wall = time.perf_counter() - started
    report = service.report()
    latency = report["latency_s"]
    cache = report["cache"]

    print(f"workload: {PILOT} seed={args.seed} trace_duration={duration:.0f}s "
          f"({report['requests']} requests, {len(report['tenants'])} tenants)")
    for row in tenant_rows(report):
        print("  {:<10} submitted {:>5}  ok {:>5}  429 {:>4}  503 {:>4}  "
              "auth {:>3}".format(*row))
    print(f"latency: p50 {latency['p50'] * 1e3:.3f}ms  "
          f"p95 {latency['p95'] * 1e3:.3f}ms  p99 {latency['p99'] * 1e3:.3f}ms  "
          f"max {latency['max'] * 1e3:.3f}ms")
    print(f"cache: {cache['hits']} hits / {cache['hits'] + cache['misses']} "
          f"lookups ({cache['hit_rate']:.1%})")
    print(f"wall: {wall:.2f}s   digest: {report['digest']}")

    if args.smoke:
        try:
            assert_isolation(report)
        except AssertionError as exc:
            print(f"FAIL: quota isolation violated ({exc})")
            return 1
        if cache["hits"] == 0:
            print("FAIL: response cache never hit")
            return 1
        second = run_service_load(seed=args.seed, duration_s=duration)
        if second.report()["digest"] != report["digest"]:
            print("FAIL: same-seed replay produced a different response digest")
            return 1
        print("smoke gate passed: isolation + cache + bit-identical replay")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
