"""E4 — DoS affects availability; SDN defence restores it (paper §III).

Claim: "A DoS (Denial of Service) attack in the sensors, irrigation
actuators or in the distribution system may affect the availability of the
system" and "SDN ... allows administrators to have a centralized view of
the IoT system and to implement security services".

Workload: a farm whose probes share one narrow gateway uplink with the
broker (the rural topology).  Sweep the attack rate {0, 60, 240 msg/s}
from compromised nodes behind the same gateway; for the strongest flood,
also run with the SDN flood-defence app quarantining top talkers.
Metrics: legitimate telemetry delivery ratio and mean delivery latency
over a 30-minute window.

Expected shape: delivery ratio falls and latency rises with flood rate;
with SDN defence on, the flood is quarantined and delivery recovers to
near the clean baseline.
"""

from _harness import print_table, record_rows, run_once

from repro.devices import DeviceConfig, SoilMoistureProbe, decode_payload
from repro.mqtt import MqttBroker, MqttClient
from repro.network import Network, NetworkNode, RadioModel
from repro.physics import Field, LOAM, SOYBEAN
from repro.security.attacks import DosFlood
from repro.security.sdn import FloodDefenseApp, SdnController
from repro.simkernel import Simulator

FAST = RadioModel("fast", latency_s=0.01, bandwidth_bps=10e6, loss_rate=0.0)
UPLINK = RadioModel("uplink", latency_s=0.03, bandwidth_bps=96_000.0, loss_rate=0.0)
WINDOW_S = 1800.0
PROBES = 6
REPORT_INTERVAL_S = 30.0


def _run_scenario(flood_rate: float, with_sdn: bool, seed: int = 404):
    sim = Simulator(seed=seed)
    net = Network(sim)
    broker = MqttBroker(sim, "broker")
    net.add_node(broker)
    net.add_node(NetworkNode("gw"))
    net.connect("gw", "broker", UPLINK)
    for link in net.links_between("gw", "broker"):
        link.max_backlog_s = 0.5

    controller = None
    defense = None
    if with_sdn:
        controller = SdnController(sim, net, window_s=10.0)
        defense = FloodDefenseApp(controller, threshold_pkts_per_s=8.0, check_interval_s=10.0)

    field = Field("f", 2, 3, LOAM, SOYBEAN, sim.rng.stream("field"))
    probes = []
    for i, zone in enumerate(field):
        probe = SoilMoistureProbe(
            sim, net,
            DeviceConfig(f"p{i}", "farm", "SoilProbe", report_interval_s=REPORT_INTERVAL_S),
            "broker", zone=zone,
        )
        net.connect(probe.client.address, "gw", FAST)
        probe.start()
        probes.append(probe)
    if defense is not None:
        defense.allowlist.update(p.client.address for p in probes)
        defense.allowlist.update({"gw", "broker"})

    received = []
    observer = MqttClient(sim, "obs", "broker")
    net.add_node(observer)
    net.connect("obs", "broker", FAST)
    observer.connect()
    observer.subscribe(
        "swamp/farm/attrs/+",
        handler=lambda t, p, q, r: received.append((sim.now, decode_payload(p))),
    )

    flood = None
    if flood_rate > 0:
        flood = DosFlood(
            sim, net, "broker", FAST, bot_count=3,
            rate_msgs_per_s=flood_rate, payload_bytes=700,
        )
        # Bots are compromised field nodes behind the same gateway.
        for bot in flood.bots:
            net.remove_node(bot.address)
        flood.bots.clear()
        for i in range(3):
            bot = MqttClient(sim, f"bot{i}", "broker", client_id=f"bot-{i}", keepalive_s=0)
            net.add_node(bot)
            net.connect(bot.address, "gw", FAST)
            flood.bots.append(bot)
        flood.start()

    sim.run(until=WINDOW_S)

    sent = sum(p.sent_reports for p in probes)
    delivered = [(t, m) for t, m in received if m and "soilMoisture" in m]
    latencies = [t - m["ts"] for t, m in delivered if "ts" in m]
    return {
        "delivery_ratio": len(delivered) / sent if sent else 0.0,
        "mean_latency_s": sum(latencies) / len(latencies) if latencies else float("inf"),
        "flood_sent": flood.messages_sent if flood else 0,
        "quarantined": len(controller.quarantined) if controller else 0,
    }


def _run_experiment():
    rows = []
    for rate, with_sdn in ((0.0, False), (60.0, False), (240.0, False), (240.0, True)):
        result = _run_scenario(rate, with_sdn)
        rows.append((rate, "yes" if with_sdn else "no", result))
    return rows


def test_exp4_dos_availability(benchmark):
    results = run_once(benchmark, _run_experiment)
    headers = ["flood msg/s", "sdn", "delivery ratio", "mean latency s",
               "flood sent", "quarantined"]
    rows = [
        (rate, sdn, round(r["delivery_ratio"], 3), round(r["mean_latency_s"], 3),
         r["flood_sent"], r["quarantined"])
        for rate, sdn, r in results
    ]
    print_table("E4: telemetry availability under DoS flood", headers, rows)
    record_rows(benchmark, headers, rows)

    clean = results[0][2]
    mid = results[1][2]
    heavy = results[2][2]
    defended = results[3][2]
    # Availability degrades with flood intensity.
    assert clean["delivery_ratio"] > 0.95
    assert heavy["delivery_ratio"] < mid["delivery_ratio"] <= clean["delivery_ratio"] + 1e-9
    assert heavy["delivery_ratio"] < 0.8 * clean["delivery_ratio"]
    assert heavy["mean_latency_s"] > clean["mean_latency_s"]
    # The SDN defence quarantines the bots and restores delivery.
    assert defended["quarantined"] >= 3
    assert defended["delivery_ratio"] > 0.9 * clean["delivery_ratio"]
