"""E9 — Fog keeps the platform available through Internet disconnections.

Claim (paper §III): "The availability of the platform must be provided
even in case of Internet disconnections using local components (fog
computing) to keep the platform running properly."

Workload: the same 18-day dry-season farm under cloud-only and fog
deployments, sweeping the WAN outage duration {0, 3, 7 days} (outage
starts day 5).  Metrics: decisions skipped for missing/stale data,
irrigation commands delivered, relative yield, and — for fog — context
data loss after resync.

Expected shape: cloud-only degrades with outage duration (skipped
decisions grow, commands and yield drop); fog is flat across the sweep
(local loop independent of the WAN) and back-fills the cloud with zero or
bounded loss after the link heals.
"""

from _harness import print_table, record_rows, run_once

from repro.core import DeploymentKind, PilotConfig, PilotRunner
from repro.faults import FaultPlan
from repro.physics import LOAM, SOYBEAN
from repro.physics.weather import BARREIRAS_MATOPIBA
from repro.simkernel.clock import DAY

SEASON_DAYS = 18
OUTAGE_START_DAY = 5


def _outage_plan(outage_days: float):
    """The E9 fault as a declarative plan (same schedule any pilot can load
    from JSON via ``--faults``)."""
    if outage_days <= 0:
        return None
    return FaultPlan(f"e9-wan-outage-{outage_days:g}d").add(
        "link_partition", "wan",
        at_s=OUTAGE_START_DAY * DAY, duration_s=outage_days * DAY,
    )


def _run_scenario(deployment: DeploymentKind, outage_days: float, seed: int = 909):
    runner = PilotRunner(PilotConfig(
        name="e9",
        farm="e9farm",
        climate=BARREIRAS_MATOPIBA,
        crop=SOYBEAN,
        soil=LOAM,
        rows=2, cols=2,
        season_days=SEASON_DAYS,
        start_day_of_year=150,
        initial_theta=0.22,
        deployment=deployment,
        irrigation_kind="valves",
        scheduler_kind="smart",
        seed=seed,
        fault_plan=_outage_plan(outage_days),
    ))
    report = runner.run_season()
    cloud_entities = runner.cloud.context.entity_count()
    return {
        "skipped": report.skipped_no_data + report.skipped_stale,
        "commands": report.commands_sent,
        "water_m3": report.irrigation_m3,
        "yield": report.relative_yield,
        "cloud_entities": cloud_entities,
        "sync_dropped": report.replicator_dropped,
    }


def _run_experiment():
    results = []
    for outage in (0.0, 3.0, 7.0):
        for deployment in (DeploymentKind.CLOUD_ONLY, DeploymentKind.FOG):
            results.append((outage, deployment.value, _run_scenario(deployment, outage)))
    return results


def test_exp9_fog_availability(benchmark):
    results = run_once(benchmark, _run_experiment)
    headers = ["outage d", "deployment", "skipped decisions", "commands",
               "water m3", "rel yield", "cloud entities", "sync dropped"]
    rows = [
        (outage, deployment, r["skipped"], r["commands"], round(r["water_m3"], 1),
         r["yield"], r["cloud_entities"], r["sync_dropped"])
        for outage, deployment, r in results
    ]
    print_table("E9: availability under WAN outage, cloud vs fog", headers, rows)
    record_rows(benchmark, headers, rows)

    by_key = {(o, d): r for o, d, r in results}
    cloud0 = by_key[(0.0, "cloud-only")]
    cloud3 = by_key[(3.0, "cloud-only")]
    cloud7 = by_key[(7.0, "cloud-only")]
    # Cloud-only: degradation grows with outage length.
    assert cloud0["skipped"] == 0
    assert cloud7["skipped"] > cloud3["skipped"] > 0
    assert cloud7["yield"] <= cloud3["yield"] <= cloud0["yield"] + 1e-9
    assert cloud7["yield"] < cloud0["yield"]
    # Fog: flat — the local loop never starves, whatever the outage.
    for outage in (0.0, 3.0, 7.0):
        fog = by_key[(outage, "fog")]
        assert fog["skipped"] == 0
        assert fog["yield"] > 0.99
    # After healing, the fog back-filled the cloud with no overflow loss.
    fog7 = by_key[(7.0, "fog")]
    assert fog7["cloud_entities"] >= 4  # the AgriParcel entities made it
    assert fog7["sync_dropped"] == 0
