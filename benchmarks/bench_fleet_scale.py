"""E17 — fleet sharding: does the multi-farm runner scale, deterministically?

SWAMP is pitched as a *platform* serving many farms at once (§I, §III);
everything before this PR simulated farms one at a time.  The fleet
runner shards a multi-farm scenario across worker processes and merges
the results deterministically.  This experiment measures both halves of
that promise on a 4-farm MATOPIBA fleet:

* **arms**: in-process execution, then multiprocessing with 1, 2 and 4
  workers — same seed, same farms;
* **measurement**: wall-clock and aggregate kernel throughput
  (``events_per_sec`` summed over shards) per shard-count arm;
* **contract checks**: every arm's merged-report fingerprint is
  identical (worker count is a throughput knob, never a semantics
  knob), and a mid-run checkpoint of one shard restores to the same
  end state (the fleet-smoke CI gate).

Expected shape: multiprocessing with N>1 workers beats 1 worker on
multi-core hosts (each shard is an independent kernel), while the
fingerprint never moves.  Spawn-process startup costs mean tiny smoke
fleets may not show speedup — the assertion is on determinism, the
speedup column is informative.

Run standalone (CI smoke, tiny fleet, contract checks only):

    python benchmarks/bench_fleet_scale.py --smoke

or under pytest-benchmark:

    PYTHONPATH=src python -m pytest benchmarks/bench_fleet_scale.py -s
"""

import argparse
import os
import sys

if __name__ == "__main__":  # allow `python benchmarks/bench_fleet_scale.py`
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
else:
    from _harness import print_table, record_rows, run_once

from repro.fleet import FarmSpec, FleetOptions, run_fleet

SEED = 17
FARM_KWARGS = {"rows": 3, "cols": 3, "season_days": 6, "probe_interval_s": 3600.0}
SMOKE_KWARGS = {"rows": 2, "cols": 2, "season_days": 2, "probe_interval_s": 14400.0}
HEADERS = ("arm", "workers", "wall_s", "events", "events_per_sec", "fingerprint")


def _options(executor: str, workers: int, farm_kwargs) -> FleetOptions:
    farms = [FarmSpec("matopiba", kwargs=dict(farm_kwargs)) for _ in range(4)]
    return FleetOptions(farms=farms, seed=SEED, workers=workers,
                        executor=executor)


def run_arms(farm_kwargs):
    """Run every shard-count arm; return (rows, results)."""
    arms = [
        ("inprocess", 1),
        ("multiprocessing", 1),
        ("multiprocessing", 2),
        ("multiprocessing", 4),
    ]
    rows, results = [], []
    for executor, workers in arms:
        result = run_fleet(_options(executor, workers, farm_kwargs))
        events_per_sec = (
            result.events_executed / result.wall_time_s
            if result.wall_time_s > 0 else 0.0
        )
        rows.append((
            executor, workers, round(result.wall_time_s, 3),
            result.events_executed, round(events_per_sec, 1),
            result.fingerprint[:12],
        ))
        results.append(result)
    return rows, results


def check_contracts(results, farm_kwargs) -> list:
    """The invariants every arm must satisfy; returns failure strings."""
    failures = []
    fingerprints = {r.fingerprint for r in results}
    if len(fingerprints) != 1:
        failures.append(f"fingerprints diverge across arms: {sorted(fingerprints)}")
    reference = results[0].report
    for result in results[1:]:
        if result.report != reference:
            failures.append(f"{result.executor} merged report differs")

    # Checkpoint/restore leg of the smoke gate: pause one shard mid-run,
    # checkpoint, restore, run to the end — same report as the shard that
    # ran uninterrupted inside the fleet.
    import dataclasses
    import tempfile

    from repro.core import checkpoint as cp
    from repro.fleet.shard import make_tasks
    from repro.simkernel.clock import DAY

    from repro.core.pilots import PILOT_BUILDERS

    task = make_tasks(_options("inprocess", 1, farm_kwargs))[0]
    runner_kwargs = dict(farm_kwargs)
    runner = PILOT_BUILDERS["matopiba"](seed=task.seed, **runner_kwargs)
    runner.run_until(1 * DAY)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "shard.ck")
        cp.save_checkpoint(
            cp.snapshot(
                runner,
                recipe=cp.RunRecipe(
                    pilot="matopiba",
                    builder_kwargs=dict(seed=task.seed, **runner_kwargs),
                ),
            ),
            path,
        )
        restored_report = cp.restore_and_resume(path)
    fleet_shard_report = results[0].shards[0].report
    if restored_report != fleet_shard_report:
        failures.append("checkpointed shard did not restore to the fleet's state")
    return failures


def test_e17_fleet_scale(benchmark):
    rows, results = run_once(benchmark, lambda: run_arms(FARM_KWARGS))
    failures = check_contracts(results, FARM_KWARGS)
    assert failures == [], failures
    print_table("E17 fleet scaling", HEADERS, rows)
    record_rows(benchmark, HEADERS, rows)
    benchmark.extra_info["fingerprint"] = results[0].fingerprint
    benchmark.extra_info["shards"] = len(results[0].shards)
    # Shape assertion: one fingerprint across every worker count.
    assert len({r.fingerprint for r in results}) == 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny fleet, contract checks only (CI gate)")
    args = parser.parse_args()
    farm_kwargs = SMOKE_KWARGS if args.smoke else FARM_KWARGS

    rows, results = run_arms(farm_kwargs)
    print(f"\n=== E17 fleet scaling (4 farms, seed {SEED}) ===")
    print(f"{'arm':<16} {'workers':>7} {'wall_s':>8} {'events':>10} "
          f"{'events/s':>10}  fingerprint")
    for executor, workers, wall, events, eps, fp in rows:
        print(f"{executor:<16} {workers:>7} {wall:>8.3f} {events:>10,} "
              f"{eps:>10,.0f}  {fp}")

    failures = check_contracts(results, farm_kwargs)
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    print("\ncontract checks passed: one fingerprint across every worker "
          "count; mid-run checkpoint restores to the fleet's state")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
