"""E18 — Kernel throughput on the MATOPIBA season workload.

The ROADMAP's north star is production scale: a season must run as fast
as the hardware allows.  This benchmark pins that down as a single
number — ``events_per_sec`` over the full MATOPIBA pilot (6×6 VRI
soybean, 36 probes at 30-minute sampling, mobile-fog deployment) — and
carries the profiler's top-K breakdown so a regression names its hot
path instead of just tripping a threshold.

Two entry points:

* pytest-benchmark (``python -m pytest benchmarks/bench_kernel_throughput.py -s``):
  runs the full season once, files kernel stats and the top-K profile
  into ``extra_info``, and asserts the workload shape (event volume,
  decision cadence) rather than absolute speed — CI hardware varies.
* CLI (``python benchmarks/bench_kernel_throughput.py [--smoke]``):
  ``--smoke`` runs a short season and enforces EVENTS_PER_SEC_FLOOR, a
  deliberately conservative gate (~5× below the tuned number on the
  development host) that catches order-of-magnitude regressions — an
  accidentally quadratic queue, a de-vectorized soil loop — without
  flaking on slower runners.

History (development host, full season, seed 42): the pre-campaign
kernel ran ~57,400 events/s; after the hot-path campaign (batched
device sweeps, vectorized soil/ET0 memoization, MQTT dispatch/topic
caches, inlined kernel loop) the same workload runs at ≥2× that rate —
the before/after profiler tables live in EXPERIMENTS.md E18.
"""

import argparse
import os
import sys
import time

if __name__ == "__main__":  # allow `python benchmarks/bench_kernel_throughput.py`
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
else:
    from _harness import print_table, record_kernel_stats, record_rows, run_once

from repro.core.pilots import build_matopiba_pilot

SEED = 42
TOP_K = 12
#: Conservative CI floor (events/second) for --smoke: an order of
#: magnitude below the tuned development-host rate, so only structural
#: regressions trip it, not runner jitter.
EVENTS_PER_SEC_FLOOR = 15_000.0
SMOKE_DAYS = 8
PROFILE_HEADERS = ("key", "events", "wall_ms", "ev_per_sim_hour")


def run_workload(season_days=None, profile=False, seed=SEED):
    """Build and run the MATOPIBA workload; returns the finished runner."""
    runner = build_matopiba_pilot(
        seed=seed, season_days=season_days, profile=profile
    )
    runner.run_season()
    return runner


def profile_rows(runner, k=TOP_K):
    if runner.profiler is None:
        return []
    return [
        (e.key, e.count, round(e.wall_s * 1e3, 2), round(e.events_per_sim_hour, 1))
        for e in runner.profiler.top(k)
    ]


def test_kernel_throughput_season(benchmark):
    runner = run_once(benchmark, lambda: run_workload(profile=True))
    sim = runner.sim
    record_kernel_stats(benchmark, sim)
    rows = profile_rows(runner)
    record_rows(benchmark, PROFILE_HEADERS, rows)
    print_table(
        f"E18 kernel throughput: {sim.events_executed:,} events, "
        f"{sim.wall_time_s:.2f}s wall, {sim.events_per_sec():,.0f} ev/s",
        PROFILE_HEADERS, rows,
    )
    # Shape, not speed: the workload itself must not silently shrink —
    # a "faster" kernel that dropped the device fleet proves nothing.
    assert sim.events_executed > 1_000_000
    assert runner.report().decision_cycles >= 100
    assert runner.sweep_scheduler is not None
    assert runner.sweep_scheduler.total_enrolled() >= 36
    assert sim.events_per_sec() > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"short run ({SMOKE_DAYS} days) gated at "
             f"{EVENTS_PER_SEC_FLOOR:,.0f} events/s",
    )
    parser.add_argument("--days", type=int, default=None,
                        help="override season length (days)")
    parser.add_argument("--top", type=int, default=TOP_K,
                        help="profiler keys to print")
    parser.add_argument("--seed", type=int, default=SEED)
    args = parser.parse_args(argv)

    days = args.days if args.days is not None else (
        SMOKE_DAYS if args.smoke else None
    )
    started = time.perf_counter()
    runner = run_workload(season_days=days, profile=True, seed=args.seed)
    wall = time.perf_counter() - started
    sim = runner.sim
    eps = sim.events_per_sec()

    print(f"workload: matopiba seed={args.seed} "
          f"days={days if days is not None else 'full-season'}")
    print(f"events={sim.events_executed:,} kernel_wall={sim.wall_time_s:.2f}s "
          f"total_wall={wall:.2f}s events_per_sec={eps:,.0f}")
    for key, count, wall_ms, rate in profile_rows(runner, args.top):
        print(f"  {key:<44s} {count:>9,} events {wall_ms:>10.2f} ms "
              f"{rate:>9,.1f} ev/simh")

    if args.smoke:
        if eps < EVENTS_PER_SEC_FLOOR:
            print(f"FAIL: {eps:,.0f} events/s below the pinned floor "
                  f"{EVENTS_PER_SEC_FLOOR:,.0f}")
            return 1
        print(f"smoke gate passed: {eps:,.0f} >= {EVENTS_PER_SEC_FLOOR:,.0f} events/s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
