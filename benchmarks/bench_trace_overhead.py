"""E16 — tracing overhead: what does end-to-end causality cost?

The tracing design (DESIGN.md) promises two things at once: tracing off
is *free* — the ``NULL_TRACER`` run is bit-identical to the seed
fixtures — and tracing on is *cheap enough* to leave enabled during
investigation runs.  This experiment quantifies both on the same small
MATOPIBA pilot:

* **arms**: untraced baseline, full tracing (sample_rate 1.0), sampled
  tracing (sample_rate 0.1), and tracing+profiling;
* **measurement**: kernel wall-clock per arm (median of repeats), span
  counts, and the per-span cost implied by the delta;
* **contract checks**: every arm's season report is bit-identical to the
  baseline's (tracing never perturbs the simulation), and the sampled
  arm stores strictly fewer spans than the full arm.

Expected shape: full tracing costs a modest constant factor (well under
~2x on this workload), sampling reduces the cost roughly with the rate,
and reports never change.

Run standalone (CI smoke, 1 repeat, contract checks only):

    python benchmarks/bench_trace_overhead.py --smoke

or under pytest-benchmark:

    PYTHONPATH=src python -m pytest benchmarks/bench_trace_overhead.py -s
"""

import argparse
import dataclasses
import os
import sys
import time

if __name__ == "__main__":  # allow `python benchmarks/bench_trace_overhead.py`
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
else:
    from _harness import print_table, record_rows, run_once

from repro.core.run import RunOptions, run

PILOT_KWARGS = {"rows": 3, "cols": 3, "season_days": 4}
SEED = 16
SAMPLED_RATE = 0.1
HEADERS = ("arm", "wall_s", "spans", "overhead")


def _arm_options(arm: str) -> RunOptions:
    options = RunOptions(pilot="matopiba", seed=SEED,
                         pilot_kwargs=dict(PILOT_KWARGS))
    if arm == "traced":
        options.trace = True
    elif arm == "sampled":
        options.trace = True
        options.trace_sample_rate = SAMPLED_RATE
    elif arm == "traced+profiled":
        options.trace = True
        options.profile = True
    return options


def run_arms(repeats: int):
    """Run every arm ``repeats`` times; return (rows, reports, spans)."""
    arms = ("untraced", "traced", "sampled", "traced+profiled")
    walls = {arm: [] for arm in arms}
    reports = {}
    span_counts = {}
    for _ in range(repeats):
        for arm in arms:
            started = time.perf_counter()
            result = run(_arm_options(arm))
            walls[arm].append(time.perf_counter() - started)
            reports[arm] = result.report
            span_counts[arm] = len(result.runner.tracer)
    rows = []
    baseline = sorted(walls["untraced"])[len(walls["untraced"]) // 2]
    for arm in arms:
        wall = sorted(walls[arm])[len(walls[arm]) // 2]
        rows.append((arm, round(wall, 3), span_counts[arm], f"{wall / baseline:.2f}x"))
    return rows, reports, span_counts


def check_contracts(reports, span_counts):
    """The invariants every arm must satisfy; returns failure strings."""
    failures = []
    baseline = dataclasses.asdict(reports["untraced"])
    for arm, report in reports.items():
        if dataclasses.asdict(report) != baseline:
            failures.append(f"{arm}: report differs from untraced baseline")
    if span_counts["untraced"] != 0:
        failures.append("untraced arm stored spans")
    if not 0 < span_counts["sampled"] < span_counts["traced"]:
        failures.append(
            f"sampling did not thin spans: sampled={span_counts['sampled']} "
            f"full={span_counts['traced']}"
        )
    return failures


def test_e16_trace_overhead(benchmark):
    rows, reports, span_counts = run_once(benchmark, lambda: run_arms(repeats=3))
    failures = check_contracts(reports, span_counts)
    assert failures == [], failures
    print_table("E16 tracing overhead", HEADERS, rows)
    record_rows(benchmark, HEADERS, rows)
    # Shape assertion only: tracing must not blow the run up wholesale.
    overhead = float(rows[1][3].rstrip("x"))
    assert overhead < 3.0, f"full tracing overhead {overhead}x"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="one repeat, contract checks only (CI gate)")
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args()
    repeats = 1 if args.smoke else args.repeats

    rows, reports, span_counts = run_arms(repeats)
    print(f"\n=== E16 tracing overhead (median of {repeats}) ===")
    print(f"{'arm':<16} {'wall_s':>8} {'spans':>8} {'overhead':>9}")
    for arm, wall, spans, overhead in rows:
        print(f"{arm:<16} {wall:>8.3f} {spans:>8} {overhead:>9}")

    failures = check_contracts(reports, span_counts)
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    print("\ncontract checks passed: reports bit-identical across arms, "
          "sampling thins spans")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
