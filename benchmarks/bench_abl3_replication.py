"""Ablation A3 — store-and-forward replication tuning.

DESIGN.md's fog replicator has two knobs: batch size and sync interval.
This ablation measures their effect on the metric E9 cares about — how
fast the cloud reconverges after a healed partition — and on wire cost.

Workload: a fog context broker receiving 4 updates/minute; a 6-hour WAN
partition; sweep (batch size × sync interval); measure backlog at heal,
time from heal to full convergence, batches sent and bytes on the wire.

Measured shape: the ack-paced drain (a batch is sent the moment the
previous one is acked) means even singleton batches *eventually* catch up
— the design choice that matters is not "can it converge" but the cost
profile: batch=1 needs ~16× longer to reconverge and ~70% more wire bytes
(framing overhead) than batch=100, while the sync interval only sets the
steady-state latency floor.  DESIGN.md's defaults (batch 50 / 30 s) sit on
the flat part of both curves.
"""

from _harness import print_table, record_rows, run_once

from repro.context import ContextBroker
from repro.fog.replication import CloudSyncTarget, Replicator
from repro.network import Network, RadioModel
from repro.simkernel import Simulator
from repro.simkernel.clock import HOUR

WAN = RadioModel("wan", latency_s=0.05, bandwidth_bps=2_000_000.0, loss_rate=0.0)
UPDATE_INTERVAL_S = 15.0
PARTITION_S = 6 * HOUR
RUN_S = 10 * HOUR


def _run_cell(batch_size: int, sync_interval_s: float, seed: int = 2323):
    sim = Simulator(seed=seed)
    net = Network(sim)
    fog = ContextBroker(sim, "fog")
    cloud = CloudBroker = ContextBroker(sim, "cloud")
    CloudSyncTarget(sim, net, "cloud:sync", cloud)
    replicator = Replicator(
        sim, net, "fog:sync", fog, "cloud:sync",
        sync_interval_s=sync_interval_s, batch_size=batch_size,
        max_backlog=100_000,
    )
    net.connect("fog:sync", "cloud:sync", WAN)

    counter = {"n": 0}

    def updater():
        while True:
            yield UPDATE_INTERVAL_S
            counter["n"] += 1
            fog.ensure_entity(f"e{counter['n'] % 40}", "T", {"v": counter["n"]})

    sim.spawn(updater(), "updater")
    sim.schedule_at(1 * HOUR, lambda: net.partition("fog:sync", "cloud:sync"))
    sim.schedule_at(1 * HOUR + PARTITION_S, lambda: net.heal("fog:sync", "cloud:sync"))

    backlog_at_heal = {}

    def snapshot_backlog():
        backlog_at_heal["value"] = replicator.backlog_depth

    sim.schedule_at(1 * HOUR + PARTITION_S - 1.0, snapshot_backlog)

    convergence = {}

    def watch_convergence():
        while True:
            yield 10.0
            if sim.now > 1 * HOUR + PARTITION_S and "t" not in convergence:
                if replicator.backlog_depth == 0:
                    convergence["t"] = sim.now - (1 * HOUR + PARTITION_S)

    sim.spawn(watch_convergence(), "watch")
    sim.run(until=RUN_S)

    wire_bytes = sum(
        link.stats.bytes_delivered for link in net.links.values()
    )
    return {
        "backlog_at_heal": backlog_at_heal.get("value", -1),
        "convergence_s": convergence.get("t", float("inf")),
        "batches_sent": replicator.batches_sent,
        "wire_kb": wire_bytes / 1024.0,
        "synced": replicator.updates_synced,
    }


def _run_experiment():
    results = {}
    for batch_size in (1, 20, 100):
        for interval in (10.0, 60.0):
            results[(batch_size, interval)] = _run_cell(batch_size, interval)
    return results


def test_abl3_replication_tuning(benchmark):
    results = run_once(benchmark, _run_experiment)
    headers = ["batch size", "interval s", "backlog@heal", "converge s",
               "batches", "wire KB"]
    rows = [
        (batch, int(interval), r["backlog_at_heal"],
         "∞" if r["convergence_s"] == float("inf") else round(r["convergence_s"], 1),
         r["batches_sent"], round(r["wire_kb"], 1))
        for (batch, interval), r in sorted(results.items())
    ]
    print_table("A3: replication knobs vs resync behaviour", headers, rows)
    record_rows(benchmark, headers, rows)

    # ~1440 updates queue during the 6 h partition in every cell.
    for r in results.values():
        assert r["backlog_at_heal"] > 1000
    # Batch size dominates convergence: singleton batches take an order
    # of magnitude longer to drain the backlog than 20+ batches.
    assert (results[(100, 10.0)]["convergence_s"]
            <= results[(20, 10.0)]["convergence_s"]
            < 0.25 * results[(1, 10.0)]["convergence_s"])
    # Ack-paced drain: after the heal the interval barely matters for the
    # big-batch configs.
    fast = results[(100, 10.0)]["convergence_s"]
    slow = results[(100, 60.0)]["convergence_s"]
    assert slow < fast + 120.0
    # Everything converges (ack-paced draining outruns the update rate),
    # but singletons pay heavily in framing: more batches, more bytes.
    for r in results.values():
        assert r["convergence_s"] != float("inf")
    assert results[(1, 60.0)]["wire_kb"] > 1.5 * results[(100, 60.0)]["wire_kb"]
    assert results[(1, 10.0)]["batches_sent"] > 1.5 * results[(100, 10.0)]["batches_sent"]