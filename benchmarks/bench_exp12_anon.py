"""E12 — Anonymization trades re-identification risk against utility.

Claim (paper §III): "Data anonymization is another helpful technique for
data governance" — SWAMP farms share telemetry with water authorities and
researchers, but farm-level yield data joined with public registries
re-identifies producers (the commodity-market threat again).

Workload: a synthetic regional dataset of 60 farm-season records
(location, area, crop as quasi-identifiers; yield as payload) whose
structure mirrors the pilot regions: many similar soybean farms, a few
highly identifiable specialty producers.  Sweep k ∈ {1, 2, 3, 5}; the
adversary holds every farm's generalized quasi-identifiers.

Metrics per k: records released, re-identification rate, mean-yield
utility error.

Expected shape: re-identification falls monotonically (steeply from k=1
to k=2); utility error and suppression grow with k — the governance
dial the platform exposes.
"""

from _harness import print_table, record_rows

from repro.security.anonymization import (
    Anonymizer,
    reidentification_rate,
    utility_error,
)
from repro.simkernel.rng import RngRegistry

QUASI = ["lat", "lon", "area_ha", "crop"]


def _regional_dataset(seed=1212):
    rng = RngRegistry(seed).stream("region")
    records = []
    # 40 broadly similar soybean farms in one MATOPIBA-like cluster.
    for i in range(40):
        records.append({
            "farm": f"soy-{i}",
            "lat": -12.0 - rng.uniform(0.0, 0.4),
            "lon": -45.0 - rng.uniform(0.0, 0.4),
            "area_ha": rng.uniform(300.0, 900.0),
            "crop": "soybean",
            "yield_t_ha": rng.bounded_gauss(3.8, 0.4, 2.5, 5.0),
        })
    # 12 mid-size tomato farms in a second cluster.
    for i in range(12):
        records.append({
            "farm": f"tomato-{i}",
            "lat": 44.6 + rng.uniform(0.0, 0.2),
            "lon": 10.8 + rng.uniform(0.0, 0.2),
            "area_ha": rng.uniform(60.0, 190.0),
            "crop": "tomato",
            "yield_t_ha": rng.bounded_gauss(80.0, 8.0, 50.0, 110.0),
        })
    # 8 highly identifiable specialty farms (unique crop/region combos).
    specials = [("grape", -22.2, -46.7), ("lettuce", 37.6, -1.0),
                ("grape", -22.5, -46.9), ("lettuce", 37.7, -0.9),
                ("olive", 37.9, -1.2), ("almond", 37.8, -1.4),
                ("citrus", 38.0, -0.8), ("rice", 39.5, -0.5)]
    for i, (crop, lat, lon) in enumerate(specials):
        records.append({
            "farm": f"special-{i}",
            "lat": lat, "lon": lon,
            "area_ha": rng.uniform(5.0, 45.0),
            "crop": crop,
            "yield_t_ha": rng.bounded_gauss(8.0, 2.0, 2.0, 15.0),
        })
    return records


def test_exp12_anonymization(benchmark):
    records = _regional_dataset()

    def sweep():
        results = []
        for k in (1, 2, 3, 5):
            anonymizer = Anonymizer(
                secret_salt=b"regional-release",
                quasi_identifiers=QUASI,
                coordinate_cell=0.25,
            )
            adversary = [anonymizer._generalize_record(r) for r in records]
            released = anonymizer.anonymize(records, k=k)
            results.append({
                "k": k,
                "released": len(released),
                "suppressed": anonymizer.suppressed_count,
                "reid_rate": reidentification_rate(released, adversary, QUASI),
                "utility_err": utility_error(records, released, "yield_t_ha") or 0.0,
            })
        return results

    results = benchmark(sweep)
    headers = ["k", "released", "suppressed", "re-id rate", "utility error"]
    rows = [(r["k"], r["released"], r["suppressed"],
             round(r["reid_rate"], 3), round(r["utility_err"], 4)) for r in results]
    print_table("E12: k-anonymity risk/utility trade-off", headers, rows)
    record_rows(benchmark, headers, rows)

    by_k = {r["k"]: r for r in results}
    # Unprotected release: the specialty farms are sitting ducks.
    assert by_k[1]["reid_rate"] >= 0.1
    assert by_k[1]["released"] == len(records)
    # Monotone risk reduction with k; k>=2 eliminates unique matches.
    rates = [by_k[k]["reid_rate"] for k in (1, 2, 3, 5)]
    assert all(a >= b for a, b in zip(rates, rates[1:]))
    assert by_k[2]["reid_rate"] == 0.0
    # The price: suppression and utility error grow with k.
    assert by_k[5]["suppressed"] >= by_k[2]["suppressed"] > 0
    assert by_k[5]["utility_err"] >= by_k[2]["utility_err"]
    assert by_k[2]["utility_err"] < 0.25  # but the release stays useful