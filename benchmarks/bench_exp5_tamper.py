"""E5 — Sensor tampering causes wrong irrigation; detection contains it.

Claim (paper §III): "Changes in the values of some sensors are also a
threat that may cause systems or decision makers to take wrong actions and
compromise months of efforts and production goals."

Workload: a 30-day valve-irrigated dry-season farm.  On day 10 an attacker
biases one third of the soil probes.  Sweep the bias:

* ``+0.12`` (reads *wet*) — the scheduler under-irrigates → crop stress;
* ``-0.12`` (reads *dry*) — the scheduler over-irrigates → water waste.

Each bias runs with detection off and on (quarantine wired to the agent).

Expected shape: positive bias cuts the tampered zones' water and yield;
negative bias inflates total water; with detection on, the tampered
probes are quarantined within hours and the damage shrinks toward the
clean baseline.
"""

from _harness import print_table, record_rows, run_once

from repro.core import DeploymentKind, PilotConfig, PilotRunner, SecurityConfig
from repro.physics import LOAM, SOYBEAN
from repro.physics.weather import BARREIRAS_MATOPIBA
from repro.security.attacks import SensorTamper, TamperMode
from repro.simkernel.clock import DAY

SEASON_DAYS = 30
ATTACK_DAY = 10


def _build(detection: bool, seed: int = 505) -> PilotRunner:
    return PilotRunner(PilotConfig(
        name="e5",
        farm="e5farm",
        climate=BARREIRAS_MATOPIBA,
        crop=SOYBEAN,
        soil=LOAM,
        rows=3, cols=3,
        season_days=SEASON_DAYS,
        start_day_of_year=150,
        initial_theta=0.22,
        deployment=DeploymentKind.FOG,
        irrigation_kind="valves",
        scheduler_kind="smart",
        probe_interval_s=1800.0,
        security=SecurityConfig(detection=detection, detection_training_s=8 * DAY),
        seed=seed,
    ))


def _run_scenario(bias: float, detection: bool):
    runner = _build(detection)
    tampered_zone_ids = []
    if bias != 0.0:
        zones = list(runner.field)[:3]  # one third of the 9 zones
        for zone in zones:
            probe = runner.probes[zone.zone_id]
            tamper = SensorTamper(runner.sim, probe, "soilMoisture",
                                  TamperMode.BIAS, magnitude=bias)
            runner.sim.schedule_at(ATTACK_DAY * DAY, tamper.start)
            tampered_zone_ids.append(zone.zone_id)
    report = runner.run_season()
    tampered_water = sum(
        runner.field.zone_by_id(z).water_balance.cum_irrigation_mm
        for z in tampered_zone_ids
    ) if tampered_zone_ids else 0.0
    tampered_yield = (
        sum(runner.field.zone_by_id(z).yield_tracker.relative_yield
            for z in tampered_zone_ids) / len(tampered_zone_ids)
        if tampered_zone_ids else None
    )
    return {
        "total_water_m3": report.irrigation_m3,
        "tampered_zones_water_mm": tampered_water,
        "tampered_zones_yield": tampered_yield,
        "overall_yield": report.relative_yield,
        "quarantined": report.quarantined_devices,
    }


def _run_experiment():
    rows = []
    rows.append(("clean", "n/a", _run_scenario(0.0, detection=False)))
    for bias in (0.12, -0.12):
        for detection in (False, True):
            rows.append((f"{bias:+.2f}", "on" if detection else "off",
                         _run_scenario(bias, detection)))
    return rows


def test_exp5_sensor_tamper(benchmark):
    results = run_once(benchmark, _run_experiment)
    headers = ["bias", "detection", "total water m3", "tampered-zone water mm",
               "tampered-zone yield", "overall yield", "quarantined"]
    rows = [
        (bias, det, round(r["total_water_m3"], 1),
         round(r["tampered_zones_water_mm"], 1),
         "-" if r["tampered_zones_yield"] is None else round(r["tampered_zones_yield"], 3),
         r["overall_yield"], r["quarantined"])
        for bias, det, r in results
    ]
    print_table("E5: sensor-bias attack, 30-day window", headers, rows)
    record_rows(benchmark, headers, rows)

    by_key = {(bias, det): r for bias, det, r in results}
    clean = by_key[("clean", "n/a")]
    wet_off = by_key[("+0.12", "off")]
    wet_on = by_key[("+0.12", "on")]
    dry_off = by_key[("-0.12", "off")]
    dry_on = by_key[("-0.12", "on")]

    # Reads-wet bias starves the tampered zones.
    assert wet_off["tampered_zones_yield"] < 0.97
    assert wet_off["overall_yield"] < clean["overall_yield"]
    # Reads-dry bias wastes water.
    assert dry_off["total_water_m3"] > 1.1 * clean["total_water_m3"]
    # Detection quarantines the tampered probes...
    assert wet_on["quarantined"] >= 3
    assert dry_on["quarantined"] >= 3
    # ...and contains the waste relative to undefended.
    assert dry_on["total_water_m3"] < dry_off["total_water_m3"]
    assert wet_off["quarantined"] == 0
