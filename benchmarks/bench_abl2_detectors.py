"""Ablation A2 — which detector catches which tamper signature.

DESIGN.md maps detectors to tamper signatures (range→gross bias,
CUSUM→slow drift, stuck-window→frozen sensors...).  This ablation verifies
the map by *removing* one detector class at a time from the ensemble and
replaying identical tampered traces: if the claimed specialist is the only
detector carrying a signature, removing it should erase detection of that
signature while leaving the others intact.

Expected shape: removing CUSUM erases drift detection; removing the
stuck-window detector erases frozen-sensor detection; bias stays covered
even without the z-score (range backs it up) — redundancy where it was
designed, specialisation where it was designed.
"""

from _harness import print_table, record_rows, run_once

from repro.context import ContextBroker
from repro.security.detection import AlertManager, DetectionEngine
from repro.security.detection.engine import default_detector_bank
from repro.simkernel import Simulator
from repro.simkernel.rng import RngRegistry

TRAIN_SAMPLES = 300
ATTACK_SAMPLES = 200
DT_S = 600.0


def _make_trace(mode: str, seed: int):
    """Clean training values followed by tampered values."""
    rng = RngRegistry(seed).stream(f"trace:{mode}")
    clean = [rng.gauss(0.25, 0.01) for _ in range(TRAIN_SAMPLES)]
    attacked = []
    for i in range(ATTACK_SAMPLES):
        base = rng.gauss(0.25, 0.01)
        if mode == "clean":
            attacked.append(base)
        elif mode == "bias":
            attacked.append(base + 0.08)
        elif mode == "drift":
            attacked.append(base + 0.0006 * i)
        elif mode == "stuck":
            attacked.append(0.2512)
        else:
            raise ValueError(mode)
    return clean, attacked


def _bank_without(excluded: str):
    def factory():
        bank = default_detector_bank()
        bank.pop(excluded, None)
        return bank

    return factory


def _run_cell(mode: str, bank_label: str, factory, seed: int = 2222):
    sim = Simulator(seed=seed)
    context = ContextBroker(sim)
    manager = AlertManager(quarantine_threshold=10**9)  # count alerts only
    engine = DetectionEngine(
        sim, context, alert_manager=manager,
        training_window_s=TRAIN_SAMPLES * DT_S,
        detector_factory=factory,
    )
    context.create_entity("e1", "SoilProbe")
    clean, attacked = _make_trace(mode, seed)
    for i, value in enumerate(clean + attacked):
        sim.schedule_at(
            i * DT_S,
            lambda v=value: context.update_attributes(
                "e1", {"soilMoisture": v},
                metadata={"soilMoisture": {"sourceDevice": "p1"}},
            ),
        )
    sim.run()
    return len(manager.alerts)


def _run_experiment():
    banks = {
        "full": default_detector_bank,
        "-cusum": _bank_without("cusum"),
        "-stuck": _bank_without("stuck"),
        "-zscore": _bank_without("zscore"),
        "-range": _bank_without("range"),
    }
    results = {}
    for mode in ("clean", "bias", "drift", "stuck"):
        for bank_label, factory in banks.items():
            results[(mode, bank_label)] = _run_cell(mode, bank_label, factory)
    return results


def test_abl2_detector_ablation(benchmark):
    results = run_once(benchmark, _run_experiment)
    banks = ["full", "-cusum", "-stuck", "-zscore", "-range"]
    headers = ["tamper \\ bank"] + banks
    rows = [
        [mode] + [results[(mode, bank)] for bank in banks]
        for mode in ("clean", "bias", "drift", "stuck")
    ]
    print_table("A2: alerts by tamper signature × detector ablation", headers, rows)
    record_rows(benchmark, headers, rows)

    # Clean traces stay quiet under every bank.
    for bank in banks:
        assert results[("clean", bank)] <= 3, bank
    # Full ensemble covers every signature.
    for mode in ("bias", "drift", "stuck"):
        assert results[(mode, "full")] >= 10, mode
    # CUSUM is the drift specialist: removing it degrades drift detection
    # substantially (the z-score picks up the late, large-offset phase,
    # so coverage halves rather than vanishes).
    assert results[("drift", "-cusum")] < 0.6 * results[("drift", "full")]
    # The stuck-window detector *exclusively* carries the frozen-sensor
    # signature (a frozen value inside the normal band fools everything
    # else) — removing it erases detection entirely.
    assert results[("stuck", "-stuck")] == 0
    assert results[("stuck", "full")] > 50
    # Bias is redundantly covered: losing z-score barely matters (range is
    # the workhorse); losing range still leaves a third of the alerts.
    assert results[("bias", "-zscore")] >= 0.8 * results[("bias", "full")]
    assert results[("bias", "-range")] >= 0.3 * results[("bias", "full")]