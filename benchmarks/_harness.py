"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one experiment from EXPERIMENTS.md (the paper
itself publishes no tables/figures — see DESIGN.md).  Conventions:

* heavy end-to-end experiments run exactly once via
  :func:`run_once` (pytest-benchmark pedantic mode) — the *measurement* is
  the experiment output, not the wall-clock;
* every benchmark prints its result table (visible with ``-s``) and files
  the rows into ``benchmark.extra_info`` so they survive in the JSON;
* each asserts the qualitative *shape* of the result (who wins, direction
  of the trend), never absolute numbers.
"""

import time
from typing import Any, Callable, Dict, Iterable, List, Sequence


def run_once(benchmark, fn: Callable[[], Any]) -> Any:
    """Run an expensive experiment exactly once under the benchmark timer.

    The experiment's wall-clock time is also filed into
    ``benchmark.extra_info["wall_clock_s"]`` so the JSON output carries it
    even when the pytest-benchmark timer columns are elided.
    """

    def timed() -> Any:
        started = time.perf_counter()
        result = fn()
        benchmark.extra_info["wall_clock_s"] = round(
            time.perf_counter() - started, 6
        )
        return result

    return benchmark.pedantic(timed, rounds=1, iterations=1, warmup_rounds=0)


def record_kernel_stats(benchmark, sim) -> None:
    """File the kernel's throughput numbers into ``benchmark.extra_info``.

    ``sim`` is a :class:`repro.simkernel.simulator.Simulator` (or anything
    exposing ``events_executed`` / ``wall_time_s`` / ``events_per_sec()``).
    Benchmarks that drive a pilot call this after the run so regressions in
    raw kernel throughput show up alongside the experiment results.
    """
    benchmark.extra_info["kernel"] = {
        "events_executed": sim.events_executed,
        "wall_time_s": round(sim.wall_time_s, 6),
        "events_per_sec": round(sim.events_per_sec(), 1),
    }


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    rows = [list(r) for r in rows]
    widths = [
        max(len(str(h)), *(len(_fmt(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    print(f"\n=== {title} ===")
    print(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("-+-".join("-" * w for w in widths))
    for row in rows:
        print(" | ".join(_fmt(v).ljust(w) for v, w in zip(row, widths)))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def record_rows(benchmark, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    benchmark.extra_info["headers"] = list(headers)
    benchmark.extra_info["rows"] = [[_fmt(v) for v in row] for row in rows]
