"""E3 — One platform, four heterogeneous pilots (paper §I & §IV).

Claim: "The same underlying SWAMP platform can be customized to different
pilots considering different countries, climate, soil, and crops."

Workload: run all four pilots (CBEC, Intercrop, Guaspari, MATOPIBA) for
the same 20-day window through the identical pipeline code and report
per-pilot liveness: telemetry processed, decisions taken, commands issued,
water moved.

Expected shape: every pilot's pipeline is live (all counters > 0), while
the *magnitudes* differ with the pilots' character (semi-arid Intercrop
and dry-season MATOPIBA irrigate more per hectare than rain-fed-ish CBEC;
deficit-managed Guaspari irrigates least).
"""

from _harness import print_table, record_rows, run_once

from repro.core.pilots import (
    build_cbec_pilot,
    build_guaspari_pilot,
    build_intercrop_pilot,
    build_matopiba_pilot,
)

DAYS = 20


def _run_experiment():
    runners = {
        "cbec": build_cbec_pilot(seed=303)[0],
        "intercrop": build_intercrop_pilot(seed=303)[0],
        "guaspari": build_guaspari_pilot(seed=303),
        "matopiba": build_matopiba_pilot(seed=303, rows=4, cols=4, probe_interval_s=3600.0),
    }
    reports = {}
    for name, runner in runners.items():
        runner.run_days(DAYS)
        reports[name] = runner.report()
    return reports


def test_exp3_four_pilots_one_platform(benchmark):
    reports = run_once(benchmark, _run_experiment)
    headers = ["pilot", "measures", "decisions", "commands", "water m3",
               "mm/ha", "yield-so-far"]
    rows = [
        (
            name,
            report.measures_processed,
            report.decisions,
            report.commands_sent,
            round(report.irrigation_m3, 1),
            round(report.irrigation_mm_per_ha, 1),
            report.relative_yield,
        )
        for name, report in sorted(reports.items())
    ]
    print_table(f"E3: all four pilots, first {DAYS} days", headers, rows)
    record_rows(benchmark, headers, rows)

    for name, report in reports.items():
        assert report.measures_processed > 100, f"{name}: telemetry dead"
        assert report.decision_cycles > 0, f"{name}: scheduler dead"
        assert report.decisions > 0, f"{name}: no decisions"
    # Heterogeneity: the dry pilots irrigate more per hectare than CBEC.
    assert reports["intercrop"].irrigation_mm_per_ha > reports["cbec"].irrigation_mm_per_ha
    assert reports["matopiba"].irrigation_mm_per_ha > reports["guaspari"].irrigation_mm_per_ha
