"""Integration tests for the pilot composition layer.

Full seasons are exercised by the benchmarks; here we run *short* windows
(a couple of simulated weeks) that still traverse the entire pipeline.
"""

import pytest

from repro.core import (
    DeploymentKind,
    PilotConfig,
    PilotRunner,
    SecurityConfig,
    build_cbec_pilot,
    build_guaspari_pilot,
    build_intercrop_pilot,
    build_matopiba_pilot,
)
from repro.physics import LOAM, SOYBEAN
from repro.physics.weather import BARREIRAS_MATOPIBA
from repro.simkernel.clock import DAY


def small_config(**overrides):
    defaults = dict(
        name="test-pilot",
        farm="testfarm",
        climate=BARREIRAS_MATOPIBA,
        crop=SOYBEAN,
        soil=LOAM,
        rows=2, cols=2,
        spatial_cv=0.1,
        season_days=10,
        start_day_of_year=150,  # dry season: irrigation will trigger
        initial_theta=0.20,
        deployment=DeploymentKind.FOG,
        irrigation_kind="valves",
        scheduler_kind="smart",
        seed=3,
    )
    defaults.update(overrides)
    return PilotConfig(**defaults)


class TestPilotRunnerFog:
    def test_short_season_closes_the_loop(self):
        runner = PilotRunner(small_config())
        report = runner.run_season()
        assert report.season_days == 10
        assert report.measures_processed > 50          # telemetry flowed
        assert report.decisions > 0                    # scheduler saw data
        assert report.commands_sent > 0                # actuation happened
        assert report.irrigation_m3 > 0                # water landed
        assert report.replicator_synced > 0            # cloud got a copy

    def test_context_entities_materialized(self):
        runner = PilotRunner(small_config())
        runner.run_days(2)
        parcels = runner.context.query(entity_type="AgriParcel")
        assert len(parcels) == 4
        assert all(isinstance(p.get("soilMoisture"), float) for p in parcels)
        # And replicated to the cloud tier.
        assert runner.cloud.context.query(entity_type="AgriParcel")

    def test_probe_coverage_fraction(self):
        runner = PilotRunner(small_config(probe_coverage=0.5))
        assert len(runner.probes) == 2
        runner.run_days(2)
        assert len(runner.context.query(entity_type="AgriParcel")) == 2

    def test_sensed_vs_truth_alignment(self):
        runner = PilotRunner(small_config())
        runner.run_days(3)
        for zone in runner.field:
            entity = runner.context.get_entity(runner.zone_entity_id(zone))
            assert entity.get("soilMoisture") == pytest.approx(zone.theta, abs=0.05)

    def test_report_shape(self):
        runner = PilotRunner(small_config())
        report = runner.run_season()
        assert report.total_energy_kwh == report.pump_kwh + report.pivot_move_kwh
        assert 0.0 <= report.relative_yield <= 1.0


class TestPilotRunnerCloud:
    def test_cloud_deployment_routes_through_gateway(self):
        runner = PilotRunner(small_config(deployment=DeploymentKind.CLOUD_ONLY))
        runner.run_days(2)
        assert runner.fog is None
        assert runner.replicator is None
        parcels = runner.cloud.context.query(entity_type="AgriParcel")
        assert len(parcels) == 4

    def test_wan_partition_starves_cloud_decisions(self):
        blocked = PilotRunner(small_config(deployment=DeploymentKind.CLOUD_ONLY, seed=7))
        blocked.schedule_wan_partition(start_s=1 * DAY, duration_s=8 * DAY)
        report_blocked = blocked.run_season()

        healthy = PilotRunner(small_config(deployment=DeploymentKind.CLOUD_ONLY, seed=7))
        report_healthy = healthy.run_season()
        # During the partition the cloud sees no telemetry: decisions are
        # skipped for staleness/no-data.  (Clients reconnect after the
        # heal, so late commands may still go out.)
        skipped = report_blocked.skipped_stale + report_blocked.skipped_no_data
        assert skipped >= 8  # ~4 zones × several starved daily cycles
        assert report_blocked.commands_sent <= report_healthy.commands_sent

    def test_fog_deployment_survives_wan_partition(self):
        runner = PilotRunner(small_config(seed=7))
        runner.schedule_wan_partition(start_s=1 * DAY, duration_s=8 * DAY)
        report = runner.report_after = runner.run_season()
        # Local loop unaffected.
        assert report.skipped_stale + report.skipped_no_data == 0
        assert report.commands_sent > 0


class TestFixedScheduler:
    def test_fixed_calendar_overirrigates_vs_smart(self):
        fixed = PilotRunner(small_config(
            scheduler_kind="fixed", fixed_interval_days=2, fixed_depth_mm=25.0, seed=9,
        ))
        report_fixed = fixed.run_season()
        smart = PilotRunner(small_config(seed=9))
        report_smart = smart.run_season()
        assert report_fixed.irrigation_m3 > report_smart.irrigation_m3


class TestPivotPilot:
    def test_pivot_receives_prescriptions(self):
        runner = PilotRunner(small_config(irrigation_kind="pivot", rows=3, cols=3))
        report = runner.run_season()
        assert runner.pivot is not None
        assert runner.pivot.total_applied_mm > 0
        assert report.irrigation_m3 > 0


class TestSecurityIntegration:
    def test_auth_enabled_pipeline_still_works(self):
        runner = PilotRunner(small_config(
            security=SecurityConfig(auth=True), seed=5,
        ))
        report = runner.run_season()
        assert report.measures_processed > 50
        assert report.commands_sent > 0
        assert runner.security.oauth.issued_count > 0

    def test_auth_blocks_tokenless_client(self):
        from repro.mqtt import MqttClient
        from repro.network import RadioModel

        runner = PilotRunner(small_config(security=SecurityConfig(auth=True), seed=5))
        intruder = MqttClient(runner.sim, "intruder", runner.broker_address,
                              client_id="intruder", password="guess", auto_reconnect=False)
        runner.net.add_node(intruder)
        runner.net.connect("intruder", runner.broker_address,
                           RadioModel("t", 0.01, 1e6, 0.0))
        intruder.connect()
        runner.run_days(1)
        assert not intruder.connected

    def test_encryption_enabled_pipeline_still_works(self):
        runner = PilotRunner(small_config(
            security=SecurityConfig(encryption=True), seed=5,
        ))
        report = runner.run_season()
        assert report.measures_processed > 50
        assert runner.security.channels.decode_failures == 0

    def test_encryption_hides_telemetry_from_wire(self):
        runner = PilotRunner(small_config(security=SecurityConfig(encryption=True), seed=5))
        probe = next(iter(runner.probes.values()))
        observed = []
        for link in runner.net.links_between(probe.client.address, runner.broker_address):
            link.add_tap(lambda p: observed.append(p.observable()))
        runner.run_days(1)
        frames = [o for o in observed if isinstance(o, bytes)]
        assert frames
        assert all(b"soilMoisture" not in f for f in frames)

    def test_detection_trains_quietly_on_clean_run(self):
        runner = PilotRunner(small_config(
            security=SecurityConfig(detection=True, detection_training_s=5 * DAY),
            seed=5,
        ))
        report = runner.run_season()
        assert report.quarantined_devices == 0


class TestPilotFactories:
    @pytest.mark.parametrize("factory", [
        lambda: build_cbec_pilot(seed=1)[0],
        lambda: build_intercrop_pilot(seed=1)[0],
        lambda: build_guaspari_pilot(seed=1),
        lambda: build_matopiba_pilot(seed=1),
    ])
    def test_factories_build_and_run_briefly(self, factory):
        runner = factory()
        runner.run_days(3)
        assert runner.agent.stats.measures_processed > 0

    def test_matopiba_has_pivot_and_drone(self):
        runner = build_matopiba_pilot(seed=1)
        assert runner.pivot is not None
        assert runner.drone is not None

    def test_cbec_supply_gate_wired(self):
        runner, network = build_cbec_pilot(seed=1)
        assert runner.config.supply_gate is not None
        assert "cbec-farm" in network.farms
