"""At-least-once notification delivery: queues, retries, breaker, DLQ,
and the service layer's subscription management routes."""

import pytest

from repro.context.broker import ContextBroker
from repro.context.delivery import (
    DeliveryConfig,
    DeliveryError,
    DeliveryManager,
    SimulatedEndpoint,
)
from repro.context.history import ShortTermHistory
from repro.context.subscriptions import Subscription
from repro.core.security_profile import SecurityConfig, SecurityStack
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultPlan
from repro.resilience import BreakerState
from repro.service import NgsiService, Request, ServiceConfig, TenantSpec
from repro.simkernel.simulator import Simulator

EID = "urn:AgriParcel:demo:0-0"
FARM = "urn:AgriParcel:demo:"


def make_pipeline(config=None, **endpoint_kwargs):
    sim = Simulator(seed=7)
    broker = ContextBroker(sim)
    manager = DeliveryManager(
        sim, config or DeliveryConfig(pump_interval_s=0.5, timeout_s=1.0))
    endpoint = manager.register_endpoint(
        SimulatedEndpoint("hook", **endpoint_kwargs))
    manager.start()
    broker.create_entity(EID, "AgriParcel", {"soilMoisture": 0.2})
    sub = Subscription(callback=lambda _n: None, entity_id=EID)
    manager.bind_subscription(sub, "dash", "hook")
    broker.subscribe(sub)
    return sim, broker, manager, endpoint


def publish(sim, broker, n, dt=5.0):
    for i in range(n):
        broker.update_attributes(EID, {"soilMoisture": 0.2 + 0.01 * i})
        sim.run_until(sim.now + dt)


class TestHappyPath:
    def test_reliable_endpoint_delivers_everything_once(self):
        sim, broker, manager, endpoint = make_pipeline()
        publish(sim, broker, 25)
        audit = manager.audit()
        assert audit["accepted"] == 25
        assert audit["delivered"] == 25
        assert audit["dead"] == audit["pending"] == audit["duplicates"] == 0
        assert audit["conserved"]
        assert endpoint.received == 25 and len(endpoint.delivered_seqs) == 25

    def test_unbound_subscriptions_are_untouched(self):
        """Notifications outside the delivery pipeline still fire inline."""
        sim = Simulator(seed=7)
        broker = ContextBroker(sim)
        seen = []
        broker.create_entity(EID, "AgriParcel", {"soilMoisture": 0.2})
        broker.subscribe(Subscription(callback=seen.append, entity_id=EID))
        broker.update_attributes(EID, {"soilMoisture": 0.3})
        assert len(seen) == 1


class TestAtLeastOnce:
    def test_ambiguous_timeouts_produce_tagged_duplicates(self):
        sim, broker, manager, endpoint = make_pipeline(
            timeout_rate=0.4, timeout_delivers=True)
        publish(sim, broker, 40)
        sim.run_until(sim.now + 2000.0)
        audit = manager.audit()
        assert audit["conserved"]
        assert audit["delivered"] + audit["dead"] == 40
        # Timeouts landed the payload, so retries created real duplicates
        # — received strictly exceeds unique, and every one is tagged.
        assert endpoint.received > len(endpoint.delivered_seqs)
        assert endpoint.duplicates == endpoint.received - len(endpoint.delivered_seqs)

    def test_conservation_under_failures_outage_and_replay(self):
        sim, broker, manager, endpoint = make_pipeline(fail_rate=0.3)
        publish(sim, broker, 30)
        endpoint.down = True
        publish(sim, broker, 30)
        sim.run_until(sim.now + 1000.0)
        endpoint.down = False
        manager.replay("dash")
        sim.run_until(sim.now + 3000.0)
        audit = manager.audit()
        assert audit["accepted"] == 60
        assert audit["conserved"]
        # Everything ends terminal or visibly queued; nothing vanished.
        assert audit["delivered"] + audit["dead"] + audit["pending"] == 60

    def test_full_queue_rejects_admission_loudly(self):
        config = DeliveryConfig(queue_capacity=5, pump_interval_s=500.0)
        sim, broker, manager, _ = make_pipeline(config=config)
        for i in range(9):  # pump never runs: the queue fills at 5
            broker.update_attributes(EID, {"soilMoisture": 0.2 + 0.01 * i})
        audit = manager.audit()
        assert audit["accepted"] == 5 and audit["rejected"] == 4
        assert audit["conserved"]


class TestDeadLetterQueue:
    def test_exhausted_attempts_dead_letter_then_replay_delivers(self):
        sim, broker, manager, endpoint = make_pipeline(fail_rate=1.0)
        publish(sim, broker, 10)
        sim.run_until(sim.now + 4000.0)
        audit = manager.audit()
        assert audit["dead"] == 10 and audit["delivered"] == 0
        endpoint.fail_rate = 0.0
        assert manager.replay("dash") == 10
        sim.run_until(sim.now + 2000.0)
        audit = manager.audit()
        assert audit["delivered"] == 10 and audit["dead"] == 0
        assert audit["conserved"]
        # Replayed items carry their history.
        item = manager._items[0]
        assert item.replays == 1 and item.status == "delivered"

    def test_replay_filters_by_subscription(self):
        sim, broker, manager, endpoint = make_pipeline(fail_rate=1.0)
        publish(sim, broker, 4)
        sim.run_until(sim.now + 4000.0)
        assert manager.replay("dash", subscription_id="sub-999") == 0
        assert manager.replay("nobody") == 0
        sub_id = manager._items[0].subscription_id
        assert manager.replay("dash", subscription_id=sub_id) == 4


class TestBreakerGating:
    def test_open_breaker_defers_without_burning_attempts(self):
        config = DeliveryConfig(
            pump_interval_s=0.5, timeout_s=1.0, max_attempts=50,
            breaker_failure_threshold=3, breaker_open_timeout_s=60.0)
        sim, broker, manager, endpoint = make_pipeline(
            config=config, fail_rate=1.0)
        publish(sim, broker, 20)
        sim.run_until(sim.now + 500.0)
        breaker = manager.breaker("hook")
        assert breaker.state in (BreakerState.OPEN, BreakerState.HALF_OPEN)
        assert manager.breaker_deferrals > 0
        # With the breaker gating, total attempts stay far below what 20
        # items x 50 attempts of unguarded hammering would produce.
        attempts = sum(i.attempts for i in manager._items)
        assert attempts < 200
        assert manager.audit()["conserved"]

    def test_endpoint_outage_fault_heals_through_breaker(self):
        sim, broker, manager, endpoint = make_pipeline()
        injector = FaultInjector(sim)
        injector.register_endpoint("hook", endpoint)
        injector.apply(FaultPlan("outage", [
            FaultEvent("endpoint_outage", "hook", at_s=50.0, duration_s=300.0)]))
        publish(sim, broker, 60)
        sim.run_until(sim.now + 3000.0)
        assert injector.recovered == 1
        assert not endpoint.down
        audit = manager.audit()
        assert audit["conserved"]
        assert audit["delivered"] + audit["dead"] == 60
        assert audit["delivered"] >= 30  # pre-outage and healed traffic land


class TestConfigAndRegistration:
    def test_config_validation_rejects_nonpositive_knobs(self):
        with pytest.raises(DeliveryError, match="max_attempts"):
            DeliveryConfig(max_attempts=0).validate()

    def test_duplicate_and_unknown_endpoints_raise(self):
        sim = Simulator(seed=1)
        manager = DeliveryManager(sim)
        manager.register_endpoint(SimulatedEndpoint("hook"))
        with pytest.raises(DeliveryError, match="already registered"):
            manager.register_endpoint(SimulatedEndpoint("hook"))
        with pytest.raises(DeliveryError, match="unknown endpoint"):
            manager.endpoint("nope")


def make_service():
    from repro.telemetry.metrics import MetricsRegistry

    sim = Simulator(seed=11, metrics=MetricsRegistry())
    broker = ContextBroker(sim)
    history = ShortTermHistory(broker)
    security = SecurityStack(sim, "demo", SecurityConfig())
    service = NgsiService(sim, broker, history, security, ServiceConfig())
    endpoint = SimulatedEndpoint("dash-hook", fail_rate=0.1)
    service.enable_delivery(
        DeliveryConfig(pump_interval_s=0.5, timeout_s=1.0),
        endpoints=(endpoint,))
    service.register_tenant(TenantSpec("dash", "s1", read_prefixes=(FARM,)))
    broker.create_entity(EID, "AgriParcel", {"soilMoisture": 0.2})
    return service, service.tenant_token("dash"), endpoint


def create_sub(service, token, **overrides):
    body = {
        "subject": {"entities": [{"id": EID}],
                    "condition": {"attrs": ["soilMoisture"]}},
        "notification": {"endpoint": "dash-hook"},
    }
    body.update(overrides)
    response = service.handle(
        Request("POST", "/v2/subscriptions", token=token, body=body))
    assert response.status == 201
    return response.headers["Location"].rsplit("/", 1)[1]


class TestServiceSubscriptionRoutes:
    def test_create_list_get_delete_round_trip(self):
        service, token, _ = make_service()
        sub_id = create_sub(service, token)
        listed = service.handle(
            Request("GET", "/v2/subscriptions", token=token))
        assert listed.status == 200
        assert [s["id"] for s in listed.body] == [sub_id]
        got = service.handle(
            Request("GET", f"/v2/subscriptions/{sub_id}", token=token))
        assert got.status == 200
        assert got.body["subject"]["entities"] == [{"id": EID}]
        assert got.body["delivery"]["endpoint"] == "dash-hook"
        assert service.handle(
            Request("DELETE", f"/v2/subscriptions/{sub_id}", token=token)
        ).status == 204
        assert service.handle(
            Request("GET", f"/v2/subscriptions/{sub_id}", token=token)
        ).status == 404

    def test_notifications_flow_to_the_endpoint(self):
        service, token, endpoint = make_service()
        sub_id = create_sub(service, token)
        sim, broker = service.sim, service.broker
        for i in range(20):
            broker.update_attributes(EID, {"soilMoisture": 0.2 + 0.01 * i})
            sim.run_until(sim.now + 5.0)
        sim.run_until(sim.now + 1000.0)
        status = service.handle(
            Request("GET", f"/v2/subscriptions/{sub_id}", token=token)
        ).body["delivery"]
        assert status["accepted"] == 20
        assert status["delivered"] + status["dead"] == 20
        assert endpoint.received >= status["delivered"]
        assert service.report()["delivery"]["conserved"]

    def test_foreign_subscription_reads_as_absent(self):
        service, token, _ = make_service()
        sub_id = create_sub(service, token)
        service.register_tenant(
            TenantSpec("ops", "s2", read_prefixes=("urn:Ops:",)))
        other = service.tenant_token("ops")
        for method, path in (
            ("GET", f"/v2/subscriptions/{sub_id}"),
            ("DELETE", f"/v2/subscriptions/{sub_id}"),
            ("POST", f"/v2/subscriptions/{sub_id}/replay"),
        ):
            assert service.handle(
                Request(method, path, token=other)).status == 404
        assert service.handle(
            Request("GET", "/v2/subscriptions", token=other)).body == []

    def test_create_outside_namespace_is_403(self):
        service, token, _ = make_service()
        response = service.handle(Request(
            "POST", "/v2/subscriptions", token=token,
            body={"subject": {"entities": [{"id": "urn:Ops:secret:1"}]},
                  "notification": {"endpoint": "dash-hook"}}))
        assert response.status == 403

    def test_create_without_endpoint_is_400(self):
        service, token, _ = make_service()
        response = service.handle(Request(
            "POST", "/v2/subscriptions", token=token,
            body={"subject": {"entities": [{"id": EID}]}}))
        assert response.status == 400
        assert "notification.endpoint" in response.body["description"]

    def test_routes_refuse_when_delivery_disabled(self):
        sim = Simulator(seed=11)
        broker = ContextBroker(sim)
        service = NgsiService(
            sim, broker, ShortTermHistory(broker),
            SecurityStack(sim, "demo", SecurityConfig()), ServiceConfig())
        service.register_tenant(TenantSpec("dash", "s1", read_prefixes=(FARM,)))
        token = service.tenant_token("dash")
        response = service.handle(Request(
            "POST", "/v2/subscriptions", token=token,
            body={"subject": {"entities": [{"id": EID}]},
                  "notification": {"endpoint": "x"}}))
        assert response.status == 400
        assert "not enabled" in response.body["description"]

    def test_replay_route_redelivers_dead_letters(self):
        service, token, endpoint = make_service()
        sub_id = create_sub(service, token)
        endpoint.fail_rate = 1.0
        sim, broker = service.sim, service.broker
        for i in range(5):
            broker.update_attributes(EID, {"soilMoisture": 0.2 + 0.01 * i})
            sim.run_until(sim.now + 5.0)
        sim.run_until(sim.now + 4000.0)
        endpoint.fail_rate = 0.0
        replayed = service.handle(
            Request("POST", f"/v2/subscriptions/{sub_id}/replay", token=token))
        assert replayed.status == 200 and replayed.body["replayed"] == 5
        sim.run_until(sim.now + 2000.0)
        status = service.handle(
            Request("GET", f"/v2/subscriptions/{sub_id}", token=token)
        ).body["delivery"]
        assert status["delivered"] == 5 and status["dead"] == 0

    def test_delivery_metrics_and_gauges_export(self):
        service, token, _ = make_service()
        create_sub(service, token)
        sim, broker = service.sim, service.broker
        for i in range(10):
            broker.update_attributes(EID, {"soilMoisture": 0.2 + 0.01 * i})
            sim.run_until(sim.now + 5.0)
        sim.run_until(sim.now + 500.0)
        metrics = sim.metrics
        assert metrics.value("delivery.accepted") == 10.0
        assert metrics.value("delivery.queue_depth", {"tenant": "dash"}) == 0.0
        assert metrics.value("delivery.dlq_depth", {"tenant": "dash"}) is not None
