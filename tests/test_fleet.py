"""Fleet sharding: determinism across worker counts and executors.

The acceptance criterion pinned here: a same-seed 4-farm fleet produces
identical merged reports (and fingerprints) with 1, 2 and 4 workers, and
the in-process executor agrees with multiprocessing.
"""

import io

import pytest

from repro.fleet import FarmSpec, FleetOptions, parse_farm_specs, run_fleet
from repro.fleet.options import FleetError
from repro.fleet.shard import make_tasks, run_shard
from repro.simkernel.clock import DAY
from repro.simkernel.rng import derive_seed

TINY = dict(rows=2, cols=2, season_days=2, probe_interval_s=14400.0)


def tiny_fleet(n=4, seed=0, **overrides):
    farms = [FarmSpec("matopiba", kwargs=dict(TINY)) for _ in range(n)]
    return FleetOptions(farms=farms, seed=seed, **overrides)


class TestDeterminism:
    def test_same_seed_identical_across_worker_counts_and_executors(self):
        """1, 2 and 4 multiprocessing workers and in-process all agree."""
        results = {
            "inprocess": run_fleet(tiny_fleet(executor="inprocess")),
            "mp-1": run_fleet(tiny_fleet(workers=1, executor="multiprocessing")),
            "mp-2": run_fleet(tiny_fleet(workers=2, executor="multiprocessing")),
            "mp-4": run_fleet(tiny_fleet(workers=4, executor="multiprocessing")),
        }
        fingerprints = {k: r.fingerprint for k, r in results.items()}
        assert len(set(fingerprints.values())) == 1, fingerprints
        reference = results["inprocess"].report
        for result in results.values():
            assert result.report == reference

    def test_different_seed_changes_fingerprint(self):
        a = run_fleet(tiny_fleet(seed=1, executor="inprocess"))
        b = run_fleet(tiny_fleet(seed=2, executor="inprocess"))
        assert a.fingerprint != b.fingerprint

    def test_shards_get_independent_derived_seeds(self):
        tasks = make_tasks(tiny_fleet())
        seeds = [t.seed for t in tasks]
        assert len(set(seeds)) == len(seeds)
        assert seeds[0] == derive_seed(0, "shard:0:matopiba-0")

    def test_same_pilot_shards_differ_only_by_seed(self):
        result = run_fleet(tiny_fleet(n=2, executor="inprocess"))
        a, b = result.report.farms
        assert a != b  # different derived seeds → different runs


class TestMerge:
    def test_totals_are_sum_of_farms(self):
        result = run_fleet(tiny_fleet(n=3, executor="inprocess"))
        farms = result.report.farms
        totals = result.report.totals
        assert totals["farms"] == 3
        assert totals["irrigation_m3"] == pytest.approx(
            sum(f["irrigation_m3"] for f in farms)
        )
        assert totals["measures_processed"] == sum(
            f["measures_processed"] for f in farms
        )
        assert totals["relative_yield"] == pytest.approx(
            sum(f["relative_yield"] for f in farms) / 3
        )
        assert totals["season_days"] == max(f["season_days"] for f in farms)

    def test_sync_batches_cover_every_epoch_and_shard(self):
        result = run_fleet(tiny_fleet(n=2, executor="inprocess"))
        # 2-day season (+1h), daily epochs: barriers at day 1 and 2 plus
        # the final drain → 3 batches per shard.
        per_shard = {}
        for batch in result.report.batches:
            per_shard.setdefault(batch["shard"], []).append(batch)
        assert set(per_shard) == {0, 1}
        for batches in per_shard.values():
            assert [b["epoch"] for b in batches] == [0, 1, 2]

    def test_batch_deltas_fold_to_report_totals(self):
        result = run_fleet(tiny_fleet(n=2, executor="inprocess"))
        for shard in result.shards:
            synced = sum(b.updates_synced for b in shard.batches)
            assert synced == shard.report["replicator_synced"]
            measured = sum(b.measures_processed for b in shard.batches)
            assert measured == shard.report["measures_processed"]
        epoch_total = sum(
            e["updates_synced"] for e in result.report.cloud_epochs
        )
        assert epoch_total == sum(
            s.report["replicator_synced"] for s in result.shards
        )

    def test_batches_ordered_by_epoch_then_shard(self):
        result = run_fleet(tiny_fleet(n=3, executor="inprocess"))
        keys = [(b["epoch"], b["shard"]) for b in result.report.batches]
        assert keys == sorted(keys)

    def test_mixed_pilots(self):
        options = FleetOptions(
            farms=[
                FarmSpec("matopiba", kwargs=dict(TINY)),
                FarmSpec("guaspari"),
            ],
            seed=7, days=2.0, executor="inprocess",
        )
        result = run_fleet(options)
        assert [s.name for s in result.shards] == ["matopiba-0", "guaspari-1"]
        assert all(f["measures_processed"] > 0 for f in result.report.farms)

    def test_single_shard_runs_like_run_shard(self):
        options = tiny_fleet(n=1, executor="inprocess")
        fleet = run_fleet(options)
        direct = run_shard(make_tasks(options)[0])
        assert fleet.shards[0].report == direct.report
        assert fleet.shards[0].batches == direct.batches


class TestOptions:
    def test_parse_farm_specs_with_counts(self):
        farms = parse_farm_specs("matopiba:2, guaspari")
        assert [f.pilot for f in farms] == ["matopiba", "matopiba", "guaspari"]

    def test_parse_rejects_unknown_pilot(self):
        with pytest.raises(FleetError, match="unknown pilot"):
            parse_farm_specs("atlantis")

    def test_parse_rejects_bad_count(self):
        with pytest.raises(FleetError, match="count"):
            parse_farm_specs("matopiba:0")
        with pytest.raises(FleetError, match="count"):
            parse_farm_specs("matopiba:two")

    def test_parse_rejects_empty(self):
        with pytest.raises(FleetError, match="no farms"):
            parse_farm_specs(" , ")

    def test_validate_rejects_bad_options(self):
        with pytest.raises(FleetError, match="at least one farm"):
            run_fleet(FleetOptions(farms=[]))
        with pytest.raises(FleetError, match="epoch_days"):
            run_fleet(tiny_fleet(epoch_days=0.0))
        with pytest.raises(FleetError, match="workers"):
            run_fleet(tiny_fleet(workers=0))
        with pytest.raises(FleetError, match="executor"):
            run_fleet(tiny_fleet(executor="quantum"))
        with pytest.raises(FleetError, match="days"):
            run_fleet(tiny_fleet(days=-1.0))


class TestCli:
    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["fleet"])
        assert args.farms == "matopiba:2"
        assert args.workers == 1
        assert args.executor == "auto"

    def test_fleet_command_prints_summary(self):
        from repro.cli import main

        out = io.StringIO()
        code = main(
            ["fleet", "--farms", "guaspari:2", "--days", "2",
             "--executor", "inprocess"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "2 farms" in text
        assert "guaspari-0" in text and "guaspari-1" in text
        assert "fingerprint:" in text

    def test_fleet_command_rejects_bad_spec(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="unknown pilot"):
            main(["fleet", "--farms", "atlantis"], out=io.StringIO())
