"""Tests for the PoA blockchain, lifecycle registry and smart contracts."""

import pytest

from repro.security.ledger import (
    AuthorizationContract,
    Blockchain,
    ContractRule,
    DeviceLifecycleRegistry,
    DeviceState,
    LedgerError,
    LifecycleEvent,
)
from repro.security.ledger.contracts import rule_device_active, rule_no_violations, rule_owned_by


def event(device_id, name, actor="factory", t=0.0, **data):
    return LifecycleEvent(device_id, name, actor, t, data)


def chain_with(*events):
    chain = Blockchain(validators=["v1", "v2"])
    for e in events:
        chain.submit(e)
    chain.seal_block(time=1.0)
    return chain


class TestBlockchain:
    def test_genesis(self):
        chain = Blockchain(["v1"])
        assert chain.height == 1
        assert chain.verify_chain()

    def test_no_validators_rejected(self):
        with pytest.raises(LedgerError):
            Blockchain([])

    def test_seal_and_verify(self):
        chain = chain_with(event("d1", "manufactured"))
        assert chain.height == 2
        assert chain.verify_chain()

    def test_seal_empty_returns_none(self):
        chain = Blockchain(["v1"])
        assert chain.seal_block(1.0) is None

    def test_validators_rotate(self):
        chain = Blockchain(["v1", "v2"])
        chain.submit(event("d1", "manufactured"))
        b1 = chain.seal_block(1.0)
        chain.submit(event("d2", "manufactured"))
        b2 = chain.seal_block(2.0)
        assert {b1.validator, b2.validator} == {"v1", "v2"}

    def test_tamper_with_transaction_detected(self):
        chain = chain_with(event("d1", "manufactured"))
        # Retroactively replace a committed transaction.
        chain.blocks[1].transactions[0] = event("evil", "manufactured")
        assert not chain.verify_chain()

    def test_tamper_with_hash_link_detected(self):
        chain = chain_with(event("d1", "manufactured"))
        chain.submit(event("d2", "manufactured"))
        chain.seal_block(2.0)
        chain.blocks[1].block_hash = "f" * 64
        assert not chain.verify_chain()

    def test_rogue_validator_detected(self):
        chain = chain_with(event("d1", "manufactured"))
        chain.blocks[1].validator = "mallory"
        chain.blocks[1].block_hash = chain.blocks[1].compute_hash()
        # Hash now self-consistent but validator is not authorized... except
        # the next block's previous_hash no longer matches.
        chain.submit(event("d2", "manufactured"))
        chain.seal_block(2.0)
        assert not chain.verify_chain() or chain.blocks[1].validator not in chain.validators

    def test_events_query(self):
        chain = chain_with(
            event("d1", "manufactured"), event("d2", "manufactured"),
            event("d1", "provisioned", actor="farmA", owner="farmA"),
        )
        assert len(chain.events()) == 3
        assert len(chain.events("d1")) == 2


class TestRegistry:
    def test_happy_lifecycle(self):
        chain = chain_with(
            event("d1", "manufactured"),
            event("d1", "provisioned", actor="farmA", owner="farmA"),
            event("d1", "activated"),
        )
        registry = DeviceLifecycleRegistry(chain)
        assert registry.state_of("d1") is DeviceState.ACTIVE
        assert registry.owner_of("d1") == "farmA"
        assert registry.violations == []

    def test_unknown_device(self):
        registry = DeviceLifecycleRegistry(Blockchain(["v1"]))
        assert registry.state_of("ghost") is DeviceState.UNKNOWN
        assert registry.owner_of("ghost") is None

    def test_clone_detected(self):
        chain = chain_with(
            event("d1", "manufactured", actor="factory"),
            event("d1", "manufactured", actor="counterfeiter"),
        )
        registry = DeviceLifecycleRegistry(chain)
        clones = registry.clone_violations()
        assert len(clones) == 1
        assert clones[0].event.actor == "counterfeiter"
        # Original state intact.
        assert registry.state_of("d1") is DeviceState.MANUFACTURED
        assert registry.devices["d1"].manufacturer == "factory"

    def test_illegal_transition_recorded(self):
        chain = chain_with(event("d1", "activated"))  # never manufactured
        registry = DeviceLifecycleRegistry(chain)
        assert registry.state_of("d1") is DeviceState.UNKNOWN
        assert len(registry.violations) == 1

    def test_suspend_resume(self):
        chain = chain_with(
            event("d1", "manufactured"),
            event("d1", "provisioned", owner="farmA"),
            event("d1", "activated"),
            event("d1", "suspended"),
        )
        registry = DeviceLifecycleRegistry(chain)
        assert registry.state_of("d1") is DeviceState.SUSPENDED
        chain.submit(event("d1", "activated", t=2.0))
        chain.seal_block(2.0)
        registry.refresh()
        assert registry.state_of("d1") is DeviceState.ACTIVE

    def test_revoked_terminal(self):
        chain = chain_with(
            event("d1", "manufactured"),
            event("d1", "provisioned", owner="farmA"),
            event("d1", "activated"),
            event("d1", "revoked"),
            event("d1", "activated"),  # illegal after revocation
        )
        registry = DeviceLifecycleRegistry(chain)
        assert registry.state_of("d1") is DeviceState.REVOKED
        assert any("activated" in v.reason for v in registry.violations)

    def test_transfer_changes_owner(self):
        chain = chain_with(
            event("d1", "manufactured"),
            event("d1", "provisioned", owner="farmA"),
            event("d1", "activated"),
            event("d1", "transferred", owner="farmB"),
        )
        registry = DeviceLifecycleRegistry(chain)
        assert registry.owner_of("d1") == "farmB"
        assert registry.state_of("d1") is DeviceState.ACTIVE

    def test_refresh_is_incremental(self):
        chain = chain_with(event("d1", "manufactured"))
        registry = DeviceLifecycleRegistry(chain)
        chain.submit(event("d1", "provisioned", owner="farmA", t=2.0))
        chain.seal_block(2.0)
        registry.refresh()
        assert registry.state_of("d1") is DeviceState.PROVISIONED
        # History not double-applied.
        assert len(registry.devices["d1"].history) == 2


class TestContracts:
    def active_owned_chain(self):
        return chain_with(
            event("pivot1", "manufactured"),
            event("pivot1", "provisioned", owner="farmA"),
            event("pivot1", "activated"),
        )

    def test_authorize_happy_path(self):
        registry = DeviceLifecycleRegistry(self.active_owned_chain())
        contract = AuthorizationContract(registry)
        assert contract.authorize("pivot1", {"farm": "farmA"})

    def test_wrong_farm_denied(self):
        registry = DeviceLifecycleRegistry(self.active_owned_chain())
        contract = AuthorizationContract(registry)
        assert not contract.authorize("pivot1", {"farm": "farmB"})
        assert contract.denials()[-1].failed_rule == "owned-by-requester"

    def test_inactive_device_denied(self):
        chain = chain_with(
            event("pivot1", "manufactured"),
            event("pivot1", "provisioned", owner="farmA"),
        )
        contract = AuthorizationContract(DeviceLifecycleRegistry(chain))
        assert not contract.authorize("pivot1", {"farm": "farmA"})
        assert contract.denials()[-1].failed_rule == "device-active"

    def test_cloned_device_denied(self):
        chain = chain_with(
            event("pivot1", "manufactured"),
            event("pivot1", "provisioned", owner="farmA"),
            event("pivot1", "activated"),
            event("pivot1", "manufactured", actor="counterfeiter"),
        )
        contract = AuthorizationContract(DeviceLifecycleRegistry(chain))
        assert not contract.authorize("pivot1", {"farm": "farmA"})
        assert contract.denials()[-1].failed_rule == "clean-lifecycle"

    def test_contract_sees_new_chain_events(self):
        chain = self.active_owned_chain()
        registry = DeviceLifecycleRegistry(chain)
        contract = AuthorizationContract(registry)
        assert contract.authorize("pivot1", {"farm": "farmA"})
        chain.submit(event("pivot1", "revoked", t=5.0))
        chain.seal_block(5.0)
        assert not contract.authorize("pivot1", {"farm": "farmA"})

    def test_custom_rules(self):
        registry = DeviceLifecycleRegistry(self.active_owned_chain())
        deny_all = ContractRule("deny-all", lambda reg, d, c: False)
        contract = AuthorizationContract(registry, rules=[deny_all])
        assert not contract.authorize("pivot1")
