"""Causal tracing and profiling: samplers, span trees, end-to-end chains.

Covers the determinism contracts (seeded head sampling, bit-identical
reports with tracing on or off), the TraceLog drop/sample accounting,
the span-tree invariants as a property across seeds, Chrome-trace export
round-trips, and full sensor→actuation chain reconstruction on a real
pilot run through the ``run(RunOptions(...))`` entrypoint.
"""

import dataclasses
import json

import pytest

from repro.core.pilots import build_matopiba_pilot
from repro.core.run import RunOptions, run
from repro.simkernel.trace import TraceLog
from repro.telemetry import (
    DeterministicSampler,
    KernelProfiler,
    NULL_TRACER,
    Span,
    TraceConfig,
    TraceContext,
    Tracer,
    log_sampler,
    validate_chrome_trace,
    validate_span_trees,
)

SMALL_PILOT = {"rows": 2, "cols": 2, "season_days": 2}


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now


def make_tracer(**kwargs) -> Tracer:
    tracer = Tracer(**kwargs)
    tracer.bind_clock(FakeClock())
    return tracer


class TestDeterministicSampler:
    def test_rate_one_keeps_everything(self):
        sampler = DeterministicSampler(seed=1, rate=1.0)
        assert all(sampler.sample(i) for i in range(100))

    def test_rate_zero_drops_everything(self):
        sampler = DeterministicSampler(seed=1, rate=0.0)
        assert not any(sampler.sample(i) for i in range(100))

    def test_same_seed_same_decisions(self):
        a = DeterministicSampler(seed=42, rate=0.3)
        b = DeterministicSampler(seed=42, rate=0.3)
        assert [a.sample(i) for i in range(1000)] == [b.sample(i) for i in range(1000)]

    def test_observed_rate_tracks_requested_rate(self):
        for rate in (0.1, 0.5, 0.9):
            sampler = DeterministicSampler(seed=7, rate=rate)
            kept = sum(sampler.sample(i) for i in range(5000)) / 5000
            assert abs(kept - rate) < 0.05, (rate, kept)

    def test_raising_the_rate_only_adds_traces(self):
        low = DeterministicSampler(seed=3, rate=0.2)
        high = DeterministicSampler(seed=3, rate=0.6)
        kept_low = {i for i in range(2000) if low.sample(i)}
        kept_high = {i for i in range(2000) if high.sample(i)}
        assert kept_low <= kept_high

    def test_different_seeds_differ(self):
        a = DeterministicSampler(seed=1, rate=0.5)
        b = DeterministicSampler(seed=2, rate=0.5)
        assert [a.sample(i) for i in range(200)] != [b.sample(i) for i in range(200)]


class TestLogSampler:
    def test_deterministic(self):
        a, b = log_sampler(5, 0.4), log_sampler(5, 0.4)
        seq = [("mqtt", i) for i in range(200)] + [("fog", i) for i in range(200)]
        assert [a(c, i) for c, i in seq] == [b(c, i) for c, i in seq]

    def test_categories_thin_independently(self):
        sample = log_sampler(0, 0.5)
        mqtt = [sample("mqtt", i) for i in range(500)]
        fog = [sample("fog", i) for i in range(500)]
        assert mqtt != fog  # not in lockstep


class TestTraceLogAccounting:
    def test_eviction_attributes_drop_to_evicted_category(self):
        log = TraceLog(max_records=3)
        for i in range(3):
            log.emit(float(i), "flood", "a")
        log.emit(3.0, "victim", "b")
        # The incoming "victim" record evicted the oldest "flood" record.
        assert log.dropped == 1
        assert log.dropped_by_category == {"flood": 1}
        assert [r.category for r in log] == ["flood", "flood", "victim"]

    def test_zero_capacity_counts_every_record_as_its_own_drop(self):
        log = TraceLog(max_records=0)
        log.emit(0.0, "a", "x")
        log.emit(1.0, "b", "y")
        assert len(log) == 0
        assert log.dropped == 2
        assert log.dropped_by_category == {"a": 1, "b": 1}
        assert log.counts == {"a": 1, "b": 1}  # totals stay exact

    def test_sampled_out_records_counted_not_stored(self):
        log = TraceLog(max_records=100)
        log.set_sampler(lambda category, seq: False)
        seen = []
        log.subscribe(seen.append)
        record = log.emit(0.0, "mqtt", "dropped by sampler")
        assert record.category == "mqtt"  # caller still gets the record
        assert len(log) == 0 and seen == []
        assert log.sampled_out == {"mqtt": 1}
        assert log.counts == {"mqtt": 1}

    def test_sampler_thins_deterministically(self):
        def run_once():
            log = TraceLog(max_records=10_000)
            log.set_sampler(log_sampler(9, 0.3))
            for i in range(1000):
                log.emit(float(i), "telemetry", "m", i=i)
            return [r.data["i"] for r in log]

        first, second = run_once(), run_once()
        assert first == second
        assert 0 < len(first) < 1000


class TestTracerLifecycle:
    def test_disabled_tracer_is_inert(self):
        ran = False
        assert NULL_TRACER.start_trace("t", "k") is None
        assert NULL_TRACER.start_span("s", "k") is None
        with NULL_TRACER.span("s", "k") as span:
            ran = True
            assert span is None
        assert ran
        assert len(NULL_TRACER) == 0

    def test_basic_tree_and_active_stack(self):
        tracer = make_tracer()
        with tracer.span("root", "a", root=True) as root:
            assert tracer.current() == root.ctx
            with tracer.span("child", "b") as child:
                assert child.parent_id == root.span_id
                assert child.trace_id == root.trace_id
        assert validate_span_trees(tracer.spans()) == []
        assert [s.name for s in tracer.path_to_root(child)] == ["root", "child"]

    def test_parentless_child_is_suppressed(self):
        tracer = make_tracer()
        assert tracer.start_span("orphan", "k") is None
        with tracer.span("orphan", "k") as span:
            assert span is None
        assert len(tracer) == 0

    def test_unsampled_root_suppresses_downstream_tree(self):
        tracer = make_tracer(sample_rate=0.0)
        root = tracer.start_trace("root", "k")
        assert root is None
        # The hop that would parent on the unsampled root gets nothing.
        assert tracer.start_span("hop", "k", parent=root) is None
        assert tracer.traces_started == 1 and tracer.traces_sampled == 0

    def test_async_hop_extends_closed_ancestors(self):
        clock = FakeClock()
        tracer = Tracer()
        tracer.bind_clock(clock)
        root = tracer.start_trace("publish", "mqtt")
        clock.now = 1.0
        tracer.end_span(root)
        # The broker routes the packet after the publish span closed.
        clock.now = 5.0
        child = tracer.start_span("route", "mqtt", parent=root.ctx)
        clock.now = 6.0
        tracer.end_span(child)
        assert root.end == 6.0
        assert validate_span_trees(tracer.spans()) == []

    def test_max_spans_drops_newest_and_counts(self):
        tracer = make_tracer(max_spans=2)
        root = tracer.start_trace("r", "k")
        tracer.start_span("a", "k", parent=root)
        assert tracer.start_span("b", "k", parent=root) is None
        assert tracer.spans_dropped == 1
        assert len(tracer) == 2
        assert validate_span_trees(tracer.spans()) == []

    def test_record_span_and_links(self):
        clock = FakeClock(2.0)
        tracer = Tracer()
        tracer.bind_clock(clock)
        reading = tracer.start_trace("device.report", "device")
        tracer.end_span(reading)
        decision = tracer.start_trace("scheduler.decision", "scheduler")
        decision.add_link(reading.ctx)
        decision.add_link(None)  # ignored
        tracer.end_span(decision)
        chain = tracer.causal_chain(decision)
        assert chain["path"] == ["scheduler.decision"]
        assert chain["linked"] == [["device.report"]]

    def test_validator_flags_broken_trees(self):
        a = Span(trace_id=1, span_id=1, parent_id=None, name="r1", kind="k",
                 start=0.0, attrs={})
        a.end = 1.0
        b = Span(trace_id=1, span_id=2, parent_id=None, name="r2", kind="k",
                 start=0.0, attrs={})
        b.end = 1.0
        problems = validate_span_trees([a, b])
        assert any("2 roots" in p for p in problems)
        child = Span(trace_id=1, span_id=3, parent_id=1, name="c", kind="k",
                     start=0.5, attrs={})
        child.end = 9.0  # escapes the parent's range
        problems = validate_span_trees([a, child])
        assert any("outside parent" in p for p in problems)
        orphan = Span(trace_id=2, span_id=4, parent_id=99, name="o", kind="k",
                      start=0.0, attrs={})
        problems = validate_span_trees([orphan])
        assert any("missing parent" in p for p in problems)


class TestPilotTracing:
    @pytest.fixture(scope="class")
    def traced(self):
        return run(RunOptions(pilot="matopiba", trace=True, profile=True,
                              pilot_kwargs=dict(SMALL_PILOT)))

    def test_report_bit_identical_with_tracing_on_or_off(self, traced):
        plain = run(RunOptions(pilot="matopiba", pilot_kwargs=dict(SMALL_PILOT)))
        assert dataclasses.asdict(plain.report) == dataclasses.asdict(traced.report)
        assert plain.runner.tracer is NULL_TRACER

    def test_span_trees_well_formed(self, traced):
        tracer = traced.runner.tracer
        assert len(tracer) > 0
        assert validate_span_trees(tracer.spans()) == []

    def test_every_trace_has_single_root(self, traced):
        tracer = traced.runner.tracer
        for trace_id in tracer.trace_ids():
            roots = [s for s in tracer.spans(trace_id) if s.parent_id is None]
            assert len(roots) == 1, trace_id

    def test_full_chain_reconstruction(self, traced):
        tracer = traced.runner.tracer
        decisions = [s for s in tracer.find("scheduler.decision") if s.links]
        assert decisions, "no linked scheduler decisions traced"
        chain = tracer.causal_chain(decisions[0])
        assert chain["path"][0] == "scheduler.cycle"
        linked = chain["linked"][0]
        # The linked reading's own trace tells the transport story.
        assert linked[0] == "device.report"
        for hop in ("mqtt.publish", "broker.route", "context.update"):
            assert hop in linked, (hop, linked)

    def test_cycles_produce_decision_spans(self, traced):
        tracer = traced.runner.tracer
        cycles = tracer.find("scheduler.cycle")
        assert cycles
        # Every cycle span parents its decisions.
        decisions = tracer.find("scheduler.decision")
        cycle_ids = {s.span_id for s in cycles}
        assert decisions
        assert all(d.parent_id in cycle_ids for d in decisions)

    def test_chrome_export_round_trips(self, traced, tmp_path):
        tracer = traced.runner.tracer
        data = tracer.chrome_trace()
        assert validate_chrome_trace(data) == []
        assert len(data["traceEvents"]) == len(tracer)
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(data))
        assert validate_chrome_trace(json.loads(path.read_text())) == []

    def test_profiler_recorded_hot_path(self, traced):
        profiler = traced.runner.profiler
        snapshot = profiler.snapshot(top_k=5)
        assert snapshot["total_events"] > 0
        assert len(snapshot["top"]) == 5
        gauges = traced.runner.sim.metrics.snapshot()["gauges"]
        profile_gauges = {k: v for k, v in gauges.items() if k.startswith("profile.")}
        assert profile_gauges.get("profile.events") == snapshot["total_events"]
        assert profile_gauges.get("profile.keys") == snapshot["keys"]


class TestSpanTreeProperty:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_invariants_hold_across_seeds(self, seed):
        result = run(RunOptions(pilot="matopiba", seed=seed, trace=True,
                                pilot_kwargs=dict(SMALL_PILOT)))
        tracer = result.runner.tracer
        assert validate_span_trees(tracer.spans()) == []
        assert validate_chrome_trace(tracer.chrome_trace()) == []


class TestRunEntrypoint:
    def test_same_seed_same_spans(self):
        def span_shape():
            result = run(RunOptions(pilot="matopiba", seed=4, trace=True,
                                    pilot_kwargs=dict(SMALL_PILOT)))
            return [(s.name, s.kind, s.trace_id, s.parent_id, s.start, s.end)
                    for s in result.runner.tracer.spans()]

        assert span_shape() == span_shape()

    def test_sampling_thins_traces_deterministically(self):
        full = run(RunOptions(pilot="matopiba", seed=4, trace=True,
                              pilot_kwargs=dict(SMALL_PILOT)))
        sampled = run(RunOptions(pilot="matopiba", seed=4, trace=True,
                                 trace_sample_rate=0.25,
                                 pilot_kwargs=dict(SMALL_PILOT)))
        full_stats = full.runner.tracer.stats()
        sampled_stats = sampled.runner.tracer.stats()
        assert sampled_stats["traces_started"] == full_stats["traces_started"]
        assert 0 < sampled_stats["traces_sampled"] < full_stats["traces_sampled"]
        assert validate_span_trees(sampled.runner.tracer.spans()) == []
        # Reports stay identical under any sampling rate.
        assert dataclasses.asdict(full.report) == dataclasses.asdict(sampled.report)

    def test_trace_path_written(self, tmp_path):
        path = tmp_path / "run-trace.json"
        result = run(RunOptions(pilot="matopiba", trace_path=str(path),
                                pilot_kwargs=dict(SMALL_PILOT)))
        assert result.runner.tracer.enabled  # trace_path implies tracing
        data = json.loads(path.read_text())
        assert validate_chrome_trace(data) == []

    def test_unknown_pilot_rejected(self):
        with pytest.raises(ValueError, match="unknown pilot"):
            run(RunOptions(pilot="atlantis"))

    def test_config_mode_applies_trace_override(self):
        runner = build_matopiba_pilot(**SMALL_PILOT)
        result = run(RunOptions(config=runner.config, trace=True))
        assert result.runner.tracer.enabled
        assert len(result.runner.tracer) > 0


class TestKernelProfiler:
    def test_service_aggregation(self):
        profiler = KernelProfiler()

        class Event:
            def __init__(self, label):
                self.label = label
                self.time = 0.0
                self.callback = lambda: None

        for label, wall in (("proc:fw:a", 0.5), ("proc:fw:b", 0.25), ("other", 1.0)):
            profiler.record(Event(label), wall)
        top = profiler.top(2)
        assert top[0].key == "other"
        by_service = profiler.by_service()
        assert by_service["proc:fw"].wall_s == pytest.approx(0.75)
        assert by_service["proc:fw"].count == 2
