"""Tests for the chaos harness: generator structure, invariant auditing,
and the same-seed bit-identity contract (E15)."""

import pytest

from repro.faults import (
    ChaosPlanGenerator,
    ChaosTargets,
    FaultPlan,
    check_invariants,
    run_chaos,
)
from repro.faults.chaos import degraded_mode_scenario_plan, standard_targets
from repro.simkernel.clock import DAY, HOUR

SEEDS = range(40)


def plans(**kwargs):
    for seed in SEEDS:
        yield seed, ChaosPlanGenerator(seed, **kwargs).generate()


class TestGeneratorStructure:
    def test_same_seed_same_plan_fresh_generator(self):
        for seed in (0, 1, 17):
            a = ChaosPlanGenerator(seed).generate()
            b = ChaosPlanGenerator(seed).generate()
            assert a.to_dict() == b.to_dict()

    def test_different_seeds_differ(self):
        dicts = [ChaosPlanGenerator(s).generate().to_dict() for s in range(8)]
        assert len({str(d) for d in dicts}) > 1

    def test_every_plan_has_an_anchor_outage(self):
        for seed, plan in plans():
            anchors = [
                e for e in plan.events
                if e.kind in ("link_partition", "fog_crash")
                and e.duration_s is not None and e.duration_s >= DAY
            ]
            assert anchors, f"seed {seed}: no anchor in {plan.to_dict()}"

    def test_every_window_ends_inside_the_recovery_margin(self):
        for seed, plan in plans():
            for e in plan.events:
                end = e.at_s + (e.duration_s or 0.0)
                assert end <= 0.85 * 6 * DAY + 1e-9, f"seed {seed}: {e}"

    def test_same_target_windows_never_overlap(self):
        for seed, plan in plans():
            by_target = {}
            for e in plan.events:
                if e.duration_s is None:
                    continue
                by_target.setdefault(e.target, []).append(
                    (e.at_s, e.at_s + e.duration_s)
                )
            for target, windows in by_target.items():
                windows.sort()
                for (_, end_a), (start_b, _) in zip(windows, windows[1:]):
                    assert end_a <= start_b, f"seed {seed}: overlap on {target}"

    def test_at_most_one_extra_infrastructure_event(self):
        """Beyond the anchor, at most one fog crash / broker restart —
        their recovery paths contend for the same replicator state."""
        for seed, plan in plans():
            infra = [
                e for e in plan.events
                if e.kind in ("fog_crash", "broker_restart")
            ]
            anchor_crashes = [
                e for e in infra
                if e.kind == "fog_crash" and e.duration_s >= DAY
            ]
            assert len(infra) - len(anchor_crashes[:1]) <= 1, f"seed {seed}"

    def test_protected_devices_are_never_targeted(self):
        targets = standard_targets()
        assert targets.protected_devices
        protected = set(targets.protected_devices)
        for seed, plan in plans(targets=targets):
            hit = {e.target for e in plan.events} & protected
            assert not hit, f"seed {seed}: faulted protected device {hit}"

    def test_event_count_within_bounds(self):
        for seed, plan in plans(min_events=3, max_events=7):
            assert 1 <= len(plan.events) <= 7, f"seed {seed}"

    def test_plans_validate(self):
        for _, plan in plans():
            plan.validate()  # raises on malformed events

    def test_targets_without_fogs_never_crash_one(self):
        targets = ChaosTargets(fogs=(), devices=("d0", "d1"))
        for seed, plan in plans(targets=targets):
            assert all(e.kind != "fog_crash" for e in plan.events)

    def test_faultable_devices_excludes_protected(self):
        targets = ChaosTargets(
            devices=("a", "b", "c"), protected_devices=("b",)
        )
        assert targets.faultable_devices == ("a", "c")


class TestDegradedScenarioPlan:
    def test_shape(self):
        plan = degraded_mode_scenario_plan()
        (event,) = plan.events
        assert event.kind == "fog_crash"
        assert event.at_s == 22.0 * HOUR
        assert event.duration_s == 2 * DAY

    def test_rejects_too_short_season(self):
        with pytest.raises(ValueError):
            degraded_mode_scenario_plan(season_days=3)


class TestInvariantAudit:
    """check_invariants against a real (cheap, 3-day) supervised run."""

    @pytest.fixture(scope="class")
    def finished(self):
        from repro.faults.chaos import build_chaos_runner

        plan = FaultPlan(name="audit").add(
            "link_partition", "wan", 6 * HOUR, 4 * HOUR
        )
        runner = build_chaos_runner(plan, seed=2, season_days=3)
        runner.run_season()
        return runner, plan

    def test_clean_run_passes_every_invariant(self, finished):
        runner, plan = finished
        results = check_invariants(runner, plan)
        assert results and all(r.ok for r in results), [
            (r.name, r.detail) for r in results if not r.ok
        ]

    def test_audit_catches_a_plan_the_run_never_executed(self, finished):
        runner, _ = finished
        bigger = FaultPlan(name="phantom").add(
            "link_partition", "wan", 6 * HOUR, 4 * HOUR
        ).add("sensor_dropout", "chaosfarm-probe-0-1", 10 * HOUR, 2 * HOUR)
        results = {r.name: r for r in check_invariants(runner, bigger)}
        assert not results["all faults injected"].ok

    def test_audit_catches_a_missed_anchor_window(self, finished):
        runner, _ = finished
        # Pretend the plan had a day-long partition the run never saw:
        # no decisions can fall inside a window past the 3-day horizon.
        phantom = FaultPlan(name="late-anchor").add(
            "link_partition", "wan", 6 * HOUR, 4 * HOUR
        ).add("link_partition", "wan", 2.4 * DAY, 1.2 * DAY)
        results = [
            r for r in check_invariants(runner, phantom)
            if r.name == "irrigation continues through outage"
        ]
        assert results and not all(r.ok for r in results)


class TestRunChaosBitIdentity:
    def test_pinned_seed_is_bit_identical_across_invocations(self):
        first = run_chaos(11, season_days=3, max_events=4)
        second = run_chaos(11, season_days=3, max_events=4)
        assert first.fingerprint == second.fingerprint
        assert first.plan.to_dict() == second.plan.to_dict()
        assert first.ok, [(r.name, r.detail) for r in first.failures()]

    def test_result_accessors(self):
        result = run_chaos(11, season_days=3, max_events=4)
        assert result.seed == 11
        assert result.failures() == []
        assert len(result.fingerprint) == 64
