"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import _parse_security, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "matopiba"])
        assert args.pilot == "matopiba"
        assert args.seed == 0
        assert args.days is None

    def test_unknown_pilot_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "atlantis"])

    def test_security_parsing(self):
        config = _parse_security("auth,encryption")
        assert config.auth and config.encryption and not config.detection

    def test_security_empty(self):
        config = _parse_security("")
        assert not config.auth

    def test_security_unknown_flag(self):
        with pytest.raises(SystemExit):
            _parse_security("auth,teleportation")


class TestCommands:
    def test_list_output(self):
        out = io.StringIO()
        assert main(["list"], out=out) == 0
        text = out.getvalue()
        for pilot in ("cbec", "intercrop", "guaspari", "matopiba"):
            assert pilot in text

    def test_run_truncated_season(self):
        out = io.StringIO()
        assert main(["run", "guaspari", "--days", "3", "--seed", "2"], out=out) == 0
        text = out.getvalue()
        assert "guaspari" in text
        assert "telemetry processed" in text

    def test_run_with_security_flags(self):
        out = io.StringIO()
        assert main(
            ["run", "guaspari", "--days", "2", "--security", "auth"], out=out
        ) == 0
        assert "guaspari" in out.getvalue()

    def test_run_prints_metrics_summary(self):
        out = io.StringIO()
        assert main(["run", "guaspari", "--days", "2", "--seed", "2"], out=out) == 0
        summary = [line for line in out.getvalue().splitlines()
                   if line.startswith("metrics:")]
        assert len(summary) == 1
        assert "events/s kernel" in summary[0]
        assert "messages published" in summary[0]
        assert "notifications delivered" in summary[0]

    def test_run_without_resilience_prints_no_resilience_line(self):
        out = io.StringIO()
        assert main(["run", "guaspari", "--days", "2", "--seed", "2"], out=out) == 0
        assert "resilience:" not in out.getvalue()

    def test_run_with_resilience_prints_summary_and_metrics(self, tmp_path):
        out = io.StringIO()
        path = tmp_path / "metrics.json"
        assert main(
            ["run", "guaspari", "--days", "2", "--seed", "2",
             "--resilience", "--metrics", str(path)],
            out=out,
        ) == 0
        summary = [line for line in out.getvalue().splitlines()
                   if line.startswith("resilience:")]
        assert len(summary) == 1
        assert "services healthy" in summary[0]
        assert "restarts" in summary[0]
        snapshot = json.loads(path.read_text())
        health = {name: value for name, value in snapshot["gauges"].items()
                  if name.startswith("resilience.health")}
        assert len(health) >= 5
        assert all(value == 1.0 for value in health.values())

    def test_run_writes_metrics_snapshot(self, tmp_path):
        out = io.StringIO()
        path = tmp_path / "metrics.json"
        assert main(
            ["run", "guaspari", "--days", "2", "--seed", "2",
             "--metrics", str(path)],
            out=out,
        ) == 0
        assert f"metrics snapshot written to {path}" in out.getvalue()
        snapshot = json.loads(path.read_text())
        assert snapshot["enabled"] is True
        # Non-zero activity from at least five instrumented subsystems.
        active = {
            name.split(".", 1)[0]
            for name, value in snapshot["counters"].items() if value > 0
        }
        active |= {
            name.split(".", 1)[0]
            for name, value in snapshot["gauges"].items() if value > 0
        }
        assert len(active & {"simkernel", "mqtt", "context", "fog",
                             "scheduler", "security", "iota"}) >= 5
