"""Smoke tests: the shipped examples must stay runnable.

Only the fast examples run here (the full-season walkthroughs are covered
by the benchmark suite, which exercises the same pilots).
"""

import runpy
import sys

import pytest


def run_example(path, capsys):
    # Execute the script as __main__, exactly as a user would.
    runpy.run_path(path, run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("examples/quickstart.py", capsys)
        assert "telemetry messages processed" in out
        assert "Per-zone state" in out

    def test_cbec_water_distribution(self, capsys):
        out = run_example("examples/cbec_water_distribution.py", capsys)
        assert "CBEC canal allocation" in out
        assert "distribution efficiency" in out

    def test_fog_disconnection(self, capsys):
        out = run_example("examples/fog_disconnection.py", capsys)
        assert "cloud-only deployment" in out
        assert "fog deployment" in out
        # The story the example exists to tell: fog skips nothing.
        assert "decisions skipped (stale/no-data): 0" in out

    def test_fault_smoke(self, capsys):
        with pytest.raises(SystemExit) as exc:
            run_example("examples/fault_smoke.py", capsys)
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "fault smoke passed" in out
        assert "FAIL" not in out
