"""Tests for batched device sampling (SweepScheduler / SweepGroup)."""

import dataclasses

from repro.devices import DeviceConfig, SoilMoistureProbe, WeatherStation
from repro.devices.sweep import SweepScheduler
from repro.mqtt import MqttBroker, MqttClient
from repro.network import Network, RadioModel
from repro.physics import Field, LOAM, SOYBEAN
from repro.simkernel import Simulator


def lossless():
    return RadioModel("t", latency_s=0.01, bandwidth_bps=1e6, loss_rate=0.0)


class Harness:
    def __init__(self, seed=1):
        self.sim = Simulator(seed=seed)
        self.net = Network(self.sim)
        self.broker = MqttBroker(self.sim, "broker")
        self.net.add_node(self.broker)
        self.observer = MqttClient(self.sim, "observer", "broker")
        self.net.add_node(self.observer)
        self.net.connect("observer", "broker", lossless())
        self.reports = []
        self.observer.connect()
        self.observer.subscribe(
            "swamp/#", handler=lambda t, p, q, r: self.reports.append(t)
        )
        self.field = Field("f", 2, 2, LOAM, SOYBEAN, self.sim.rng.stream("field"))
        self.sweeper = SweepScheduler(self.sim, "farm")

    def add_probe(self, i, interval=600.0, batched=True, **config_kwargs):
        zone = list(self.field)[i % 4]
        probe = SoilMoistureProbe(
            self.sim, self.net,
            DeviceConfig(f"p{i}", "farm", "SoilProbe",
                         report_interval_s=interval, **config_kwargs),
            "broker", zone=zone,
        )
        self.net.connect(probe.client.address, "broker", lossless())
        if batched:
            probe.sweeper = self.sweeper
        probe.start()
        return probe

    def reports_of(self, device):
        return [t for t in self.reports if t.endswith(f"attrs/{device.config.device_id}")]


class TestSweepGroup:
    def test_devices_with_same_interval_share_a_group(self):
        h = Harness()
        p0, p1 = h.add_probe(0), h.add_probe(1)
        assert p0._sweep_group is p1._sweep_group
        assert len(p0._sweep_group) == 2
        assert p0._process is None  # no per-device firmware loop spawned

    def test_distinct_intervals_get_distinct_groups(self):
        h = Harness()
        p0 = h.add_probe(0, interval=600.0)
        p1 = h.add_probe(1, interval=1800.0)
        assert p0._sweep_group is not p1._sweep_group
        assert h.sweeper.group_for(600.0) is p0._sweep_group
        assert h.sweeper.total_enrolled() == 2

    def test_group_samples_every_enrolled_device_each_tick(self):
        h = Harness()
        probes = [h.add_probe(i) for i in range(3)]
        h.sim.run(until=3600.0)
        counts = [len(h.reports_of(p)) for p in probes]
        # One batch phase, then one report per device per interval.
        assert counts[0] == counts[1] == counts[2] >= 5

    def test_all_devices_in_a_group_report_at_the_same_tick(self):
        h = Harness()
        p0, p1 = h.add_probe(0), h.add_probe(1)
        h.sim.run(until=3600.0)
        # Both devices published the same number of reports — they ride
        # the same sweep event, not per-device timers.
        assert len(h.reports_of(p0)) == len(h.reports_of(p1)) > 0

    def test_failed_device_skips_but_stays_enrolled(self):
        h = Harness()
        probe = h.add_probe(0)
        probe.failed = True
        h.sim.run(until=1800.0)
        assert h.reports_of(probe) == []
        assert len(probe._sweep_group) == 1
        # Repair: reporting resumes on the next tick.
        probe.failed = False
        h.sim.run(until=3600.0)
        assert len(h.reports_of(probe)) >= 2

    def test_dead_device_dropped_from_group(self):
        h = Harness()
        # Tiny battery: dies after a couple of reports.
        probe = h.add_probe(0, battery_capacity_j=0.5)
        alive = h.add_probe(1)
        h.sim.run(until=7200.0)
        assert probe.dead
        assert len(probe._sweep_group) == 1  # only the healthy probe left
        assert len(h.reports_of(alive)) > len(h.reports_of(probe))

    def test_stop_removes_device_immediately(self):
        h = Harness()
        p0, p1 = h.add_probe(0), h.add_probe(1)
        h.sim.run(until=1200.0)
        seen = len(h.reports_of(p0))
        p0.stop()
        assert len(p1._sweep_group) == 1
        h.sim.run(until=4800.0)
        assert len(h.reports_of(p0)) == seen  # no reports after stop
        assert len(h.reports_of(p1)) > seen

    def test_empty_group_stops_ticking_and_restarts_on_enroll(self):
        h = Harness()
        p0 = h.add_probe(0)
        group = p0._sweep_group
        p0.stop()
        h.sim.run(until=1200.0)  # the in-flight tick fires on nothing
        assert not group._ticking
        p1 = h.add_probe(1)
        assert p1._sweep_group is group
        assert group._ticking
        h.sim.run(until=4800.0)
        assert len(h.reports_of(p1)) >= 4

    def test_remove_unknown_device_is_a_noop(self):
        h = Harness()
        p0 = h.add_probe(0)
        other = h.add_probe(1, interval=1800.0)
        assert p0._sweep_group.remove(other) is False
        assert len(p0._sweep_group) == 1

    def test_direct_constructed_device_keeps_legacy_loop(self):
        h = Harness()
        probe = h.add_probe(0, batched=False)
        assert probe._sweep_group is None
        assert probe._process is not None
        h.sim.run(until=3600.0)
        assert len(h.reports_of(probe)) >= 5


class TestPilotBatchedSampling:
    def _report(self, batched):
        from repro.core.deployment import DeploymentKind
        from repro.core.pilot import PilotConfig, PilotRunner
        from repro.physics.weather import BARREIRAS_MATOPIBA

        runner = PilotRunner(PilotConfig(
            name="sweep", farm="sweepfarm", climate=BARREIRAS_MATOPIBA,
            crop=SOYBEAN, soil=LOAM, rows=2, cols=2, season_days=14,
            start_day_of_year=150, initial_theta=0.20,
            deployment=DeploymentKind.FOG, seed=5,
            batched_sampling=batched,
        ))
        runner.run_season()
        return runner, dataclasses.asdict(runner.report())

    def test_batched_and_legacy_agree_on_platform_behaviour(self):
        runner_b, batched = self._report(True)
        runner_l, legacy = self._report(False)
        assert runner_b.sweep_scheduler is not None
        assert runner_l.sweep_scheduler is None
        assert runner_b.sweep_scheduler.total_enrolled() > 0
        # The schedule differs (Tier B) but the platform outcome must be
        # equivalent: same decision cadence, no losses, same physics
        # envelope (water within a few percent).
        for key in ("decision_cycles", "devices_dead", "skipped_no_data",
                    "measures_dropped_unprovisioned", "broker_denied",
                    "replicator_dropped", "alerts"):
            assert batched[key] == legacy[key], key
        assert batched["measures_processed"] > 0
        # Sampling-phase shifts move individual irrigation events across
        # decision-cycle boundaries, so short windows can differ by one
        # cycle's water; the crop outcome and the cumulative envelope
        # must still agree.
        assert abs(batched["relative_yield"] - legacy["relative_yield"]) < 0.005
        if legacy["irrigation_m3"]:
            ratio = batched["irrigation_m3"] / legacy["irrigation_m3"]
            assert 0.85 < ratio < 1.15

    def test_batched_run_schedules_fewer_events(self):
        runner_b, _ = self._report(True)
        runner_l, _ = self._report(False)
        assert runner_b.sim.events_executed < runner_l.sim.events_executed
