"""Fault injection: the platform under churn, flapping links and dying nodes.

Dependability tests beyond single-fault scenarios: every test injects a
*pattern* of faults and asserts platform invariants — no crash, no wedged
state, eventual convergence, conservation of water accounting — rather
than specific numbers.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.context import ContextBroker
from repro.core import DeploymentKind, PilotConfig, PilotRunner
from repro.fog.replication import CloudSyncTarget, Replicator
from repro.mqtt import MqttBroker, MqttClient
from repro.network import Network, RadioModel
from repro.physics import LOAM, SOYBEAN
from repro.physics.weather import BARREIRAS_MATOPIBA
from repro.simkernel import Simulator
from repro.simkernel.clock import DAY, HOUR


def lossless():
    return RadioModel("t", latency_s=0.01, bandwidth_bps=1e6, loss_rate=0.0)


class TestFlappingWan:
    def test_replication_survives_link_flapping(self):
        """The WAN flaps every few minutes for hours; after it stabilizes,
        the cloud converges with zero overflow loss."""
        sim = Simulator(seed=42)
        net = Network(sim)
        fog = ContextBroker(sim, "fog")
        cloud = ContextBroker(sim, "cloud")
        CloudSyncTarget(sim, net, "cloud:sync", cloud)
        replicator = Replicator(sim, net, "fog:sync", fog, "cloud:sync",
                                sync_interval_s=15.0, retry_timeout_s=10.0)
        net.connect("fog:sync", "cloud:sync",
                    RadioModel("wan", 0.05, 8e6, 0.01))

        def updater():
            n = 0
            while sim.now < 5.5 * HOUR:  # stop before the convergence check
                yield 30.0
                n += 1
                fog.ensure_entity(f"e{n % 25}", "T", {"v": n})

        def flapper():
            rng = sim.rng.stream("flap")
            for _ in range(40):
                yield rng.uniform(60.0, 300.0)
                net.partition("fog:sync", "cloud:sync")
                yield rng.uniform(30.0, 240.0)
                net.heal("fog:sync", "cloud:sync")

        sim.spawn(updater(), "updater")
        sim.spawn(flapper(), "flapper")
        sim.run(until=6 * HOUR)
        # Link now stable: convergence within a few sync rounds.
        sim.run(until=6 * HOUR + 600.0)
        assert replicator.backlog_depth == 0
        assert replicator.updates_dropped_overflow == 0
        assert cloud.entity_count() == 25
        # Cloud state matches fog state exactly.
        for entity_id in sorted(fog.entities):
            assert cloud.get_entity(entity_id).get("v") == fog.get_entity(entity_id).get("v")

    @given(flap_seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=8, deadline=None)
    def test_property_no_loss_under_random_flapping(self, flap_seed):
        sim = Simulator(seed=flap_seed)
        net = Network(sim)
        fog = ContextBroker(sim, "fog")
        cloud = ContextBroker(sim, "cloud")
        CloudSyncTarget(sim, net, "cloud:sync", cloud)
        replicator = Replicator(sim, net, "fog:sync", fog, "cloud:sync",
                                sync_interval_s=10.0, retry_timeout_s=8.0)
        net.connect("fog:sync", "cloud:sync", lossless())
        rng = sim.rng.stream("chaos")

        def updater():
            n = 0
            while n < 60:
                yield 20.0
                n += 1
                fog.ensure_entity(f"e{n}", "T", {"v": n})

        def flapper():
            while sim.now < 1200.0:
                yield rng.uniform(20.0, 120.0)
                net.partition("fog:sync", "cloud:sync")
                yield rng.uniform(10.0, 60.0)
                net.heal("fog:sync", "cloud:sync")

        sim.spawn(updater(), "updater")
        sim.spawn(flapper(), "flapper")
        sim.run(until=3000.0)
        assert replicator.backlog_depth == 0
        assert cloud.entity_count() == 60


class TestBrokerChurn:
    def test_client_churn_does_not_wedge_broker(self):
        """Clients connect/disconnect/reconnect aggressively; the broker's
        session table stays consistent and traffic keeps flowing."""
        sim = Simulator(seed=7)
        net = Network(sim)
        broker = MqttBroker(sim, "broker")
        net.add_node(broker)
        stable = MqttClient(sim, "stable", "broker")
        net.add_node(stable)
        net.connect("stable", "broker", lossless())
        received = []
        stable.connect()
        sim.run(until=1.0)
        stable.subscribe("t/#", handler=lambda t, p, q, r: received.append(p))
        sim.run(until=2.0)

        churners = []
        for i in range(5):
            client = MqttClient(sim, f"churn{i}", "broker", keepalive_s=30.0)
            net.add_node(client)
            net.connect(f"churn{i}", "broker", lossless())
            churners.append(client)

        def churn(client, offset):
            yield offset
            while sim.now < 500.0:
                client.connect()
                yield 20.0
                if client.connected:
                    client.publish("t/x", b"hello")
                yield 10.0
                client.disconnect()
                yield 15.0

        for i, client in enumerate(churners):
            sim.spawn(churn(client, float(i)), f"churn{i}")
        sim.run(until=700.0)
        assert len(received) >= 30
        # All churners cleanly gone; the stable client still connected.
        assert stable.connected
        assert broker.connected_clients() == ["stable"]

    def test_session_takeover_storm(self):
        """Many clients fighting over one client id never corrupt state."""
        sim = Simulator(seed=9)
        net = Network(sim)
        broker = MqttBroker(sim, "broker")
        net.add_node(broker)
        fighters = []
        for i in range(4):
            client = MqttClient(sim, f"addr{i}", "broker", client_id="shared-id",
                                auto_reconnect=False)
            net.add_node(client)
            net.connect(f"addr{i}", "broker", lossless())
            fighters.append(client)

        def fight(client, offset):
            yield offset
            for _ in range(10):
                client.connect()
                yield 5.0

        for i, client in enumerate(fighters):
            sim.spawn(fight(client, float(i)), f"fight{i}")
        sim.run(until=300.0)
        # Exactly one live session for the shared id.
        session = broker.sessions.get("shared-id")
        assert session is not None
        live = [c for c in fighters if c.connected]
        # The broker's view points at one address; no duplicated sessions.
        assert list(broker.sessions).count("shared-id") == 1
        assert session.address in {c.address for c in fighters}


class TestDeviceMortality:
    def test_season_with_random_device_failures(self):
        """MTBF-driven transient failures thin telemetry but never crash
        the platform, and water accounting stays conserved."""
        config = PilotConfig(
            name="mortality",
            farm="mfarm",
            climate=BARREIRAS_MATOPIBA,
            crop=SOYBEAN,
            soil=LOAM,
            rows=2, cols=2,
            season_days=12,
            start_day_of_year=150,
            initial_theta=0.22,
            deployment=DeploymentKind.FOG,
            irrigation_kind="valves",
            scheduler_kind="smart",
            seed=13,
        )
        runner = PilotRunner(config)
        # Retro-fit aggressive failure behaviour onto the probes.
        for probe in runner.probes.values():
            probe.config.mtbf_s = 2 * DAY
            probe.config.repair_time_s = 6 * HOUR
            runner.sim.spawn(probe._failure_loop(), f"fail:{probe.config.device_id}")
        report = runner.run_season()
        assert report.measures_processed > 0
        assert runner.sim.trace.count("device") > 0  # failures actually happened
        # Mass balance per zone: in = out + storage change.
        for zone in runner.field:
            accounting = zone.water_balance.water_accounting()
            water_in = accounting["rain_mm"] + accounting["irrigation_mm"]
            water_out = (accounting["et_actual_mm"] + accounting["drainage_mm"]
                         + accounting["runoff_mm"])
            start_mm = 0.22 * 1000.0  # theta * depth... depth varies; use balance
            # Invariant check via the balance object itself: theta physical.
            soil = zone.water_balance.soil
            assert soil.theta_wp - 1e-9 <= zone.theta <= soil.theta_sat + 1e-9
            assert water_in >= 0 and water_out >= 0

    def test_dead_probe_starves_only_its_zone(self):
        config = PilotConfig(
            name="dead-probe",
            farm="dfarm",
            climate=BARREIRAS_MATOPIBA,
            crop=SOYBEAN,
            soil=LOAM,
            rows=2, cols=2,
            season_days=10,
            start_day_of_year=150,
            initial_theta=0.20,
            deployment=DeploymentKind.FOG,
            irrigation_kind="valves",
            scheduler_kind="smart",
            seed=17,
        )
        runner = PilotRunner(config)
        victim_zone = list(runner.field)[0]
        victim = runner.probes[victim_zone.zone_id]
        runner.sim.schedule_at(2 * DAY, lambda: setattr(victim, "dead", True))
        report = runner.run_season()
        # Stale-data skips accumulate for the dead zone only...
        assert report.skipped_stale > 0
        # ...while the other zones keep getting irrigated.
        others = [z for z in runner.field if z.zone_id != victim_zone.zone_id]
        assert all(z.water_balance.cum_irrigation_mm > 0 for z in others)


class TestFaultPlanEndToEnd:
    """A full pilot season driven by a declarative fault plan.

    Three compounding incidents — a day-long WAN partition, a broker
    restart outage and a six-hour probe dropout — and the acceptance
    criteria of the fault subsystem: the platform recovers (backlog
    drained, sessions re-established) and the whole perturbed run stays
    bit-identical across same-seed executions.
    """

    FARM = "faultfarm"

    def config(self, fault_plan):
        from repro.core.security_profile import SecurityConfig  # default profile

        return PilotConfig(
            name="faulted", farm=self.FARM,
            climate=BARREIRAS_MATOPIBA, crop=SOYBEAN, soil=LOAM,
            rows=2, cols=2, spatial_cv=0.1, season_days=10,
            start_day_of_year=150, initial_theta=0.20,
            deployment=DeploymentKind.FOG, irrigation_kind="valves",
            scheduler_kind="smart", seed=33, fault_plan=fault_plan,
        )

    def plan(self):
        from repro.faults import FaultPlan

        return (
            FaultPlan("storm-week")
            .add("link_partition", "wan", at_s=2 * DAY, duration_s=1 * DAY)
            .add("broker_restart", "broker", at_s=4 * DAY, duration_s=120.0)
            .add("sensor_dropout", f"{self.FARM}-probe-0-0",
                 at_s=5 * DAY, duration_s=6 * HOUR)
        )

    def run_once(self):
        runner = PilotRunner(self.config(self.plan()))
        report = runner.run_season()
        return runner, report

    def test_platform_recovers_from_the_full_plan(self):
        import dataclasses

        runner, report = self.run_once()
        injector = runner.fault_injector
        assert injector is not None
        assert injector.plans_applied == ["storm-week"]
        assert injector.injected == 3
        assert injector.recovered == 3
        assert injector.active_count == 0
        # WAN healed days before season end: the sync backlog fully drained.
        assert runner.replicator.backlog_depth == 0
        assert report.replicator_synced > 0
        # The broker restart severed the agent's session; it reconnected.
        assert runner.agent.client.stats.connects >= 2
        assert runner.fog.mqtt.stats.restarts == 1
        # Fault telemetry flowed into the shared registry.
        assert runner.metrics.total("faults.injected") == 3
        assert runner.metrics.total("faults.recovered") == 3
        histogram = runner.metrics.value(
            "faults.recovery_time_s", {"kind": "link_partition"})
        assert histogram["count"] == 1
        assert histogram["sum"] == pytest.approx(1 * DAY)
        # The faults actually bit: the dropout probe reported less than a
        # clean same-seed run would have.
        clean = PilotRunner(self.config(None))
        clean_report = clean.run_season()
        assert report.measures_processed < clean_report.measures_processed
        # Service graph: the injector rode in as a proper runtime service,
        # and only because a plan was configured.
        assert runner.runtime.states()["faults.injector"] == "shutdown"
        assert "faults.injector" not in clean.runtime.states()
        assert dataclasses.asdict(report) != dataclasses.asdict(clean_report)

    def test_faulted_run_is_deterministic(self):
        import dataclasses

        _, first = self.run_once()
        _, second = self.run_once()
        assert dataclasses.asdict(first) == dataclasses.asdict(second)


class TestBrokerOverloadRecovery:
    def test_offline_queue_bounded(self):
        """A persistent subscriber that never returns cannot grow broker
        memory without bound."""
        sim = Simulator(seed=21)
        net = Network(sim)
        broker = MqttBroker(sim, "broker", max_offline_queue=50)
        net.add_node(broker)
        publisher = MqttClient(sim, "pub", "broker")
        sleeper = MqttClient(sim, "sleepy", "broker", clean_session=False, keepalive_s=0)
        for client in (publisher, sleeper):
            net.add_node(client)
            net.connect(client.address, "broker", lossless())
            client.connect()
        sim.run(until=1.0)
        sleeper.subscribe("t", qos=1)
        sim.run(until=2.0)
        sleeper.disconnect()
        sim.run(until=3.0)
        for i in range(300):
            publisher.publish("t", bytes([i % 250]), qos=1)
        sim.run(until=30.0)
        session = broker.sessions["sleepy"]
        assert len(session.offline_queue) <= 50
        assert broker.stats.offline_dropped > 0
