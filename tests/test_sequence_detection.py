"""Tests for the event-sequence behaviour model and command-rhythm monitor."""

import pytest

from repro.security.detection import CommandRhythmMonitor, EventSequenceModel

DAY = 86400.0
HOUR = 3600.0


def train_daily_rhythm(model, days=14, hour=6.0):
    """A valve that opens every morning and closes two hours later."""
    for day in range(days):
        base = day * DAY + hour * HOUR
        model.train("open", base)
        model.train("close", base + 2 * HOUR)
    model.end_training()


class TestEventSequenceModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            EventSequenceModel(buckets_per_day=0)
        with pytest.raises(ValueError):
            EventSequenceModel(smoothing=0.0)

    def test_symbol_buckets_time_of_day(self):
        model = EventSequenceModel(buckets_per_day=6)
        assert model.symbol("open", 0.0) == ("open", 0)
        assert model.symbol("open", 5 * HOUR) == ("open", 1)
        assert model.symbol("open", DAY - 1) == ("open", 5)
        # Same time next day -> same bucket.
        assert model.symbol("open", DAY + 5 * HOUR) == ("open", 1)

    def test_learned_transition_probable(self):
        model = EventSequenceModel()
        train_daily_rhythm(model)
        open_sym = model.symbol("open", 6 * HOUR)
        close_sym = model.symbol("close", 8 * HOUR)
        assert model.transition_probability(open_sym, close_sym) > 0.5

    def test_unseen_transition_improbable(self):
        model = EventSequenceModel()
        train_daily_rhythm(model)
        open_morning = model.symbol("open", 6 * HOUR)
        open_night = model.symbol("open", 3 * HOUR)
        assert (model.transition_probability(open_morning, open_night)
                < model.transition_probability(open_morning, model.symbol("close", 8 * HOUR)))

    def test_normal_sequence_scores_low(self):
        model = EventSequenceModel()
        train_daily_rhythm(model)
        base = 20 * DAY + 6 * HOUR
        assert model.score("open", base) < 1.0
        assert model.score("close", base + 2 * HOUR) < 1.0

    def test_night_command_scores_high(self):
        model = EventSequenceModel()
        train_daily_rhythm(model)
        base = 20 * DAY + 6 * HOUR
        model.score("open", base)
        model.score("close", base + 2 * HOUR)
        # An 'open' at 3 a.m. following the evening close: never seen.
        assert model.score("open", 20 * DAY + 27 * HOUR) > 1.0

    def test_command_burst_scores_high(self):
        model = EventSequenceModel()
        train_daily_rhythm(model)
        base = 20 * DAY + 6 * HOUR
        model.score("open", base)
        # open -> open (same bucket) was never observed in training.
        scores = [model.score("open", base + i * 60.0) for i in range(1, 5)]
        assert max(scores) > 1.0

    def test_undertrained_model_abstains(self):
        model = EventSequenceModel(min_training_events=50)
        for day in range(3):
            model.train("open", day * DAY + 6 * HOUR)
        # Still below min_training_events: scores 0 and keeps learning.
        assert model.score("open", 100 * DAY) == 0.0

    def test_known_transitions_listing(self):
        model = EventSequenceModel()
        train_daily_rhythm(model, days=5)
        transitions = model.known_transitions()
        assert transitions
        (previous, current, count) = transitions[0]
        assert count >= 4


class TestCommandRhythmMonitor:
    def run_rhythm(self, monitor, days, start_day=0, hour=6.0, device="v1"):
        for day in range(start_day, start_day + days):
            base = day * DAY + hour * HOUR
            monitor.observe(device, "open", base)
            monitor.observe(device, "close", base + 2 * HOUR)

    def test_clean_rhythm_no_alerts(self):
        monitor = CommandRhythmMonitor(training_window_s=7 * DAY)
        self.run_rhythm(monitor, days=20)
        assert monitor.alerts == []

    def test_injected_night_commands_alert(self):
        monitor = CommandRhythmMonitor(training_window_s=7 * DAY)
        self.run_rhythm(monitor, days=14)
        # The rogue controller floods opens at 2 a.m.
        for i in range(4):
            monitor.observe("v1", "open", 15 * DAY + 2 * HOUR + i * 120.0)
        assert len(monitor.alerts_for("v1")) >= 2
        assert all(a["command"] == "open" for a in monitor.alerts)

    def test_per_device_models_independent(self):
        monitor = CommandRhythmMonitor(training_window_s=7 * DAY)
        self.run_rhythm(monitor, days=14, device="v1")
        self.run_rhythm(monitor, days=14, device="v2", hour=18.0)
        # v2's evening open is normal for v2, would be odd for v1.
        monitor.observe("v2", "open", 15 * DAY + 18 * HOUR)
        assert monitor.alerts_for("v2") == []

    def test_on_alert_callback(self):
        seen = []
        monitor = CommandRhythmMonitor(training_window_s=7 * DAY, on_alert=seen.append)
        self.run_rhythm(monitor, days=14)
        for i in range(4):
            monitor.observe("v1", "open", 15 * DAY + 2 * HOUR + i * 60.0)
        assert seen
        assert seen[0]["device"] == "v1"


class TestAgentCommandGateIntegration:
    def make_stack(self):
        from repro.agents import DeviceProvision, IoTAgent
        from repro.context import ContextBroker
        from repro.mqtt import MqttBroker
        from repro.network import Network, RadioModel
        from repro.simkernel import Simulator

        sim = Simulator(seed=3)
        net = Network(sim)
        broker = MqttBroker(sim, "broker")
        net.add_node(broker)
        context = ContextBroker(sim)
        agent = IoTAgent(sim, net, "iota", "broker", context, "farmA")
        net.connect("iota", "broker", RadioModel("t", 0.01, 1e6, 0.0))
        agent.start()
        agent.provision(DeviceProvision("v1", "", "urn:Valve:v1", "Valve", commands=("open",)))
        sim.run(until=1.0)
        return sim, agent

    def test_gate_blocks_commands(self):
        sim, agent = self.make_stack()
        agent.command_gate = lambda device_id, command: False
        assert not agent.send_command("v1", {"cmd": "open", "depth_mm": 5})
        assert agent.stats.commands_gated == 1
        assert agent.stats.commands_sent == 0

    def test_gate_allows_commands(self):
        sim, agent = self.make_stack()
        agent.command_gate = lambda device_id, command: command.get("cmd") == "open"
        assert agent.send_command("v1", {"cmd": "open", "depth_mm": 5})
        assert not agent.send_command("v1", {"cmd": "close"})

    def test_observers_see_dispatched_commands(self):
        sim, agent = self.make_stack()
        seen = []
        agent.command_observers.append(lambda d, c, t: seen.append((d, c["cmd"], t)))
        agent.send_command("v1", {"cmd": "open", "depth_mm": 5})
        assert seen == [("v1", "open", 1.0)]


class TestLedgerIntegration:
    def make_runner(self, **security_kwargs):
        from repro.core import DeploymentKind, PilotConfig, PilotRunner, SecurityConfig
        from repro.physics import LOAM, SOYBEAN
        from repro.physics.weather import BARREIRAS_MATOPIBA

        return PilotRunner(PilotConfig(
            name="ledger-test",
            farm="ledgerfarm",
            climate=BARREIRAS_MATOPIBA,
            crop=SOYBEAN,
            soil=LOAM,
            rows=2, cols=2,
            season_days=8,
            start_day_of_year=150,
            initial_theta=0.21,
            deployment=DeploymentKind.FOG,
            irrigation_kind="valves",
            scheduler_kind="smart",
            security=SecurityConfig(**security_kwargs),
            seed=11,
        ))

    def test_enrolment_writes_lifecycle_events(self):
        runner = self.make_runner(ledger=True)
        chain = runner.security.chain
        assert chain is not None
        registry = runner.security.lifecycle_registry
        registry.refresh()
        from repro.security.ledger import DeviceState

        for zone_id, valve in runner.valves.items():
            assert registry.state_of(valve.config.device_id) is DeviceState.ACTIVE
            assert registry.owner_of(valve.config.device_id) == "ledgerfarm"
        assert chain.verify_chain()

    def test_contract_gates_do_not_block_legitimate_commands(self):
        runner = self.make_runner(ledger=True)
        report = runner.run_season()
        assert report.commands_sent > 0
        assert runner.agent.stats.commands_gated == 0

    def test_quarantined_device_refused_by_contract(self):
        from repro.simkernel.clock import DAY as DAY_S

        runner = self.make_runner(ledger=True, detection=True,
                                  detection_training_s=4 * DAY_S)
        from repro.security.attacks import SensorTamper, TamperMode

        victim_zone = list(runner.field)[0]
        probe = runner.probes[victim_zone.zone_id]
        tamper = SensorTamper(runner.sim, probe, "soilMoisture",
                              TamperMode.BIAS, magnitude=0.3)
        runner.sim.schedule_at(5 * DAY_S, tamper.start)
        runner.run_season()
        # The quarantine was committed on-chain...
        from repro.security.ledger import DeviceState

        registry = runner.security.lifecycle_registry
        registry.refresh()
        assert registry.state_of(probe.config.device_id) is DeviceState.SUSPENDED
        # ...and the contract now refuses commands to that device id.
        assert not runner.security.contract.authorize(
            probe.config.device_id, {"farm": "ledgerfarm"}
        )

    def test_rhythm_monitor_learns_scheduler_commands(self):
        runner = self.make_runner(command_rhythm=True)
        runner.run_season()
        monitor = runner.security.rhythm_monitor
        assert monitor is not None
        # The scheduler's daily cycle was observed for training.
        assert sum(m.trained_events for m in monitor._models.values()) > 0


class TestInsiderCommandInjection:
    """End-to-end: the rhythm monitor catches off-pattern commands injected
    at the broker with *valid* credentials — the insider threat that PEP
    and the ledger contract cannot stop (the paper's 'what is normal vs
    what is a threat' case)."""

    def test_night_flood_alerts_after_training(self):
        from repro.core import DeploymentKind, PilotConfig, PilotRunner, SecurityConfig
        from repro.devices.codec import encode_payload
        from repro.mqtt import MqttClient
        from repro.network import RadioModel
        from repro.physics import LOAM, SOYBEAN
        from repro.physics.weather import BARREIRAS_MATOPIBA
        from repro.simkernel.clock import DAY as DAY_S, HOUR as HOUR_S

        runner = PilotRunner(PilotConfig(
            name="insider",
            farm="ifarm",
            climate=BARREIRAS_MATOPIBA,
            crop=SOYBEAN,
            soil=LOAM,
            rows=2, cols=2,
            season_days=16,
            start_day_of_year=150,
            initial_theta=0.20,
            deployment=DeploymentKind.FOG,
            irrigation_kind="valves",
            scheduler_kind="smart",
            security=SecurityConfig(command_rhythm=True,
                                    detection_training_s=10 * DAY_S),
            seed=23,
        ))
        victim_valve = next(iter(runner.valves.values()))
        insider = MqttClient(runner.sim, "insider", runner.broker_address,
                             client_id="disgruntled", username="ifarm")
        runner.net.add_node(insider)
        runner.net.connect("insider", runner.broker_address,
                           RadioModel("t", 0.01, 1e6, 0.0))
        insider.connect()

        def inject():
            # 2 a.m. on day 12 (post-training): open-flood the valve.
            for i in range(4):
                insider.publish(
                    victim_valve.command_topic,
                    encode_payload({"cmd": "open", "duration_s": 6 * 3600.0}),
                    qos=1,
                )
                yield 120.0

        runner.sim.schedule_at(12 * DAY_S + 2 * HOUR_S,
                               lambda: runner.sim.spawn(inject(), "inject"))
        runner.run_season()
        monitor = runner.security.rhythm_monitor
        alerts = monitor.alerts_for(victim_valve.config.device_id)
        assert alerts, "insider night commands must break the learned rhythm"
        assert all(a["time"] >= 12 * DAY_S for a in alerts)
        # The scheduler's own daily commands never alerted.
        for valve in runner.valves.values():
            if valve.config.device_id == victim_valve.config.device_id:
                continue
            assert monitor.alerts_for(valve.config.device_id) == []
