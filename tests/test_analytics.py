"""Tests for the NDVI map service and season profiles."""

import pytest

from repro.analytics import NdviMapService, SeasonProfileBuilder, expected_ndvi_band
from repro.context import ContextBroker, ShortTermHistory
from repro.physics import Field, LOAM, SOYBEAN
from repro.simkernel import Simulator
from repro.simkernel.rng import RngRegistry


def make_service(seed=0, rows=3, cols=3):
    sim = Simulator(seed=seed)
    context = ContextBroker(sim)
    field = Field("f", rows, cols, LOAM, SOYBEAN, sim.rng.stream("field"))
    service = NdviMapService(context, field)
    context.create_entity("urn:Drone:d1", "Drone", {"deviceId": "d1"})
    return sim, context, field, service


def report(context, drone_entity, zone, ndvi):
    context.update_attributes(
        drone_entity,
        {"ndvi": ndvi, "zone": zone.zone_id, "row": zone.row, "col": zone.col},
    )


class TestExpectedBand:
    def test_band_widens_with_canopy(self):
        low_early, high_early = expected_ndvi_band(SOYBEAN, 5)
        low_mid, high_mid = expected_ndvi_band(SOYBEAN, 60)
        assert high_mid > high_early
        assert low_mid >= low_early

    def test_band_contains_model_output(self):
        from repro.physics.ndvi import ndvi_for_zone

        field = Field("f", 1, 1, LOAM, SOYBEAN, RngRegistry(0).stream("f"))
        zone = field.zone(0, 0)
        for day in (5, 30, 60, 100):
            zone.season_day = day
            low, high = expected_ndvi_band(SOYBEAN, day)
            for stress in (0.0, 0.5, 1.0):
                value = ndvi_for_zone(zone, stress_memory=stress)
                assert low <= value <= high

    def test_bounds_in_unit_interval(self):
        low, high = expected_ndvi_band(SOYBEAN, 60, slack=0.5)
        assert 0.0 <= low < high <= 1.0


class TestNdviMapService:
    def test_map_assembly_and_consensus(self):
        sim, context, field, service = make_service()
        for zone in field:
            report(context, "urn:Drone:d1", zone, 0.5)
        assert service.coverage() == 1.0
        consensus = service.consensus_map()
        assert len(consensus) == 9
        assert all(v == 0.5 for v in consensus.values())

    def test_consensus_median_across_sources(self):
        sim, context, field, service = make_service()
        context.create_entity("urn:Drone:d2", "Drone", {"deviceId": "d2"})
        context.create_entity("urn:Drone:d3", "Drone", {"deviceId": "d3"})
        zone = field.zone(0, 0)
        report(context, "urn:Drone:d1", zone, 0.4)
        report(context, "urn:Drone:d2", zone, 0.45)
        report(context, "urn:Drone:d3", zone, 0.95)  # fake
        assert service.consensus_map()[zone.zone_id] == 0.45

    def test_stress_zone_classification(self):
        sim, context, field, service = make_service()
        for zone in field:
            report(context, "urn:Drone:d1", zone, 0.3 if zone.row == 0 else 0.7)
        stressed = service.stress_zones(threshold=0.55)
        assert stressed == sorted(z.zone_id for z in field if z.row == 0)

    def test_map_error_vs_truth(self):
        sim, context, field, service = make_service()
        from repro.physics.ndvi import ndvi_for_zone

        for zone in field:
            report(context, "urn:Drone:d1", zone, ndvi_for_zone(zone))
        assert service.map_error() == pytest.approx(0.0, abs=1e-9)
        service.reset_epoch()
        for zone in field:
            report(context, "urn:Drone:d1", zone, ndvi_for_zone(zone) + 0.2)
        assert service.map_error() == pytest.approx(0.2, abs=1e-6)

    def test_band_screening_rejects_impossible_claims(self):
        sim, context, field, service = make_service()
        service.enable_band_screening(SOYBEAN)
        service.set_season_day(5)  # bare field: high NDVI impossible
        zone = field.zone(0, 0)
        report(context, "urn:Drone:d1", zone, 0.85)
        assert service.rejected_out_of_band == 1
        assert service.coverage() == 0.0
        low, high = expected_ndvi_band(SOYBEAN, 5)
        report(context, "urn:Drone:d1", zone, (low + high) / 2)
        assert service.coverage() > 0.0

    def test_ignores_non_ndvi_updates(self):
        sim, context, field, service = make_service()
        context.update_attributes("urn:Drone:d1", {"battery": 0.5})
        assert service.observations == {}

    def test_misclassified_stress_zones(self):
        sim, context, field, service = make_service()
        from repro.physics.ndvi import ndvi_for_zone

        # Truth: early season, low NDVI (stressed classification).
        for zone in field:
            report(context, "urn:Drone:d1", zone, 0.9)  # attacker: all healthy
        flips = service.misclassified_stress_zones(threshold=0.55)
        assert flips == len(field)  # truth ~0.2 early season -> all flipped


class TestSeasonProfiles:
    def make(self, seed=0):
        sim = Simulator(seed=seed)
        context = ContextBroker(sim)
        history = ShortTermHistory(context)
        builder = SeasonProfileBuilder(history)
        context.create_entity("e1", "AgriParcel")
        return sim, context, history, builder

    def feed_days(self, sim, context, values_by_day, per_day=4):
        for day, value in values_by_day.items():
            for i in range(per_day):
                t = day * 86400.0 + i * 3600.0
                sim.schedule_at(t, lambda v=value: context.update_attributes("e1", {"m": v}))
        sim.run()

    def test_profile_mean(self):
        sim, context, history, builder = self.make()
        self.feed_days(sim, context, {0: 0.3, 1: 0.28, 2: 0.26})
        builder.ingest("e1", "m")
        assert builder.expected("m", 0)[0] == pytest.approx(0.3)
        assert builder.expected("m", 2)[0] == pytest.approx(0.26)
        assert builder.expected("m", 9) is None
        assert builder.days_covered("m") == 3

    def test_confidence_scales_with_support(self):
        sim, context, history, builder = self.make()
        self.feed_days(sim, context, {0: 0.3}, per_day=2)
        self.feed_days(sim, context, {1: 0.3}, per_day=30)
        builder.ingest("e1", "m")
        assert builder.confidence("m", 0) < builder.confidence("m", 1)
        assert builder.confidence("m", 1) == 1.0
        assert builder.confidence("m", 5) == 0.0

    def test_deviation_score_weighted_by_confidence(self):
        sim, context, history, builder = self.make()
        self.feed_days(sim, context, {0: 0.3}, per_day=3)   # thin profile
        self.feed_days(sim, context, {1: 0.3}, per_day=40)  # solid profile
        builder.ingest("e1", "m")
        thin = builder.deviation_score("m", 0, 0.9)
        solid = builder.deviation_score("m", 1, 0.9)
        assert thin is not None and solid is not None
        assert thin < solid  # the partial profile cannot condemn as hard
        assert builder.deviation_score("m", 7, 0.9) is None
