"""Tests for attack mechanics, the SDN defence and anonymization."""

import pytest

from repro.devices import DeviceConfig, SoilMoistureProbe, Valve
from repro.mqtt import MqttBroker, MqttClient
from repro.network import Network, RadioModel
from repro.physics import Field, LOAM, SOYBEAN
from repro.security.anonymization import (
    Anonymizer,
    generalize_bucket,
    generalize_coordinate,
    pseudonymize,
    reidentification_rate,
    utility_error,
)
from repro.security.attacks import (
    DosFlood,
    Eavesdropper,
    PacketReplayer,
    RadioJammer,
    RogueActuatorController,
    SensorTamper,
    SybilSwarm,
    TamperMode,
)
from repro.security.sdn import FloodDefenseApp, SdnController
from repro.simkernel import Simulator


def model(loss=0.0, bandwidth=1e6):
    return RadioModel("t", latency_s=0.01, bandwidth_bps=bandwidth, loss_rate=loss)


class Rig:
    def __init__(self, seed=1):
        self.sim = Simulator(seed=seed)
        self.net = Network(self.sim)
        self.broker = MqttBroker(self.sim, "broker")
        self.net.add_node(self.broker)
        self.field = Field("f", 3, 3, LOAM, SOYBEAN, self.sim.rng.stream("field"))

    def client(self, name, **kw):
        c = MqttClient(self.sim, name, "broker", **kw)
        self.net.add_node(c)
        self.net.connect(name, "broker", model())
        c.connect()
        return c

    def device(self, cls, config, **kw):
        d = cls(self.sim, self.net, config, "broker", **kw)
        self.net.connect(d.client.address, "broker", model())
        d.start()
        return d


class TestTamper:
    def test_bias_shifts_readings(self):
        rig = Rig()
        zone = rig.field.zone(0, 0)
        probe = rig.device(
            SoilMoistureProbe,
            DeviceConfig("p1", "farmA", "SoilProbe", report_interval_s=300),
            zone=zone,
        )
        observer = rig.client("obs")
        readings = []
        rig.sim.run(until=1.0)
        from repro.devices import decode_payload

        observer.subscribe("swamp/#", handler=lambda t, p, q, r: readings.append(decode_payload(p)))
        tamper = SensorTamper(rig.sim, probe, "soilMoisture", TamperMode.BIAS, magnitude=0.3)
        rig.sim.schedule(3600.0, tamper.start)
        rig.sim.run(until=7200.0)
        before = [r["soilMoisture"] for r in readings if r and r["ts"] < 3600]
        after = [r["soilMoisture"] for r in readings if r and r["ts"] > 3600]
        assert max(before) < 0.4
        assert min(after) > 0.4
        assert tamper.samples_tampered == len(after)

    def test_stuck_freezes_value(self):
        rig = Rig()
        probe = rig.device(
            SoilMoistureProbe, DeviceConfig("p1", "farmA", "SoilProbe", report_interval_s=300),
            zone=rig.field.zone(0, 0),
        )
        tamper = SensorTamper(rig.sim, probe, "soilMoisture", TamperMode.STUCK, magnitude=0.0)
        tamper.start()
        values = []
        probe.tamper_hooks.append(lambda m: (values.append(m["soilMoisture"]), m)[1])
        rig.sim.run(until=3 * 3600.0)
        assert len(set(values)) == 1

    def test_drift_grows_with_time(self):
        rig = Rig()
        probe = rig.device(
            SoilMoistureProbe, DeviceConfig("p1", "farmA", "SoilProbe", report_interval_s=600),
            zone=rig.field.zone(0, 0),
        )
        tamper = SensorTamper(
            rig.sim, probe, "soilMoisture", TamperMode.DRIFT, magnitude=0.0, drift_per_day=0.5
        )
        tamper.start()
        values = []
        probe.tamper_hooks.append(lambda m: (values.append(m["soilMoisture"]), m)[1])
        rig.sim.run(until=86400.0)
        assert values[-1] - values[0] > 0.3

    def test_stop_removes_hook(self):
        rig = Rig()
        probe = rig.device(
            SoilMoistureProbe, DeviceConfig("p1", "farmA", "SoilProbe"),
            zone=rig.field.zone(0, 0),
        )
        tamper = SensorTamper(rig.sim, probe, "soilMoisture", TamperMode.BIAS, 0.5)
        tamper.start()
        tamper.stop()
        assert probe.tamper_hooks == []

    def test_scale_mode(self):
        rig = Rig()
        probe = rig.device(
            SoilMoistureProbe, DeviceConfig("p1", "farmA", "SoilProbe"),
            zone=rig.field.zone(0, 0),
        )
        tamper = SensorTamper(rig.sim, probe, "soilMoisture", TamperMode.SCALE, magnitude=0.5)
        tamper.start()
        out = tamper._tamper({"soilMoisture": 0.3})
        assert out["soilMoisture"] == pytest.approx(0.15)

    def test_missing_attribute_untouched(self):
        rig = Rig()
        probe = rig.device(
            SoilMoistureProbe, DeviceConfig("p1", "farmA", "SoilProbe"),
            zone=rig.field.zone(0, 0),
        )
        tamper = SensorTamper(rig.sim, probe, "nonexistent", TamperMode.BIAS, 0.5)
        tamper.start()
        assert tamper._tamper({"soilMoisture": 0.3}) == {"soilMoisture": 0.3}


class TestDosFlood:
    def test_flood_degrades_legitimate_delivery(self):
        """Flood and legitimate traffic share a narrow gateway uplink —
        the realistic rural topology — so the flood saturates the shared
        queue and legitimate delivery drops."""
        from repro.network import NetworkNode

        sim = Simulator(seed=3)
        net = Network(sim)
        broker = MqttBroker(sim, "broker")
        net.add_node(broker)
        net.add_node(NetworkNode("gw"))  # forwarding-only gateway
        # Narrow shared uplink, small queue.
        net.connect("gw", "broker", model(bandwidth=64_000.0))
        for link in net.links_between("gw", "broker"):
            link.max_backlog_s = 0.5
        field = Field("f", 1, 1, LOAM, SOYBEAN, sim.rng.stream("field"))
        probe = SoilMoistureProbe(
            sim, net, DeviceConfig("p1", "farmA", "SoilProbe", report_interval_s=30),
            "broker", zone=field.zone(0, 0),
        )
        net.connect(probe.client.address, "gw", model())
        probe.start()
        observer = MqttClient(sim, "obs", "broker")
        net.add_node(observer)
        net.connect("obs", "broker", model())
        observer.connect()
        got = []
        observer.subscribe("swamp/farmA/#", handler=lambda t, p, q, r: got.append(sim.now))
        sim.run(until=300.0)
        baseline = len(got)
        assert baseline > 5
        flood = DosFlood(
            sim, net, "broker", model(), bot_count=3,
            rate_msgs_per_s=150.0, payload_bytes=800,
        )
        # Bots sit behind the same gateway (compromised field nodes).
        for bot in flood.bots:
            net.remove_node(bot.address)
        flood.bots.clear()
        for i in range(3):
            bot = MqttClient(sim, f"atk2:bot{i}", "broker", client_id=f"bot2-{i}", keepalive_s=0)
            net.add_node(bot)
            net.connect(bot.address, "gw", model())
            flood.bots.append(bot)
        flood.start()
        sim.run(until=600.0)
        during = len(got) - baseline
        assert flood.messages_sent > 1000
        assert during < baseline * 0.7  # clearly degraded under flood

    def test_flood_stop(self):
        rig = Rig()
        flood = DosFlood(rig.sim, rig.net, "broker", model(), bot_count=1, rate_msgs_per_s=10)
        flood.start(duration_s=60.0)
        rig.sim.run(until=300.0)
        sent_at_stop = flood.messages_sent
        rig.sim.run(until=600.0)
        assert flood.messages_sent == sent_at_stop

    def test_validation(self):
        rig = Rig()
        with pytest.raises(ValueError):
            DosFlood(rig.sim, rig.net, "broker", model(), bot_count=0)
        with pytest.raises(ValueError):
            RadioJammer(rig.net, [("a", "b")], loss=0.0)


class TestJammer:
    def test_jam_and_release(self):
        rig = Rig()
        a = rig.client("a")
        b = rig.client("b")
        rig.sim.run(until=1.0)
        got = []
        b.subscribe("t", handler=lambda t, p, q, r: got.append(p))
        rig.sim.run(until=2.0)
        jammer = RadioJammer(rig.net, [("a", "broker")], loss=1.0)
        jammer.start()
        for _ in range(20):
            a.publish("t", b"jammed")
        rig.sim.run(until=3.0)
        assert got == []
        jammer.stop()
        a.publish("t", b"clear")
        rig.sim.run(until=4.0)
        assert got == [b"clear"]


class TestEavesdropper:
    def test_plaintext_harvest(self):
        rig = Rig()
        probe = rig.device(
            SoilMoistureProbe,
            DeviceConfig("p1", "farmA", "SoilProbe", report_interval_s=300),
            zone=rig.field.zone(0, 0),
        )
        spy = Eavesdropper(rig.sim, rig.net, [(probe.client.address, "broker")])
        spy.start()
        rig.sim.run(until=3600.0)
        assert spy.frames_observed > 0
        assert len(spy.plaintext_records) >= 10
        assert spy.estimate_mean("soilMoisture") == pytest.approx(
            rig.field.zone(0, 0).theta, abs=0.05
        )
        assert spy.leakage_ratio() > 0.9

    def test_encrypted_channel_blocks_harvest(self):
        from repro.security.crypto import SecureChannelPair

        rig = Rig()
        probe = rig.device(
            SoilMoistureProbe,
            DeviceConfig("p1", "farmA", "SoilProbe", report_interval_s=300),
            zone=rig.field.zone(0, 0),
        )
        pair = SecureChannelPair(rig.sim.rng.stream("d"), rig.sim.rng.stream("p"))
        probe.client.payload_encoder = pair.endpoint_a.mqtt_encoder
        spy = Eavesdropper(rig.sim, rig.net, [(probe.client.address, "broker")])
        spy.start()
        rig.sim.run(until=3600.0)
        assert spy.plaintext_records == []
        assert spy.ciphertext_frames > 0
        assert spy.estimate_mean("soilMoisture") is None
        assert spy.leakage_ratio() == 0.0

    def test_market_advantage_monotone(self):
        from repro.security.attacks.eavesdrop import market_advantage_eur

        precise = market_advantage_eur(0.02, 1000.0)
        vague = market_advantage_eur(0.5, 1000.0)
        blind = market_advantage_eur(1.0, 1000.0)
        assert precise > vague > blind == 0.0
        with pytest.raises(ValueError):
            market_advantage_eur(0.1, -5.0)


class TestRogueActuator:
    def test_open_broker_executes_rogue_command(self):
        rig = Rig()
        valve = rig.device(
            Valve, DeviceConfig("v1", "farmA", "Valve"), zone=rig.field.zone(0, 0),
        )
        rogue = RogueActuatorController(rig.sim, rig.net, "broker", model(), "farmA")
        rogue.start()
        rig.sim.run(until=5.0)
        assert rogue.flood_field(["v1"], hours=2.0) == 1
        rig.sim.run(until=3 * 3600.0)
        assert valve.total_applied_mm > 10.0  # crop drowned
        assert any(a.get("result") == "ok" for a in rogue.acks_seen)

    def test_acl_broker_blocks_rogue_command(self):
        sim = Simulator(seed=2)
        net = Network(sim)
        broker = MqttBroker(
            sim, "broker",
            authorizer=lambda session, action, topic: session.client_id != "rogue-controller",
        )
        net.add_node(broker)
        field = Field("f", 1, 1, LOAM, SOYBEAN, sim.rng.stream("field"))
        valve = Valve(
            sim, net, DeviceConfig("v1", "farmA", "Valve"), "broker", zone=field.zone(0, 0)
        )
        net.connect(valve.client.address, "broker", model())
        valve.start()
        rogue = RogueActuatorController(sim, net, "broker", model(), "farmA")
        rogue.start()
        sim.run(until=5.0)
        rogue.flood_field(["v1"], hours=2.0)
        sim.run(until=3 * 3600.0)
        assert valve.total_applied_mm == 0.0
        assert broker.stats.denied_publish >= 1


class TestReplayer:
    def test_capture_and_replay(self):
        rig = Rig()
        probe = rig.device(
            SoilMoistureProbe,
            DeviceConfig("p1", "farmA", "SoilProbe", report_interval_s=300),
            zone=rig.field.zone(0, 0),
        )
        replayer = PacketReplayer(
            rig.sim, rig.net, [(probe.client.address, "broker")], "broker", model()
        )
        replayer.start_capture()
        got = []
        observer = rig.client("obs")
        observer.subscribe("swamp/#", handler=lambda t, p, q, r: got.append(rig.sim.now))
        rig.sim.run(until=3600.0)
        captured = len(replayer.captured)
        assert captured >= 10
        live = len(got)
        replayer.stop_capture()
        # Silence the real probe, then replay stale data.
        probe.stop()
        rig.sim.run(until=4000.0)
        sent = replayer.replay_all()
        rig.sim.run(until=4100.0)
        assert sent == captured
        assert len(got) == live + captured


class TestSybil:
    def test_swarm_publishes_fake_ndvi(self):
        rig = Rig()
        swarm = SybilSwarm(
            rig.sim, rig.net, "broker", model(), "farmA", rig.field,
            identity_count=3, fake_ndvi=0.9, report_interval_s=300.0,
        )
        got = []
        observer = rig.client("obs")
        from repro.devices import decode_payload

        observer.subscribe(
            "swamp/farmA/attrs/+", handler=lambda t, p, q, r: got.append(decode_payload(p))
        )
        rig.sim.run(until=1.0)
        swarm.start()
        rig.sim.run(until=1200.0)
        assert swarm.reports_sent > 0
        ndvi_values = [m["ndvi"] for m in got if m and "ndvi" in m]
        assert ndvi_values and min(ndvi_values) > 0.8
        assert len(swarm.device_ids()) == 3

    def test_target_zones_restriction(self):
        rig = Rig()
        target = rig.field.zone(0, 0).zone_id
        swarm = SybilSwarm(
            rig.sim, rig.net, "broker", model(), "farmA", rig.field,
            identity_count=1, target_zones=[target], report_interval_s=300.0,
        )
        got = []
        observer = rig.client("obs")
        from repro.devices import decode_payload

        observer.subscribe(
            "swamp/farmA/attrs/+", handler=lambda t, p, q, r: got.append(decode_payload(p))
        )
        rig.sim.run(until=1.0)
        swarm.start()
        rig.sim.run(until=1200.0)
        zones = {m["zone"] for m in got if m and "zone" in m}
        assert zones == {target}

    def test_validation(self):
        rig = Rig()
        with pytest.raises(ValueError):
            SybilSwarm(rig.sim, rig.net, "broker", model(), "farmA", rig.field, identity_count=0)


class TestSdn:
    def test_flow_accounting(self):
        rig = Rig()
        controller = SdnController(rig.sim, rig.net)
        a = rig.client("a")
        rig.sim.run(until=1.0)
        for _ in range(5):
            a.publish("t/x", b"data")
        rig.sim.run(until=2.0)
        assert controller.flows[("a", "mqtt")].packets >= 5
        top = controller.top_talkers(1)
        assert top[0][0][0] == "a"

    def test_quarantine_blocks_source(self):
        rig = Rig()
        controller = SdnController(rig.sim, rig.net)
        a = rig.client("a")
        b = rig.client("b")
        rig.sim.run(until=1.0)
        got = []
        b.subscribe("t", handler=lambda t, p, q, r: got.append(p))
        rig.sim.run(until=2.0)
        controller.quarantine("a")
        a.publish("t", b"blocked")
        rig.sim.run(until=3.0)
        assert got == []
        controller.release("a")
        a.publish("t", b"released")
        rig.sim.run(until=4.0)
        assert got == [b"released"]

    def test_flood_defense_quarantines_bots_not_legit(self):
        rig = Rig(seed=5)
        controller = SdnController(rig.sim, rig.net, window_s=5.0)
        defense = FloodDefenseApp(controller, threshold_pkts_per_s=10.0, check_interval_s=5.0)
        legit = rig.device(
            SoilMoistureProbe,
            DeviceConfig("p1", "farmA", "SoilProbe", report_interval_s=60),
            zone=rig.field.zone(0, 0),
        )
        flood = DosFlood(
            rig.sim, rig.net, "broker", model(), bot_count=2, rate_msgs_per_s=100.0,
        )
        controller.watch_new_links()
        flood.start()
        rig.sim.run(until=120.0)
        assert defense.quarantine_actions >= 2
        assert all(bot.address in controller.quarantined for bot in flood.bots)
        assert legit.client.address not in controller.quarantined

    def test_rate_limit(self):
        rig = Rig(seed=7)
        controller = SdnController(rig.sim, rig.net, window_s=2.0)
        controller.rate_limit("mqtt", packets_per_s=5.0)
        a = rig.client("a")
        b = rig.client("b")
        rig.sim.run(until=1.0)
        got = []
        b.subscribe("t", handler=lambda t, p, q, r: got.append(p))
        rig.sim.run(until=2.0)

        def spam():
            while True:
                a.publish("t", b"x")
                yield 0.02  # 50/s

        rig.sim.spawn(spam(), "spammer")
        rig.sim.run(until=12.0)
        assert 0 < len(got) < 450  # most of the 500 dropped

    def test_rate_limit_validation(self):
        rig = Rig()
        controller = SdnController(rig.sim, rig.net)
        with pytest.raises(ValueError):
            controller.rate_limit("mqtt", 0.0)


class TestAnonymization:
    def records(self):
        return [
            {"farm": "guaspari", "lat": -22.19, "lon": -46.74, "area_ha": 35.0,
             "crop": "grape", "yield_t_ha": 7.5},
            {"farm": "riodaspedras", "lat": -12.15, "lon": -45.10, "area_ha": 900.0,
             "crop": "soybean", "yield_t_ha": 3.9},
            {"farm": "neighbor1", "lat": -12.18, "lon": -45.20, "area_ha": 850.0,
             "crop": "soybean", "yield_t_ha": 4.1},
            {"farm": "neighbor2", "lat": -12.13, "lon": -45.30, "area_ha": 820.0,
             "crop": "soybean", "yield_t_ha": 3.8},
        ]

    def make(self):
        return Anonymizer(
            secret_salt=b"salt",
            quasi_identifiers=["lat", "lon", "area_ha", "crop"],
            coordinate_cell=0.5,
        )

    def test_pseudonymize_stable_and_opaque(self):
        a = pseudonymize("guaspari", b"s")
        assert a == pseudonymize("guaspari", b"s")
        assert a != pseudonymize("guaspari", b"other-salt")
        assert "guaspari" not in a

    def test_generalize_coordinate(self):
        assert generalize_coordinate(-22.19, 0.5) == pytest.approx(-22.5)
        with pytest.raises(ValueError):
            generalize_coordinate(1.0, 0.0)

    def test_generalize_bucket(self):
        edges = (10.0, 50.0, 200.0)
        assert generalize_bucket(5.0, edges) == "<10"
        assert generalize_bucket(35.0, edges) == "[10,50)"
        assert generalize_bucket(900.0, edges) == ">=200"
        with pytest.raises(ValueError):
            generalize_bucket(1.0, ())
        with pytest.raises(ValueError):
            generalize_bucket(1.0, (5.0, 5.0))

    def test_k2_suppresses_unique_records(self):
        anonymizer = self.make()
        released = anonymizer.anonymize(self.records(), k=2)
        # The grape farm is unique under its quasi-identifiers -> suppressed.
        assert len(released) == 3
        assert anonymizer.suppressed_count == 1
        assert all(r["crop"] == "soybean" for r in released)

    def test_k1_releases_everything_pseudonymized(self):
        anonymizer = self.make()
        released = anonymizer.anonymize(self.records(), k=1)
        assert len(released) == 4
        assert all("guaspari" not in str(r["farm"]) for r in released)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            self.make().anonymize(self.records(), k=0)

    def test_reidentification_drops_with_k(self):
        anonymizer = self.make()
        originals = self.records()
        adversary = [anonymizer._generalize_record(r) for r in originals]
        quasi = ["lat", "lon", "area_ha", "crop"]
        release_k1 = anonymizer.anonymize(originals, k=1)
        release_k2 = anonymizer.anonymize(originals, k=2)
        rate_k1 = reidentification_rate(release_k1, adversary, quasi)
        rate_k2 = reidentification_rate(release_k2, adversary, quasi)
        assert rate_k1 > 0.0
        assert rate_k2 < rate_k1

    def test_utility_error_grows_with_suppression(self):
        anonymizer = self.make()
        originals = self.records()
        release_k1 = anonymizer.anonymize(originals, k=1)
        release_k2 = anonymizer.anonymize(originals, k=2)
        error_k1 = utility_error(originals, release_k1, "yield_t_ha")
        error_k2 = utility_error(originals, release_k2, "yield_t_ha")
        assert error_k1 == pytest.approx(0.0, abs=1e-9)
        assert error_k2 > error_k1

    def test_utility_error_empty(self):
        assert utility_error([], [], "x") is None
