"""The ``repro.api`` façade: stable names, docs lockstep, deprecations."""

import pytest

import repro.api as api
from repro.api import (
    BARREIRAS_MATOPIBA,
    LOAM,
    SOYBEAN,
    DeploymentKind,
    PilotConfig,
    ReproError,
    RunOptions,
    run,
)


def _smoke_config(seed=5):
    return PilotConfig(
        name="facade-smoke", farm="f", climate=BARREIRAS_MATOPIBA,
        crop=SOYBEAN, soil=LOAM, rows=1, cols=1, season_days=2,
        start_day_of_year=150, deployment=DeploymentKind.CLOUD_ONLY,
        irrigation_kind="valves", scheduler_kind="smart", seed=seed,
    )


class TestFacadeSurface:
    def test_every_exported_name_resolves(self):
        missing = [name for name in api.__all__ if not hasattr(api, name)]
        assert missing == []

    def test_all_is_sorted_and_unique(self):
        assert list(api.__all__) == sorted(set(api.__all__))

    def test_docs_cover_exactly_the_exports(self):
        # Every export has a one-line doc and no doc is stale.
        assert set(api.DOCS) == set(api.__all__)
        for name, doc in api.DOCS.items():
            assert isinstance(doc, str) and doc.strip(), name

    def test_resilience_and_chaos_surface_is_exported(self):
        for name in (
            "Supervisor", "CircuitBreaker", "DegradedModePolicy",
            "ResilienceConfig", "BreakerState", "ServiceHealth",
            "BoundedQueue", "RateLimiter", "DropPolicy", "BackpressureError",
            "ChaosPlanGenerator", "ChaosTargets", "ChaosRunResult",
            "check_invariants",
        ):
            assert name in api.__all__, name
        plan = api.ChaosPlanGenerator(seed=0).generate()
        assert plan.events  # generator usable straight off the façade

    def test_tracing_and_run_surface_is_exported(self):
        for name in (
            "RunOptions", "RunResult", "run", "Tracer", "TraceConfig",
            "TraceContext", "Span", "KernelProfiler",
            "validate_span_trees", "validate_chrome_trace",
        ):
            assert name in api.__all__, name

    def test_run_entrypoint(self):
        result = run(RunOptions(config=_smoke_config()))
        assert result.report.name == "facade-smoke"
        assert result.report.season_days == 2
        assert result.runner is not None
        assert result.chaos is None


class TestCompletedDeprecations:
    """The run_pilot/run_chaos shims and string filters finished their cycle."""

    def test_legacy_run_entrypoints_are_gone(self):
        for name in ("run_pilot", "run_chaos"):
            assert name not in api.__all__, name
            assert name not in api.DOCS, name
            assert not hasattr(api, name), name

    def test_chaos_engine_still_reachable_for_internal_callers(self):
        # The *internal* chaos engine keeps its home; only the façade
        # shim completed the deprecation cycle.
        from repro.faults.chaos import run_chaos

        assert callable(run_chaos)

    def test_string_filters_raise_query_error(self):
        from repro.api import ContextBroker, QueryError, Simulator

        broker = ContextBroker(Simulator(seed=0))
        with pytest.raises(QueryError, match="no longer accepted"):
            broker.query(filters=["soilMoisture<0.2"])

    def test_wire_strings_parse_at_the_boundary(self):
        from repro.context.query import parse_filter_expression

        parsed = parse_filter_expression("soilMoisture<0.2")
        assert (parsed.attr, parsed.op, parsed.value) == ("soilMoisture", "<", 0.2)


class TestServiceFacade:
    """The service layer's exported surface rides the same contract."""

    def test_service_exports_are_on_the_facade(self):
        import repro.service as service

        assert list(service.__all__) == sorted(set(service.__all__))
        missing = [n for n in service.__all__ if n not in api.__all__]
        assert missing == []

    def test_service_exports_are_documented(self):
        import repro.service as service

        undocumented = [n for n in service.__all__ if not api.DOCS.get(n, "").strip()]
        assert undocumented == []
        resolve = [n for n in service.__all__ if getattr(api, n) is not getattr(service, n)]
        assert resolve == []


class TestUnifiedErrorHierarchy:
    def test_topic_errors_are_repro_errors(self):
        from repro.mqtt import TopicError, validate_topic

        with pytest.raises(ReproError):
            validate_topic("bad/+/topic")
        assert issubclass(TopicError, ValueError)  # legacy base kept

    def test_context_lookup_errors_are_repro_errors(self):
        from repro.context import ContextBroker, NotFoundError
        from repro.simkernel import Simulator

        broker = ContextBroker(Simulator(seed=0))
        with pytest.raises(ReproError):
            broker.get_entity("nope")
        assert issubclass(NotFoundError, ReproError)

    def test_fault_plan_errors_are_repro_errors(self):
        from repro.faults import FaultPlan, FaultPlanError

        with pytest.raises(ReproError):
            FaultPlan.from_dict({"name": "x", "events": [{"kind": "martian_invasion", "at_s": 1}]})
        assert issubclass(FaultPlanError, ValueError)  # legacy base kept

    def test_simulation_and_platform_errors_are_repro_errors(self):
        from repro.platform.registry import PlatformError
        from repro.simkernel import SimulationError

        assert issubclass(SimulationError, ReproError)
        assert issubclass(PlatformError, ReproError)

    def test_query_errors_are_repro_errors(self):
        from repro.context import QueryError
        from repro.context.query import parse_filter_expression

        with pytest.raises(ReproError):
            parse_filter_expression("nonsense")
        assert issubclass(QueryError, ReproError)
