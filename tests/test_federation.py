"""Tests for the multi-tenant federated cloud: isolation + sanctioned sharing."""

import pytest

from repro.context import ContextBroker
from repro.core.federation import (
    FederatedCloud,
    GuardedContextApi,
    RegionalReleaseService,
    farm_of_entity,
)
from repro.fog.replication import Replicator
from repro.network import Network, RadioModel
from repro.simkernel import Simulator


def wan():
    return RadioModel("wan", latency_s=0.05, bandwidth_bps=8e6, loss_rate=0.0)


class TestFarmOfEntity:
    def test_standard_urns(self):
        assert farm_of_entity("urn:AgriParcel:guaspari:0-1") == "guaspari"
        assert farm_of_entity("urn:Valve:matopiba-valve-1") == "matopiba-valve-1"

    def test_non_urn(self):
        assert farm_of_entity("plain-id") is None


class FederationRig:
    """Two farms replicating into one cloud."""

    def __init__(self, seed=5):
        self.sim = Simulator(seed=seed)
        self.net = Network(self.sim)
        self.cloud = FederatedCloud(self.sim, self.net)
        self.farm_contexts = {}
        for farm in ("farma", "farmb"):
            context = ContextBroker(self.sim, name=f"{farm}:context")
            self.farm_contexts[farm] = context
            self.cloud.register_farm(farm)
            Replicator(
                self.sim, self.net, f"{farm}:sync", context,
                f"cloud:sync:{farm}", sync_interval_s=10.0,
            )
            self.net.connect(f"{farm}:sync", f"cloud:sync:{farm}", wan())

    def seed_data(self):
        self.farm_contexts["farma"].ensure_entity(
            "urn:AgriParcel:farma:0-0", "AgriParcel",
            {"soilMoisture": 0.25, "crop": "soybean", "area_ha": 400.0,
             "lat": -12.1, "lon": -45.2, "yield_t_ha": 3.9},
        )
        self.farm_contexts["farmb"].ensure_entity(
            "urn:AgriParcel:farmb:0-0", "AgriParcel",
            {"soilMoisture": 0.31, "crop": "soybean", "area_ha": 420.0,
             "lat": -12.3, "lon": -45.4, "yield_t_ha": 4.1},
        )
        self.sim.run(until=120.0)


class TestFederatedReplication:
    def test_both_farms_replicate_to_one_cloud(self):
        rig = FederationRig()
        rig.seed_data()
        assert rig.cloud.context.has_entity("urn:AgriParcel:farma:0-0")
        assert rig.cloud.context.has_entity("urn:AgriParcel:farmb:0-0")

    def test_duplicate_farm_registration_rejected(self):
        rig = FederationRig()
        with pytest.raises(ValueError):
            rig.cloud.register_farm("farma")


class TestTenantIsolation:
    def test_own_farm_readable(self):
        rig = FederationRig()
        rig.seed_data()
        token = rig.cloud.register_user("alice", "pw", farm="farma")
        entity = rig.cloud.api.get_entity(token, "urn:AgriParcel:farma:0-0")
        assert entity is not None
        assert entity.get("soilMoisture") == 0.25

    def test_cross_farm_read_denied_and_audited(self):
        rig = FederationRig()
        rig.seed_data()
        token = rig.cloud.register_user("alice", "pw", farm="farma")
        assert rig.cloud.api.get_entity(token, "urn:AgriParcel:farmb:0-0") is None
        assert rig.cloud.api.reads_denied == 1
        assert rig.cloud.pep.denied_records()

    def test_query_omits_other_farms(self):
        rig = FederationRig()
        rig.seed_data()
        token = rig.cloud.register_user("alice", "pw", farm="farma")
        results = rig.cloud.api.query(token, entity_type="AgriParcel")
        assert [e.entity_id for e in results] == ["urn:AgriParcel:farma:0-0"]

    def test_admin_sees_everything(self):
        rig = FederationRig()
        rig.seed_data()
        token = rig.cloud.register_user("root", "pw", farm=None,
                                        roles=("platform-admin",))
        results = rig.cloud.api.query(token, entity_type="AgriParcel")
        assert len(results) == 2

    def test_bogus_token_denied(self):
        rig = FederationRig()
        rig.seed_data()
        assert rig.cloud.api.get_entity("garbage", "urn:AgriParcel:farma:0-0") is None

    def test_missing_entity_authorized_read_returns_none(self):
        rig = FederationRig()
        token = rig.cloud.register_user("alice", "pw", farm="farma")
        assert rig.cloud.api.get_entity(token, "urn:AgriParcel:farma:9-9") is None


class TestRegionalRelease:
    def make_rig_with_release(self, k=2):
        rig = FederationRig()
        rig.seed_data()
        service = RegionalReleaseService(rig.cloud, secret_salt=b"region", k=k)
        return rig, service

    def test_analyst_gets_anonymized_release(self):
        rig, service = self.make_rig_with_release(k=1)
        token = rig.cloud.register_analyst("ana", "pw")
        release = service.release(token, "AgriParcel", ["yield_t_ha"])
        assert release is not None and len(release) == 2
        for record in release:
            # Pseudonymized farm ids; no raw farm names.
            assert "farma" not in str(record["farm"])
            assert "farmb" not in str(record["farm"])
            # Coordinates generalized to grid cells (float-safe check).
            remainder = record["lat"] % 0.1
            assert min(remainder, 0.1 - remainder) < 1e-9
            # Payload preserved.
            assert record["yield_t_ha"] in (3.9, 4.1)

    def test_k2_suppresses_unique_combinations(self):
        rig, service = self.make_rig_with_release(k=2)
        token = rig.cloud.register_analyst("ana", "pw")
        release = service.release(token, "AgriParcel", ["yield_t_ha"])
        # The two farms sit in different grid cells/area buckets -> both
        # quasi-identifier combinations are unique -> suppressed.
        assert release == []
        assert service.anonymizer.suppressed_count == 2

    def test_farmer_cannot_pull_release(self):
        rig, service = self.make_rig_with_release()
        token = rig.cloud.register_user("alice", "pw", farm="farma")
        assert service.release(token, "AgriParcel", ["yield_t_ha"]) is None
        assert service.releases == 0

    def test_invalid_token_rejected(self):
        rig, service = self.make_rig_with_release()
        assert service.release("junk", "AgriParcel", ["yield_t_ha"]) is None
