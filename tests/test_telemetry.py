"""Unit tests for the unified metrics core (repro.telemetry)."""

import json

import pytest

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    Timer,
)


class TestInstruments:
    def test_counter_accumulates(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.snapshot_value() == 3.5

    def test_gauge_moves_both_ways(self):
        g = Gauge("g")
        g.set(10.0)
        g.inc(2.0)
        g.dec(5.0)
        assert g.snapshot_value() == 7.0

    def test_histogram_buckets_and_stats(self):
        h = Histogram("h", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0, 5.0):
            h.observe(v)
        snap = h.snapshot_value()
        assert snap["count"] == 4
        assert snap["sum"] == 60.5
        assert snap["min"] == 0.5
        assert snap["max"] == 50.0
        assert snap["buckets"] == {"le_1": 1, "le_10": 2, "le_inf": 1}
        assert h.mean == pytest.approx(60.5 / 4)

    def test_histogram_sorts_bucket_bounds(self):
        h = Histogram("h", buckets=(10.0, 1.0))
        assert h.bounds == (1.0, 10.0)

    def test_timer_records_elapsed_wall_time(self):
        h = Histogram("t", buckets=(0.5, 1.0))
        timer = Timer(h)
        with timer:
            pass
        assert h.count == 1
        assert h.min >= 0.0
        timer.observe(0.25)
        assert h.count == 2


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("x", {"farm": "a"})
        b = registry.counter("x", {"farm": "a"})
        other = registry.counter("x", {"farm": "b"})
        assert a is b
        assert a is not other

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("x", {"a": "1", "b": "2"})
        b = registry.counter("x", {"b": "2", "a": "1"})
        assert a is b

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_total_sums_across_label_sets(self):
        registry = MetricsRegistry()
        registry.counter("x", {"farm": "a"}).inc(2)
        registry.counter("x", {"farm": "b"}).inc(3)
        assert registry.total("x") == 5.0

    def test_value_lookup(self):
        registry = MetricsRegistry()
        registry.counter("x").inc(4)
        assert registry.value("x") == 4.0
        assert registry.value("missing") is None

    def test_snapshot_formats_labels_and_groups_by_kind(self):
        registry = MetricsRegistry()
        registry.counter("c", {"farm": "a"}).inc()
        registry.gauge("g").set(2.0)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        registry.register_callback("lazy", lambda: 42.0)
        snap = registry.snapshot()
        assert snap["enabled"] is True
        assert snap["counters"] == {"c{farm=a}": 1.0}
        assert snap["gauges"] == {"g": 2.0, "lazy": 42.0}
        assert snap["histograms"]["h"]["count"] == 1

    def test_callbacks_evaluated_lazily_at_snapshot_time(self):
        registry = MetricsRegistry()
        depth = [0]
        registry.register_callback("queue.depth", lambda: float(depth[0]))
        depth[0] = 7
        assert registry.snapshot()["gauges"]["queue.depth"] == 7.0
        depth[0] = 9
        assert registry.snapshot()["gauges"]["queue.depth"] == 9.0

    def test_to_json_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        parsed = json.loads(registry.to_json())
        assert parsed["counters"]["c"] == 1.0

    def test_names_lists_instruments_and_callbacks(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.register_callback("a", lambda: 0.0)
        assert registry.names() == ["a", "b"]


class TestDisabledRegistry:
    def test_factories_return_shared_null_instrument(self):
        registry = MetricsRegistry(enabled=False)
        assert registry.counter("x") is NULL_INSTRUMENT
        assert registry.gauge("x") is NULL_INSTRUMENT
        assert registry.histogram("x") is NULL_INSTRUMENT
        assert registry.timer("x") is NULL_INSTRUMENT

    def test_null_instrument_accepts_all_operations(self):
        null = NULL_REGISTRY.counter("anything")
        null.inc()
        null.dec(2)
        null.set(5)
        null.observe(1.0)
        with null:
            pass
        assert null.snapshot_value() == 0.0

    def test_disabled_snapshot_is_empty(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("x").inc()
        registry.register_callback("cb", lambda: 1.0)
        assert registry.snapshot() == {
            "enabled": False, "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_disabled_registry_allocates_nothing(self):
        registry = MetricsRegistry(enabled=False)
        for i in range(100):
            registry.counter(f"c{i}").inc()
        assert registry._instruments == {}
        assert registry._callbacks == {}
