"""The north-facing service layer: routing, auth, tenancy, quotas, cache."""

import json

import pytest

import repro.api as api
from repro.context.broker import ContextBroker
from repro.context.errors import NotFoundError, QueryError
from repro.context.history import ShortTermHistory
from repro.core.security_profile import SecurityConfig, SecurityStack
from repro.security.auth.oauth import OAuthError
from repro.service import (
    AuthenticationError,
    AuthorizationError,
    NgsiService,
    QuotaExceededError,
    Request,
    Router,
    ServiceConfig,
    ServiceError,
    ServiceOverloadedError,
    TenantQuota,
    TenantSpec,
    error_response,
    has_error_mapping,
    status_for,
)
from repro.simkernel.simulator import Simulator

FARM_PREFIX = "urn:AgriParcel:demo:"
OPS_PREFIX = "urn:Ops:demo:"


def make_service(queued=False, **config_kwargs):
    sim = Simulator(seed=11)
    broker = ContextBroker(sim)
    history = ShortTermHistory(broker)
    security = SecurityStack(sim, "demo", SecurityConfig())
    service = NgsiService(
        sim, broker, history, security,
        ServiceConfig(queued=queued, **config_kwargs),
    )
    return service


def register_dash(service, **spec_kwargs):
    spec_kwargs.setdefault("read_prefixes", (FARM_PREFIX,))
    spec_kwargs.setdefault("write_prefixes", (OPS_PREFIX,))
    spec = TenantSpec("dash", "dash-secret", **spec_kwargs)
    service.register_tenant(spec)
    return service.tenant_token("dash")


def seed_entities(broker, n=3):
    for i in range(n):
        broker.create_entity(f"{FARM_PREFIX}0-{i}", "AgriParcel", {"soilMoisture": 0.2 + i / 10})
    broker.create_entity("urn:AgriParcel:other:0-0", "AgriParcel", {"soilMoisture": 0.9})


class TestRouting:
    def test_version_needs_no_token(self):
        service = make_service()
        response = service.handle(Request("GET", "/version"))
        assert response.status == 200
        assert "orion" in response.body

    def test_unknown_path_is_404(self):
        service = make_service()
        assert service.handle(Request("GET", "/nope")).status == 404

    def test_wrong_method_is_405_not_404(self):
        service = make_service()
        response = service.handle(Request("PUT", "/v2/entities"))
        assert response.status == 405
        assert response.body["error"] == "MethodNotAllowed"

    def test_path_params_are_extracted(self):
        router = Router()
        router.add("GET", "/v2/entities/{entity_id}/attrs/{attr}", lambda *a: None, "x")
        route, params, exists = router.match("GET", "/v2/entities/urn:e:1/attrs/soilMoisture")
        assert route is not None and exists
        assert params == {"entity_id": "urn:e:1", "attr": "soilMoisture"}


class TestAuthentication:
    def test_missing_token_is_401(self):
        service = make_service()
        response = service.handle(Request("GET", "/v2/entities"))
        assert response.status == 401
        assert response.body["error"] == "Unauthorized"

    def test_garbage_token_is_401(self):
        service = make_service()
        register_dash(service)
        assert service.handle(Request("GET", "/v2/entities", token="junk")).status == 401

    def test_non_tenant_principal_is_403(self):
        service = make_service()
        register_dash(service)
        # A valid service principal that is not a registered tenant.
        auth = service.security
        auth.identity.register("intruder", "s", kind="service", farm="demo")
        token = auth.oauth.client_credentials_grant("intruder", "s").access_token
        assert service.handle(Request("GET", "/v2/entities", token=token)).status == 403

    def test_token_refresh_after_expiry(self):
        service = make_service()
        register_dash(service)
        first = service.tenant_token("dash")
        # Jump past the token TTL: the old token dies, the helper re-grants.
        service.sim.run_until(service.security.oauth.access_token_ttl_s + 1.0)
        assert service.handle(Request("GET", "/v2/entities", token=first)).status == 401
        renewed = service.tenant_token("dash")
        assert renewed != first
        assert service.handle(Request("GET", "/v2/entities", token=renewed)).status == 200


class TestTenantIsolation:
    def test_listing_is_scoped_to_namespace(self):
        service = make_service()
        seed_entities(service.broker)
        token = register_dash(service)
        response = service.handle(
            Request("GET", "/v2/entities", params={"type": "AgriParcel"}, token=token)
        )
        ids = [e["id"] for e in response.body]
        assert all(e.startswith(FARM_PREFIX) for e in ids) and len(ids) == 3
        assert response.headers["Fiware-Total-Count"] == "3"

    def test_direct_read_outside_namespace_is_403(self):
        service = make_service()
        seed_entities(service.broker)
        token = register_dash(service)
        response = service.handle(
            Request("GET", "/v2/entities/urn:AgriParcel:other:0-0", token=token)
        )
        assert response.status == 403

    def test_write_needs_write_prefix(self):
        service = make_service()
        seed_entities(service.broker)
        token = register_dash(service)
        # Pilot namespace is read-only for this tenant.
        denied = service.handle(Request(
            "PATCH", f"/v2/entities/{FARM_PREFIX}0-0/attrs",
            body={"soilMoisture": {"value": 0.5}}, token=token,
        ))
        assert denied.status == 403
        allowed = service.handle(Request(
            "POST", "/v2/entities",
            body={"id": f"{OPS_PREFIX}s1", "type": "OpsStation", "x": {"value": 1}},
            token=token,
        ))
        assert allowed.status == 201

    def test_two_tenants_see_disjoint_listings(self):
        service = make_service()
        seed_entities(service.broker)
        token_a = register_dash(service)
        service.register_tenant(TenantSpec("other", "s", ("urn:AgriParcel:other:",)))
        token_b = service.tenant_token("other")
        ids_a = {e["id"] for e in service.handle(
            Request("GET", "/v2/entities", token=token_a)).body}
        ids_b = {e["id"] for e in service.handle(
            Request("GET", "/v2/entities", token=token_b)).body}
        assert ids_a and ids_b and not (ids_a & ids_b)


class TestEntityApi:
    def test_crud_round_trip(self):
        service = make_service()
        token = register_dash(service)
        eid = f"{OPS_PREFIX}s1"
        created = service.handle(Request(
            "POST", "/v2/entities",
            body={"id": eid, "type": "OpsStation", "level": {"value": 3}}, token=token,
        ))
        assert created.status == 201
        assert created.headers["Location"] == f"/v2/entities/{eid}"
        got = service.handle(Request("GET", f"/v2/entities/{eid}", token=token))
        assert got.body["level"]["value"] == 3
        patched = service.handle(Request(
            "PATCH", f"/v2/entities/{eid}/attrs", body={"level": {"value": 4}}, token=token,
        ))
        assert patched.status == 204
        attr = service.handle(Request(
            "GET", f"/v2/entities/{eid}/attrs/level", token=token))
        assert attr.body["value"] == 4
        deleted = service.handle(Request("DELETE", f"/v2/entities/{eid}", token=token))
        assert deleted.status == 204
        assert service.handle(
            Request("GET", f"/v2/entities/{eid}", token=token)).status == 404

    def test_duplicate_create_is_422(self):
        service = make_service()
        token = register_dash(service)
        body = {"id": f"{OPS_PREFIX}s1", "type": "OpsStation"}
        assert service.handle(
            Request("POST", "/v2/entities", body=body, token=token)).status == 201
        assert service.handle(
            Request("POST", "/v2/entities", body=body, token=token)).status == 422

    def test_q_param_parses_at_the_boundary(self):
        service = make_service()
        seed_entities(service.broker)
        token = register_dash(service)
        response = service.handle(Request(
            "GET", "/v2/entities",
            params={"q": "soilMoisture<0.25", "type": "AgriParcel"}, token=token,
        ))
        assert [e["id"] for e in response.body] == [f"{FARM_PREFIX}0-0"]

    def test_bad_q_param_is_400(self):
        service = make_service()
        seed_entities(service.broker)
        token = register_dash(service)
        response = service.handle(
            Request("GET", "/v2/entities", params={"q": "nonsense"}, token=token))
        assert response.status == 400
        assert response.body["error"] == "BadRequest"

    def test_paging_and_key_values(self):
        service = make_service()
        seed_entities(service.broker)
        token = register_dash(service)
        page = service.handle(Request(
            "GET", "/v2/entities",
            params={"limit": "2", "offset": "1", "options": "keyValues"}, token=token,
        ))
        assert page.headers["Fiware-Total-Count"] == "3"
        assert len(page.body) == 2
        assert page.body[0]["soilMoisture"] == pytest.approx(0.3)


class TestQuotas:
    def test_over_quota_tenant_gets_429_others_unaffected(self):
        service = make_service()
        seed_entities(service.broker)
        greedy_spec = TenantSpec(
            "greedy", "s", (FARM_PREFIX,), quota=TenantQuota(3, 60.0, 8))
        service.register_tenant(greedy_spec)
        token_g = service.tenant_token("greedy")
        token_d = register_dash(service)
        statuses = [
            service.handle(Request("GET", "/v2/entities", token=token_g)).status
            for _ in range(5)
        ]
        assert statuses == [200, 200, 200, 429, 429]
        # The well-behaved tenant is untouched in the same window.
        assert service.handle(Request("GET", "/v2/entities", token=token_d)).status == 200
        assert service.tenant("greedy").rejected_quota == 2
        assert service.tenant("dash").rejected_quota == 0

    def test_quota_window_rolls_with_sim_time(self):
        service = make_service()
        seed_entities(service.broker)
        service.register_tenant(TenantSpec(
            "t", "s", (FARM_PREFIX,), quota=TenantQuota(1, 10.0, 8)))
        token = service.tenant_token("t")
        assert service.handle(Request("GET", "/v2/entities", token=token)).status == 200
        assert service.handle(Request("GET", "/v2/entities", token=token)).status == 429
        service.sim.run_until(10.5)  # next window
        assert service.handle(Request("GET", "/v2/entities", token=token)).status == 200

    def test_backlog_overflow_is_503(self):
        service = make_service(queued=True)
        seed_entities(service.broker)
        service.register_tenant(TenantSpec(
            "t", "s", (FARM_PREFIX,), quota=TenantQuota(100, 60.0, 2)))
        token = service.tenant_token("t")
        service.start()
        responses = [
            service.submit(Request("GET", "/v2/entities", token=token))
            for _ in range(4)
        ]
        # First two queue (None); beyond the backlog cap → immediate 503.
        assert [r.status if r else None for r in responses] == [None, None, 503, 503]
        service.sim.run_until(2.0)  # pump drains the queued two
        oks = [r for r in service.records if r["status"] == 200]
        assert len(oks) == 2
        assert all(r["done_s"] > r["at_s"] for r in oks)
        assert service.tenant("t").rejected_backlog == 2


class TestResponseCache:
    def test_repeat_read_hits(self):
        service = make_service()
        seed_entities(service.broker)
        token = register_dash(service)
        path = f"/v2/entities/{FARM_PREFIX}0-0"
        first = service.handle(Request("GET", path, token=token))
        second = service.handle(Request("GET", path, token=token))
        assert first.status == second.status == 200
        assert second.headers.get("X-Cache") == "HIT"
        assert first.body == second.body

    def test_service_write_invalidates_entity(self):
        service = make_service()
        token = register_dash(service)
        eid = f"{OPS_PREFIX}s1"
        service.handle(Request(
            "POST", "/v2/entities", body={"id": eid, "type": "T", "x": {"value": 1}},
            token=token))
        service.handle(Request("GET", f"/v2/entities/{eid}", token=token))
        service.handle(Request(
            "PATCH", f"/v2/entities/{eid}/attrs", body={"x": {"value": 2}}, token=token))
        refreshed = service.handle(Request("GET", f"/v2/entities/{eid}", token=token))
        assert refreshed.headers.get("X-Cache") != "HIT"
        assert refreshed.body["x"]["value"] == 2

    def test_broker_side_telemetry_invalidates(self):
        # Device telemetry lands through the broker hook, not the service.
        service = make_service()
        seed_entities(service.broker)
        token = register_dash(service)
        path = f"/v2/entities/{FARM_PREFIX}0-0"
        service.handle(Request("GET", path, token=token))
        service.broker.update_attributes(f"{FARM_PREFIX}0-0", {"soilMoisture": 0.99})
        refreshed = service.handle(Request("GET", path, token=token))
        assert refreshed.headers.get("X-Cache") != "HIT"
        assert refreshed.body["soilMoisture"]["value"] == 0.99

    def test_scope_invalidation_refreshes_listings(self):
        service = make_service()
        seed_entities(service.broker)
        token = register_dash(service)
        listing = Request("GET", "/v2/entities", token=token)
        service.handle(listing)
        hit = service.handle(listing)
        assert hit.headers.get("X-Cache") == "HIT"
        service.broker.create_entity(f"{FARM_PREFIX}9-9", "AgriParcel", {"soilMoisture": 0.1})
        # Creation fires the service's own note_write only through handlers;
        # attribute writes reach the broker hook — either way the scope bumps.
        refreshed = service.handle(listing)
        assert refreshed.headers.get("X-Cache") != "HIT"
        assert any(e["id"] == f"{FARM_PREFIX}9-9" for e in refreshed.body)

    def test_cache_keys_are_per_tenant(self):
        service = make_service()
        seed_entities(service.broker)
        token_a = register_dash(service)
        service.register_tenant(TenantSpec("b", "s", (FARM_PREFIX,)))
        token_b = service.tenant_token("b")
        service.handle(Request("GET", "/v2/entities", token=token_a))
        response = service.handle(Request("GET", "/v2/entities", token=token_b))
        assert response.headers.get("X-Cache") != "HIT"  # b's first look

    def test_disabled_cache_never_hits(self):
        service = make_service(cache_enabled=False)
        seed_entities(service.broker)
        token = register_dash(service)
        for _ in range(3):
            response = service.handle(Request("GET", "/v2/entities", token=token))
            assert "X-Cache" not in response.headers
        assert service.cache is None


class TestSthApi:
    def _service_with_samples(self):
        service = make_service()
        broker = service.broker
        eid = f"{FARM_PREFIX}0-0"
        broker.create_entity(eid, "AgriParcel")
        for i in range(10):
            service.sim.run_until(i * 30.0 + 1.0)
            broker.update_attributes(eid, {"soilMoisture": 0.2 + i / 100})
        return service, eid

    def test_last_n(self):
        service, eid = self._service_with_samples()
        token = register_dash(service)
        response = service.handle(Request(
            "GET",
            f"/STH/v1/contextEntities/type/AgriParcel/id/{eid}/attributes/soilMoisture",
            params={"lastN": "3"}, token=token,
        ))
        values = response.body["contextResponses"][0]["contextElement"]["attributes"][0]["values"]
        assert [v["attrValue"] for v in values] == pytest.approx([0.27, 0.28, 0.29])

    def test_range_paging(self):
        service, eid = self._service_with_samples()
        token = register_dash(service)
        base = f"/STH/v1/contextEntities/type/AgriParcel/id/{eid}/attributes/soilMoisture"
        page = service.handle(Request(
            "GET", base, params={"hLimit": "4", "hOffset": "2"}, token=token))
        values = page.body["contextResponses"][0]["contextElement"]["attributes"][0]["values"]
        assert len(values) == 4
        assert values[0]["recvTime"] == pytest.approx(61.0)

    def test_rollup_aggregation(self):
        service, eid = self._service_with_samples()
        token = register_dash(service)
        base = f"/STH/v1/contextEntities/type/AgriParcel/id/{eid}/attributes/soilMoisture"
        response = service.handle(Request(
            "GET", base, params={"aggrMethod": "max", "aggrPeriod": "minute"}, token=token))
        values = response.body["contextResponses"][0]["contextElement"]["attributes"][0]["values"]
        # 10 samples at 30 s spacing → two per minute bucket, max of each pair.
        assert [v["max"] for v in values] == pytest.approx([0.21, 0.23, 0.25, 0.27, 0.29])
        assert [v["origin"] for v in values] == [0.0, 60.0, 120.0, 180.0, 240.0]

    def test_unknown_aggr_period_is_400(self):
        service, eid = self._service_with_samples()
        token = register_dash(service)
        base = f"/STH/v1/contextEntities/type/AgriParcel/id/{eid}/attributes/soilMoisture"
        response = service.handle(Request(
            "GET", base, params={"aggrMethod": "mean", "aggrPeriod": "fortnight"},
            token=token))
        assert response.status == 400


class TestErrorMapping:
    # Control-flow signals are not errors and must never escape to a response.
    NOT_ERRORS = {"StopSimulation"}

    def test_every_exported_error_class_maps(self):
        exported = {
            name: getattr(api, name) for name in api.__all__
            if isinstance(getattr(api, name), type)
            and issubclass(getattr(api, name), BaseException)
        }
        unmapped = {n for n, c in exported.items() if not has_error_mapping(c)}
        assert unmapped == self.NOT_ERRORS
        exported_errors = [
            c for n, c in exported.items() if n not in self.NOT_ERRORS]
        assert len(exported_errors) >= 12  # the hierarchy is actually covered
        for exc_type in exported_errors:
            assert has_error_mapping(exc_type), exc_type.__name__
            status = status_for(exc_type)
            assert status in (400, 401, 403, 404, 422, 429, 500, 503), exc_type.__name__
            response = error_response(exc_type("boom"))
            assert response.status == status
            assert set(response.body) == {"error", "description"}

    def test_service_error_statuses_are_pinned(self):
        assert status_for(AuthenticationError) == 401
        assert status_for(AuthorizationError) == 403
        assert status_for(QuotaExceededError) == 429
        assert status_for(ServiceOverloadedError) == 503
        assert status_for(ServiceError) == 500
        assert status_for(OAuthError("x")) == 401

    def test_subclasses_resolve_through_mro(self):
        class CustomNotFound(NotFoundError):
            pass

        assert status_for(CustomNotFound) == 404
        assert status_for(QueryError) == 400

    def test_unknown_exception_defaults_to_500(self):
        assert status_for(RuntimeError("x")) == 500
        assert not has_error_mapping(RuntimeError)


class TestLoadgenAndRun:
    FARM = "matopiba"

    def _entity_ids(self):
        return [f"urn:AgriParcel:{self.FARM}:{r}-{c}"
                for r in range(2) for c in range(2)]

    def test_same_seed_same_trace(self):
        from repro.service import standard_trace

        one = standard_trace(seed=7, duration_s=60.0,
                             entity_ids=self._entity_ids(), farm=self.FARM)
        two = standard_trace(seed=7, duration_s=60.0,
                             entity_ids=self._entity_ids(), farm=self.FARM)
        assert [r.to_dict() for r in one.requests] == [r.to_dict() for r in two.requests]
        three = standard_trace(seed=8, duration_s=60.0,
                               entity_ids=self._entity_ids(), farm=self.FARM)
        assert [r.to_dict() for r in one.requests] != [r.to_dict() for r in three.requests]

    def test_trace_save_load_round_trip(self, tmp_path):
        from repro.service import RequestTrace, standard_trace

        trace = standard_trace(seed=7, duration_s=30.0,
                               entity_ids=self._entity_ids(), farm=self.FARM)
        path = tmp_path / "trace.json"
        trace.save(str(path))
        loaded = RequestTrace.load(str(path))
        assert loaded.name == trace.name and loaded.seed == trace.seed
        assert [r.to_dict() for r in loaded.requests] == [
            r.to_dict() for r in trace.requests]
        assert [t.to_dict() for t in loaded.tenants] == [
            t.to_dict() for t in trace.tenants]

    def test_run_with_serve_trace_is_deterministic(self):
        from repro.core.run import RunOptions, run
        from repro.service import standard_trace

        def one_run():
            trace = standard_trace(seed=5, duration_s=120.0,
                                   entity_ids=self._entity_ids(), farm=self.FARM)
            result = run(RunOptions(pilot=self.FARM, seed=5, days=1, serve_trace=trace))
            return result.service.response_log_digest()

        assert one_run() == one_run()

    def test_serve_trace_conflicts_with_chaos(self):
        from repro.core.run import RunOptions, run
        from repro.service import standard_trace

        trace = standard_trace(seed=5, duration_s=10.0,
                               entity_ids=self._entity_ids(), farm=self.FARM)
        with pytest.raises(ValueError, match="serve_trace is not supported"):
            run(RunOptions(pilot=self.FARM, seed=5, days=1,
                           serve_trace=trace, chaos=True))

    def test_cli_serve_round_trip(self, tmp_path):
        import io

        from repro.cli import main

        trace_path = tmp_path / "trace.json"
        log_a = tmp_path / "a.jsonl"
        log_b = tmp_path / "b.jsonl"
        out = io.StringIO()
        assert main([
            "serve", "matopiba", "--seed", "5", "--days", "1",
            "--serve-duration", "120",
            "--record", str(trace_path), "--responses", str(log_a),
        ], out=out) == 0
        assert "response digest:" in out.getvalue()
        assert main([
            "serve", "matopiba", "--seed", "5", "--days", "1",
            "--requests", str(trace_path), "--responses", str(log_b),
        ], out=io.StringIO()) == 0
        assert log_a.read_bytes() == log_b.read_bytes()


class TestResponseLog:
    def test_log_is_canonical_json_lines(self):
        service = make_service()
        seed_entities(service.broker)
        token = register_dash(service)
        service.handle(Request("GET", "/v2/entities", token=token))
        service.handle(Request("GET", "/nope", token=token))
        lines = service.response_log().splitlines()
        assert len(lines) == 2
        for line in lines:
            record = json.loads(line)
            assert list(record) == sorted(record)
        assert len(service.response_log_digest()) == 64

    def test_report_shape(self):
        service = make_service()
        seed_entities(service.broker)
        token = register_dash(service)
        for _ in range(3):
            service.handle(Request("GET", "/v2/entities", token=token))
        report = service.report()
        assert report["requests"] == 3
        assert report["by_status"] == {"200": 3}
        assert report["cache"]["hits"] == 2
        assert 0.0 <= report["cache"]["hit_rate"] <= 1.0
        assert set(report["latency_s"]) == {"p50", "p95", "p99", "max"}
