"""Unit and property tests for the discrete-event simulation kernel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkernel import (
    Simulator,
    SimulationError,
    StopSimulation,
    RngRegistry,
)
from repro.simkernel.clock import DAY, HOUR, MINUTE, SimClock
from repro.simkernel.errors import ProcessError, ScheduleInPastError
from repro.simkernel.events import EventQueue
from repro.simkernel.process import ProcessState, Signal
from repro.simkernel.rng import derive_seed


class TestClock:
    def test_starts_at_zero(self):
        clock = SimClock()
        assert clock.now == 0.0

    def test_custom_start(self):
        clock = SimClock(start=5.0)
        assert clock.now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            SimClock(start=-1.0)

    def test_advance(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_cannot_go_backwards(self):
        clock = SimClock()
        clock.advance_to(10.0)
        with pytest.raises(SimulationError):
            clock.advance_to(9.0)

    def test_unit_conversions(self):
        clock = SimClock()
        clock.advance_to(2 * DAY)
        assert clock.now_days == pytest.approx(2.0)
        assert clock.now_hours == pytest.approx(48.0)
        assert clock.now_minutes == pytest.approx(48 * 60)

    def test_unit_constants(self):
        assert MINUTE == 60.0
        assert HOUR == 3600.0
        assert DAY == 86400.0


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        order = []
        q.push(2.0, order.append, ("b",))
        q.push(1.0, order.append, ("a",))
        q.push(3.0, order.append, ("c",))
        while q:
            e = q.pop()
            e.callback(*e.args)
        assert order == ["a", "b", "c"]

    def test_fifo_at_equal_time(self):
        q = EventQueue()
        events = [q.push(1.0, lambda: None, label=str(i)) for i in range(10)]
        popped = [q.pop().label for _ in range(10)]
        assert popped == [e.label for e in events]

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        q.push(1.0, lambda: None, priority=50, label="normal")
        q.push(1.0, lambda: None, priority=10, label="network")
        assert q.pop().label == "network"

    def test_cancelled_events_skipped(self):
        q = EventQueue()
        e1 = q.push(1.0, lambda: None, label="first")
        q.push(2.0, lambda: None, label="second")
        e1.cancel()  # routes through the owning queue's accounting
        assert len(q) == 1
        assert q.pop().label == "second"

    def test_pop_empty_raises(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.pop()

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        e = q.push(1.0, lambda: None)
        q.push(5.0, lambda: None)
        e.cancel()
        assert q.peek_time() == 5.0

    def test_peek_empty_returns_none(self):
        assert EventQueue().peek_time() is None

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_property_pop_order_is_sorted(self, times):
        q = EventQueue()
        for t in times:
            q.push(t, lambda: None)
        popped = [q.pop().time for _ in range(len(times))]
        assert popped == sorted(popped)


class TestCancellationAccounting:
    """`len(queue)` must equal the number of live events at all times.

    The historical bug: ``Event.cancel()`` only flipped a flag, nothing
    called ``note_cancelled()``, so the live count overcounted forever and
    a queue holding only cancelled events kept ``__bool__`` truthy —
    ``Simulator.run``'s ``while self.queue`` would then ``pop()`` into a
    ``SimulationError`` crash.
    """

    def test_cancel_decrements_immediately(self):
        q = EventQueue()
        events = [q.push(float(i), lambda: None, label=str(i)) for i in range(5)]
        assert len(q) == 5
        events[2].cancel()
        events[4].cancel()
        assert len(q) == 3

    def test_cancel_is_idempotent(self):
        q = EventQueue()
        e = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        e.cancel()
        e.cancel()
        e.cancel()
        assert len(q) == 1

    def test_cancel_after_pop_does_not_double_decrement(self):
        q = EventQueue()
        e = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        assert q.pop() is e
        e.cancel()  # already executed: flag only, no accounting
        assert len(q) == 1

    def test_queue_of_only_cancelled_events_is_falsy(self):
        q = EventQueue()
        events = [q.push(float(i), lambda: None) for i in range(3)]
        for e in events:
            e.cancel()
        assert len(q) == 0
        assert not q
        assert q.peek_time() is None

    def test_run_survives_fully_cancelled_queue(self):
        # The crash vector from the bug report: cancel everything pending,
        # then run — the loop must drain cleanly, not pop into an error.
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(4)]
        for e in events:
            e.cancel()
        sim.run()
        assert sim.events_executed == 0
        assert len(sim.queue) == 0

    def test_cancel_after_restore_of_stale_handle_is_harmless(self):
        # A handle captured before restore() must not corrupt the rebuilt
        # queue's accounting when cancelled afterwards.
        q = EventQueue()
        stale = q.push(1.0, lambda: None, label="stale")
        q.push(2.0, lambda: None, label="keep")
        snap = q.snapshot()
        q.restore(snap)
        assert len(q) == 2
        stale.cancel()
        assert len(q) == 2  # stale handle no longer owned by the queue

    def test_property_live_count_under_random_interleavings(self):
        """200 seeded interleavings of push/pop/cancel (+ snapshot/restore).

        Before the fix, cancel-then-snapshot/restore silently *corrected*
        the count (restore recomputes `_live` from the surviving heap), so
        `queue_depth` metrics diverged between segmented and uninterrupted
        runs; now both paths agree at every step.
        """
        import random

        for trial in range(200):
            rng = random.Random(0xC0FFEE + trial)
            q = EventQueue()
            live = []  # model: handles of events still pending
            for _ in range(rng.randrange(10, 60)):
                op = rng.random()
                if op < 0.45 or not live:
                    e = q.push(rng.uniform(0.0, 100.0), lambda: None)
                    live.append(e)
                elif op < 0.70:
                    victim = live.pop(rng.randrange(len(live)))
                    victim.cancel()
                    if rng.random() < 0.3:
                        victim.cancel()  # double-cancel must be a no-op
                elif op < 0.90:
                    popped = q.pop()
                    assert popped in live and not popped.cancelled
                    live.remove(popped)
                else:
                    q.restore(q.snapshot())
                    # restore rebuilds Event objects: refresh the model's
                    # handles to the queue's own view of what's live.
                    live = list(q._live_sorted())
                assert len(q) == len(live), (
                    f"trial {trial}: len(queue)={len(q)} != live={len(live)}"
                )
                assert bool(q) == bool(live)
            # Drain: exactly the live events come out, in order.
            drained = [q.pop() for _ in range(len(live))]
            assert len(q) == 0 and not q
            assert sorted(e.seq for e in drained) == sorted(e.seq for e in live)


class TestSchedule:
    def test_callback_runs_at_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ScheduleInPastError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_absolute(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(7.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [7.0]

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ScheduleInPastError):
            sim.schedule_at(1.0, lambda: None)

    def test_run_until_is_inclusive(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append("at5"))
        sim.schedule(6.0, lambda: seen.append("at6"))
        sim.run(until=5.0)
        assert seen == ["at5"]
        assert sim.now == 5.0

    def test_run_until_advances_clock_when_queue_drains(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run(until=100.0)
        assert sim.now == 100.0

    def test_repeated_runs_compose(self):
        sim = Simulator()
        seen = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, seen.append, (t,))
        sim.run(until=1.5)
        assert seen == [1.0]
        sim.run(until=3.0)
        assert seen == [1.0, 2.0, 3.0]

    def test_stop_simulation_exception(self):
        sim = Simulator()

        def boom():
            raise StopSimulation("enough")

        sim.schedule(1.0, boom)
        sim.schedule(2.0, lambda: pytest.fail("should not run"))
        sim.run()
        assert sim.stopped_reason == "enough"

    def test_stop_method(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: sim.stop("done"))
        sim.schedule(2.0, lambda: pytest.fail("should not run"))
        sim.run()
        assert sim.stopped_reason == "done"

    def test_max_events(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(float(i), lambda: None)
        sim.run(max_events=3)
        assert sim.events_executed == 3

    def test_stopping_event_is_counted(self):
        """Regression: the event that raises StopSimulation executed, so it
        must count toward events_executed (it used to be dropped)."""
        sim = Simulator()
        sim.schedule(1.0, lambda: None)

        def boom():
            raise StopSimulation("enough")

        sim.schedule(2.0, boom)
        sim.run()
        assert sim.stopped_reason == "enough"
        assert sim.events_executed == 2

    def test_stop_method_event_is_counted(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: sim.stop("done"))
        sim.run()
        assert sim.events_executed == 1

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        seen = []

        def chain(n):
            seen.append(n)
            if n < 3:
                sim.schedule(1.0, chain, (n + 1,))

        sim.schedule(0.0, chain, (0,))
        sim.run()
        assert seen == [0, 1, 2, 3]
        assert sim.now == 3.0

    def test_shutdown_hooks_run_once(self):
        sim = Simulator()
        calls = []
        sim.add_shutdown_hook(lambda: calls.append(1))
        sim.finish()
        sim.finish()
        assert calls == [1]


class TestProcess:
    def test_sleep_yield(self):
        sim = Simulator()
        marks = []

        def body():
            marks.append(sim.now)
            yield 10.0
            marks.append(sim.now)
            yield 5.0
            marks.append(sim.now)

        sim.spawn(body(), "p")
        sim.run()
        assert marks == [0.0, 10.0, 15.0]

    def test_process_return_value(self):
        sim = Simulator()

        def body():
            yield 1.0
            return 42

        p = sim.spawn(body(), "p")
        sim.run()
        assert p.state is ProcessState.FINISHED
        assert p.result == 42

    def test_signal_wakes_waiters(self):
        sim = Simulator()
        sig = Signal("go")
        got = []

        def waiter(name):
            value = yield sig
            got.append((name, value, sim.now))

        def firer():
            yield 3.0
            sig.fire("payload")

        sim.spawn(waiter("a"), "a")
        sim.spawn(waiter("b"), "b")
        sim.spawn(firer(), "f")
        sim.run()
        assert got == [("a", "payload", 3.0), ("b", "payload", 3.0)]

    def test_signal_refire_wakes_new_waiters_only(self):
        sim = Simulator()
        sig = Signal()
        got = []

        def waiter():
            got.append((yield sig))

        def driver():
            yield 1.0
            sig.fire("first")
            yield 1.0
            sig.fire("second")  # nobody waiting

        sim.spawn(waiter(), "w")
        sim.spawn(driver(), "d")
        sim.run()
        assert got == ["first"]
        assert sig.fire_count == 2

    def test_kill_cancels_pending_timer(self):
        sim = Simulator()
        marks = []

        def body():
            yield 100.0
            marks.append("should not happen")

        p = sim.spawn(body(), "victim")
        sim.schedule(1.0, lambda: p.kill("test"))
        sim.run()
        assert marks == []
        assert p.state is ProcessState.KILLED

    def test_kill_removes_signal_waiter(self):
        sim = Simulator()
        sig = Signal()

        def body():
            yield sig
            pytest.fail("woken after kill")

        p = sim.spawn(body(), "victim")
        sim.schedule(1.0, lambda: p.kill())
        sim.schedule(2.0, lambda: sig.fire())
        sim.run()
        assert p.state is ProcessState.KILLED

    def test_done_signal_fires(self):
        sim = Simulator()
        order = []

        def short():
            yield 1.0
            return "done"

        def watcher(proc):
            finished = yield proc.done_signal
            order.append((finished.result, sim.now))

        p = sim.spawn(short(), "short")
        sim.spawn(watcher(p), "watch")
        sim.run()
        assert order == [("done", 1.0)]

    def test_bad_yield_fails_process(self):
        sim = Simulator()

        def body():
            yield "nonsense"

        with pytest.raises(ProcessError):
            sim.spawn(body(), "bad")
            sim.run()

    def test_negative_delay_fails_process(self):
        sim = Simulator()

        def body():
            yield -5.0

        with pytest.raises(ProcessError):
            sim.spawn(body(), "bad")
            sim.run()

    def test_process_exception_propagates_fail_fast(self):
        sim = Simulator()

        def body():
            yield 1.0
            raise ValueError("boom")

        sim.spawn(body(), "bad")
        with pytest.raises(ValueError):
            sim.run()

    def test_process_exception_tolerated_when_not_fail_fast(self):
        sim = Simulator()
        sim.fail_fast = False

        def body():
            yield 1.0
            raise ValueError("boom")

        p = sim.spawn(body(), "bad")
        sim.run()
        assert p.state is ProcessState.FAILED
        assert isinstance(p.error, ValueError)

    def test_double_start_rejected(self):
        sim = Simulator()

        def body():
            yield 1.0

        p = sim.spawn(body(), "p")
        with pytest.raises(ProcessError):
            p.start()


class TestRng:
    def test_same_seed_same_stream(self):
        a = RngRegistry(42).stream("weather")
        b = RngRegistry(42).stream("weather")
        assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]

    def test_different_names_independent(self):
        reg = RngRegistry(42)
        a = reg.stream("weather")
        b = reg.stream("noise")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_stream_cached(self):
        reg = RngRegistry(1)
        assert reg.stream("x") is reg.stream("x")

    def test_fork_independent_of_parent(self):
        parent = RngRegistry(7)
        child = parent.fork("sweep-0")
        assert child.master_seed != parent.master_seed
        # Forks are themselves deterministic.
        again = RngRegistry(7).fork("sweep-0")
        assert child.master_seed == again.master_seed

    def test_derive_seed_is_stable(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")
        assert derive_seed(1, "a") != derive_seed(2, "a")
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_bernoulli_extremes(self):
        s = RngRegistry(3).stream("s")
        assert not s.bernoulli(0.0)
        assert s.bernoulli(1.0)

    def test_bounded_gauss_respects_bounds(self):
        s = RngRegistry(3).stream("s")
        for _ in range(200):
            v = s.bounded_gauss(0.0, 100.0, -1.0, 1.0)
            assert -1.0 <= v <= 1.0

    def test_token_bytes_deterministic(self):
        a = RngRegistry(9).stream("k").token_bytes(16)
        b = RngRegistry(9).stream("k").token_bytes(16)
        assert a == b
        assert len(a) == 16

    @given(st.integers(min_value=0, max_value=2**31), st.text(max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_property_derive_seed_in_64_bit_range(self, seed, name):
        child = derive_seed(seed, name)
        assert 0 <= child < 2**64


class TestTrace:
    def test_emit_and_select(self):
        sim = Simulator()
        sim.trace.emit(0.0, "net", "packet sent", size=10)
        sim.trace.emit(1.0, "net", "packet lost")
        sim.trace.emit(2.0, "app", "decision")
        assert len(sim.trace.select(category="net")) == 2
        assert sim.trace.count("net") == 2
        assert len(sim.trace.select(since=1.5)) == 1

    def test_bounded_with_drop_counter(self):
        sim = Simulator(trace_capacity=5)
        for i in range(8):
            sim.trace.emit(float(i), "c", "m")
        assert len(sim.trace) == 5
        assert sim.trace.dropped == 3
        assert sim.trace.count("c") == 8  # counters survive eviction

    def test_listener_invoked(self):
        sim = Simulator()
        seen = []
        sim.trace.subscribe(lambda r: seen.append(r.category))
        sim.trace.emit(0.0, "x", "m")
        assert seen == ["x"]


class TestDeterminism:
    def test_full_run_reproducible(self):
        def run_once(seed):
            sim = Simulator(seed=seed)
            log = []
            rng = sim.rng.stream("jitter")

            def worker(name):
                for _ in range(5):
                    yield rng.uniform(0.1, 2.0)
                    log.append((round(sim.now, 9), name))

            for n in ("a", "b", "c"):
                sim.spawn(worker(n), n)
            sim.run()
            return log

        assert run_once(123) == run_once(123)
        assert run_once(123) != run_once(124)


class TestAutoFinish:
    """run() fires shutdown hooks automatically when the run *ends*."""

    def test_hooks_fire_on_queue_drain(self):
        sim = Simulator()
        calls = []
        sim.add_shutdown_hook(lambda: calls.append("hook"))
        sim.schedule(1.0, lambda: calls.append("event"))
        sim.run()
        assert calls == ["event", "hook"]

    def test_hooks_fire_when_until_reached(self):
        sim = Simulator()
        calls = []
        sim.add_shutdown_hook(lambda: calls.append(sim.now))
        sim.schedule(100.0, lambda: None)  # beyond the horizon
        sim.run(until=10.0)
        assert calls == [10.0]

    def test_hooks_fire_on_stop_simulation(self):
        def stopper():
            raise StopSimulation("enough")

        sim = Simulator()
        calls = []
        sim.add_shutdown_hook(lambda: calls.append(1))
        sim.schedule(1.0, stopper)
        sim.run()
        assert calls == [1]

    def test_hooks_fire_when_callback_raises(self):
        def boom():
            raise RuntimeError("boom")

        sim = Simulator()
        calls = []
        sim.add_shutdown_hook(lambda: calls.append(1))
        sim.schedule(1.0, boom)
        with pytest.raises(RuntimeError):
            sim.run()
        assert calls == [1]

    def test_max_events_break_is_a_pause_not_an_end(self):
        sim = Simulator()
        calls = []
        sim.add_shutdown_hook(lambda: calls.append(1))
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run(max_events=2)
        assert calls == []  # paused: hooks withheld
        sim.run()
        assert calls == [1]  # resumed to completion: hooks fire

    def test_hooks_fire_exactly_once_across_back_to_back_runs(self):
        sim = Simulator()
        calls = []
        sim.add_shutdown_hook(lambda: calls.append(1))
        sim.schedule(1.0, lambda: None)
        sim.run(until=5.0)
        sim.schedule(1.0, lambda: None)
        sim.run(until=10.0)
        assert calls == [1]

    def test_hook_may_schedule_and_rerun(self):
        # A shutdown hook is allowed to call run() again (e.g. a flush
        # loop): _running is cleared before hooks are invoked.
        sim = Simulator()
        flushed = []

        def flush():
            sim.schedule(0.0, lambda: flushed.append(sim.now))
            sim.run()

        sim.add_shutdown_hook(flush)
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert flushed == [1.0]


class TestTraceEviction:
    def test_ring_buffer_keeps_newest_records(self):
        sim = Simulator(trace_capacity=3)
        for i in range(7):
            sim.trace.emit(float(i), "cat", f"m{i}")
        assert len(sim.trace) == 3
        assert [r.message for r in sim.trace] == ["m4", "m5", "m6"]
        assert sim.trace.dropped == 4
        assert sim.trace.count("cat") == 7  # per-category total survives

    def test_select_only_sees_retained_records(self):
        sim = Simulator(trace_capacity=2)
        for i in range(4):
            sim.trace.emit(float(i), "cat", f"m{i}")
        assert [r.message for r in sim.trace.select(category="cat")] == ["m2", "m3"]


class TestRngIndependence:
    def test_streams_are_independent_of_draw_order(self):
        # Drawing heavily from one stream must not perturb another —
        # the property that keeps ablations comparable across revisions.
        a = RngRegistry(42)
        baseline = [a.stream("weather").random() for _ in range(5)]

        b = RngRegistry(42)
        for _ in range(1000):
            b.stream("radio").random()  # extra traffic on another stream
        perturbed = [b.stream("weather").random() for _ in range(5)]
        assert baseline == perturbed

    def test_stream_creation_order_is_irrelevant(self):
        a = RngRegistry(7)
        a.stream("x")
        first = a.stream("y").random()
        b = RngRegistry(7)
        b.stream("y")  # created first this time
        b.stream("x")
        assert b.stream("y").random() == first

    def test_fork_is_deterministic_and_distinct(self):
        root = RngRegistry(3)
        fork_a = root.fork("sweep-1")
        fork_b = RngRegistry(3).fork("sweep-1")
        other = root.fork("sweep-2")
        assert fork_a.master_seed == fork_b.master_seed
        assert fork_a.master_seed != other.master_seed
        assert fork_a.stream("s").random() == fork_b.stream("s").random()


class TestEventTieBreak:
    def test_same_time_same_priority_runs_fifo(self):
        queue = EventQueue()
        order = []
        for i in range(10):
            queue.push(5.0, lambda i=i: order.append(i))
        while queue:
            event = queue.pop()
            event.callback(*event.args)
        assert order == list(range(10))

    def test_priority_beats_insertion_order_at_equal_time(self):
        queue = EventQueue()
        queue.push(5.0, lambda: None, priority=50, label="normal")
        queue.push(5.0, lambda: None, priority=10, label="network")
        queue.push(5.0, lambda: None, priority=0, label="kernel")
        labels = [queue.pop().label for _ in range(3)]
        assert labels == ["kernel", "network", "normal"]

    def test_time_dominates_priority(self):
        queue = EventQueue()
        queue.push(2.0, lambda: None, priority=0, label="later-kernel")
        queue.push(1.0, lambda: None, priority=90, label="earlier-background")
        assert queue.pop().label == "earlier-background"

    def test_simultaneous_fanout_is_deterministic_across_runs(self):
        def run_once():
            sim = Simulator()
            order = []
            for name in ("s1", "s2", "s3", "s4", "s5"):
                sim.schedule(1.0, lambda n=name: order.append(n))
            sim.run()
            return order

        assert run_once() == run_once() == ["s1", "s2", "s3", "s4", "s5"]
