"""Columnar compaction: chunk codec, pruning, retention, kill points.

The tentpole invariants (E21): every query shape answered from sealed
chunk files plus the WAL tail is bit-identical to the in-memory answer,
zone maps only ever *prune* (never aggregate), retention drops whole
chunks deterministically, and a kill at any compaction crash point
recovers to exactly the reads an uninterrupted run serves.
"""

import pytest

from repro.context.broker import ContextBroker
from repro.context.errors import QueryError
from repro.context.history import MINUTE_S, HistoryQuery, ShortTermHistory
from repro.core.run import RunOptions, run
from repro.faults.chaos import check_storage_invariants
from repro.simkernel.simulator import Simulator
from repro.store import (
    CompactionKilled,
    DurabilityService,
    RetentionConfig,
    RetentionPolicy,
    SegmentStore,
    StoreError,
    decode_chunk,
    encode_chunk,
    open_columnar_reader,
)
from repro.store.columnar import SAMPLE_BYTES, chunk_header

EID = "urn:AgriParcel:demo:0-0"
ATTR = "soilMoisture"


def columnar_fixture(root, segment_bytes=600, flush_s=50.0, compact_s=None,
                     retention=None, block_size=8, entities=(EID,)):
    """A broker+history+store rig with compaction attached.

    ``compact_s=None`` keeps the pump long (1e9 s) so tests drive
    ``compact_once`` explicitly and deterministically.
    """
    sim = Simulator(seed=1)
    broker = ContextBroker(sim)
    history = ShortTermHistory(broker, rollup_periods=(MINUTE_S,))
    for eid in entities:
        broker.create_entity(eid, "AgriParcel")
    store = SegmentStore(str(root), max_segment_bytes=segment_bytes)
    service = DurabilityService(sim, history, store,
                                flush_interval_s=flush_s)
    service.start()
    compaction = service.enable_compaction(
        interval_s=compact_s if compact_s is not None else 1e9,
        block_size=block_size, retention=retention)
    return sim, broker, history, service, compaction


def feed(sim, broker, n, dt=10.0, eid=EID, start=0):
    """Values are a function of the absolute sample index (``start``),
    so feeding 30+90 and 60+60 produce byte-identical streams."""
    for i in range(start, start + n):
        sim.run_until(sim.now + dt)
        broker.update_attributes(eid, {ATTR: 0.1 * (i % 13)})


def samples_for(n):
    return [(EID, ATTR, 10.0 * (i + 1), 0.1 * (i % 13)) for i in range(n)]


ALL_SHAPES = [
    HistoryQuery(EID, ATTR),
    HistoryQuery(EID, ATTR, since=200.0, until=900.0),
    HistoryQuery(EID, ATTR, last_n=7),
    HistoryQuery(EID, ATTR, period_s=MINUTE_S, method="sum"),
    HistoryQuery(EID, ATTR, period_s=MINUTE_S, method="mean",
                 since=240.0, until=720.0),
    HistoryQuery(EID, ATTR, aggregate=True),
]


def assert_reads_match(history, queries=ALL_SHAPES):
    """Columnar answers == memory answers, bit for bit."""
    for query in queries:
        mem = history.read(query, source="memory")
        col = history.read(query, source="columnar")
        assert col.rows == mem.rows, query
        assert col.stats == mem.stats, query


class TestChunkCodec:
    def test_round_trip_preserves_append_order(self):
        # Interleave two series so the order array has to work.
        samples = []
        for i in range(20):
            eid = EID if i % 3 else "urn:AgriParcel:demo:1-1"
            samples.append((eid, ATTR, 5.0 * i, float(i)))
        payload = encode_chunk(0, 100, samples, block_size=4)
        chunk = decode_chunk(payload)
        assert list(chunk.iter_records()) == samples
        assert chunk.header["first_seq"] == 100
        assert chunk.header["records"] == 20

    def test_zone_maps_summarize_blocks(self):
        samples = samples_for(10)
        header = chunk_header(encode_chunk(3, 0, samples, block_size=4))
        entry = header["series"][0]
        assert entry["entity"] == EID and entry["attr"] == ATTR
        # 10 samples at block_size=4 → blocks of 4, 4, 2.
        assert [b[0] for b in entry["blocks"]] == [4, 4, 2]
        first = entry["blocks"][0]
        n, t_min, t_max, v_min, v_max, v_sum = first
        ts = [t for _e, _a, t, _v in samples[:4]]
        vs = [v for _e, _a, _t, v in samples[:4]]
        assert (t_min, t_max) == (min(ts), max(ts))
        assert (v_min, v_max) == (min(vs), max(vs))
        assert v_sum == pytest.approx(sum(vs))

    def test_decode_rejects_bad_magic_and_truncation(self):
        payload = encode_chunk(0, 0, samples_for(5), block_size=4)
        with pytest.raises(StoreError):
            decode_chunk(b"XXXX" + payload[4:])
        with pytest.raises(StoreError):
            decode_chunk(payload[:-3])

    def test_float_columns_reencode_exactly(self):
        # f64 columns must round-trip so recovery re-encodes the exact
        # payload bytes the WAL held.
        samples = [(EID, ATTR, 0.1 + 0.2 * i, 1e-17 * (i + 1))
                   for i in range(9)]
        chunk = decode_chunk(encode_chunk(0, 0, samples, block_size=4))
        assert list(chunk.iter_records()) == samples


class TestCompaction:
    def test_drains_sealed_segments_and_reads_match(self, tmp_path):
        sim, broker, history, service, compaction = columnar_fixture(tmp_path)
        feed(sim, broker, 120)
        service.flush_now()
        assert service.store.segment_count > 1
        moved = compaction.compact_once()
        assert moved > 0
        assert compaction.columnar.chunk_indexes()
        # Only the active segment remains WAL-resident.
        assert service.store.segment_count == 1
        assert_reads_match(history)
        audit = compaction.audit()
        assert audit["boundary_consistent"]
        assert audit["overlap_chunks"] == 0
        assert audit["overlap_segments"] == 0

    def test_compact_once_is_a_noop_without_sealed_segments(self, tmp_path):
        sim, broker, history, service, compaction = columnar_fixture(
            tmp_path, segment_bytes=1 << 20)
        feed(sim, broker, 5)
        service.flush_now()
        assert compaction.compact_once() == 0
        assert compaction.columnar.chunk_indexes() == []

    def test_auto_source_serves_columnar(self, tmp_path):
        sim, broker, history, service, compaction = columnar_fixture(tmp_path)
        feed(sim, broker, 60)
        service.flush_now()
        compaction.compact_once()
        result = history.read(HistoryQuery(EID, ATTR))
        assert result.source == "columnar"
        assert result.rows == history.read(
            HistoryQuery(EID, ATTR), source="memory").rows

    def test_pump_compacts_on_the_sim_clock(self, tmp_path):
        sim, broker, history, service, compaction = columnar_fixture(
            tmp_path, compact_s=300.0)
        feed(sim, broker, 120)
        sim.run_until(sim.now + 600.0)
        assert compaction.compacted_segments > 0
        assert_reads_match(history)

    def test_columnar_outlives_ring_eviction(self, tmp_path):
        sim = Simulator(seed=1)
        broker = ContextBroker(sim)
        history = ShortTermHistory(broker, max_samples_per_series=10)
        broker.create_entity(EID, "AgriParcel")
        store = SegmentStore(str(tmp_path), max_segment_bytes=600)
        service = DurabilityService(sim, history, store,
                                    flush_interval_s=50.0)
        service.start()
        compaction = service.enable_compaction(interval_s=1e9)
        feed(sim, broker, 80)
        service.flush_now()
        compaction.compact_once()
        rows = history.read(HistoryQuery(EID, ATTR), source="columnar").rows
        mem = history.read(HistoryQuery(EID, ATTR), source="memory").rows
        assert len(rows) == 80          # disk kept what the ring dropped
        assert len(mem) == 10
        assert rows[-10:] == mem        # and the shared suffix is identical


class TestZoneMapPruning:
    def test_bounded_window_prunes_blocks(self, tmp_path):
        sim, broker, history, service, compaction = columnar_fixture(
            tmp_path, block_size=8)
        feed(sim, broker, 200)
        service.flush_now()
        compaction.compact_once()
        query = HistoryQuery(EID, ATTR, since=500.0, until=700.0)
        result = history.read(query, source="columnar")
        assert result.pruned_blocks > 0
        assert result.scanned_blocks > 0
        assert result.rows == history.read(query, source="memory").rows

    def test_lastn_skips_old_chunks(self, tmp_path):
        sim, broker, history, service, compaction = columnar_fixture(tmp_path)
        feed(sim, broker, 200)
        service.flush_now()
        compaction.compact_once()
        result = history.read(
            HistoryQuery(EID, ATTR, last_n=3), source="columnar")
        assert result.pruned_blocks > 0
        assert result.rows == history.read(
            HistoryQuery(EID, ATTR, last_n=3), source="memory").rows

    def test_rollup_prune_keeps_bucket_fold_exact(self, tmp_path):
        sim, broker, history, service, compaction = columnar_fixture(
            tmp_path, block_size=4)
        feed(sim, broker, 150)
        service.flush_now()
        compaction.compact_once()
        query = HistoryQuery(EID, ATTR, period_s=MINUTE_S, method="sum",
                             since=300.0, until=600.0)
        result = history.read(query, source="columnar")
        assert result.pruned_blocks > 0
        assert result.rows == history.read(query, source="memory").rows


class TestRetention:
    def test_age_policy_drops_old_chunks(self, tmp_path):
        retention = RetentionConfig(
            default=RetentionPolicy(max_age_s=400.0))
        sim, broker, history, service, compaction = columnar_fixture(
            tmp_path, retention=retention)
        feed(sim, broker, 150)
        service.flush_now()
        compaction.compact_once()
        col = compaction.columnar
        assert col.dropped_chunks > 0
        assert col.dropped_records > 0
        assert col.dropped_bytes == col.dropped_records * SAMPLE_BYTES
        assert compaction.audit()["boundary_consistent"]
        query = HistoryQuery(EID, ATTR, last_n=5)
        assert history.read(query, source="columnar").rows == \
            history.read(query, source="memory").rows

    def test_byte_budget_drops_oldest_first(self, tmp_path):
        retention = RetentionConfig(
            default=RetentionPolicy(max_bytes=40 * SAMPLE_BYTES))
        sim, broker, history, service, compaction = columnar_fixture(
            tmp_path, retention=retention)
        feed(sim, broker, 150)
        service.flush_now()
        compaction.compact_once()
        col = compaction.columnar
        assert col.dropped_chunks > 0
        retained = col.chunk_records
        # Whole-chunk granularity: retained columnar bytes are within one
        # chunk of the budget.
        indexes = col.chunk_indexes()
        assert indexes == sorted(indexes)
        if indexes:
            largest = max(col.header(i)["records"] for i in indexes)
            assert retained * SAMPLE_BYTES <= \
                40 * SAMPLE_BYTES + largest * SAMPLE_BYTES
        assert compaction.audit()["boundary_consistent"]

    def test_mixed_ownership_chunk_is_kept_and_counted(self, tmp_path):
        other = "urn:Tenant:keeper:0-0"
        retention = RetentionConfig(
            default=RetentionPolicy(),               # unbounded default
            tenants=(("urn:AgriParcel", RetentionPolicy(max_age_s=100.0)),))
        sim, broker, history, service, compaction = columnar_fixture(
            tmp_path, retention=retention, segment_bytes=2000,
            entities=(EID, other))
        for i in range(60):
            sim.run_until(sim.now + 10.0)
            broker.update_attributes(EID, {ATTR: float(i)})
            broker.update_attributes(other, {ATTR: float(i)})
        service.flush_now()
        compaction.compact_once()
        col = compaction.columnar
        # Every chunk holds both tenants; only one wants the drop.
        assert col.dropped_chunks == 0
        assert compaction.retention_blocked_chunks > 0
        assert_reads_match(history, [HistoryQuery(EID, ATTR),
                                     HistoryQuery(other, ATTR)])

    def test_tenant_accounting_in_report(self, tmp_path):
        retention = RetentionConfig(
            default=RetentionPolicy(max_age_s=300.0))
        sim, broker, history, service, compaction = columnar_fixture(
            tmp_path, retention=retention)
        feed(sim, broker, 150)
        service.flush_now()
        compaction.compact_once()
        report = compaction.report()
        assert report["dropped_chunks"] > 0
        assert "*" in report["tenant_drops"]
        assert report["tenant_drops"]["*"]["records"] > 0

    def test_reads_survive_retention_gaps(self, tmp_path):
        retention = RetentionConfig(default=RetentionPolicy(max_age_s=500.0))
        sim, broker, history, service, compaction = columnar_fixture(
            tmp_path, retention=retention)
        feed(sim, broker, 100)
        service.flush_now()
        compaction.compact_once()
        feed(sim, broker, 100)
        service.flush_now()
        compaction.compact_once()
        # Bounded window over the retained suffix still answers exactly.
        query = HistoryQuery(EID, ATTR, since=sim.now - 400.0, until=sim.now)
        assert history.read(query, source="columnar").rows == \
            history.read(query, source="memory").rows


class TestKillPointMatrix:
    """Any kill during compaction recovers to the uninterrupted reads."""

    STAGES = ("chunk_sealed", "meta_written", "retention_meta")
    CUTS = (30, 55, 80, 110)

    def _compact_surviving_kills(self, service, compaction):
        """Run one compaction round; on a (possibly armed) kill, recover
        and finish the interrupted work.  Returns whether a kill fired."""
        try:
            compaction.compact_once()
        except CompactionKilled:
            service.crash_and_recover()
            assert service.lost_committed == 0
            assert service.prefix_consistent
            compaction.compact_once()
            return True
        return False

    def _run(self, root, cut, stage=None):
        """One run: feed ``cut`` samples, compact, feed the rest, compact
        again — with ``stage`` armed, the kill fires at the first round
        that reaches that crash point (retention drops need age) and the
        run recovers and finishes.  The no-kill run with the same ``cut``
        is the oracle — identical schedule, minus the kill."""
        retention = RetentionConfig(default=RetentionPolicy(max_age_s=600.0))
        sim, broker, history, service, compaction = columnar_fixture(
            root, retention=retention)
        compaction.kill_after = stage
        feed(sim, broker, cut)
        service.flush_now()
        fired = self._compact_surviving_kills(service, compaction)
        feed(sim, broker, 120 - cut, start=cut)
        service.flush_now()
        fired = self._compact_surviving_kills(service, compaction) or fired
        if stage is not None:
            assert fired, (stage, cut)
        audit = compaction.audit()
        assert audit["boundary_consistent"], (stage, cut)
        assert audit["overlap_chunks"] == 0 and audit["overlap_segments"] == 0
        return {
            "reads": [
                (history.read(q, source="columnar").rows,
                 history.read(q, source="columnar").stats)
                for q in ALL_SHAPES
            ],
            "records": service.store.appended + compaction.columnar.wal_base_seq,
        }

    def test_every_stage_and_cut_recovers_identically(self, tmp_path):
        for cut in self.CUTS:
            reference = self._run(tmp_path / f"ref-{cut}", cut=cut)
            for stage in self.STAGES:
                state = self._run(tmp_path / f"{stage}-{cut}",
                                  cut=cut, stage=stage)
                assert state == reference, (stage, cut)

    def test_double_kill_at_same_stage_still_recovers(self, tmp_path):
        reference = self._run(tmp_path / "reference", cut=60)
        retention = RetentionConfig(default=RetentionPolicy(max_age_s=600.0))
        sim, broker, history, service, compaction = columnar_fixture(
            tmp_path / "victim", retention=retention)
        feed(sim, broker, 60)
        service.flush_now()
        for _ in range(2):
            compaction.kill_after = "meta_written"
            with pytest.raises(CompactionKilled):
                compaction.compact_once()
            service.crash_and_recover()
            assert service.lost_committed == 0
        compaction.compact_once()
        feed(sim, broker, 60, start=60)
        service.flush_now()
        compaction.compact_once()
        reads = [
            (history.read(q, source="columnar").rows,
             history.read(q, source="columnar").stats)
            for q in ALL_SHAPES
        ]
        assert reads == reference["reads"]


class TestFlushCoalescing:
    def test_same_instant_barrier_is_coalesced(self, tmp_path):
        # A large segment keeps rotation (its own durability barrier)
        # out of the picture so the volatile accounting is ours alone.
        sim, broker, history, service, compaction = columnar_fixture(
            tmp_path, segment_bytes=1 << 20)
        feed(sim, broker, 10)
        assert service.flush_now()
        assert service.coalesced_flushes == 0
        # Nothing volatile arrived and sim time has not advanced: skip.
        assert service.flush_now()
        assert service.coalesced_flushes == 1
        # New volatile data at the same instant must still commit.
        broker.update_attributes(EID, {ATTR: 0.9})
        assert service.flush_now()
        assert service.coalesced_flushes == 1
        assert service.store.volatile_records == 0


class TestChaosAuditIntegration:
    def test_storage_invariants_cover_the_boundary(self, tmp_path):
        sim, broker, history, service, compaction = columnar_fixture(tmp_path)
        feed(sim, broker, 120)
        service.flush_now()
        compaction.compact_once()

        class Runner:
            pass

        runner = Runner()
        runner.durability = service
        results = check_storage_invariants(runner)
        names = {r.name for r in results}
        assert "no record lost across WAL→chunk boundary" in names
        assert "no record served twice across WAL→chunk boundary" in names
        assert all(r.ok for r in results), [
            (r.name, r.detail) for r in results if not r.ok]


class TestOfflineReader:
    def test_open_columnar_reader_matches_live_reads(self, tmp_path):
        sim, broker, history, service, compaction = columnar_fixture(tmp_path)
        feed(sim, broker, 150)
        service.flush_now()
        compaction.compact_once()
        live = {q: history.read(q, source="columnar") for q in ALL_SHAPES}
        service.store.close()
        offline = open_columnar_reader(str(tmp_path))
        for query, expected in live.items():
            got = offline.read(query)
            assert got.rows == expected.rows
            assert got.stats == expected.stats

    def test_offline_reader_rejects_bad_query(self, tmp_path):
        sim, broker, history, service, compaction = columnar_fixture(tmp_path)
        feed(sim, broker, 10)
        service.flush_now()
        service.store.close()
        reader = open_columnar_reader(str(tmp_path))
        with pytest.raises(QueryError):
            reader.read(HistoryQuery(EID, ATTR, last_n=0))


class TestRunIntegration:
    def test_run_with_compaction_reports_chunks(self, tmp_path):
        result = run(RunOptions(
            pilot="matopiba", seed=3, days=0.25, metrics=False,
            store_dir=str(tmp_path), store_flush_s=300.0,
            store_segment_bytes=4096, store_compact_s=1800.0,
        ))
        report = result.runner.durability.report()
        assert "compaction" in report
        assert report["compaction"]["chunk_records"] > 0
        assert report["lost_committed"] == 0
        # The on-disk directory round-trips through the offline reader.
        reader = open_columnar_reader(str(tmp_path))
        eid, attr = sorted(result.runner.history.tracked_series())[0]
        offline = reader.read(HistoryQuery(eid, attr))
        live = result.runner.history.read(
            HistoryQuery(eid, attr), source="columnar")
        assert offline.rows == live.rows
