"""Tests for irrigation policies, VRI, distribution and source mix."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.irrigation import (
    Canal,
    DesalinationPlant,
    DistributionNetwork,
    FarmOfftake,
    FixedCalendarPolicy,
    Reservoir,
    SoilMoisturePolicy,
    SourceMixOptimizer,
    WaterSource,
    build_prescription,
    uniform_prescription,
)
from repro.irrigation.baselines import RainBlindEtPolicy
from repro.irrigation.policy import DeficitPolicy
from repro.irrigation.vri import prescription_volume_m3
from repro.physics import Field, LOAM, SOYBEAN
from repro.simkernel.rng import RngRegistry


class TestSoilMoisturePolicy:
    def test_no_irrigation_when_moist(self):
        policy = SoilMoisturePolicy()
        decision = policy.decide(depletion_mm=10.0, raw_mm=40.0)
        assert not decision.irrigate
        assert decision.reason == "moist-enough"

    def test_irrigates_at_trigger(self):
        policy = SoilMoisturePolicy(trigger_fraction=0.9)
        decision = policy.decide(depletion_mm=37.0, raw_mm=40.0)
        assert decision.irrigate
        assert decision.depth_mm == pytest.approx(min(37.0 * 0.9, policy.max_application_mm))

    def test_rain_forecast_skips(self):
        policy = SoilMoisturePolicy()
        decision = policy.decide(depletion_mm=38.0, raw_mm=40.0, forecast_rain_mm=50.0)
        assert not decision.irrigate
        assert decision.reason == "rain-expected"

    def test_rain_forecast_reduces(self):
        policy = SoilMoisturePolicy()
        with_rain = policy.decide(40.0, 40.0, forecast_rain_mm=10.0)
        without = policy.decide(40.0, 40.0)
        assert 0 < with_rain.depth_mm < without.depth_mm

    def test_max_application_cap(self):
        policy = SoilMoisturePolicy(max_application_mm=20.0)
        decision = policy.decide(depletion_mm=100.0, raw_mm=50.0)
        assert decision.depth_mm == 20.0

    def test_zero_capacity_never_irrigates(self):
        assert not SoilMoisturePolicy().decide(50.0, 0.0).irrigate

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SoilMoisturePolicy(trigger_fraction=0.0)
        with pytest.raises(ValueError):
            SoilMoisturePolicy(refill_fraction=1.5)

    @given(
        depletion=st.floats(min_value=0, max_value=200),
        raw=st.floats(min_value=1, max_value=100),
        rain=st.floats(min_value=0, max_value=60),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_depth_bounded(self, depletion, raw, rain):
        policy = SoilMoisturePolicy()
        decision = policy.decide(depletion, raw, rain)
        assert 0.0 <= decision.depth_mm <= policy.max_application_mm


class TestDeficitPolicy:
    def test_deficit_stage_reduces_depth(self):
        policy = DeficitPolicy(deficit_stages=("ripening",), deficit_target=0.5)
        normal = policy.decide_staged("flowering", 40.0, 40.0)
        deficit = policy.decide_staged("ripening", 40.0, 40.0)
        assert deficit.depth_mm == pytest.approx(normal.depth_mm * 0.5)
        assert deficit.reason == "deficit-regulated"

    def test_non_deficit_stage_unchanged(self):
        policy = DeficitPolicy(deficit_stages=("ripening",))
        assert policy.decide_staged("initial", 40.0, 40.0).reason == "deficit-refill"


class TestBaselines:
    def test_fixed_calendar_fires_on_interval(self):
        policy = FixedCalendarPolicy(interval_days=3, depth_mm=25.0)
        fired = [d for d in range(12) if policy.decide(d).irrigate]
        assert fired == [0, 3, 6, 9]

    def test_fixed_calendar_validation(self):
        with pytest.raises(ValueError):
            FixedCalendarPolicy(interval_days=0)
        with pytest.raises(ValueError):
            FixedCalendarPolicy(depth_mm=0)

    def test_rain_blind_replaces_et(self):
        policy = RainBlindEtPolicy()
        assert policy.decide(6.0).depth_mm == pytest.approx(6.0)
        assert policy.decide(6.0, kc=0.5).depth_mm == pytest.approx(3.0)
        assert not policy.decide(0.2).irrigate


class TestVri:
    def make_field(self, cv=0.3):
        return Field("f", 4, 4, LOAM, SOYBEAN, RngRegistry(7).stream("field"), spatial_cv=cv)

    def dry_down(self, field, days=8):
        for _ in range(days):
            field.advance_day(et0_mm=6.0, rain_mm=0.0)

    def test_prescription_tracks_depletion(self):
        field = self.make_field()
        self.dry_down(field, days=10)
        prescription = build_prescription(field.zones)
        assert any(v > 0 for v in prescription.values())
        # Zones with lower capacity deplete their RAW sooner; at least the
        # prescription must not be uniform on a variable field.
        depths = set(round(v, 3) for v in prescription.values())
        assert len(depths) > 1

    def test_uniform_sized_by_worst_zone(self):
        field = self.make_field()
        self.dry_down(field, days=10)
        uniform = uniform_prescription(field.zones)
        vri = build_prescription(field.zones)
        worst = max(vri.values())
        assert all(v == pytest.approx(max(worst, max(vri.values()))) for v in uniform.values())

    def test_vri_uses_less_water_on_variable_field(self):
        field = self.make_field(cv=0.3)
        self.dry_down(field, days=10)
        vri_volume = prescription_volume_m3(build_prescription(field.zones), field.zones)
        uniform_volume = prescription_volume_m3(uniform_prescription(field.zones), field.zones)
        assert vri_volume < uniform_volume

    def test_vri_equals_uniform_on_homogeneous_field(self):
        field = self.make_field(cv=0.0)
        self.dry_down(field, days=10)
        vri_volume = prescription_volume_m3(build_prescription(field.zones), field.zones)
        uniform_volume = prescription_volume_m3(uniform_prescription(field.zones), field.zones)
        assert vri_volume == pytest.approx(uniform_volume, rel=0.01)

    def test_depletion_reader_override(self):
        """A tampered reader changes the prescription (the E5 mechanism)."""
        field = self.make_field(cv=0.0)
        self.dry_down(field, days=10)
        honest = build_prescription(field.zones)
        lying = build_prescription(field.zones, depletion_reader=lambda z: 0.0)
        assert sum(lying.values()) == 0.0
        assert sum(honest.values()) > 0.0


class TestDistribution:
    def make_network(self):
        reservoir = Reservoir("res", capacity_m3=100_000.0)
        network = DistributionNetwork(reservoir)
        network.add_canal(Canal("main", None, capacity_m3_day=50_000.0, loss_fraction=0.1))
        network.add_canal(Canal("north", "main", capacity_m3_day=20_000.0, loss_fraction=0.05))
        network.add_canal(Canal("south", "main", capacity_m3_day=20_000.0, loss_fraction=0.05))
        network.add_farm(FarmOfftake("farm-n1", "north", priority=1))
        network.add_farm(FarmOfftake("farm-n2", "north", priority=2))
        network.add_farm(FarmOfftake("farm-s1", "south", priority=1))
        return network

    def test_full_allocation_when_plentiful(self):
        network = self.make_network()
        network.set_demand("farm-n1", 1000.0)
        network.set_demand("farm-s1", 2000.0)
        allocations = network.allocate()
        assert allocations["farm-n1"] == pytest.approx(1000.0, rel=1e-6)
        assert allocations["farm-s1"] == pytest.approx(2000.0, rel=1e-6)

    def test_losses_accounted(self):
        network = self.make_network()
        network.set_demand("farm-n1", 1000.0)
        network.allocate()
        # Gross = 1000 / (0.9 * 0.95) ≈ 1169.6; loss ≈ 169.6
        assert network.total_losses_m3 == pytest.approx(169.59, rel=0.01)
        assert 0.8 < network.efficiency() < 0.9

    def test_priority_order_under_scarcity(self):
        reservoir = Reservoir("res", capacity_m3=1200.0)
        network = DistributionNetwork(reservoir)
        network.add_canal(Canal("main", None, capacity_m3_day=10_000.0, loss_fraction=0.0))
        network.add_farm(FarmOfftake("vip", "main", priority=1))
        network.add_farm(FarmOfftake("std", "main", priority=2))
        network.set_demand("vip", 1000.0)
        network.set_demand("std", 1000.0)
        allocations = network.allocate()
        assert allocations["vip"] == pytest.approx(1000.0)
        assert allocations["std"] == pytest.approx(200.0)

    def test_proportional_rationing_within_class(self):
        reservoir = Reservoir("res", capacity_m3=900.0)
        network = DistributionNetwork(reservoir)
        network.add_canal(Canal("main", None, capacity_m3_day=10_000.0, loss_fraction=0.0))
        network.add_farm(FarmOfftake("a", "main", priority=1))
        network.add_farm(FarmOfftake("b", "main", priority=1))
        network.set_demand("a", 600.0)
        network.set_demand("b", 1200.0)
        allocations = network.allocate()
        # 900 available for 1800 requested -> 50% each.
        assert allocations["a"] == pytest.approx(300.0)
        assert allocations["b"] == pytest.approx(600.0)

    def test_canal_capacity_caps_delivery(self):
        reservoir = Reservoir("res", capacity_m3=100_000.0)
        network = DistributionNetwork(reservoir)
        network.add_canal(Canal("tiny", None, capacity_m3_day=500.0, loss_fraction=0.0))
        network.add_farm(FarmOfftake("a", "tiny"))
        network.set_demand("a", 5000.0)
        allocations = network.allocate()
        assert allocations["a"] <= 500.0

    def test_satisfaction_metric(self):
        network = self.make_network()
        network.reservoir.stock_m3 = 500.0
        network.set_demand("farm-n1", 1000.0)
        network.allocate()
        farm = network.farms["farm-n1"]
        assert 0.0 < farm.satisfaction < 1.0

    def test_unknown_canal_parent_rejected(self):
        network = DistributionNetwork(Reservoir("r", 100.0))
        with pytest.raises(KeyError):
            network.add_canal(Canal("x", "ghost", 100.0))
        network.add_canal(Canal("main", None, 100.0))
        with pytest.raises(KeyError):
            network.add_farm(FarmOfftake("f", "ghost"))

    def test_negative_demand_rejected(self):
        network = self.make_network()
        with pytest.raises(ValueError):
            network.set_demand("farm-n1", -5.0)

    def test_reservoir_depletes_across_days(self):
        reservoir = Reservoir("res", capacity_m3=3000.0)
        network = DistributionNetwork(reservoir)
        network.add_canal(Canal("main", None, 10_000.0, loss_fraction=0.0))
        network.add_farm(FarmOfftake("a", "main"))
        for _ in range(3):
            network.set_demand("a", 1500.0)
            network.allocate()
        assert reservoir.stock_m3 == 0.0
        assert network.farms["a"].cum_allocated_m3 == pytest.approx(3000.0)


class TestSources:
    def test_greedy_prefers_cheapest(self):
        well = WaterSource("well", 500.0, cost_eur_m3=0.08, energy_kwh_m3=0.5)
        desal = DesalinationPlant(capacity_m3_day=2000.0)
        optimizer = SourceMixOptimizer([desal, well])
        result = optimizer.allocate_day(800.0)
        assert result.by_source["well"] == 500.0
        assert result.by_source["desalination"] == 300.0
        assert result.shortfall_m3 == 0.0

    def test_cost_and_energy_computed(self):
        well = WaterSource("well", 500.0, cost_eur_m3=0.10, energy_kwh_m3=0.5)
        optimizer = SourceMixOptimizer([well])
        result = optimizer.allocate_day(400.0)
        assert result.cost_eur == pytest.approx(40.0)
        assert result.energy_kwh == pytest.approx(200.0)

    def test_shortfall_when_capacity_exceeded(self):
        well = WaterSource("well", 100.0, 0.1, 0.5)
        optimizer = SourceMixOptimizer([well])
        result = optimizer.allocate_day(250.0)
        assert result.shortfall_m3 == pytest.approx(150.0)
        assert optimizer.cum_shortfall_m3 == pytest.approx(150.0)

    def test_daily_reset(self):
        well = WaterSource("well", 100.0, 0.1, 0.5)
        optimizer = SourceMixOptimizer([well])
        optimizer.allocate_day(100.0)
        result = optimizer.allocate_day(100.0)
        assert result.supplied_m3 == 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            WaterSource("bad", 0.0, 0.1, 0.5)
        with pytest.raises(ValueError):
            WaterSource("bad", 10.0, -0.1, 0.5)
        with pytest.raises(ValueError):
            SourceMixOptimizer([])
        with pytest.raises(ValueError):
            SourceMixOptimizer([WaterSource("w", 1, 0, 0)]).allocate_day(-1)

    def test_demand_reduction_saves_desal_cost_first(self):
        """Marginal savings come off the expensive source — the Intercrop
        rationale for smart irrigation."""
        well = WaterSource("well", 500.0, 0.08, 0.5)
        desal = DesalinationPlant(capacity_m3_day=2000.0)
        optimizer = SourceMixOptimizer([well, desal])
        high = optimizer.allocate_day(1000.0)
        low = optimizer.allocate_day(700.0)
        saved = high.cost_eur - low.cost_eur
        assert saved == pytest.approx(300.0 * 0.65)
