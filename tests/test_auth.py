"""Tests for identity, OAuth2, PDP policies and the PEP proxy."""

import pytest

from repro.mqtt import Connect, ConnectReturnCode
from repro.security.auth import (
    IdentityManager,
    OAuthError,
    OAuthServer,
    PepProxy,
    Policy,
    PolicyDecisionPoint,
)
from repro.simkernel import Simulator


def make_stack(seed=0, ttl=3600.0):
    sim = Simulator(seed=seed)
    identity = IdentityManager(sim.rng.stream("idm"))
    oauth = OAuthServer(sim, identity, sim.rng.stream("oauth"), access_token_ttl_s=ttl)
    pdp = PolicyDecisionPoint()
    pep = PepProxy(sim, oauth, pdp)
    return sim, identity, oauth, pdp, pep


class TestIdentity:
    def test_register_and_verify(self):
        _, identity, *_ = make_stack()
        identity.register("alice", "s3cret", farm="farmA", roles={"farmer"})
        principal = identity.verify("alice", "s3cret")
        assert principal is not None
        assert principal.farm == "farmA"
        assert "farmer" in principal.roles

    def test_wrong_password(self):
        _, identity, *_ = make_stack()
        identity.register("alice", "s3cret")
        assert identity.verify("alice", "wrong") is None

    def test_unknown_principal(self):
        _, identity, *_ = make_stack()
        assert identity.verify("ghost", "x") is None

    def test_duplicate_registration_rejected(self):
        _, identity, *_ = make_stack()
        identity.register("alice", "x")
        with pytest.raises(ValueError):
            identity.register("alice", "y")

    def test_invalid_kind_rejected(self):
        _, identity, *_ = make_stack()
        with pytest.raises(ValueError):
            identity.register("x", "y", kind="alien")

    def test_disable_blocks_verify(self):
        _, identity, *_ = make_stack()
        identity.register("alice", "x")
        identity.disable("alice")
        assert identity.verify("alice", "x") is None
        identity.enable("alice")
        assert identity.verify("alice", "x") is not None

    def test_role_management(self):
        _, identity, *_ = make_stack()
        identity.register("alice", "x")
        identity.grant_role("alice", "admin")
        assert "admin" in identity.get("alice").roles
        identity.revoke_role("alice", "admin")
        assert "admin" not in identity.get("alice").roles

    def test_farm_listing(self):
        _, identity, *_ = make_stack()
        identity.register("a", "x", farm="farmA")
        identity.register("b", "x", farm="farmB")
        identity.register("c", "x", farm="farmA")
        assert [p.principal_id for p in identity.principals_of_farm("farmA")] == ["a", "c"]

    def test_password_not_stored_plaintext(self):
        _, identity, *_ = make_stack()
        principal = identity.register("alice", "hunter2")
        assert b"hunter2" not in principal.credential_hash
        assert principal.credential_hash != b""


class TestOAuth:
    def test_password_grant(self):
        sim, identity, oauth, *_ = make_stack()
        identity.register("alice", "pw", farm="farmA")
        token = oauth.password_grant("alice", "pw")
        assert oauth.introspect(token.access_token) is token
        assert token.refresh_token is not None

    def test_bad_credentials_raise(self):
        _, identity, oauth, *_ = make_stack()
        identity.register("alice", "pw")
        with pytest.raises(OAuthError):
            oauth.password_grant("alice", "wrong")
        assert oauth.rejected_count == 1

    def test_token_expiry_on_sim_clock(self):
        sim, identity, oauth, *_ = make_stack(ttl=100.0)
        identity.register("alice", "pw")
        token = oauth.password_grant("alice", "pw")
        sim.schedule(50.0, lambda: None)
        sim.run()
        assert oauth.introspect(token.access_token) is not None
        sim.schedule(60.0, lambda: None)
        sim.run()
        assert oauth.introspect(token.access_token) is None

    def test_client_credentials_only_for_services(self):
        _, identity, oauth, *_ = make_stack()
        identity.register("sched", "key", kind="service")
        identity.register("alice", "pw", kind="user")
        assert oauth.client_credentials_grant("sched", "key") is not None
        with pytest.raises(OAuthError):
            oauth.client_credentials_grant("alice", "pw")

    def test_device_grant_only_for_devices(self):
        _, identity, oauth, *_ = make_stack()
        identity.register("probe1", "devkey", kind="device", farm="farmA")
        token = oauth.device_grant("probe1", "devkey")
        assert token.scope == "telemetry"
        with pytest.raises(OAuthError):
            oauth.device_grant("probe1", "wrong")

    def test_password_grant_rejects_devices(self):
        _, identity, oauth, *_ = make_stack()
        identity.register("probe1", "devkey", kind="device")
        with pytest.raises(OAuthError):
            oauth.password_grant("probe1", "devkey")

    def test_refresh_rotation(self):
        _, identity, oauth, *_ = make_stack()
        identity.register("alice", "pw")
        token1 = oauth.password_grant("alice", "pw")
        token2 = oauth.refresh_grant(token1.refresh_token)
        assert token2.access_token != token1.access_token
        # Old refresh token is single-use.
        with pytest.raises(OAuthError):
            oauth.refresh_grant(token1.refresh_token)
        # Old access token is revoked by rotation.
        assert oauth.introspect(token1.access_token) is None

    def test_refresh_of_disabled_principal_fails(self):
        _, identity, oauth, *_ = make_stack()
        identity.register("alice", "pw")
        token = oauth.password_grant("alice", "pw")
        identity.disable("alice")
        with pytest.raises(OAuthError):
            oauth.refresh_grant(token.refresh_token)

    def test_revocation(self):
        _, identity, oauth, *_ = make_stack()
        identity.register("alice", "pw")
        token = oauth.password_grant("alice", "pw")
        oauth.revoke(token.access_token)
        assert oauth.introspect(token.access_token) is None

    def test_revoke_principal_kills_all_tokens(self):
        _, identity, oauth, *_ = make_stack()
        identity.register("alice", "pw")
        tokens = [oauth.password_grant("alice", "pw") for _ in range(3)]
        assert oauth.revoke_principal("alice") == 3
        assert all(oauth.introspect(t.access_token) is None for t in tokens)

    def test_disabled_principal_token_inactive(self):
        _, identity, oauth, *_ = make_stack()
        identity.register("alice", "pw")
        token = oauth.password_grant("alice", "pw")
        identity.disable("alice")
        assert oauth.introspect(token.access_token) is None


class TestPdp:
    def make_principal(self, identity, name="alice", farm="farmA", roles=("farmer",)):
        return identity.register(name, "pw", farm=farm, roles=set(roles))

    def test_deny_unless_permit(self):
        _, identity, _, pdp, _ = make_stack()
        principal = self.make_principal(identity)
        assert not pdp.decide(principal, "read", "anything")

    def test_permit_policy(self):
        _, identity, _, pdp, _ = make_stack()
        principal = self.make_principal(identity)
        pdp.add_policy(Policy("farmers-read", "permit", {"read"}, r"^swamp/", roles={"farmer"}))
        assert pdp.decide(principal, "read", "swamp/farmA/attrs/p1")
        assert not pdp.decide(principal, "write", "swamp/farmA/attrs/p1")

    def test_deny_overrides(self):
        _, identity, _, pdp, _ = make_stack()
        principal = self.make_principal(identity)
        pdp.add_policy(Policy("allow-all", "permit", {"read"}, r".*"))
        pdp.add_policy(Policy("block-secrets", "deny", {"read"}, r"secret"))
        assert pdp.decide(principal, "read", "normal/topic")
        assert not pdp.decide(principal, "read", "very/secret/topic")

    def test_same_farm_isolation(self):
        _, identity, _, pdp, _ = make_stack()
        alice = self.make_principal(identity, "alice", farm="farmA")
        bob = self.make_principal(identity, "bob", farm="farmB")
        pdp.add_policy(
            Policy("own-farm", "permit", {"read", "publish", "subscribe"},
                   r"^swamp/", same_farm=True)
        )
        assert pdp.decide(alice, "read", "swamp/farmA/attrs/p1")
        assert not pdp.decide(alice, "read", "swamp/farmB/attrs/p1")
        assert pdp.decide(bob, "read", "swamp/farmB/attrs/p1")

    def test_role_scoping(self):
        _, identity, _, pdp, _ = make_stack()
        admin = self.make_principal(identity, "root", roles=("admin",))
        viewer = self.make_principal(identity, "view", roles=("viewer",))
        pdp.add_policy(Policy("admin-write", "permit", {"write"}, r".*", roles={"admin"}))
        assert pdp.decide(admin, "write", "x")
        assert not pdp.decide(viewer, "write", "x")

    def test_invalid_effect_rejected(self):
        with pytest.raises(ValueError):
            Policy("bad", "maybe", {"read"}, r".*")

    def test_counters(self):
        _, identity, _, pdp, _ = make_stack()
        principal = self.make_principal(identity)
        pdp.add_policy(Policy("p", "permit", {"read"}, r".*"))
        pdp.decide(principal, "read", "x")
        pdp.decide(principal, "write", "x")
        assert pdp.decisions == 2 and pdp.permits == 1 and pdp.denies == 1


class TestPepProxy:
    def test_check_happy_path(self):
        sim, identity, oauth, pdp, pep = make_stack()
        identity.register("alice", "pw", farm="farmA", roles={"farmer"})
        pdp.add_policy(Policy("p", "permit", {"read"}, r"^swamp/", same_farm=True))
        token = oauth.password_grant("alice", "pw")
        assert pep.check(token.access_token, "read", "swamp/farmA/x")
        assert not pep.check(token.access_token, "read", "swamp/farmB/x")
        assert pep.allowed_count == 1 and pep.denied_count == 1

    def test_invalid_token_denied_and_audited(self):
        sim, identity, oauth, pdp, pep = make_stack()
        assert not pep.check("bogus-token", "read", "swamp/farmA/x")
        assert pep.denied_records()[-1].reason == "invalid-token"

    def test_expired_token_denied(self):
        sim, identity, oauth, pdp, pep = make_stack(ttl=10.0)
        identity.register("alice", "pw")
        pdp.add_policy(Policy("p", "permit", {"read"}, r".*"))
        token = oauth.password_grant("alice", "pw")
        sim.schedule(20.0, lambda: None)
        sim.run()
        assert not pep.check(token.access_token, "read", "x")

    def test_mqtt_authenticator_with_token_password(self):
        sim, identity, oauth, pdp, pep = make_stack()
        identity.register("probe1", "devkey", kind="device", farm="farmA")
        token = oauth.device_grant("probe1", "devkey")
        ok = pep.mqtt_authenticator(Connect(client_id="probe1", password=token.access_token))
        assert ok is ConnectReturnCode.ACCEPTED
        bad = pep.mqtt_authenticator(Connect(client_id="probe1", password="stolen"))
        assert bad is ConnectReturnCode.BAD_CREDENTIALS

    def test_mqtt_authorizer_farm_acl(self):
        sim, identity, oauth, pdp, pep = make_stack()
        identity.register("probe1", "devkey", kind="device", farm="farmA")
        pdp.add_policy(
            Policy("dev-pub", "permit", {"publish"}, r"^swamp/", same_farm=True)
        )

        class FakeSession:
            client_id = "probe1"
            username = None

        assert pep.mqtt_authorizer(FakeSession(), "publish", "swamp/farmA/attrs/probe1")
        assert not pep.mqtt_authorizer(FakeSession(), "publish", "swamp/farmB/attrs/x")

    def test_audit_log_bounded(self):
        sim, identity, oauth, pdp, pep = make_stack()
        pep.max_audit_records = 10
        for _ in range(25):
            pep.check("bogus", "read", "x")
        assert len(pep.audit_log) == 10
