"""Tests for fog/cloud nodes and store-and-forward replication."""

import pytest

from repro.context import ContextBroker, HistoryQuery
from repro.fog import CloudNode, FogNode, Replicator
from repro.fog.replication import CloudSyncTarget
from repro.network import Network, RadioModel, WAN_BACKHAUL
from repro.simkernel import Simulator


def wan():
    return RadioModel("wan", latency_s=0.05, bandwidth_bps=8e6, loss_rate=0.0)


class ReplicationRig:
    def __init__(self, seed=1, **replicator_kwargs):
        self.sim = Simulator(seed=seed)
        self.net = Network(self.sim)
        self.fog_context = ContextBroker(self.sim, "fog")
        self.cloud_context = ContextBroker(self.sim, "cloud")
        self.target = CloudSyncTarget(self.sim, self.net, "cloud:sync", self.cloud_context)
        self.replicator = Replicator(
            self.sim, self.net, "fog:sync", self.fog_context, "cloud:sync",
            sync_interval_s=10.0, **replicator_kwargs,
        )
        self.net.connect("fog:sync", "cloud:sync", wan())

    def update(self, entity_id, **attrs):
        self.fog_context.ensure_entity(entity_id, "T", attrs)


class TestReplication:
    def test_updates_reach_cloud(self):
        rig = ReplicationRig()
        rig.update("e1", soilMoisture=0.25)
        rig.sim.run(until=60.0)
        assert rig.cloud_context.get_entity("e1").get("soilMoisture") == 0.25
        assert rig.replicator.updates_synced >= 1

    def test_batching(self):
        rig = ReplicationRig(batch_size=10)
        for i in range(25):
            rig.update(f"e{i}", v=i)
        rig.sim.run(until=120.0)
        assert rig.cloud_context.entity_count() == 25
        # 25 updates in batches of <=10 -> at least 3 batches.
        assert rig.replicator.batches_acked >= 3

    def test_partition_queues_then_drains(self):
        rig = ReplicationRig()
        rig.net.partition("fog:sync", "cloud:sync")
        for i in range(20):
            rig.update(f"e{i}", v=i)
        rig.sim.run(until=120.0)
        assert rig.cloud_context.entity_count() == 0
        assert rig.replicator.backlog_depth >= 19
        rig.net.heal("fog:sync", "cloud:sync")
        rig.sim.run(until=400.0)
        assert rig.cloud_context.entity_count() == 20
        assert rig.replicator.updates_dropped_overflow == 0

    def test_overflow_drops_oldest_and_counts(self):
        rig = ReplicationRig(max_backlog=10)
        rig.net.partition("fog:sync", "cloud:sync")
        for i in range(30):
            rig.update(f"e{i}", v=i)
        rig.sim.run(until=60.0)
        assert rig.replicator.updates_dropped_overflow == 20
        rig.net.heal("fog:sync", "cloud:sync")
        rig.sim.run(until=400.0)
        # Only the newest 10 survive.
        assert rig.cloud_context.entity_count() == 10
        assert rig.cloud_context.has_entity("e29")
        assert not rig.cloud_context.has_entity("e0")

    def test_retransmission_on_lossy_wan(self):
        sim = Simulator(seed=3)
        net = Network(sim)
        fog_context = ContextBroker(sim, "fog")
        cloud_context = ContextBroker(sim, "cloud")
        CloudSyncTarget(sim, net, "cloud:sync", cloud_context)
        replicator = Replicator(
            sim, net, "fog:sync", fog_context, "cloud:sync",
            sync_interval_s=5.0, retry_timeout_s=5.0,
        )
        net.connect("fog:sync", "cloud:sync", RadioModel("wan", 0.05, 8e6, 0.35))
        for i in range(10):
            fog_context.ensure_entity(f"e{i}", "T", {"v": i})
        sim.run(until=600.0)
        assert cloud_context.entity_count() == 10
        assert replicator.batches_sent > replicator.batches_acked  # retries happened

    def test_duplicate_batches_idempotent(self):
        """If an ack is lost the batch is retransmitted; the cloud must not
        double-apply (checked via the duplicate counter)."""
        sim = Simulator(seed=7)
        net = Network(sim)
        fog_context = ContextBroker(sim, "fog")
        cloud_context = ContextBroker(sim, "cloud")
        target = CloudSyncTarget(sim, net, "cloud:sync", cloud_context)
        Replicator(sim, net, "fog:sync", fog_context, "cloud:sync",
                   sync_interval_s=5.0, retry_timeout_s=5.0)
        # Lossy only on the ack direction.
        net.connect("fog:sync", "cloud:sync", RadioModel("wan", 0.05, 8e6, 0.0),
                    bidirectional=False)
        net._make_link("cloud:sync", "fog:sync", RadioModel("wan", 0.05, 8e6, 0.6), 2.0)
        for i in range(5):
            fog_context.ensure_entity(f"e{i}", "T", {"v": i})
        sim.run(until=600.0)
        assert cloud_context.entity_count() == 5
        assert target.batches_duplicate > 0

    def test_fast_drain_after_ack(self):
        """Backlog drains batch-after-batch on ack, not one per interval."""
        rig = ReplicationRig(batch_size=5)
        for i in range(50):
            rig.update(f"e{i}", v=i)
        # 10 batches; with interval 10s a per-interval pump would need 100s.
        rig.sim.run(until=25.0)
        assert rig.cloud_context.entity_count() == 50

    def test_lost_ack_retransmit_is_counted_duplicate(self):
        """Deterministic ack-loss path: drop exactly the first _SyncAck.
        The fog retransmits the batch after retry_timeout_s, the cloud
        recognizes the replayed sequence number, counts a duplicate and
        re-acks without double-applying."""
        from repro.fog.replication import _SyncAck

        rig = ReplicationRig(retry_timeout_s=15.0)
        dropped = []

        def drop_first_ack(packet, hop_src, hop_dst):
            if isinstance(packet.payload, _SyncAck) and not dropped:
                dropped.append(packet.payload.seq)
                return False
            return True

        rig.net.add_firewall(drop_first_ack)
        rig.update("e1", v=1)
        rig.sim.run(until=120.0)
        assert dropped == [1]
        assert rig.target.batches_duplicate == 1
        assert rig.target.batches_applied == 1  # applied exactly once
        assert rig.replicator.batches_acked == 1
        assert rig.replicator.backlog_depth == 0
        assert rig.cloud_context.get_entity("e1").get("v") == 1

    def test_ack_at_exactly_retry_timeout_wins_over_retransmit(self):
        """The retry-expiry boundary is inclusive: a pump tick landing at
        *exactly* ``retry_timeout_s`` after transmission, with the ACK
        arriving at the same instant, must not retransmit.  A strict ``<``
        here double-sent the batch (a duplicate on the wire, an extra WAN
        round-trip and a spurious breaker failure) whenever the pump
        cadence divided the timeout."""
        from repro.fog.replication import _SyncAck
        from repro.network.packet import Packet

        rig = ReplicationRig(retry_timeout_s=5.0)
        # Swallow the cloud's real ACK so we control the delivery instant.
        rig.net.add_firewall(
            lambda packet, hop_src, hop_dst: not isinstance(packet.payload, _SyncAck)
        )
        rig.update("e1", v=1)
        rig.sim.run(until=10.0)  # first pump: batch 1 in flight since t=10
        assert rig.replicator.batches_sent == 1
        assert rig.replicator._in_flight is not None

        def pump_then_ack():
            # Worst-case ordering at t = 15.0 == in-flight + retry_timeout:
            # the pump fires *first*, then the ACK lands.  The inclusive
            # boundary means the pump must treat the batch as still live.
            rig.replicator.flush_now()
            rig.replicator._on_packet(Packet(
                src="cloud:sync", dst="fog:sync",
                payload=_SyncAck(seq=1, source=rig.replicator.node.address),
                size_bytes=16, created_at=rig.sim.now,
            ))

        rig.sim.schedule(5.0, pump_then_ack)
        rig.sim.run(until=30.0)
        assert rig.replicator.batches_sent == 1  # no double-send
        assert rig.replicator.batches_acked == 1
        assert rig.replicator._in_flight is None
        assert rig.replicator.backlog_depth == 0

    def test_gap_after_lost_batches_accepts_and_advances(self):
        """Deterministic gap path: when whole batches are lost on the fog
        side (the overflow/log-truncation scenario the protocol anticipates)
        the cloud sees seq jump past last+1.  It must accept the batch,
        advance its per-source cursor and ack — a cursor that waited for
        the missing seq would deadlock the stream forever."""
        rig = ReplicationRig()
        rig.update("first", v=1)
        rig.sim.run(until=30.0)
        source = rig.replicator.node.address
        assert rig.target._applied_seq[source] == 1
        # Model batches 2-4 lost wholesale before transmission.
        rig.replicator._next_seq = 5
        rig.update("late", v=2)
        rig.sim.run(until=60.0)
        assert rig.target._applied_seq[source] == 5  # advanced past the gap
        assert rig.target.batches_applied == 2
        assert rig.target.batches_duplicate == 0
        assert rig.cloud_context.has_entity("late")
        assert rig.replicator.backlog_depth == 0  # the gap batch was acked


class TestReplicatorCrashRestart:
    def test_crash_keeps_backlog_and_restart_drains_it(self):
        rig = ReplicationRig()
        rig.update("before", v=1)
        rig.sim.run(until=30.0)
        assert rig.cloud_context.has_entity("before")
        rig.replicator.crash()
        assert not rig.replicator.running
        # Captures continue into the durable backlog while the daemon is down.
        for i in range(8):
            rig.update(f"down{i}", v=i)
        rig.sim.run(until=120.0)
        assert not rig.cloud_context.has_entity("down0")
        assert rig.replicator.backlog_depth == 8
        rig.replicator.restart()
        assert rig.replicator.running
        rig.sim.run(until=240.0)
        assert rig.cloud_context.entity_count() == 9
        assert rig.replicator.backlog_depth == 0

    def test_restart_retransmits_the_in_flight_batch(self):
        """A batch stuck in flight across a crash must go out again via the
        retry path once the loop is re-armed."""
        rig = ReplicationRig(retry_timeout_s=15.0)
        rig.net.partition("fog:sync", "cloud:sync")
        rig.update("e1", v=1)
        rig.sim.run(until=11.0)  # pumped once: batch 1 in flight, unacked
        assert rig.replicator.backlog_depth == 1
        rig.replicator.crash()
        rig.net.heal("fog:sync", "cloud:sync")
        rig.sim.run(until=60.0)
        assert not rig.cloud_context.has_entity("e1")  # daemon still down
        rig.replicator.restart()
        rig.sim.run(until=200.0)
        assert rig.cloud_context.has_entity("e1")
        assert rig.replicator.backlog_depth == 0

    def test_crash_and_restart_are_idempotent(self):
        rig = ReplicationRig()
        rig.replicator.crash()
        rig.replicator.crash()  # second kill is a no-op
        rig.replicator.restart()
        first = rig.replicator._process
        rig.replicator.restart()  # already running: no second process
        assert rig.replicator._process is first


class TestNodes:
    def test_fog_node_composition(self):
        sim = Simulator(seed=1)
        net = Network(sim)
        fog = FogNode(sim, net, "fog1", "farmA")
        fog.start()
        assert fog.mqtt_address == "fog1:mqtt"
        assert fog.context.name == "fog1:context"
        assert fog.agent.farm == "farmA"

    def test_cloud_node_optional_mqtt(self):
        sim = Simulator(seed=1)
        net = Network(sim)
        plain = CloudNode(sim, net, "cloud1")
        assert plain.mqtt is None
        with_mqtt = CloudNode(sim, net, "cloud2", with_mqtt=True)
        assert with_mqtt.mqtt is not None

    def test_end_to_end_fog_pipeline(self):
        """Device -> fog MQTT -> fog IoT agent -> fog context -> cloud."""
        from repro.agents import DeviceProvision
        from repro.devices import DeviceConfig, SoilMoistureProbe
        from repro.physics import Field, LOAM, SOYBEAN

        sim = Simulator(seed=2)
        net = Network(sim)
        fog = FogNode(sim, net, "fog1", "farmA")
        cloud = CloudNode(sim, net, "cloud")
        net.connect("fog1:iota", "fog1:mqtt", wan())
        fog.start()
        CloudSyncTarget(sim, net, "cloud:sync", cloud.context)
        Replicator(sim, net, "fog1:sync", fog.context, "cloud:sync", sync_interval_s=10.0)
        net.connect("fog1:sync", "cloud:sync", wan())
        field = Field("f", 1, 1, LOAM, SOYBEAN, sim.rng.stream("field"))
        probe = SoilMoistureProbe(
            sim, net, DeviceConfig("p1", "farmA", "SoilProbe", report_interval_s=300),
            "fog1:mqtt", zone=field.zone(0, 0),
        )
        net.connect(probe.client.address, "fog1:mqtt", wan())
        fog.agent.provision(DeviceProvision("p1", "", "urn:soil:p1", "SoilProbe"))
        probe.start()
        sim.run(until=1800.0)
        assert fog.context.get_entity("urn:soil:p1").get("soilMoisture") is not None
        assert cloud.context.get_entity("urn:soil:p1").get("soilMoisture") is not None
        # History captured on the fog tier.
        assert len(fog.history.read(
            HistoryQuery("urn:soil:p1", "soilMoisture")).rows) >= 3
