"""STH rollup edge cases: sparse buckets, stragglers, eviction, restore."""

import pytest

from repro.context.broker import ContextBroker
from repro.context.errors import QueryError
from repro.context.history import (
    HOUR_S,
    MINUTE_S,
    ROLLUP_METHODS,
    HistoryQuery,
    ShortTermHistory,
)
from repro.core.checkpoint import RunRecipe, restore, snapshot
from repro.core.pilots import PILOT_BUILDERS
from repro.simkernel.simulator import Simulator

EID = "urn:AgriParcel:demo:0-0"
ATTR = "soilMoisture"


def make_history(**kwargs):
    sim = Simulator(seed=3)
    broker = ContextBroker(sim)
    history = ShortTermHistory(broker, **kwargs)
    broker.create_entity(EID, "AgriParcel")
    return sim, broker, history


def record(sim, broker, t, v):
    if t > sim.now:
        sim.run_until(t)
    broker.update_attributes(EID, {ATTR: v})


def rollup_rows(history, entity_id, attr, period, method="mean",
                since=float("-inf"), until=float("inf")):
    query = HistoryQuery(entity_id, attr, since=since, until=until,
                         period_s=period, method=method)
    return history.read(query, source="memory").rows


def series_rows(history, entity_id, attr):
    return history.read(HistoryQuery(entity_id, attr), source="memory").rows


class TestBucketing:
    def test_empty_buckets_are_never_materialized(self):
        sim, broker, history = make_history(rollup_periods=(MINUTE_S,))
        record(sim, broker, 10.0, 1.0)       # bucket 0
        record(sim, broker, 305.0, 3.0)      # bucket 5 — 1..4 stay empty
        rows = rollup_rows(history, EID, ATTR, MINUTE_S, method="count")
        assert rows == [(0.0, 1.0), (300.0, 1.0)]

    def test_all_methods_agree_with_raw_aggregate(self):
        sim, broker, history = make_history(rollup_periods=(HOUR_S,))
        for i, v in enumerate([0.4, 0.1, 0.7, 0.2]):
            record(sim, broker, 100.0 * (i + 1), v)
        agg = history.read(
            HistoryQuery(EID, ATTR, aggregate=True), source="memory").stats
        for method in ROLLUP_METHODS:
            rows = rollup_rows(history, EID, ATTR, HOUR_S, method=method)
            assert rows == [(0.0, pytest.approx(agg[method]))]

    def test_range_filter_is_on_bucket_start(self):
        sim, broker, history = make_history(rollup_periods=(MINUTE_S,))
        for t in (30.0, 90.0, 150.0):
            record(sim, broker, t, 1.0)
        rows = rollup_rows(history, EID, ATTR, MINUTE_S, since=60.0, until=60.0)
        assert rows == [(60.0, 1.0)]

    def test_unknown_method_and_period_raise(self):
        _sim, _broker, history = make_history(rollup_periods=(MINUTE_S,))
        with pytest.raises(QueryError, match="unknown rollup method"):
            history.read(HistoryQuery(EID, ATTR, period_s=MINUTE_S,
                                      method="median"), source="memory")
        with pytest.raises(QueryError, match="not enabled"):
            history.read(HistoryQuery(EID, ATTR, period_s=7.0), source="memory")
        with pytest.raises(QueryError, match="must be positive"):
            history.enable_rollups((0.0,))

    def test_downsample_is_the_mean_series(self):
        sim, broker, history = make_history(rollup_periods=(MINUTE_S,))
        record(sim, broker, 1.0, 0.2)
        record(sim, broker, 2.0, 0.4)
        assert rollup_rows(history, EID, ATTR, MINUTE_S) == [
            (0.0, pytest.approx(0.3))]


class TestOutOfOrderSamples:
    def test_boundary_straggler_folds_into_its_own_bucket(self):
        # The broker timestamps with sim.now, so simulate out-of-order
        # arrival by folding directly — the path a replayed/merged feed
        # exercises.  A sample at t=59.999 arriving after t=60.0 must land
        # in bucket 0, not the newest bucket.
        _sim, _broker, history = make_history(rollup_periods=(MINUTE_S,))
        key = (EID, ATTR)
        history._fold(key, 60.0, 2.0)
        history._fold(key, 59.999, 1.0)
        rows = rollup_rows(history, EID, ATTR, MINUTE_S, method="count")
        assert rows == [(0.0, 1.0), (60.0, 1.0)]

    def test_exact_boundary_sample_opens_the_next_bucket(self):
        _sim, _broker, history = make_history(rollup_periods=(MINUTE_S,))
        key = (EID, ATTR)
        history._fold(key, 60.0, 5.0)
        rows = rollup_rows(history, EID, ATTR, MINUTE_S)
        assert rows == [(60.0, 5.0)]

    def test_fold_order_does_not_change_totals(self):
        samples = [(125.0, 0.3), (10.0, 0.1), (70.0, 0.2), (65.0, 0.9)]
        results = []
        for ordering in (samples, sorted(samples), sorted(samples, reverse=True)):
            _sim, _broker, history = make_history(rollup_periods=(MINUTE_S,))
            for t, v in ordering:
                history._fold((EID, ATTR), t, v)
            results.append(rollup_rows(history, EID, ATTR, MINUTE_S, method="sum"))
        assert results[0] == results[1] == results[2]


class TestBucketEviction:
    def test_capacity_evicts_oldest_bucket(self):
        _sim, _broker, history = make_history(
            rollup_periods=(MINUTE_S,), max_buckets_per_series=3)
        key = (EID, ATTR)
        for minute in range(5):
            history._fold(key, minute * 60.0, 1.0)
        rows = rollup_rows(history, EID, ATTR, MINUTE_S, method="count")
        assert [start for start, _ in rows] == [120.0, 180.0, 240.0]

    def test_late_straggler_behind_horizon_is_dropped(self):
        _sim, _broker, history = make_history(
            rollup_periods=(MINUTE_S,), max_buckets_per_series=2)
        key = (EID, ATTR)
        history._fold(key, 120.0, 1.0)
        history._fold(key, 180.0, 1.0)
        # Bucket 0 would be evicted the moment it is created: drop it so
        # eviction order stays independent of straggler arrival.
        history._fold(key, 5.0, 9.0)
        rows = rollup_rows(history, EID, ATTR, MINUTE_S, method="max")
        assert rows == [(120.0, 1.0), (180.0, 1.0)]

    def test_straggler_into_retained_bucket_still_folds(self):
        _sim, _broker, history = make_history(
            rollup_periods=(MINUTE_S,), max_buckets_per_series=2)
        key = (EID, ATTR)
        history._fold(key, 120.0, 1.0)
        history._fold(key, 180.0, 1.0)
        history._fold(key, 125.0, 7.0)  # retained bucket → folds normally
        rows = rollup_rows(history, EID, ATTR, MINUTE_S, method="max")
        assert rows == [(120.0, 7.0), (180.0, 1.0)]


class TestBackfillDeterminism:
    def test_backfill_matches_live_folding(self):
        values = [(i * 20.0 + 1.0, 0.1 * (i % 7)) for i in range(40)]
        sim_live, broker_live, live = make_history(rollup_periods=(MINUTE_S, HOUR_S))
        sim_late, broker_late, late = make_history()
        for t, v in values:
            record(sim_live, broker_live, t, v)
            record(sim_late, broker_late, t, v)
        late.enable_rollups((MINUTE_S, HOUR_S))
        for period in (MINUTE_S, HOUR_S):
            for method in ROLLUP_METHODS:
                assert rollup_rows(live, EID, ATTR, period, method=method) == \
                    rollup_rows(late, EID, ATTR, period, method=method)

    def test_enable_is_idempotent(self):
        sim, broker, history = make_history(rollup_periods=(MINUTE_S,))
        record(sim, broker, 10.0, 1.0)
        before = rollup_rows(history, EID, ATTR, MINUTE_S, method="count")
        history.enable_rollups((MINUTE_S,))  # must not double-fold
        assert rollup_rows(history, EID, ATTR, MINUTE_S, method="count") == before
        assert history.rollup_periods == (MINUTE_S,)


class TestRebuildFromSamples:
    def test_rebuild_mid_eviction_reads_identically(self):
        """Replaying the durable log into a fresh history mid-eviction
        (rings and buckets both over capacity) must serve exactly the
        reads the live history serves — the store's recovery contract."""
        samples = [(EID, ATTR, 30.0 * i, 0.1 * (i % 11)) for i in range(40)]
        kwargs = dict(rollup_periods=(MINUTE_S,),
                      max_samples_per_series=12, max_buckets_per_series=4)
        sim, broker, live = make_history(**kwargs)
        for _eid, _attr, t, v in samples:
            record(sim, broker, t, v)
        _sim2, _broker2, replica = make_history(**kwargs)
        replica.rebuild_from_samples(samples)
        assert series_rows(live, EID, ATTR) == series_rows(replica, EID, ATTR)
        assert len(series_rows(replica, EID, ATTR)) == 12  # ring evicted
        for method in ROLLUP_METHODS:
            assert rollup_rows(live, EID, ATTR, MINUTE_S, method=method) == \
                rollup_rows(replica, EID, ATTR, MINUTE_S, method=method)
        rows = rollup_rows(replica, EID, ATTR, MINUTE_S, method="count")
        assert len(rows) == 4  # buckets evicted down to capacity

    def test_rebuild_replaces_prior_state_and_does_not_write_through(self):
        _sim, _broker, history = make_history(rollup_periods=(MINUTE_S,))

        class ExplodingSink:
            def on_sample(self, *a):
                raise AssertionError("rebuild must not write back to the store")

        history.set_sink(ExplodingSink())
        history.rebuild_from_samples([(EID, ATTR, 10.0, 1.0)])
        assert series_rows(history, EID, ATTR) == [(10.0, 1.0)]
        # A second rebuild replaces, not appends.
        history.rebuild_from_samples([(EID, ATTR, 20.0, 2.0)])
        assert series_rows(history, EID, ATTR) == [(20.0, 2.0)]
        assert rollup_rows(history, EID, ATTR, MINUTE_S, method="count") == \
            [(0.0, 1.0)]


class TestSnapshotRestoreDeterminism:
    def test_rollups_survive_checkpoint_restore(self):
        # Uninterrupted run with live rollups...
        straight = PILOT_BUILDERS["matopiba"](seed=21)
        straight.history.enable_rollups((MINUTE_S, HOUR_S))
        straight.start_season()
        straight.run_until(4 * 3600.0)

        # ...versus snapshot at 2 h, restore (replay), then backfill.
        first = PILOT_BUILDERS["matopiba"](seed=21)
        first.start_season()
        first.run_until(2 * 3600.0)
        checkpoint = snapshot(
            first, recipe=RunRecipe(pilot="matopiba", builder_kwargs={"seed": 21}))
        restored = restore(checkpoint).runner
        restored.run_until(4 * 3600.0)
        restored.history.enable_rollups((MINUTE_S, HOUR_S))

        keys = straight.history.tracked_series()
        assert keys == restored.history.tracked_series() and keys
        for entity_id, attr in keys:
            for period in (MINUTE_S, HOUR_S):
                for method in ("count", "mean"):
                    assert rollup_rows(
                        straight.history, entity_id, attr, period, method=method
                    ) == rollup_rows(
                        restored.history, entity_id, attr, period, method=method
                    ), (entity_id, attr, period, method)
