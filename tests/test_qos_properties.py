"""Property-based tests for the QoS state machines under adversarial loss.

The unit tests exercise QoS over the simulated network; here hypothesis
drives the :class:`~repro.mqtt.qos.Outbox`/:class:`~repro.mqtt.qos.Inbox`
state machines *directly* with arbitrary loss/duplication patterns and
checks the protocol invariants:

* QoS 1: every message is delivered at least once, or expires after the
  retry budget; acknowledged messages leave the in-flight window;
* QoS 2: the receiver releases each packet id exactly once regardless of
  how many duplicate PUBLISHes or PUBRELs arrive;
* packet-id allocation never collides with an in-flight id.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mqtt.packets import PubAck, PubComp, Publish, PubRec, PubRel
from repro.mqtt.qos import Inbox, Outbox
from repro.simkernel import Simulator


class LossyPipe:
    """Deterministically drops sender frames by index pattern."""

    def __init__(self, drop_indices):
        self.drop_indices = set(drop_indices)
        self.delivered = []
        self._count = 0

    def send(self, packet):
        index = self._count
        self._count += 1
        if index in self.drop_indices:
            return
        self.delivered.append(packet)


class TestOutboxQos1:
    @given(
        message_count=st.integers(min_value=1, max_value=10),
        drops=st.sets(st.integers(min_value=0, max_value=80), max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_at_least_once_or_expired(self, message_count, drops):
        sim = Simulator(seed=1)
        pipe = LossyPipe(drops)
        outbox = Outbox(sim, pipe.send, retry_interval_s=1.0, max_retries=10)
        receiver_got = set()

        def receiver_process():
            """Acks every delivered publish (acks never lost here)."""
            while True:
                yield 0.5
                for packet in list(pipe.delivered):
                    if isinstance(packet, Publish):
                        receiver_got.add(packet.payload)
                        outbox.on_puback(PubAck(packet_id=packet.packet_id))
                pipe.delivered.clear()

        sim.spawn(receiver_process(), "receiver")
        payloads = [bytes([i]) for i in range(message_count)]
        for payload in payloads:
            outbox.send_publish(Publish(topic="t", payload=payload, qos=1))
        sim.run(until=60.0)
        # Every message either arrived or was abandoned after the budget.
        assert outbox.completed + outbox.expired == message_count
        assert len(receiver_got) == outbox.completed
        assert outbox.in_flight_count == 0

    def test_window_limit_enforced(self):
        sim = Simulator(seed=1)
        outbox = Outbox(sim, lambda p: None, max_in_flight=3)
        ids = [outbox.send_publish(Publish(topic="t", payload=b"x", qos=1))
               for _ in range(5)]
        assert ids[:3] == [1, 2, 3]
        assert ids[3] is None and ids[4] is None

    def test_ids_skip_in_flight(self):
        sim = Simulator(seed=1)
        outbox = Outbox(sim, lambda p: None, max_in_flight=100)
        first = outbox.send_publish(Publish(topic="t", payload=b"a", qos=1))
        assert first == 1
        outbox._next_id = 1  # force wrap onto the in-flight id
        second = outbox.send_publish(Publish(topic="t", payload=b"b", qos=1))
        assert second == 2  # 1 skipped: still in flight


class TestInboxQos2:
    @given(duplicates=st.integers(min_value=0, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_property_exactly_once_release(self, duplicates):
        sent = []
        inbox = Inbox(sent.append)
        publish = Publish(topic="t", payload=b"x", qos=2, packet_id=7)
        deliveries = [inbox.on_publish_qos2(publish) for _ in range(duplicates + 1)]
        # Only the first arrival is surfaced to the application.
        assert deliveries.count(True) == 1
        assert inbox.duplicates_suppressed == duplicates
        # Every arrival got a PUBREC.
        assert sum(1 for p in sent if isinstance(p, PubRec)) == duplicates + 1
        # PUBREL releases; replayed PUBRELs are acked but release nothing.
        inbox.on_pubrel(PubRel(packet_id=7))
        inbox.on_pubrel(PubRel(packet_id=7))
        assert sum(1 for p in sent if isinstance(p, PubComp)) == 2
        # After release the same id counts as a fresh message again (MQTT
        # allows id reuse after the flow completes).
        assert inbox.on_publish_qos2(publish) is True

    def test_distinct_ids_independent(self):
        sent = []
        inbox = Inbox(sent.append)
        assert inbox.on_publish_qos2(Publish(topic="t", payload=b"a", qos=2, packet_id=1))
        assert inbox.on_publish_qos2(Publish(topic="t", payload=b"b", qos=2, packet_id=2))
        assert inbox.duplicates_suppressed == 0


class TestInboxPendingReleaseExpiry:
    """Regression: a sender that gives up (flight expired after
    max_retries) never sends the PUBREL, which used to leave the packet id
    in ``_pending_release`` forever — a leak that falsely suppressed the
    next message reusing that id after 16-bit wrap."""

    def test_abandoned_flow_expires_and_id_is_reusable(self):
        sim = Simulator(seed=1)
        sent = []
        inbox = Inbox(sent.append, sim=sim, pending_release_timeout_s=60.0)
        publish = Publish(topic="t", payload=b"x", qos=2, packet_id=42)
        assert inbox.on_publish_qos2(publish) is True
        # Sender abandons the flow; 61 s later another message legitimately
        # reuses id 42.  It must be treated as fresh, not as a duplicate.
        sim.run(until=61.0)
        reused = Publish(topic="t", payload=b"y", qos=2, packet_id=42)
        assert inbox.on_publish_qos2(reused) is True
        assert inbox.duplicates_suppressed == 0
        assert inbox.pending_expired == 1

    def test_duplicate_refreshes_the_entry(self):
        """While the sender is still retrying, each DUP PUBLISH re-stamps
        the entry so dedup holds across the whole retry horizon."""
        sim = Simulator(seed=1)
        inbox = Inbox(lambda p: None, sim=sim, pending_release_timeout_s=60.0)
        publish = Publish(topic="t", payload=b"x", qos=2, packet_id=9)
        assert inbox.on_publish_qos2(publish) is True
        sim.run(until=50.0)
        assert inbox.on_publish_qos2(publish) is False  # refreshed at t=50
        sim.run(until=100.0)  # 50 s after the refresh: still within timeout
        assert inbox.on_publish_qos2(publish) is False
        assert inbox.duplicates_suppressed == 2

    def test_pubrel_still_releases_promptly(self):
        sim = Simulator(seed=1)
        sent = []
        inbox = Inbox(sent.append, sim=sim)
        inbox.on_publish_qos2(Publish(topic="t", payload=b"x", qos=2, packet_id=3))
        inbox.on_pubrel(PubRel(packet_id=3))
        assert inbox.on_publish_qos2(
            Publish(topic="t", payload=b"y", qos=2, packet_id=3)
        ) is True
        assert inbox.pending_expired == 0

    def test_without_sim_entries_never_expire(self):
        # Legacy construction (no clock): behavior is the old one, minus
        # the leak only a clock can fix.
        inbox = Inbox(lambda p: None)
        publish = Publish(topic="t", payload=b"x", qos=2, packet_id=1)
        assert inbox.on_publish_qos2(publish) is True
        assert inbox.on_publish_qos2(publish) is False


class TestOutboxClearAccounting:
    def test_clear_counts_abandoned_flights_as_expired(self):
        """Regression: teardown used to silently forget in-flight QoS
        messages; they are losses and must land in ``expired``."""
        sim = Simulator(seed=1)
        outbox = Outbox(sim, lambda p: None)
        for payload in (b"a", b"b", b"c"):
            outbox.send_publish(Publish(topic="t", payload=payload, qos=1))
        assert outbox.in_flight_count == 3
        outbox.clear()
        assert outbox.in_flight_count == 0
        assert outbox.expired == 3
        # A second clear with nothing in flight adds nothing.
        outbox.clear()
        assert outbox.expired == 3


class TestOutboxQos2Flow:
    def test_full_handshake(self):
        sim = Simulator(seed=1)
        sent = []
        outbox = Outbox(sim, sent.append, retry_interval_s=5.0)
        pid = outbox.send_publish(Publish(topic="t", payload=b"x", qos=2))
        assert isinstance(sent[0], Publish)
        assert outbox.on_pubrec(PubRec(packet_id=pid))
        assert isinstance(sent[1], PubRel)
        assert outbox.on_pubcomp(PubComp(packet_id=pid))
        assert outbox.completed == 1
        assert outbox.in_flight_count == 0

    def test_wrong_order_acks_ignored(self):
        sim = Simulator(seed=1)
        outbox = Outbox(sim, lambda p: None)
        pid = outbox.send_publish(Publish(topic="t", payload=b"x", qos=2))
        # PUBCOMP before PUBREC: invalid, must be ignored.
        assert not outbox.on_pubcomp(PubComp(packet_id=pid))
        # PUBACK for a qos2 flow: invalid.
        assert not outbox.on_puback(PubAck(packet_id=pid))
        assert outbox.in_flight_count == 1

    def test_unknown_ids_ignored(self):
        sim = Simulator(seed=1)
        outbox = Outbox(sim, lambda p: None)
        assert not outbox.on_puback(PubAck(packet_id=999))
        assert not outbox.on_pubrec(PubRec(packet_id=999))
        assert not outbox.on_pubcomp(PubComp(packet_id=999))

    def test_pubrel_retransmitted_on_lost_pubcomp(self):
        sim = Simulator(seed=1)
        sent = []
        outbox = Outbox(sim, sent.append, retry_interval_s=1.0, max_retries=3)
        pid = outbox.send_publish(Publish(topic="t", payload=b"x", qos=2))
        outbox.on_pubrec(PubRec(packet_id=pid))
        sim.run(until=2.5)  # two retry timers fire with no PUBCOMP
        pubrels = [p for p in sent if isinstance(p, PubRel)]
        assert len(pubrels) >= 3  # original + retransmissions
