"""Kernel snapshot/restore: clock, queue, RNG, trace, whole simulator.

The determinism-critical regressions pinned here:

* the EventQueue tie-break sequence counter survives a snapshot
  boundary, so two events at the same ``(time, priority)`` keep their
  FIFO order after restore;
* ``run_until`` segmented execution is bit-identical to one
  uninterrupted ``run``, and wall-clock accounting accumulates across
  segments and survives restore;
* every pinned pilot's RNG stream states round-trip exactly.
"""

import pickle

import pytest

from repro.core.pilots import PILOT_BUILDERS
from repro.simkernel import (
    SNAPSHOT_VERSION,
    EventQueue,
    KernelSnapshot,
    Simulator,
    SnapshotError,
    compare_fingerprints,
)
from repro.simkernel.clock import DAY, HOUR, SimClock
from repro.simkernel.rng import RngRegistry
from repro.simkernel.trace import TraceLog

# Module-level so scheduled-event callbacks pickle (full kernel restore).
FIRED = []


def record(tag):
    FIRED.append(tag)


def record_a():
    FIRED.append("a")


def record_b():
    FIRED.append("b")


@pytest.fixture(autouse=True)
def _clear_fired():
    FIRED.clear()


class TestClockSnapshot:
    def test_round_trip(self):
        clock = SimClock()
        clock.advance_to(123.5)
        restored = SimClock()
        restored.restore(clock.snapshot())
        assert restored.now == 123.5

    def test_restore_may_move_backwards(self):
        clock = SimClock()
        clock.advance_to(10.0)
        clock.restore(2.5)
        assert clock.now == 2.5

    def test_restore_rejects_negative(self):
        with pytest.raises(Exception):
            SimClock().restore(-1.0)


class TestEventQueueSnapshot:
    def test_round_trip_preserves_execution_order(self):
        queue = EventQueue()
        queue.push(5.0, record, ("late",))
        queue.push(1.0, record, ("early",))
        queue.push(3.0, record, ("mid",), priority=10)
        restored = EventQueue()
        restored.restore(pickle.loads(pickle.dumps(queue.snapshot())))
        assert restored.signature() == queue.signature()
        order = [restored.pop().args[0] for _ in range(3)]
        assert order == ["early", "mid", "late"]

    def test_cancelled_events_excluded(self):
        queue = EventQueue()
        keep = queue.push(1.0, record, ("keep",))
        drop = queue.push(1.0, record, ("drop",))
        drop.cancel()
        queue.note_cancelled()
        snap = queue.snapshot()
        assert len(snap["events"]) == 1
        assert snap["events"][0][3] is record

    def test_tie_break_counter_survives_snapshot_boundary(self):
        # Two events at the same (time, priority): FIFO by sequence.
        # The regression this pins: a restore that re-derived sequence
        # numbers (instead of restoring the counter) could reorder them
        # or collide with post-restore pushes.
        queue = EventQueue()
        queue.push(7.0, record_a, priority=50)
        queue.push(7.0, record_b, priority=50)
        snap = pickle.loads(pickle.dumps(queue.snapshot()))

        restored = EventQueue()
        restored.restore(snap)
        # A push after restore continues the original counter: it must
        # sort *after* the two restored events despite the equal key.
        restored.push(7.0, record, ("c",), priority=50)
        first, second, third = (restored.pop() for _ in range(3))
        assert (first.callback, second.callback) == (record_a, record_b)
        assert third.args == ("c",)
        assert [first.seq, second.seq, third.seq] == [0, 1, 2]

    def test_malformed_snapshot_raises(self):
        with pytest.raises(SnapshotError):
            EventQueue().restore({"events": []})


class TestRngSnapshot:
    def test_round_trip_resumes_sequences(self):
        rng = RngRegistry(99)
        stream = rng.stream("weather")
        before = [stream.random() for _ in range(10)]
        snap = pickle.loads(pickle.dumps(rng.snapshot()))
        expected = [stream.random() for _ in range(10)]

        restored = RngRegistry(99)
        restored.restore(snap)
        assert [restored.stream("weather").random() for _ in range(10)] == expected
        assert before != expected  # the stream actually advanced

    def test_untouched_streams_start_from_derived_seed(self):
        rng = RngRegistry(5)
        rng.stream("a").random()
        restored = RngRegistry(5)
        restored.restore(rng.snapshot())
        # "b" was never touched before the snapshot: both sides derive it
        # lazily and must agree.
        assert restored.stream("b").random() == RngRegistry(5).stream("b").random()

    def test_master_seed_mismatch_rejected(self):
        with pytest.raises(SnapshotError):
            RngRegistry(1).restore(RngRegistry(2).snapshot())


class TestTraceSnapshot:
    def test_round_trip(self):
        trace = TraceLog(max_records=3)
        for i in range(5):
            trace.emit(float(i), "cat", f"m{i}", n=i)
        restored = TraceLog()
        restored.restore(pickle.loads(pickle.dumps(trace.snapshot())))
        assert len(restored) == 3
        assert restored.dropped == 2
        assert restored.count("cat") == 5
        assert [r.message for r in restored] == ["m2", "m3", "m4"]


class TestSimulatorSnapshot:
    def _loaded_sim(self):
        sim = Simulator(seed=4)
        sim.schedule(1.0, record, ("one",))
        sim.schedule(2.0, record, ("two",))
        sim.schedule(3.0, record, ("three",))
        sim.rng.stream("noise").random()
        return sim

    def test_full_restore_is_bit_identical(self):
        sim = self._loaded_sim()
        sim.run_until(1.5)
        snap = pickle.loads(pickle.dumps(sim.snapshot()))
        FIRED.clear()
        baseline = self._loaded_sim()
        baseline.run(until=3.0)
        full_fired = list(FIRED)

        FIRED.clear()
        FIRED.append("one")  # already executed before the snapshot
        restored = Simulator(seed=4)
        restored.restore(snap)
        assert restored.now == 1.5
        assert restored.events_executed == 1
        restored.run(until=3.0)
        assert FIRED == full_fired
        assert restored.fingerprint() == baseline.fingerprint()

    def test_restore_requires_events(self):
        sim = self._loaded_sim()
        snap = sim.snapshot(include_events=False)
        assert snap.queue is None
        with pytest.raises(SnapshotError, match="checkpoint"):
            Simulator(seed=4).restore(snap)

    def test_version_gate(self):
        snap = self._loaded_sim().snapshot()
        assert snap.version == SNAPSHOT_VERSION
        bad = KernelSnapshot(**{**snap.__dict__, "version": SNAPSHOT_VERSION + 1})
        with pytest.raises(SnapshotError, match="version"):
            Simulator(seed=4).restore(bad)

    def test_fingerprint_matches_snapshot_fingerprint(self):
        sim = self._loaded_sim()
        sim.run_until(1.5)
        assert compare_fingerprints(
            sim.snapshot(include_events=False).fingerprint(), sim.fingerprint()
        ) == []

    def test_compare_fingerprints_describes_divergence(self):
        sim = self._loaded_sim()
        expected = sim.snapshot().fingerprint()
        sim.run(until=3.0)
        problems = compare_fingerprints(expected, sim.fingerprint())
        assert problems
        assert any("events_executed" in p for p in problems)


class TestRunUntil:
    def _sim(self):
        sim = Simulator(seed=1)
        for t in (1.0, 2.0, 3.0, 4.0):
            sim.schedule(t, record, (t,))
        return sim

    def test_segmented_equals_uninterrupted(self):
        one_shot = self._sim()
        one_shot.run(until=4.0)
        expected = list(FIRED)

        FIRED.clear()
        segmented = self._sim()
        segmented.run_until(1.5)
        assert segmented.now == 1.5
        segmented.run_until(2.5)
        segmented.run(until=4.0)
        assert FIRED == expected
        assert segmented.fingerprint() == one_shot.fingerprint()

    def test_barrier_withholds_shutdown_hooks(self):
        sim = self._sim()
        hooks = []
        sim.add_shutdown_hook(lambda: hooks.append("down"))
        sim.run_until(2.0)
        assert hooks == []
        sim.run(until=4.0)
        assert hooks == ["down"]

    def test_wall_time_accumulates_across_segments(self):
        sim = self._sim()
        sim.run_until(1.0)
        first = sim.wall_time_s
        assert first > 0.0
        sim.run_until(2.0)
        assert sim.wall_time_s > first

    def test_wall_time_survives_restore(self):
        sim = self._sim()
        sim.run_until(2.5)
        snap = sim.snapshot()
        restored = Simulator(seed=1)
        restored.restore(snap)
        assert restored.wall_time_s == sim.wall_time_s
        restored.run(until=4.0)
        assert restored.wall_time_s > snap.wall_time_s

    def test_stop_inside_segment_still_ends_run(self):
        sim = Simulator(seed=1)
        hooks = []
        sim.add_shutdown_hook(lambda: hooks.append("down"))
        sim.schedule(1.0, sim.stop, ("done",))
        sim.run_until(5.0)
        assert sim.stopped_reason == "done"
        assert hooks == ["down"]


class TestProcessFactories:
    def test_spawn_registered_requires_registration(self):
        sim = Simulator()
        with pytest.raises(Exception, match="no process factory"):
            sim.spawn_registered("ghost")

    def test_registered_factory_spawns_and_lists(self):
        sim = Simulator()

        def loop():
            yield 1.0
            record("ticked")

        sim.register_process_factory("ticker", loop)
        sim.spawn_registered("ticker")
        assert "ticker" in sim.process_factory_names()
        sim.run(until=2.0)
        assert FIRED == ["ticked"]


@pytest.mark.parametrize("pilot", sorted(PILOT_BUILDERS))
def test_pilot_rng_streams_round_trip(pilot):
    """Satellite: every pinned pilot's RNG registry survives a snapshot.

    Runs two hours of the real pilot (devices, radio, weather all drawing
    from their streams), snapshots, and checks a rebuilt registry resumes
    every stream at exactly the captured draw position.
    """
    runner = PILOT_BUILDERS[pilot](seed=13)
    runner.start_season()
    runner.sim.run_until(2 * HOUR)
    snap = pickle.loads(pickle.dumps(runner.sim.rng.snapshot()))
    assert snap["streams"], f"{pilot} touched no RNG streams"

    restored = RngRegistry(13)
    restored.restore(snap)
    assert restored.snapshot() == runner.sim.rng.snapshot()
    # And the next draw of every stream agrees with the live kernel.
    for name in runner.sim.rng.stream_names():
        assert restored.stream(name).random() == runner.sim.rng.stream(name).random()
