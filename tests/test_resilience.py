"""Tests for the resilience layer: backpressure primitives, the circuit
breaker, the supervisor, degraded-mode autonomy, and their wiring into a
running pilot."""

import pytest

from repro.resilience import (
    BackpressureError,
    BoundedQueue,
    BreakerState,
    CircuitBreaker,
    DegradedModePolicy,
    DropPolicy,
    RateLimiter,
    ResilienceConfig,
    ServiceHealth,
    Supervisor,
)
from repro.simkernel import Simulator


class TestBoundedQueue:
    def test_drop_oldest_evicts_head(self):
        evicted = []
        q = BoundedQueue(3, DropPolicy.DROP_OLDEST, on_evict=evicted.append)
        for i in range(5):
            assert q.push(i)
        assert list(q) == [2, 3, 4]
        assert evicted == [0, 1]
        assert q.dropped == 2

    def test_drop_newest_rejects_arrival(self):
        evicted = []
        q = BoundedQueue(2, DropPolicy.DROP_NEWEST, on_evict=evicted.append)
        assert q.push("a") and q.push("b")
        assert not q.push("c")
        assert list(q) == ["a", "b"]
        assert evicted == ["c"]

    def test_reject_policy_returns_false(self):
        q = BoundedQueue(1, DropPolicy.REJECT)
        assert q.push(1)
        assert not q.push(2)
        assert q.dropped == 1

    def test_drain_empties_oldest_first(self):
        q = BoundedQueue(4)
        for i in range(4):
            q.push(i)
        assert q.drain() == [0, 1, 2, 3]
        assert len(q) == 0 and not q


class TestRateLimiter:
    def test_admits_up_to_budget_per_window(self):
        limiter = RateLimiter(3, window_s=1.0)
        assert [limiter.admit(0.1) for _ in range(5)] == [True] * 3 + [False] * 2
        assert limiter.shed == 2

    def test_window_rolls_over_with_time(self):
        limiter = RateLimiter(1, window_s=1.0)
        assert limiter.admit(0.0)
        assert not limiter.admit(0.9)
        assert limiter.admit(1.0)  # new window
        assert limiter.admit(2.5)

    def test_never_schedules_anything(self):
        """Lazy windows: the limiter is pure arithmetic on `now`, so an
        idle limiter can't perturb a pinned event sequence."""
        limiter = RateLimiter(10, window_s=5.0)
        assert not hasattr(limiter, "sim")


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        b = CircuitBreaker("b", failure_threshold=3, open_timeout_s=60.0)
        for t in (1.0, 2.0):
            b.record_failure(t)
            assert b.state is BreakerState.CLOSED
        b.record_failure(3.0)
        assert b.state is BreakerState.OPEN
        assert b.opens == 1
        assert not b.allow(10.0)

    def test_success_resets_the_streak(self):
        b = CircuitBreaker("b", failure_threshold=2)
        b.record_failure(1.0)
        b.record_success(2.0)
        b.record_failure(3.0)
        assert b.state is BreakerState.CLOSED

    def test_half_open_single_trial_then_close(self):
        b = CircuitBreaker("b", failure_threshold=1, open_timeout_s=60.0)
        b.record_failure(0.0)
        assert b.state is BreakerState.OPEN
        assert not b.allow(59.0)
        assert b.allow(60.0)  # the trial
        assert b.state is BreakerState.HALF_OPEN
        assert not b.allow(60.5)  # one outstanding trial only
        b.record_success(61.0)
        assert b.state is BreakerState.CLOSED
        assert b.allow(61.5)

    def test_half_open_failure_reopens(self):
        b = CircuitBreaker("b", failure_threshold=1, open_timeout_s=60.0)
        b.record_failure(0.0)
        assert b.allow(60.0)
        b.record_failure(61.0)
        assert b.state is BreakerState.OPEN
        assert b.opens == 2
        assert not b.allow(100.0)
        assert b.allow(121.0)  # timeout counts from the re-open

    def test_failures_while_open_do_not_slide_the_window(self):
        """Repeated failure reports against an already-open breaker (e.g.
        a pump tick observing the same expired batch) must not postpone
        the half-open probe."""
        b = CircuitBreaker("b", failure_threshold=1, open_timeout_s=60.0)
        b.record_failure(0.0)
        for t in (10.0, 30.0, 59.0):
            b.record_failure(t)
        assert b.allow(60.0)

    def test_state_change_listeners_fire(self):
        transitions = []
        b = CircuitBreaker("b", failure_threshold=1, open_timeout_s=10.0)
        b.on_state_change.append(
            lambda old, new, now: transitions.append((old.value, new.value, now))
        )
        b.record_failure(1.0)
        b.allow(11.0)
        b.record_success(12.0)
        assert transitions == [
            ("closed", "open", 1.0),
            ("open", "half_open", 11.0),
            ("half_open", "closed", 12.0),
        ]

    def test_reentrant_listener_cannot_steal_a_second_probe(self):
        """The half-open trial slot is claimed before listeners run: a
        listener reacting to open->half_open by probing again (the
        delivery pump's shape) must be told no."""
        b = CircuitBreaker("b", failure_threshold=1, open_timeout_s=10.0)
        reentrant = []

        def listener(old, new, now):
            if new is BreakerState.HALF_OPEN:
                reentrant.append(b.allow(now))

        b.on_state_change.append(listener)
        b.record_failure(0.0)
        assert b.allow(10.0)  # the one legitimate trial
        assert reentrant == [False]

    def test_transitions_counter_tracks_every_edge(self):
        from repro.telemetry.metrics import MetricsRegistry

        registry = MetricsRegistry()
        b = CircuitBreaker("edge", failure_threshold=1, open_timeout_s=10.0,
                           metrics=registry)
        b.record_failure(1.0)   # closed -> open
        b.allow(11.0)           # open -> half_open
        b.record_success(12.0)  # half_open -> closed
        labels = {"breaker": "edge"}
        assert registry.value("resilience.breaker_transitions", labels) == 3.0
        assert registry.value("resilience.breaker_state", labels) == 0.0


class FlakyService:
    """A probe-able service the supervisor can restart."""

    def __init__(self):
        self.up = True
        self.restarts = 0

    def probe(self, now):
        return self.up

    def restart(self):
        self.restarts += 1
        self.up = True


class TestSupervisor:
    def make(self, **kwargs):
        sim = Simulator(seed=9)
        sup = Supervisor(sim, check_interval_s=10.0,
                         restart_backoff_initial_s=5.0, **kwargs)
        return sim, sup

    def test_healthy_services_stay_healthy_with_zero_restarts(self):
        sim, sup = self.make()
        service = FlakyService()
        sup.watch("svc", probe=service.probe, restart=service.restart)
        sup.start()
        sim.run(until=500.0)
        assert sup.health("svc") is ServiceHealth.HEALTHY
        assert service.restarts == 0 and sup.total_restarts == 0

    def test_unhealthy_service_is_restarted_and_recovers(self):
        sim, sup = self.make()
        service = FlakyService()
        sup.watch("svc", probe=service.probe, restart=service.restart)
        sup.start()
        sim.schedule(25.0, lambda: setattr(service, "up", False))
        sim.run(until=100.0)
        assert service.restarts == 1
        assert sup.health("svc") is ServiceHealth.HEALTHY
        assert sup.total_restarts == 1

    def test_restart_backoff_escalates_to_degraded_then_failed(self):
        sim, sup = self.make(degraded_after_restarts=2, failed_after_restarts=4)
        service = FlakyService()
        # Restarts never stick: the service goes straight back down.
        service.restart = lambda: None
        sup.watch("svc", probe=service.probe, restart=service.restart)
        service.up = False
        sup.start()
        sim.run(until=4000.0)
        assert sup.health("svc") is ServiceHealth.FAILED

    def test_watch_without_restart_degrades(self):
        sim, sup = self.make()
        sup.watch("svc", probe=lambda now: False)
        sup.start()
        sim.run(until=50.0)
        assert sup.health("svc") is ServiceHealth.DEGRADED

    def test_heartbeat_watch_goes_unhealthy_on_silence(self):
        sim, sup = self.make()
        watch = sup.watch("svc", heartbeat_timeout_s=30.0)
        sup.start()
        sim.schedule(20.0, watch.beat)
        sim.run(until=25.0)
        assert sup.health("svc") is ServiceHealth.HEALTHY
        sim.run(until=100.0)  # silence since t=20
        assert sup.health("svc") is not ServiceHealth.HEALTHY

    def test_state_change_hooks_see_every_transition(self):
        sim, sup = self.make()
        service = FlakyService()
        seen = []
        sup.on_state_change.append(
            lambda name, old, new, now: seen.append((name, new.value))
        )
        sup.watch("svc", probe=service.probe, restart=service.restart)
        sup.start()
        sim.schedule(25.0, lambda: setattr(service, "up", False))
        sim.run(until=100.0)
        assert ("svc", "suspect") in seen or ("svc", "restarting") in seen
        assert seen[-1] == ("svc", "healthy")

    def test_backoff_jitter_comes_from_named_stream(self):
        """Supervision draws restart jitter from its own stream, never
        from streams other subsystems consume."""
        sim, sup = self.make()
        baseline = sim.rng.stream("weather").random()
        sim2 = Simulator(seed=9)
        sup2 = Supervisor(sim2, check_interval_s=10.0)
        sup2._rng.uniform(0.0, 0.25)  # a restart draw happened
        assert sim2.rng.stream("weather").random() == baseline


class StubScheduler:
    def __init__(self):
        self.max_data_age_s = 100.0
        self.on_decision = []


class StubContext:
    def __init__(self):
        self.entities = {}
        self.updates = []

    def ensure_entity(self, entity_id, entity_type, attrs=None):
        self.entities.setdefault(entity_id, entity_type)

    def update_attributes(self, entity_id, attrs):
        self.updates.append((entity_id, attrs))
        return list(attrs)


class TestDegradedMode:
    def make(self):
        sim = Simulator(seed=4)
        scheduler = StubScheduler()
        context = StubContext()
        policy = DegradedModePolicy(
            sim, scheduler, context, "farm",
            degraded_max_data_age_s=1000.0, journal_limit=3,
        )
        return sim, scheduler, context, policy

    def test_breaker_open_enters_and_widens_staleness(self):
        sim, scheduler, context, policy = self.make()
        policy.on_breaker_state(BreakerState.CLOSED, BreakerState.OPEN, 5.0)
        assert policy.mode == policy.DEGRADED
        assert scheduler.max_data_age_s == 1000.0
        policy.on_breaker_state(BreakerState.OPEN, BreakerState.CLOSED, 9.0)
        assert policy.mode == policy.NORMAL
        assert scheduler.max_data_age_s == 100.0

    def test_journal_only_while_degraded_then_reconciles(self):
        sim, scheduler, context, policy = self.make()
        policy.record_decision({"t": 1.0, "depth_mm": 5.0})  # normal: ignored
        policy.on_breaker_state(BreakerState.CLOSED, BreakerState.OPEN, 2.0)
        policy.record_decision({"t": 3.0, "depth_mm": 7.0})
        policy.on_breaker_state(BreakerState.OPEN, BreakerState.CLOSED, 4.0)
        assert policy.journaled == 1
        assert policy.reconciled == 1
        assert "urn:IrrigationJournal:farm" in context.entities
        (entity_id, attrs), = context.updates
        assert attrs["decisions"] == [{"t": 3.0, "depth_mm": 7.0}]

    def test_journal_is_bounded_oldest_first(self):
        sim, scheduler, context, policy = self.make()
        policy.on_breaker_state(BreakerState.CLOSED, BreakerState.OPEN, 0.0)
        for i in range(5):
            policy.record_decision({"i": i})
        policy.on_breaker_state(BreakerState.OPEN, BreakerState.CLOSED, 1.0)
        (_, attrs), = context.updates
        assert [d["i"] for d in attrs["decisions"]] == [2, 3, 4]
        assert attrs["droppedEntries"] == 2

    def test_reason_union_exits_only_when_all_clear(self):
        """Breaker-open and service-isolation signals stack: degraded mode
        ends when the *last* reason clears, not the first."""
        sim, scheduler, context, policy = self.make()
        policy.isolation_services.add("fog.node")
        policy.on_breaker_state(BreakerState.CLOSED, BreakerState.OPEN, 1.0)
        policy.on_service_state(
            "fog.node", ServiceHealth.SUSPECT, ServiceHealth.DEGRADED, 2.0
        )
        policy.on_breaker_state(BreakerState.OPEN, BreakerState.CLOSED, 3.0)
        assert policy.mode == policy.DEGRADED  # fog.node still isolated
        policy.on_service_state(
            "fog.node", ServiceHealth.DEGRADED, ServiceHealth.HEALTHY, 4.0
        )
        assert policy.mode == policy.NORMAL
        assert policy.episodes == 1

    def test_unwatched_services_are_ignored(self):
        sim, scheduler, context, policy = self.make()
        policy.on_service_state(
            "mqtt.broker", ServiceHealth.HEALTHY, ServiceHealth.DEGRADED, 1.0
        )
        assert policy.mode == policy.NORMAL


class TestBrokerBackpressure:
    def build(self, limiter):
        from repro.mqtt.broker import MqttBroker
        from repro.mqtt.client import MqttClient
        from repro.network import Network, RadioModel

        sim = Simulator(seed=2)
        net = Network(sim)
        broker = MqttBroker(sim, "broker")
        broker.inbound_limit = limiter
        net.add_node(broker)
        model = RadioModel("t", latency_s=0.005, bandwidth_bps=10e6, loss_rate=0.0)
        pub = MqttClient(sim, "pub", "broker")
        sub = MqttClient(sim, "sub", "broker")
        for c in (pub, sub):
            net.add_node(c)
            net.connect(c.address, "broker", model)
            c.connect()
        sim.run(until=1.0)
        sub.subscribe("t", qos=0)
        sim.run(until=2.0)
        return sim, broker, pub, sub

    def test_inbound_flood_is_shed_mechanically(self):
        sim, broker, pub, sub = self.build(RateLimiter(10, window_s=1.0))
        for _ in range(50):
            pub.publish("t", b"x", qos=0)
        sim.run(until=3.0)
        assert broker.stats.shed_backpressure == 40
        assert sub.stats.received <= 10

    def test_reject_policy_still_completes_qos1_handshake(self):
        """REJECT sheds the payload but acks the packet — otherwise every
        shed QoS-1 publish would retransmit and amplify the flood."""
        sim, broker, pub, sub = self.build(
            RateLimiter(1, window_s=1.0, policy=DropPolicy.REJECT)
        )
        for _ in range(5):
            pub.publish("t", b"x", qos=1)
        sim.run(until=30.0)
        assert broker.stats.shed_backpressure == 4
        assert pub.outbox.in_flight_count == 0  # every publish got its ack
        assert sim.metrics.total("mqtt.qos_retries") == 0


class TestContextBackpressure:
    def test_update_flood_is_shed(self):
        from repro.context import ContextBroker

        sim = Simulator(seed=3)
        context = ContextBroker(sim, "ctx")
        context.update_limit = RateLimiter(5, window_s=1.0)
        context.ensure_entity("e", "T")
        applied = 0
        for i in range(20):
            if context.update_attributes("e", {"v": i}):
                applied += 1
        assert applied == 5
        assert context.get_entity("e").get("v") == 4

    def test_reject_policy_raises_typed_error(self):
        from repro.context import ContextBroker

        sim = Simulator(seed=3)
        context = ContextBroker(sim, "ctx")
        context.ensure_entity("e", "T")
        context.update_limit = RateLimiter(
            1, window_s=1.0, policy=DropPolicy.REJECT
        )
        context.update_attributes("e", {"v": 1})
        with pytest.raises(BackpressureError):
            context.update_attributes("e", {"v": 2})


class TestPilotIntegration:
    def build(self, fault_plan=None, **resilience_kwargs):
        from repro.core.deployment import DeploymentKind
        from repro.core.pilot import PilotConfig, PilotRunner
        from repro.physics.crop import SOYBEAN
        from repro.physics.soil import LOAM
        from repro.physics.weather import BARREIRAS_MATOPIBA

        return PilotRunner(PilotConfig(
            name="res", farm="resfarm", climate=BARREIRAS_MATOPIBA,
            crop=SOYBEAN, soil=LOAM, rows=2, cols=2, season_days=4,
            start_day_of_year=150, initial_theta=0.22,
            deployment=DeploymentKind.FOG, irrigation_kind="valves",
            scheduler_kind="smart", seed=5, fault_plan=fault_plan,
            resilience=ResilienceConfig(**resilience_kwargs),
        ))

    def test_supervisor_restores_a_permanently_crashed_replicator(self):
        """A fog crash with no scripted recovery: only the supervisor can
        bring the sync daemon back."""
        from repro.faults import FaultPlan

        plan = FaultPlan(name="perma-crash").add("fog_crash", "fog", 86400.0)
        runner = self.build(fault_plan=plan)
        report = runner.run_season()
        assert runner.replicator.running
        assert report.resilience_restarts >= 1
        assert runner.supervisor.health("fog.replicator") is ServiceHealth.HEALTHY

    def test_partition_opens_breaker_and_reconciles_on_heal(self):
        """WAN partition → breaker opens → degraded decisions journaled →
        heal → breaker closes → journal reconciled and replicated."""
        from repro.faults import FaultPlan

        plan = FaultPlan(name="partition").add(
            "link_partition", "wan", 86400.0, 86400.0
        )
        runner = self.build(fault_plan=plan)
        report = runner.run_season()
        assert report.breaker_opens >= 1
        assert runner.uplink_breaker.state is BreakerState.CLOSED
        assert report.degraded_episodes >= 1
        assert report.reconciled_decisions > 0
        journal = runner.cloud.context.get_entity(
            runner.degraded_mode.entity_id
        )
        assert journal.get("entryCount") == report.reconciled_decisions

    def test_resilience_metrics_are_exported(self):
        runner = self.build()
        runner.run_season()
        snapshot = runner.metrics_snapshot()
        gauges = snapshot["gauges"]
        health = {
            name: value for name, value in gauges.items()
            if name.startswith("resilience.health")
        }
        assert len(health) >= 5
        assert all(value == 1.0 for value in health.values())
        assert gauges.get("resilience.degraded_mode") == 0.0
