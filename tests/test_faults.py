"""Unit tests for the fault-injection subsystem (plans + injector).

The end-to-end behavior (a pilot run under a fault plan) lives in
``test_fault_injection.py``; here the plan format and the injector's
target binding, scheduling and telemetry are exercised in isolation.
"""

from types import SimpleNamespace

import pytest

from repro.devices.battery import Battery
from repro.faults import FAULT_KINDS, FaultEvent, FaultInjector, FaultPlan, FaultPlanError
from repro.network import LinkState, Network, NetworkNode, RadioModel
from repro.simkernel import Simulator


def lossless():
    return RadioModel("t", latency_s=0.01, bandwidth_bps=1e6, loss_rate=0.0)


class Sink(NetworkNode):
    def __init__(self, address):
        super().__init__(address)
        self.received = []

    def on_packet(self, packet):
        self.received.append(packet)


class StubDevice:
    """The attribute surface the injector touches on a field device."""

    def __init__(self, device_id, capacity_j=1000.0):
        self.config = SimpleNamespace(device_id=device_id)
        self.failed = False
        self.tamper_hooks = []
        self.battery = Battery(capacity_j)


class StubBroker:
    def __init__(self, address="broker"):
        self.address = address
        self.restarts = 0

    def restart(self):
        self.restarts += 1


def linked_pair(sim):
    net = Network(sim)
    a, b = Sink("a"), Sink("b")
    net.add_node(a)
    net.add_node(b)
    net.connect("a", "b", lossless())
    return net, a, b


class TestFaultPlanValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultPlan().add("meteor_strike", "farm", at_s=10.0)

    def test_empty_target_rejected(self):
        with pytest.raises(FaultPlanError, match="needs a target"):
            FaultPlan().add("link_partition", "", at_s=10.0)

    def test_negative_time_rejected(self):
        with pytest.raises(FaultPlanError, match="at_s"):
            FaultPlan().add("link_partition", "wan", at_s=-1.0)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(FaultPlanError, match="duration_s"):
            FaultPlan().add("link_partition", "wan", at_s=0.0, duration_s=0.0)

    def test_one_shot_kind_rejects_duration(self):
        with pytest.raises(FaultPlanError, match="one-shot"):
            FaultPlan().add("battery_brownout", "p1", at_s=5.0, duration_s=60.0)

    def test_recovers_property(self):
        assert FaultEvent("link_partition", "wan", 0.0, duration_s=10.0).recovers
        assert not FaultEvent("link_partition", "wan", 0.0).recovers
        assert not FaultEvent("battery_brownout", "p1", 0.0).recovers

    def test_sorted_events_stable_for_equal_times(self):
        plan = (
            FaultPlan("p")
            .add("sensor_dropout", "d2", at_s=50.0)
            .add("link_partition", "wan", at_s=10.0)
            .add("sensor_dropout", "d1", at_s=50.0)
        )
        ordered = plan.sorted_events()
        assert [e.at_s for e in ordered] == [10.0, 50.0, 50.0]
        # Equal times keep insertion order: d2 was added before d1.
        assert [e.target for e in ordered[1:]] == ["d2", "d1"]


class TestFaultPlanSerialization:
    def plan(self):
        return (
            FaultPlan("storm-day")
            .add("link_partition", "wan", at_s=3600.0, duration_s=1800.0)
            .add("radio_jam", "a|b", at_s=4000.0, duration_s=600.0, loss=0.75)
            .add("battery_brownout", "pump-1", at_s=5000.0, fraction=0.3)
            .add("sensor_dropout", "probe-0-0", at_s=6000.0)
        )

    def test_json_round_trip(self):
        plan = self.plan()
        restored = FaultPlan.from_json(plan.to_json())
        assert restored == plan

    def test_file_round_trip(self, tmp_path):
        plan = self.plan()
        path = tmp_path / "plan.json"
        plan.dump(str(path))
        assert FaultPlan.load(str(path)) == plan

    def test_optional_fields_omitted_from_dict(self):
        data = FaultEvent("sensor_dropout", "p", 1.0).to_dict()
        assert "duration_s" not in data
        assert "params" not in data

    def test_unknown_fields_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault event fields"):
            FaultEvent.from_dict(
                {"kind": "sensor_dropout", "target": "p", "at_s": 1.0, "severity": 3}
            )

    def test_missing_field_rejected(self):
        with pytest.raises(FaultPlanError, match="missing required field"):
            FaultEvent.from_dict({"kind": "sensor_dropout", "target": "p"})

    def test_invalid_json_rejected(self):
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            FaultPlan.from_json("{nope")

    def test_non_object_plan_rejected(self):
        with pytest.raises(FaultPlanError, match="must be an object"):
            FaultPlan.from_json("[1, 2]")


class TestInjectorTargetBinding:
    def test_unknown_link_alias_fails_at_apply_time(self):
        sim = Simulator(seed=1)
        net, _, _ = linked_pair(sim)
        injector = FaultInjector(sim, net)
        plan = FaultPlan().add("link_partition", "wan", at_s=10.0, duration_s=5.0)
        with pytest.raises(FaultPlanError, match="unknown link target 'wan'"):
            injector.apply(plan)
        assert injector.injected == 0

    def test_unknown_broker_and_device_fail_with_registered_listing(self):
        sim = Simulator(seed=1)
        injector = FaultInjector(sim)
        injector.register_broker("fog", StubBroker())
        with pytest.raises(FaultPlanError, match=r"registered: \['fog'\]"):
            injector.apply(FaultPlan().add("broker_restart", "cloud", at_s=1.0))
        with pytest.raises(FaultPlanError, match="unknown device"):
            injector.apply(FaultPlan().add("sensor_dropout", "ghost", at_s=1.0))

    def test_pair_syntax_bypasses_alias_registry(self):
        sim = Simulator(seed=1)
        net, _, _ = linked_pair(sim)
        injector = FaultInjector(sim, net)
        injector.apply(FaultPlan().add("link_partition", "a|b", at_s=1.0, duration_s=5.0))
        sim.run(until=2.0)
        assert net.links[("a", "b")].state is LinkState.DOWN

    def test_bad_pair_syntax_rejected(self):
        sim = Simulator(seed=1)
        injector = FaultInjector(sim, Network(sim))
        with pytest.raises(FaultPlanError, match="expected 'a|b'"):
            injector.apply(FaultPlan().add("link_partition", "a|", at_s=1.0))

    def test_link_fault_requires_a_network(self):
        sim = Simulator(seed=1)
        injector = FaultInjector(sim)  # no network
        injector.register_pair("wan", "a", "b")
        with pytest.raises(FaultPlanError, match="needs a network"):
            injector.apply(FaultPlan().add("link_partition", "wan", at_s=1.0))


class TestInjectorExecution:
    def test_partition_then_heal_with_telemetry(self):
        from repro.telemetry.metrics import MetricsRegistry

        sim = Simulator(seed=1, metrics=MetricsRegistry())
        net, a, b = linked_pair(sim)
        injector = FaultInjector(sim, net)
        injector.register_pair("wan", "a", "b")
        injector.apply(FaultPlan("p").add("link_partition", "wan", at_s=10.0, duration_s=20.0))
        sim.run(until=5.0)
        assert injector.active_count == 0
        sim.run(until=15.0)
        assert net.links[("a", "b")].state is LinkState.DOWN
        assert net.links[("b", "a")].state is LinkState.DOWN
        assert injector.active_count == 1
        assert sim.metrics.value("faults.active") == 1.0
        sim.run(until=60.0)
        assert net.links[("a", "b")].state is LinkState.UP
        assert injector.injected == 1
        assert injector.recovered == 1
        assert injector.active_count == 0
        assert sim.metrics.value("faults.injected", {"kind": "link_partition"}) == 1.0
        assert sim.metrics.value("faults.recovered", {"kind": "link_partition"}) == 1.0
        histogram = sim.metrics.value("faults.recovery_time_s", {"kind": "link_partition"})
        assert histogram["count"] == 1
        assert histogram["sum"] == pytest.approx(20.0)

    def test_jam_applies_loss_and_unjams(self):
        sim = Simulator(seed=1)
        net, a, b = linked_pair(sim)
        injector = FaultInjector(sim, net)
        injector.apply(
            FaultPlan().add("radio_jam", "a|b", at_s=10.0, duration_s=10.0, loss=1.0)
        )
        sim.run(until=15.0)
        assert net.links[("a", "b")].state is LinkState.JAMMED
        a.send("b", "jammed", 100)
        sim.run(until=25.0)
        assert net.links[("a", "b")].state is LinkState.UP
        a.send("b", "clear", 100)
        sim.run(until=30.0)
        payloads = [p.payload for p in b.received]
        assert "jammed" not in payloads  # loss=1.0 ate it
        assert "clear" in payloads

    def test_broker_restart_without_outage_window(self):
        sim = Simulator(seed=1)
        broker = StubBroker()
        injector = FaultInjector(sim)
        injector.register_broker("broker", broker)
        injector.apply(FaultPlan().add("broker_restart", "broker", at_s=5.0))
        sim.run(until=10.0)
        assert broker.restarts == 1
        # No duration: never recovers, so it must not linger in the gauge.
        assert injector.active_count == 0
        assert injector.injected == 1
        assert injector.recovered == 0

    def test_sensor_dropout_toggles_failed_flag(self):
        sim = Simulator(seed=1)
        device = StubDevice("probe-1")
        injector = FaultInjector(sim)
        injector.register_device(device)
        injector.apply(FaultPlan().add("sensor_dropout", "probe-1", at_s=10.0, duration_s=30.0))
        sim.run(until=20.0)
        assert device.failed is True
        sim.run(until=50.0)
        assert device.failed is False

    def test_sensor_stuck_freezes_first_reading_then_unfreezes(self):
        sim = Simulator(seed=1)
        device = StubDevice("probe-2")
        injector = FaultInjector(sim)
        injector.register_device(device)
        injector.apply(FaultPlan().add("sensor_stuck", "probe-2", at_s=10.0, duration_s=30.0))
        sim.run(until=20.0)
        assert len(device.tamper_hooks) == 1

        def through_hooks(measures):
            for hook in device.tamper_hooks:
                measures = hook(measures)
            return measures

        assert through_hooks({"soilMoisture": 0.30}) == {"soilMoisture": 0.30}
        # Later, different readings keep coming out frozen at the first one.
        assert through_hooks({"soilMoisture": 0.12}) == {"soilMoisture": 0.30}
        sim.run(until=50.0)
        assert device.tamper_hooks == []

    def test_battery_brownout_drains_fraction_of_remaining(self):
        sim = Simulator(seed=1)
        device = StubDevice("pump-1", capacity_j=1000.0)
        injector = FaultInjector(sim)
        injector.register_device(device)
        injector.apply(FaultPlan().add("battery_brownout", "pump-1", at_s=5.0, fraction=0.25))
        sim.run(until=10.0)
        assert device.battery.remaining_j == pytest.approx(750.0)
        assert injector.active_count == 0  # one-shot: nothing stays active

    def test_never_healing_fault_stays_out_of_active_gauge(self):
        sim = Simulator(seed=1)
        device = StubDevice("probe-3")
        injector = FaultInjector(sim)
        injector.register_device(device)
        injector.apply(FaultPlan().add("sensor_dropout", "probe-3", at_s=5.0))
        sim.run(until=10.0)
        assert device.failed is True
        assert injector.active_count == 0
        assert injector.recovered == 0

    def test_plan_application_is_recorded(self):
        sim = Simulator(seed=1)
        injector = FaultInjector(sim)
        device = StubDevice("d")
        injector.register_device(device)
        injector.apply(FaultPlan("chaos-day").add("sensor_dropout", "d", at_s=1.0))
        assert injector.plans_applied == ["chaos-day"]
