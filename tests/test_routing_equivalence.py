"""Property tests: indexed routing must equal linear-scan routing.

The broker hot paths now route through indexes (the MQTT
:class:`TopicTrie`, the context :class:`SubscriptionIndex`, and the query
type/attribute narrowing).  These tests drive randomized — but seeded —
corpora through both the index and the original linear reference and
require identical results, including delivery *order*.
"""

import random

import pytest

from repro.context import (
    AttrFilter,
    ContextBroker,
    ContextEntity,
    Query,
    Subscription,
    SubscriptionIndex,
)
from repro.context.query import apply_op
from repro.mqtt import MqttBroker, MqttClient, TopicTrie, topic_matches
from repro.network import Network, RadioModel
from repro.simkernel import Simulator
from repro.telemetry import MetricsRegistry

LEVELS = ["a", "b", "c", "dd", "e1", ""]


def random_filter(rng: random.Random) -> str:
    depth = rng.randint(1, 4)
    parts = []
    for i in range(depth):
        roll = rng.random()
        if roll < 0.25:
            parts.append("+")
        else:
            parts.append(rng.choice(LEVELS))
    if rng.random() < 0.2:
        parts.append("#")
    if rng.random() < 0.1:
        parts[0] = "$sys"
    candidate = "/".join(parts)
    return candidate if candidate else "+"


def random_topic(rng: random.Random) -> str:
    depth = rng.randint(1, 5)
    parts = [rng.choice(LEVELS) for _ in range(depth)]
    if rng.random() < 0.2:
        parts[0] = "$sys"
    candidate = "/".join(parts)
    return candidate if candidate else "a"


class TestTrieEquivalence:
    @pytest.mark.parametrize("seed", range(25))
    def test_trie_matches_linear_scan(self, seed):
        rng = random.Random(seed)
        trie = TopicTrie()
        entries = []  # (filter, key, qos)
        for key in range(rng.randint(1, 60)):
            topic_filter = random_filter(rng)
            qos = rng.randint(0, 2)
            trie.insert(topic_filter, key, qos)
            entries.append((topic_filter, key, qos))
        for _ in range(200):
            topic = random_topic(rng)
            expected = {}
            for topic_filter, key, qos in entries:
                if topic_matches(topic_filter, topic):
                    if key not in expected or qos > expected[key]:
                        expected[key] = qos
            got = {}
            for key, qos in trie.match(topic):
                if key not in got or qos > got[key]:
                    got[key] = qos
            assert got == expected, f"divergence for topic {topic!r}"

    @pytest.mark.parametrize("seed", range(10))
    def test_trie_after_random_removals(self, seed):
        rng = random.Random(1000 + seed)
        trie = TopicTrie()
        entries = {}
        for key in range(40):
            topic_filter = random_filter(rng)
            trie.insert(topic_filter, key, key % 3)
            entries[key] = topic_filter
        for key in rng.sample(sorted(entries), 20):
            assert trie.discard(entries[key], key)
            del entries[key]
        assert len(trie) == len(entries)
        for _ in range(100):
            topic = random_topic(rng)
            expected = {k for k, f in entries.items() if topic_matches(f, topic)}
            got = {k for k, _v in trie.match(topic)}
            assert got == expected

    def test_parent_level_and_dollar_rules(self):
        trie = TopicTrie()
        trie.insert("sport/#", "hash", 0)
        trie.insert("#", "root", 0)
        trie.insert("+/x", "plus", 0)
        assert {k for k, _ in trie.match("sport")} == {"hash", "root"}
        assert {k for k, _ in trie.match("$sys/x")} == set()
        trie.insert("$sys/#", "dollar", 0)
        assert {k for k, _ in trie.match("$sys/x")} == {"dollar"}


def build_rig(sim, n_clients):
    net = Network(sim)
    broker = MqttBroker(sim, "broker")
    broker.verify_routing = True
    net.add_node(broker)
    model = RadioModel("test", latency_s=0.005, bandwidth_bps=10e6, loss_rate=0.0)
    clients = []
    for i in range(n_clients):
        client = MqttClient(sim, f"c{i}", "broker")
        net.add_node(client)
        net.connect(f"c{i}", "broker", model)
        clients.append(client)
    return broker, clients


class TestBrokerRoutingVerified:
    """End-to-end broker runs with the trie cross-checked every publish."""

    @pytest.mark.parametrize("seed", range(5))
    def test_random_subscribe_publish_cycles(self, seed):
        rng = random.Random(seed)
        sim = Simulator(seed=seed, metrics=MetricsRegistry())
        broker, clients = build_rig(sim, 6)
        for client in clients:
            client.connect()
        sim.run(until=1.0)
        filters = ["swamp/+/attrs/+", "swamp/farm/#", "a/b", "a/+", "#", "swamp/farm/cmd/dev1"]
        for client in clients:
            for topic_filter in rng.sample(filters, rng.randint(1, 4)):
                client.subscribe(topic_filter, qos=rng.randint(0, 2))
        sim.run(until=2.0)
        topics = ["swamp/farm/attrs/dev1", "a/b", "a/c", "swamp/farm/cmd/dev1", "zzz"]
        for step in range(30):
            publisher = rng.choice(clients)
            publisher.publish(rng.choice(topics), b"x", qos=rng.randint(0, 2))
            if step % 7 == 3:
                victim = rng.choice(clients)
                victim.unsubscribe(rng.choice(filters))
        sim.run(until=10.0)  # RoutingMismatchError would propagate and fail
        assert broker.stats.publishes_in > 0
        assert sim.metrics.total("mqtt.route_candidates") > 0

    def test_restart_clears_routes(self):
        sim = Simulator(seed=9)
        broker, clients = build_rig(sim, 3)
        for client in clients:
            client.connect()
        sim.run(until=1.0)
        for client in clients:
            client.subscribe("a/#", qos=1)
        sim.run(until=2.0)
        broker.restart()
        assert len(broker._routes) == 0


def random_subscription(rng: random.Random, sink) -> Subscription:
    kind = rng.random()
    entity_id = f"e{rng.randint(1, 8)}" if kind < 0.45 else None
    entity_type = rng.choice(["SoilProbe", "Valve", "Drone"]) if rng.random() < 0.6 else None
    id_pattern = rng.choice([r"^e[1-4]$", r"e", r"^x"]) if rng.random() < 0.3 else None
    if entity_id is None and entity_type is None and id_pattern is None:
        entity_id = f"e{rng.randint(1, 8)}"
    return Subscription(
        sink,
        entity_id=entity_id,
        id_pattern=id_pattern,
        entity_type=entity_type,
        condition_attrs=rng.choice([None, ["theta"], ["theta", "ndvi"]]),
    )


class TestSubscriptionIndexEquivalence:
    @pytest.mark.parametrize("seed", range(25))
    def test_candidates_cover_linear_scan(self, seed):
        rng = random.Random(seed)
        index = SubscriptionIndex()
        subs = []
        for _ in range(rng.randint(1, 40)):
            sub = random_subscription(rng, lambda n: None)
            subs.append(sub)
            index.add(sub)
        for sub in rng.sample(subs, len(subs) // 4):
            index.remove(sub.subscription_id)
            subs.remove(sub)
        for _ in range(100):
            entity = ContextEntity(
                f"e{rng.randint(1, 10)}", rng.choice(["SoilProbe", "Valve", "Drone", "Pump"])
            )
            expected = sorted(
                (s for s in subs if s.matches_entity(entity)),
                key=lambda s: s.subscription_id,
            )
            got = sorted(
                (s for s in index.candidates(entity) if s.matches_entity(entity)),
                key=lambda s: s.subscription_id,
            )
            assert got == expected

    @pytest.mark.parametrize("seed", range(5))
    def test_dispatch_order_matches_full_scan_reference(self, seed):
        """Notification order through the broker == sorted full-scan order."""
        rng = random.Random(seed)
        sim = Simulator(seed=seed)
        broker = ContextBroker(sim)
        deliveries = []
        subs = []
        for _ in range(30):
            sub = random_subscription(
                rng, lambda n: deliveries.append((n.subscription_id, n.entity.entity_id))
            )
            subs.append(sub)
            broker.subscribe(sub)
        for step in range(50):
            entity_id = f"e{rng.randint(1, 8)}"
            entity_type = rng.choice(["SoilProbe", "Valve", "Drone"])
            attrs = rng.choice([{"theta": step}, {"ndvi": step}, {"other": step}])
            expected_order = []
            entity = broker.entities.get(entity_id)
            probe = entity if entity is not None else ContextEntity(entity_id, entity_type)
            for sub in sorted(subs, key=lambda s: s.subscription_id):
                if sub.matches_entity(probe) and sub.triggered_by(list(attrs)):
                    expected_order.append(sub.subscription_id)
            before = len(deliveries)
            broker.ensure_entity(entity_id, entity_type, attrs)
            got = [sid for sid, _eid in deliveries[before:]]
            # ensure_entity may fire a creation dispatch plus the update
            # dispatch; compare against the trailing update deliveries.
            assert got[-len(expected_order):] == expected_order if expected_order else True


class TestQueryIndexEquivalence:
    @pytest.mark.parametrize("seed", range(15))
    def test_indexed_query_equals_brute_force(self, seed):
        rng = random.Random(seed)
        sim = Simulator(seed=seed)
        broker = ContextBroker(sim)
        types = ["SoilProbe", "Valve", "Drone"]
        attrs = ["theta", "ndvi", "battery", "farm"]
        for i in range(60):
            entity_attrs = {
                name: rng.choice([rng.uniform(0, 1), rng.choice(["A", "B"])])
                for name in rng.sample(attrs, rng.randint(0, 3))
            }
            broker.create_entity(f"n{i:02d}", rng.choice(types), entity_attrs or None)
        for _ in range(40):
            query = Query(type=rng.choice(types + [None]))
            for _f in range(rng.randint(0, 2)):
                query.where(
                    rng.choice(attrs),
                    rng.choice(["<", "<=", ">", ">=", "==", "!="]),
                    rng.choice([0.5, "A"]),
                )
            got = [e.entity_id for e in broker.query(query)]
            expected = []
            for entity_id in sorted(broker.entities):
                entity = broker.entities[entity_id]
                if query.type is not None and entity.entity_type != query.type:
                    continue
                if not all(
                    apply_op(entity.get(f.attr), f.op, f.value) for f in query.filters
                ):
                    continue
                expected.append(entity_id)
            assert got == expected
