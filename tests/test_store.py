"""The durable segment store: frames, barriers, crash recovery, faults.

The central property (E20): after a simulated ``process_kill`` at *any*
point in a run, the recovered state is bit-identical to an uninterrupted
run truncated at the commit point — committed records never vanish,
recovered records are always a strict prefix of what was accepted, and
the rebuilt history serves exactly the reads that prefix implies.
"""

import os

import pytest

from repro.context.broker import ContextBroker
from repro.context.history import MINUTE_S, HistoryQuery, ShortTermHistory
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultPlan, FaultPlanError
from repro.simkernel.simulator import Simulator
from repro.store import (
    CorruptBlobError,
    DurabilityService,
    ScanResult,
    SegmentStore,
    StorageFaults,
    StoreError,
    decode_sample,
    encode_record,
    encode_sample,
    read_sealed,
    scan_records,
    write_sealed,
)

EID = "urn:AgriParcel:demo:0-0"
ATTR = "soilMoisture"


def payloads_for(n, start=0):
    return [encode_sample(EID, ATTR, 10.0 * i, 0.1 * i) for i in range(start, n)]


class TestFraming:
    def test_sample_codec_round_trips(self):
        payload = encode_sample(EID, ATTR, 12.5, 0.375)
        assert decode_sample(payload) == (EID, ATTR, 12.5, 0.375)

    def test_scan_recovers_every_frame(self):
        data = b"".join(encode_record(p) for p in payloads_for(5))
        result = scan_records(b"SWS1" + data)
        assert result.payloads == payloads_for(5)
        assert not result.torn

    def test_scan_truncates_at_first_bad_checksum(self):
        frames = [encode_record(p) for p in payloads_for(3)]
        blob = bytearray(b"SWS1" + b"".join(frames))
        # Flip one payload byte inside the second frame.
        offset = 4 + len(frames[0]) + 8 + 2
        blob[offset] ^= 0xFF
        result = scan_records(bytes(blob))
        assert result.payloads == payloads_for(1)
        assert result.torn
        assert result.clean_end == 4 + len(frames[0])

    def test_scan_tolerates_partial_tail_and_garbage(self):
        whole = b"SWS1" + encode_record(b"x")
        for cut in range(len(whole) - 1, 4, -1):
            result = scan_records(whole[:cut])
            assert result.payloads == [] and result.torn
        assert scan_records(b"") == ScanResult([], 0, torn=False)
        assert scan_records(b"JUNKJUNK").torn

    def test_sealed_blob_round_trip_and_corruption(self, tmp_path):
        path = str(tmp_path / "blob")
        write_sealed(path, b"precious bytes")
        assert read_sealed(path) == b"precious bytes"
        with open(path, "r+b") as fh:
            fh.seek(-1, os.SEEK_END)
            fh.truncate()
        with pytest.raises(CorruptBlobError):
            read_sealed(path)


class TestSegmentStore:
    def test_append_commit_read_back(self, tmp_path):
        store = SegmentStore(str(tmp_path))
        for p in payloads_for(10):
            store.append(p)
        assert store.volatile_records == 10
        assert store.commit()
        assert store.volatile_records == 0
        assert store.read_all() == payloads_for(10)

    def test_rotation_is_a_durability_barrier(self, tmp_path):
        store = SegmentStore(str(tmp_path), max_segment_bytes=200)
        for p in payloads_for(12):
            store.append(p)
        assert store.segment_count > 1
        # Every record in a sealed (non-final) segment is durable even
        # though no explicit commit ran.
        assert store.committed >= store.appended - store._records_in_active

    def test_recover_truncates_torn_tail_only(self, tmp_path):
        store = SegmentStore(str(tmp_path))
        for p in payloads_for(8):
            store.append(p)
        store.commit()
        for p in payloads_for(12, start=8):
            store.append(p)
        store.crash(surviving_tail_bytes=5)  # a partial frame survives
        recovered = store.recover()
        assert recovered == payloads_for(8)
        assert store.torn_tails_truncated == 1
        # The reopened tail appends cleanly after the truncation.
        store.append(b"after")
        assert store.commit()
        assert store.read_all() == payloads_for(8) + [b"after"]

    def test_mid_log_corruption_fails_loudly(self, tmp_path):
        store = SegmentStore(str(tmp_path), max_segment_bytes=120)
        for p in payloads_for(12):
            store.append(p)
        store.commit()
        store.close()
        first = sorted(tmp_path.glob("seg-*.log"))[0]
        blob = bytearray(first.read_bytes())
        blob[-2] ^= 0xFF
        first.write_bytes(bytes(blob))
        reopened = SegmentStore(str(tmp_path), max_segment_bytes=120)
        with pytest.raises(StoreError, match="corrupt mid-log"):
            reopened.recover()

    def test_torn_write_is_repaired_in_place(self, tmp_path):
        faults = StorageFaults()
        store = SegmentStore(str(tmp_path), faults=faults)
        store.append(b"first")
        faults.arm_torn_write(0.5)
        store.append(b"second landed whole")
        assert store.commit()
        assert faults.torn_writes == 1
        assert store.read_all() == [b"first", b"second landed whole"]

    def test_stalled_and_failed_barriers_defer_durability(self, tmp_path):
        faults = StorageFaults()
        store = SegmentStore(str(tmp_path), faults=faults)
        store.append(b"a")
        faults.stalled = True
        assert not store.commit()
        faults.stalled = False
        faults.fsync_lost = True
        assert not store.commit()
        assert store.committed == 0
        assert store.deferred_commits == 1 and store.failed_commits == 1
        faults.fsync_lost = False
        assert store.commit()
        assert store.committed == 1


def durable_fixture(tmp_path, flush_interval_s=50.0):
    sim = Simulator(seed=9)
    broker = ContextBroker(sim)
    history = ShortTermHistory(broker, rollup_periods=(MINUTE_S,))
    store = SegmentStore(str(tmp_path))
    service = DurabilityService(sim, history, store,
                                flush_interval_s=flush_interval_s)
    service.start()
    broker.create_entity(EID, "AgriParcel")
    return sim, broker, history, service


def feed(sim, broker, n, dt=10.0):
    for i in range(n):
        broker.update_attributes(EID, {ATTR: 0.1 + 0.01 * (i % 30)})
        sim.run_until(sim.now + dt)


class TestCrashRecoveryProperty:
    def test_recovery_is_prefix_identical_over_many_kill_points(self, tmp_path):
        """E20's core property, swept over >= 50 kill points.

        A reference run records the full payload sequence; then for each
        kill point we re-run, crash mid-flush with a varying surviving
        tail, recover, and require (a) no committed record lost, (b) the
        recovered log is bit-identical to the reference prefix, (c) the
        rebuilt history answers exactly like a fresh history fed that
        prefix.
        """
        ref_dir = tmp_path / "ref"
        sim, broker, history, service = durable_fixture(ref_dir)
        feed(sim, broker, 120)
        reference = service.store.read_all()
        assert len(reference) == 120

        kill_points = [(k, (k * 7) % 23) for k in range(5, 115, 2)]
        assert len(kill_points) >= 50
        for samples_before_kill, surviving in kill_points:
            run_dir = tmp_path / f"kill-{samples_before_kill}-{surviving}"
            sim, broker, history, service = durable_fixture(run_dir)
            feed(sim, broker, samples_before_kill)
            committed_before = service.store.committed
            service.crash_and_recover(surviving_tail_bytes=surviving)
            recovered = service.store.read_all()

            assert len(recovered) >= committed_before
            assert recovered == reference[: len(recovered)], (
                samples_before_kill, surviving)
            assert service.lost_committed == 0
            assert service.prefix_consistent

            replica = ShortTermHistory(
                ContextBroker(Simulator(seed=1)), rollup_periods=(MINUTE_S,))
            replica.rebuild_from_samples(decode_sample(p) for p in recovered)
            raw = HistoryQuery(EID, ATTR)
            sums = HistoryQuery(EID, ATTR, period_s=MINUTE_S, method="sum")
            assert history.read(raw, source="memory").rows == \
                replica.read(raw, source="memory").rows
            assert history.read(sums, source="memory").rows == \
                replica.read(sums, source="memory").rows

    def test_writes_after_recovery_extend_the_prefix(self, tmp_path):
        sim, broker, history, service = durable_fixture(tmp_path)
        feed(sim, broker, 30)
        service.crash_and_recover(surviving_tail_bytes=3)
        feed(sim, broker, 20)
        sim.run_until(sim.now + 100.0)
        assert service.prefix_consistent
        assert service.lost_committed == 0
        assert service.store.committed == service.store.appended
        # The history and the log agree end-to-end after the second leg.
        log_samples = [decode_sample(p) for p in service.store.read_all()]
        assert [(t, v) for _e, _a, t, v in log_samples] == \
            history.read(HistoryQuery(EID, ATTR), source="memory").rows


class TestFaultPlanIntegration:
    def apply_plan(self, tmp_path, events, horizon_s=2000.0):
        sim, broker, history, service = durable_fixture(
            tmp_path, flush_interval_s=50.0)
        injector = FaultInjector(sim)
        injector.register_store("store", service)
        injector.apply(FaultPlan("storage", list(events)))
        feed(sim, broker, int(horizon_s // 10), dt=10.0)
        # One more flush window so the final appends hit a barrier.
        sim.run_until(sim.now + 60.0)
        return sim, service, injector

    def test_disk_stall_defers_commits_until_recovery(self, tmp_path):
        _sim, service, injector = self.apply_plan(
            tmp_path,
            [FaultEvent("disk_stall", "store", at_s=100.0, duration_s=400.0)])
        assert service.store.deferred_commits >= 7
        assert injector.recovered == 1
        assert service.store.committed == service.store.appended
        assert service.lost_committed == 0

    def test_fsync_lost_never_advances_the_watermark(self, tmp_path):
        _sim, service, _injector = self.apply_plan(
            tmp_path,
            [FaultEvent("fsync_lost", "store", at_s=100.0, duration_s=400.0)])
        assert service.store.failed_commits >= 7
        assert service.store.committed == service.store.appended
        assert service.lost_committed == 0

    def test_torn_write_then_kill_round_trip(self, tmp_path):
        _sim, service, _injector = self.apply_plan(
            tmp_path,
            [FaultEvent("disk_torn_write", "store", at_s=100.0,
                        params={"fraction": 0.4}),
             FaultEvent("process_kill", "store", at_s=900.0,
                        params={"surviving_tail_bytes": 11})])
        assert service.store.faults.torn_writes == 1
        assert service.recoveries == 1
        assert service.lost_committed == 0
        assert service.prefix_consistent

    def test_unknown_store_target_fails_at_schedule_time(self, tmp_path):
        sim = Simulator(seed=1)
        injector = FaultInjector(sim)
        with pytest.raises(FaultPlanError, match="unknown store"):
            injector.apply(FaultPlan("bad", [
                FaultEvent("disk_stall", "nope", at_s=1.0, duration_s=5.0)]))

    def test_one_shot_kinds_reject_durations(self):
        with pytest.raises(FaultPlanError, match="one-shot"):
            FaultEvent("process_kill", "store", at_s=1.0, duration_s=5.0).validate()


class TestRunIntegration:
    def test_store_dir_attaches_and_survives_a_short_run(self, tmp_path):
        from repro.api import RunOptions, run

        result = run(RunOptions(
            pilot="matopiba", days=0.1,
            store_dir=str(tmp_path / "wal"), store_flush_s=30.0))
        durability = result.runner.durability
        assert durability.store.appended > 0
        assert durability.store.committed == durability.store.appended
        assert durability.report()["lost_committed"] == 0

    def test_store_dir_rejected_with_chaos_and_checkpoint(self, tmp_path):
        from repro.api import RunOptions, run

        for extra in ({"chaos": True}, {"checkpoint": str(tmp_path / "ck")}):
            with pytest.raises(ValueError, match="store_dir is not supported"):
                run(RunOptions(pilot="matopiba", days=0.1,
                               store_dir=str(tmp_path / "wal"), **extra))

    def test_storage_invariants_audit_a_recovered_runner(self, tmp_path):
        from repro.api import check_storage_invariants

        sim, broker, history, service = durable_fixture(tmp_path)
        feed(sim, broker, 40)
        service.crash_and_recover(surviving_tail_bytes=4)

        class RunnerStub:
            durability = service

        results = check_storage_invariants(RunnerStub())
        assert results and all(r.ok for r in results)
        names = {r.name for r in results}
        assert "no committed record lost" in names
