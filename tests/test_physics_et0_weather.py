"""Tests for ET0 estimators and the synthetic weather generator."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.physics.et0 import (
    clear_sky_radiation,
    et0_hargreaves,
    et0_penman_monteith,
    extraterrestrial_radiation,
    psychrometric_constant,
    saturation_vapor_pressure,
    slope_vapor_pressure_curve,
)
from repro.physics.weather import (
    BARREIRAS_MATOPIBA,
    CARTAGENA,
    EMILIA_ROMAGNA,
    PINHAL,
    WeatherGenerator,
)
from repro.simkernel.rng import RngRegistry


class TestEt0Components:
    def test_saturation_vapor_pressure_known_value(self):
        # FAO-56 table: e°(20°C) ≈ 2.338 kPa
        assert saturation_vapor_pressure(20.0) == pytest.approx(2.338, abs=0.01)

    def test_slope_positive_and_increasing(self):
        assert slope_vapor_pressure_curve(10.0) < slope_vapor_pressure_curve(30.0)

    def test_psychrometric_constant_sea_level(self):
        # FAO-56: γ ≈ 0.0674 kPa/°C at sea level.
        assert psychrometric_constant(0.0) == pytest.approx(0.0674, abs=0.001)

    def test_extraterrestrial_radiation_equator_high(self):
        ra_equator = extraterrestrial_radiation(0.0, 80)
        ra_high_lat = extraterrestrial_radiation(60.0, 80)
        assert ra_equator > ra_high_lat

    def test_polar_night_no_radiation(self):
        # Above the arctic circle in midwinter, Ra ~ 0.
        assert extraterrestrial_radiation(80.0, 355) < 0.5

    def test_clear_sky_below_extraterrestrial(self):
        ra = extraterrestrial_radiation(44.0, 180)
        assert clear_sky_radiation(ra, 100.0) < ra


class TestPenmanMonteith:
    def test_reference_magnitude_summer_temperate(self):
        # Warm summer day in the Po valley: expect roughly 4-7 mm/day.
        et0 = et0_penman_monteith(
            tmin_c=17.0, tmax_c=31.0, rh_mean_pct=60.0, wind_2m_ms=2.0,
            solar_mj_m2=25.0, latitude_deg=44.7, day_of_year=190,
        )
        assert 4.0 < et0 < 7.5

    def test_winter_lower_than_summer(self):
        summer = et0_penman_monteith(17, 31, 60, 2.0, 25.0, 44.7, 190)
        winter = et0_penman_monteith(0, 8, 85, 2.0, 6.0, 44.7, 15)
        assert winter < summer / 3

    def test_wind_increases_et0(self):
        calm = et0_penman_monteith(15, 30, 50, 0.5, 22.0, 40.0, 180)
        windy = et0_penman_monteith(15, 30, 50, 5.0, 22.0, 40.0, 180)
        assert windy > calm

    def test_humidity_decreases_et0(self):
        humid = et0_penman_monteith(15, 30, 90, 2.0, 22.0, 40.0, 180)
        dry = et0_penman_monteith(15, 30, 30, 2.0, 22.0, 40.0, 180)
        assert dry > humid

    def test_never_negative(self):
        assert et0_penman_monteith(-10, -2, 95, 0.5, 1.0, 60.0, 10) >= 0.0

    @given(
        tmin=st.floats(min_value=-5, max_value=25),
        spread=st.floats(min_value=1, max_value=20),
        rh=st.floats(min_value=10, max_value=100),
        wind=st.floats(min_value=0.1, max_value=8),
        solar=st.floats(min_value=0.5, max_value=32),
        lat=st.floats(min_value=-50, max_value=50),
        doy=st.integers(min_value=1, max_value=365),
    )
    @settings(max_examples=150, deadline=None)
    def test_property_physical_range(self, tmin, spread, rh, wind, solar, lat, doy):
        et0 = et0_penman_monteith(tmin, tmin + spread, rh, wind, solar, lat, doy)
        assert 0.0 <= et0 < 20.0  # physically plausible bounds


class TestHargreaves:
    def test_magnitude_matches_penman_roughly(self):
        pm = et0_penman_monteith(17, 31, 55, 2.0, 24.0, 44.7, 190)
        hg = et0_hargreaves(17, 31, 44.7, 190)
        assert hg == pytest.approx(pm, rel=0.5)

    def test_zero_spread_gives_zero(self):
        assert et0_hargreaves(20, 20, 44.7, 190) == 0.0

    def test_never_negative(self):
        assert et0_hargreaves(-30, -25, 60.0, 20) >= 0.0


class TestWeatherGenerator:
    def make(self, profile, seed=0):
        return WeatherGenerator(profile, RngRegistry(seed).stream("weather"))

    def test_deterministic(self):
        a = self.make(EMILIA_ROMAGNA, seed=1).generate(30)
        b = self.make(EMILIA_ROMAGNA, seed=1).generate(30)
        assert [(d.tmin_c, d.rain_mm) for d in a] == [(d.tmin_c, d.rain_mm) for d in b]

    def test_different_seeds_differ(self):
        a = self.make(EMILIA_ROMAGNA, seed=1).generate(30)
        b = self.make(EMILIA_ROMAGNA, seed=2).generate(30)
        assert [d.tmin_c for d in a] != [d.tmin_c for d in b]

    def test_day_of_year_wraps(self):
        gen = WeatherGenerator(EMILIA_ROMAGNA, RngRegistry(0).stream("w"), start_day_of_year=364)
        days = gen.generate(4)
        assert [d.day_of_year for d in days] == [364, 365, 1, 2]

    def test_tmin_below_tmax(self):
        for day in self.make(CARTAGENA).generate(365):
            assert day.tmin_c < day.tmax_c

    def test_et0_computed_and_positive_in_summer(self):
        days = self.make(EMILIA_ROMAGNA).generate(365)
        july = [d for d in days if 182 <= d.day_of_year <= 212]
        assert all(d.et0_mm > 1.0 for d in july)

    def test_seasonality_northern(self):
        days = self.make(EMILIA_ROMAGNA, seed=3).generate(365)
        january = [d.tmean_c for d in days if d.day_of_year <= 31]
        july = [d.tmean_c for d in days if 182 <= d.day_of_year <= 212]
        assert sum(july) / len(july) > sum(january) / len(january) + 10

    def test_seasonality_southern_inverted(self):
        days = self.make(BARREIRAS_MATOPIBA, seed=3).generate(365)
        january = [d.tmean_c for d in days if d.day_of_year <= 31]
        july = [d.tmean_c for d in days if 182 <= d.day_of_year <= 212]
        assert sum(january) / len(january) > sum(july) / len(july)

    def test_matopiba_dry_season(self):
        """The MATOPIBA winter (Jun-Aug) must be markedly drier than summer
        — this is why irrigation there runs on center pivots at all."""
        days = self.make(BARREIRAS_MATOPIBA, seed=5).generate(365 * 3)
        winter_rain = sum(d.rain_mm for d in days if 152 <= d.day_of_year <= 243)
        summer_rain = sum(d.rain_mm for d in days if d.day_of_year <= 59 or d.day_of_year >= 335)
        assert winter_rain < summer_rain / 4

    def test_cartagena_semiarid(self):
        """Cartagena's annual rainfall should be semi-arid (< 400 mm/yr)."""
        days = self.make(CARTAGENA, seed=7).generate(365 * 3)
        annual = sum(d.rain_mm for d in days) / 3
        assert annual < 400.0

    def test_emilia_wetter_than_cartagena(self):
        emilia = sum(d.rain_mm for d in self.make(EMILIA_ROMAGNA, seed=11).generate(365 * 2))
        cartagena = sum(d.rain_mm for d in self.make(CARTAGENA, seed=11).generate(365 * 2))
        assert emilia > cartagena * 1.5

    def test_pinhal_winter_dry_enough_for_winter_harvest(self):
        """Guaspari moves harvest to the dry winter; winter must be dry."""
        days = self.make(PINHAL, seed=13).generate(365 * 3)
        winter_rain = sum(d.rain_mm for d in days if 152 <= d.day_of_year <= 243) / 3
        assert winter_rain < 150.0

    def test_physical_bounds(self):
        for day in self.make(PINHAL, seed=17).generate(730):
            assert -20 < day.tmin_c < 45
            assert 0 <= day.rain_mm < 300
            assert 20 <= day.rh_mean_pct <= 100
            assert day.wind_ms > 0
            assert day.solar_mj_m2 > 0
            assert 0 <= day.et0_mm < 15
