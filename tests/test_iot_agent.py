"""Integration tests: device → MQTT → IoT agent → context broker → command loop."""

import pytest

from repro.agents import DeviceProvision, IoTAgent
from repro.context import ContextBroker
from repro.devices import DeviceConfig, SoilMoistureProbe, Valve
from repro.mqtt import MqttBroker, MqttClient
from repro.network import Network, RadioModel
from repro.physics import Field, LOAM, SOYBEAN
from repro.simkernel import Simulator


def lossless():
    return RadioModel("t", latency_s=0.01, bandwidth_bps=1e6, loss_rate=0.0)


class Stack:
    """Full south-to-north stack for one farm."""

    def __init__(self, seed=1, farm="farmA"):
        self.sim = Simulator(seed=seed)
        self.net = Network(self.sim)
        self.mqtt = MqttBroker(self.sim, "broker")
        self.net.add_node(self.mqtt)
        self.context = ContextBroker(self.sim)
        self.agent = IoTAgent(self.sim, self.net, "iota", "broker", self.context, farm)
        self.net.connect("iota", "broker", lossless())
        self.agent.start()
        self.field = Field("f", 2, 2, LOAM, SOYBEAN, self.sim.rng.stream("field"))
        self.farm = farm

    def add_device(self, cls, config, provision=True, **kwargs):
        device = cls(self.sim, self.net, config, "broker", **kwargs)
        self.net.connect(device.client.address, "broker", lossless())
        device.start()
        if provision:
            self.agent.provision(
                DeviceProvision(
                    device_id=config.device_id,
                    api_key=config.api_key,
                    entity_id=f"urn:{config.device_type}:{config.device_id}",
                    entity_type=config.device_type,
                    commands=("open", "close") if cls is Valve else (),
                )
            )
        return device


class TestMeasurePath:
    def test_probe_updates_entity(self):
        stack = Stack()
        zone = stack.field.zone(0, 0)
        stack.add_device(
            SoilMoistureProbe,
            DeviceConfig("probe1", "farmA", "SoilProbe", report_interval_s=300),
            zone=zone,
        )
        stack.sim.run(until=3600.0)
        entity = stack.context.get_entity("urn:SoilProbe:probe1")
        assert entity.get("soilMoisture") == pytest.approx(zone.theta, abs=0.05)
        assert entity.get("zone") == zone.zone_id
        assert stack.agent.stats.measures_processed >= 10

    def test_measure_metadata_carries_device(self):
        stack = Stack()
        stack.add_device(
            SoilMoistureProbe,
            DeviceConfig("probe1", "farmA", "SoilProbe", report_interval_s=300),
            zone=stack.field.zone(0, 0),
        )
        stack.sim.run(until=1200.0)
        attribute = stack.context.get_entity("urn:SoilProbe:probe1").attribute("soilMoisture")
        assert attribute.metadata["sourceDevice"] == "probe1"

    def test_unprovisioned_device_dropped(self):
        stack = Stack()
        stack.add_device(
            SoilMoistureProbe,
            DeviceConfig("rogue", "farmA", "SoilProbe", report_interval_s=300),
            provision=False,
            zone=stack.field.zone(0, 0),
        )
        stack.sim.run(until=3600.0)
        assert not stack.context.has_entity("urn:SoilProbe:rogue")
        assert stack.agent.stats.measures_dropped_unprovisioned >= 10

    def test_attribute_mapping(self):
        stack = Stack()
        device = stack.add_device(
            SoilMoistureProbe,
            DeviceConfig("probe2", "farmA", "SoilProbe", report_interval_s=300),
            provision=False,
            zone=stack.field.zone(0, 1),
        )
        stack.agent.provision(
            DeviceProvision(
                device_id="probe2",
                api_key="",
                entity_id="urn:zone:0-1",
                entity_type="AgriParcel",
                attribute_map={"soilMoisture": "soilMoistureVwc"},
            )
        )
        stack.sim.run(until=1200.0)
        entity = stack.context.get_entity("urn:zone:0-1")
        assert entity.get("soilMoistureVwc") is not None
        assert entity.get("soilMoisture") is None

    def test_garbage_payload_counted(self):
        stack = Stack()
        stack.agent.provision(
            DeviceProvision("fuzzer", "", "urn:x", "X")
        )
        attacker = MqttClient(stack.sim, "atk", "broker")
        stack.net.add_node(attacker)
        stack.net.connect("atk", "broker", lossless())
        attacker.connect()
        stack.sim.run(until=1.0)
        attacker.publish("swamp/farmA/attrs/fuzzer", b"\xff\xfenot-json")
        stack.sim.run(until=2.0)
        assert stack.agent.stats.decode_failures == 1


class TestCommandPath:
    def test_command_roundtrip_with_status(self):
        stack = Stack()
        zone = stack.field.zone(0, 0)
        valve = stack.add_device(
            Valve, DeviceConfig("v1", "farmA", "Valve", report_interval_s=600),
            zone=zone, rate_mm_h=10.0,
        )
        stack.sim.run(until=5.0)
        assert stack.agent.send_command("v1", {"cmd": "open", "duration_s": 1800})
        entity = stack.context.get_entity("urn:Valve:v1")
        assert entity.get("open_status") == "PENDING"  # ack not yet delivered
        stack.sim.run(until=7200.0)
        assert entity.get("open_status") == "OK"
        assert valve.total_applied_mm > 4.0

    def test_command_to_unknown_device_fails(self):
        stack = Stack()
        assert not stack.agent.send_command("ghost", {"cmd": "open"})

    def test_command_error_result_recorded(self):
        stack = Stack()
        stack.add_device(
            Valve, DeviceConfig("v2", "farmA", "Valve"), zone=stack.field.zone(0, 0)
        )
        stack.sim.run(until=5.0)
        stack.agent.send_command("v2", {"cmd": "open"})  # missing args
        stack.sim.run(until=30.0)
        entity = stack.context.get_entity("urn:Valve:v2")
        assert entity.get("open_status") == "bad-arguments"

    def test_provision_materializes_command_status(self):
        stack = Stack()
        stack.add_device(
            Valve, DeviceConfig("v3", "farmA", "Valve"), zone=stack.field.zone(0, 0)
        )
        entity = stack.context.get_entity("urn:Valve:v3")
        assert entity.get("open_status") == "UNKNOWN"
        assert entity.get("close_status") == "UNKNOWN"
