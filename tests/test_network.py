"""Tests for the network substrate: links, routing, faults, taps."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import (
    ETHERNET_LAN,
    LORA_FIELD,
    Link,
    LinkState,
    Network,
    NetworkNode,
    RadioModel,
    WAN_BACKHAUL,
)
from repro.simkernel import Simulator


class Sink(NetworkNode):
    """Node that records what it receives."""

    def __init__(self, address):
        super().__init__(address)
        self.received = []

    def on_packet(self, packet):
        self.received.append(packet)


def lossless(name="test", latency=0.01, bandwidth=1e6, jitter=0.0):
    return RadioModel(name=name, latency_s=latency, bandwidth_bps=bandwidth, loss_rate=0.0, jitter_s=jitter)


def make_pair(sim, model=None):
    net = Network(sim)
    a, b = Sink("a"), Sink("b")
    net.add_node(a)
    net.add_node(b)
    net.connect("a", "b", model or lossless())
    return net, a, b


class TestRadioModel:
    def test_serialization_delay(self):
        m = lossless(bandwidth=8000.0)
        assert m.serialization_delay(1000) == pytest.approx(1.0)

    def test_tx_energy(self):
        m = RadioModel("r", 0.1, 1000.0, 0.0, tx_energy_j_per_byte=0.002)
        assert m.tx_energy(500) == pytest.approx(1.0)

    def test_invalid_loss_rejected(self):
        with pytest.raises(ValueError):
            RadioModel("bad", 0.1, 1000.0, 1.0)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            RadioModel("bad", 0.1, 0.0, 0.1)

    def test_profiles_sane_ordering(self):
        # Field radio is slower and lossier than LAN; energy cost higher.
        assert LORA_FIELD.bandwidth_bps < WAN_BACKHAUL.bandwidth_bps < ETHERNET_LAN.bandwidth_bps
        assert LORA_FIELD.loss_rate > ETHERNET_LAN.loss_rate
        assert LORA_FIELD.tx_energy_j_per_byte > 0


class TestBasicDelivery:
    def test_packet_delivered_with_latency(self):
        sim = Simulator(seed=1)
        net, a, b = make_pair(sim, lossless(latency=0.5, bandwidth=8e6))
        a.send("b", {"v": 1}, size_bytes=100, flow="test")
        sim.run()
        assert len(b.received) == 1
        pkt = b.received[0]
        assert pkt.payload == {"v": 1}
        # latency + serialization (100B at 8Mbps = 0.1ms)
        assert sim.now == pytest.approx(0.5 + 100 * 8 / 8e6)

    def test_counters_updated(self):
        sim = Simulator(seed=1)
        net, a, b = make_pair(sim)
        a.send("b", "x", 50)
        sim.run()
        assert a.tx_packets == 1 and a.tx_bytes == 50
        assert b.rx_packets == 1 and b.rx_bytes == 50

    def test_detached_node_send_returns_none(self):
        node = Sink("x")
        assert node.send("y", "p", 10) is None

    def test_unroutable_returns_none(self):
        sim = Simulator(seed=1)
        net = Network(sim)
        a = net.add_node(Sink("a"))
        net.add_node(Sink("b"))  # no link
        assert a.send("b", "p", 10) is None

    def test_duplicate_address_rejected(self):
        net = Network(Simulator())
        net.add_node(Sink("a"))
        with pytest.raises(ValueError):
            net.add_node(Sink("a"))

    def test_connect_unknown_node_rejected(self):
        net = Network(Simulator())
        net.add_node(Sink("a"))
        with pytest.raises(KeyError):
            net.connect("a", "ghost", lossless())


class TestMultiHop:
    def make_chain(self, sim, *names):
        net = Network(sim)
        nodes = [net.add_node(Sink(n)) for n in names]
        for x, y in zip(names, names[1:]):
            net.connect(x, y, lossless())
        return net, nodes

    def test_routes_through_intermediate(self):
        sim = Simulator(seed=1)
        net, (a, m, b) = self.make_chain(sim, "a", "m", "b")
        assert net.route_of("a", "b") == ["a", "m", "b"]
        a.send("b", "hello", 20)
        sim.run()
        assert [p.payload for p in b.received] == ["hello"]
        assert m.received == []  # forwarded, not delivered, at intermediate

    def test_reroute_around_partition(self):
        sim = Simulator(seed=1)
        net = Network(sim)
        for n in ("a", "b", "c", "d"):
            net.add_node(Sink(n))
        # Square: a-b-d and a-c-d
        net.connect("a", "b", lossless())
        net.connect("b", "d", lossless())
        net.connect("a", "c", lossless())
        net.connect("c", "d", lossless())
        assert net.route_of("a", "d") == ["a", "b", "d"]  # alphabetical tie-break
        net.partition("a", "b")
        assert net.route_of("a", "d") == ["a", "c", "d"]

    def test_route_to_self(self):
        sim = Simulator(seed=1)
        net, _ = self.make_chain(sim, "a", "b")
        assert net.route_of("a", "a") == ["a"]

    def test_remove_node_clears_links(self):
        sim = Simulator(seed=1)
        net, _ = self.make_chain(sim, "a", "b", "c")
        net.remove_node("b")
        assert net.route_of("a", "c") is None


class TestFaults:
    def test_partition_blocks_traffic(self):
        sim = Simulator(seed=1)
        net, a, b = make_pair(sim)
        net.partition("a", "b")
        a.send("b", "x", 10)
        sim.run()
        assert b.received == []

    def test_heal_restores_traffic(self):
        sim = Simulator(seed=1)
        net, a, b = make_pair(sim)
        net.partition("a", "b")
        net.heal("a", "b")
        a.send("b", "x", 10)
        sim.run()
        assert len(b.received) == 1

    def test_partition_mid_flight_drops(self):
        sim = Simulator(seed=1)
        net, a, b = make_pair(sim, lossless(latency=1.0))
        a.send("b", "x", 10)
        sim.schedule(0.5, lambda: net.partition("a", "b"))
        sim.run()
        assert b.received == []

    def test_jamming_loses_most_packets(self):
        sim = Simulator(seed=7)
        net, a, b = make_pair(sim)
        net.jam("a", "b", loss=0.95)
        for _ in range(200):
            a.send("b", "x", 10)
        sim.run()
        assert len(b.received) < 30

    def test_unjam_restores(self):
        sim = Simulator(seed=7)
        net, a, b = make_pair(sim)
        net.jam("a", "b", loss=0.95)
        net.unjam("a", "b")
        for _ in range(50):
            a.send("b", "x", 10)
        sim.run()
        assert len(b.received) == 50

    def test_lossy_link_statistics(self):
        sim = Simulator(seed=3)
        model = RadioModel("lossy", 0.001, 1e6, 0.3)
        net, a, b = make_pair(sim, model)
        for _ in range(1000):
            a.send("b", "x", 10)
        sim.run()
        ratio = len(b.received) / 1000
        assert 0.6 < ratio < 0.8  # ~0.7 expected

    def test_firewall_blocks_flow(self):
        sim = Simulator(seed=1)
        net, a, b = make_pair(sim)
        net.add_firewall(lambda pkt, s, d: pkt.flow != "attack")
        a.send("b", "bad", 10, flow="attack")
        a.send("b", "good", 10, flow="normal")
        sim.run()
        assert [p.payload for p in b.received] == ["good"]

    def test_firewall_removal(self):
        sim = Simulator(seed=1)
        net, a, b = make_pair(sim)
        rule = lambda pkt, s, d: False
        net.add_firewall(rule)
        net.remove_firewall(rule)
        a.send("b", "x", 10)
        sim.run()
        assert len(b.received) == 1


class TestQueueing:
    def test_backlog_tail_drop_under_flood(self):
        sim = Simulator(seed=1)
        # 8 kbps link: 1000-byte packet takes 1s to serialize.
        model = lossless(bandwidth=8000.0, latency=0.0)
        net, a, b = make_pair(sim, model)
        link = net.link("a", "b")
        link.max_backlog_s = 3.0
        for _ in range(20):
            a.send("b", "x", 1000)
        sim.run()
        # Only ~4 packets fit (backlog limit 3s + one in flight).
        assert link.stats.dropped_queue > 0
        assert len(b.received) < 10

    def test_serialization_spaces_arrivals(self):
        sim = Simulator(seed=1)
        model = lossless(bandwidth=8000.0, latency=0.0)
        net, a, b = make_pair(sim, model)
        times = []
        orig = b.on_packet
        b.on_packet = lambda p: times.append(sim.now)
        a.send("b", "1", 1000)
        a.send("b", "2", 1000)
        sim.run()
        assert times == pytest.approx([1.0, 2.0])

    def test_delivery_ratio_property(self):
        sim = Simulator(seed=1)
        net, a, b = make_pair(sim)
        link = net.link("a", "b")
        assert link.stats.delivery_ratio == 1.0  # no traffic yet
        a.send("b", "x", 10)
        sim.run()
        assert link.stats.delivery_ratio == 1.0


class TestTaps:
    def test_tap_sees_plaintext(self):
        sim = Simulator(seed=1)
        net, a, b = make_pair(sim)
        seen = []
        net.link("a", "b").add_tap(lambda p: seen.append(p.observable()))
        a.send("b", {"secret": 1}, 30)
        sim.run()
        assert seen == [{"secret": 1}]

    def test_tap_sees_only_ciphertext_when_encrypted(self):
        sim = Simulator(seed=1)
        net, a, b = make_pair(sim)
        seen = []
        net.link("a", "b").add_tap(lambda p: seen.append(p.observable()))
        a.send("b", {"secret": 1}, 30, wire_bytes=b"\xde\xad")
        sim.run()
        assert seen == [b"\xde\xad"]
        # Receiver still gets the payload object (decryption is modeled
        # at the secure-channel layer).
        assert b.received[0].payload == {"secret": 1}

    def test_tap_removal(self):
        sim = Simulator(seed=1)
        net, a, b = make_pair(sim)
        seen = []
        tap = lambda p: seen.append(p)
        link = net.link("a", "b")
        link.add_tap(tap)
        link.remove_tap(tap)
        a.send("b", "x", 10)
        sim.run()
        assert seen == []


class TestNetworkStats:
    def test_total_stats_aggregates(self):
        sim = Simulator(seed=1)
        net, a, b = make_pair(sim)
        for _ in range(5):
            a.send("b", "x", 10)
        sim.run()
        totals = net.total_stats()
        assert totals["sent"] == 5
        assert totals["delivered"] == 5

    @given(st.integers(min_value=1, max_value=60))
    @settings(max_examples=20, deadline=None)
    def test_property_lossless_delivers_everything(self, n):
        sim = Simulator(seed=n)
        net, a, b = make_pair(sim)
        for i in range(n):
            a.send("b", i, 10)
        sim.run()
        assert [p.payload for p in b.received] == list(range(n))


class TestDutyCycle:
    def make_duty_pair(self, duty=0.01, bandwidth=5500.0):
        sim = Simulator(seed=9)
        net = Network(sim)
        a, b = Sink("a"), Sink("b")
        net.add_node(a)
        net.add_node(b)
        model = RadioModel("lora", latency_s=0.1, bandwidth_bps=bandwidth,
                           loss_rate=0.0, duty_cycle=duty)
        net.connect("a", "b", model)
        return sim, net, a, b

    def test_validation(self):
        with pytest.raises(ValueError):
            RadioModel("bad", 0.1, 1000.0, 0.0, duty_cycle=0.0)
        with pytest.raises(ValueError):
            RadioModel("bad", 0.1, 1000.0, 0.0, duty_cycle=1.5)

    def test_normal_telemetry_unaffected(self):
        """A probe's 2 reports/hour fit easily inside a 1% duty cycle."""
        sim, net, a, b = self.make_duty_pair()

        def reporter():
            while True:
                a.send("b", "report", 70)
                yield 1800.0

        sim.spawn(reporter(), "reporter")
        sim.run(until=6 * 3600.0)
        assert len(b.received) == 12
        assert net.link("a", "b").stats.dropped_duty == 0

    def test_flood_self_limited_by_radio(self):
        """A field-node flood is throttled by its own radio's airtime
        budget — DoS *from* LoRa devices is regulation-limited."""
        sim, net, a, b = self.make_duty_pair()

        def flooder():
            while True:
                a.send("b", "junk", 600)
                yield 0.1

        sim.spawn(flooder(), "flooder")
        sim.run(until=3600.0)
        link = net.link("a", "b")
        assert link.stats.dropped_duty > 0
        # Delivered airtime stays within ~1% of the hour.
        airtime_per_frame = 600 * 8 / 5500.0
        assert len(b.received) * airtime_per_frame <= 0.011 * 3600.0

    def test_budget_refreshes_each_window(self):
        sim, net, a, b = self.make_duty_pair(duty=0.001)
        # One big frame nearly fills the 3.6 s budget (600B ≈ 0.87 s).
        for _ in range(10):
            a.send("b", "x", 600)
        sim.run(until=10.0)
        first_window = len(b.received)
        assert first_window < 10
        # Next hour: budget refreshed, more frames pass.
        sim.schedule_at(3601.0, lambda: [a.send("b", "y", 600) for _ in range(10)])
        sim.run(until=3700.0)
        assert len(b.received) > first_window

    def test_lora_profile_has_one_percent_duty(self):
        assert LORA_FIELD.duty_cycle == pytest.approx(0.01)

    def test_window_origin_advances_by_whole_windows(self):
        """Regression: the duty window must roll over on fixed hour
        boundaries, not re-anchor at whichever packet happens to arrive
        after the window lapsed.  The old code set
        ``_duty_window_start = now``, so a burst at t=4000 pushed the next
        refresh to t=7600 — starving a burst at t=7300 that the fixed
        window (7200–10800) should admit — and then wrongly admitted a
        burst at t=7650 against the drifted budget."""
        sim, net, a, b = self.make_duty_pair(duty=0.001)
        link = net.link("a", "b")
        link.max_backlog_s = 100.0  # isolate duty accounting from queueing
        # 600 B at 5500 bps ≈ 0.873 s airtime; budget 3.6 s ≈ 4 frames/window.
        for at_s, marker in ((4000.0, "w1"), (7300.0, "w2"), (7650.0, "w3")):
            sim.schedule_at(
                at_s, lambda m=marker: [a.send("b", m, 600) for _ in range(5)]
            )
        sim.run(until=8000.0)
        payloads = [p.payload for p in b.received]
        # Window 3600–7200 admits 4 of the w1 burst; window 7200–10800 has
        # its budget consumed by w2, so every w3 frame is duty-dropped.
        assert payloads == ["w1"] * 4 + ["w2"] * 4
        assert link.stats.dropped_duty == 7


class TestFifoOrdering:
    def test_high_jitter_cannot_reorder_a_fifo_link(self):
        """Regression: per-packet jitter used to let a later frame overtake
        an earlier one on the same link.  Arrivals must stay monotone."""
        sim = Simulator(seed=5)
        model = RadioModel("jittery", latency_s=0.01, bandwidth_bps=1e6,
                           loss_rate=0.0, jitter_s=5.0)
        net, a, b = make_pair(sim, model)
        arrivals = []
        original = b.on_packet
        b.on_packet = lambda p: (arrivals.append(sim.now), original(p))
        for i in range(50):
            a.send("b", i, 100)
        sim.run()
        assert [p.payload for p in b.received] == list(range(50))
        assert arrivals == sorted(arrivals)

    def test_jitter_still_delays_beyond_nominal_latency(self):
        sim = Simulator(seed=5)
        model = RadioModel("jittery", latency_s=0.01, bandwidth_bps=1e6,
                           loss_rate=0.0, jitter_s=5.0)
        net, a, b = make_pair(sim, model)
        a.send("b", "x", 100)
        sim.run()
        nominal = 0.01 + 100 * 8 / 1e6
        assert sim.now >= nominal
