"""The unified typed history read API and its deprecation shims."""

import warnings

import pytest

from repro.context import (
    ContextBroker,
    HistoryQuery,
    HistoryResult,
    QueryError,
    ShortTermHistory,
)
from repro.context import history as history_module
from repro.context.history import MINUTE_S
from repro.simkernel import Simulator

EID = "urn:AgriParcel:demo:0-0"
ATTR = "soilMoisture"


def make_history(**kwargs):
    sim = Simulator(seed=7)
    broker = ContextBroker(sim)
    history = ShortTermHistory(broker, **kwargs)
    broker.create_entity(EID, "AgriParcel")
    return sim, broker, history


def feed(sim, broker, n, dt=10.0):
    for i in range(n):
        sim.run_until(sim.now + dt)
        broker.update_attributes(EID, {ATTR: 0.1 * (i % 13)})


class TestQueryShapes:
    def test_kind_inference(self):
        assert HistoryQuery(EID, ATTR).kind == "raw"
        assert HistoryQuery(EID, ATTR, last_n=5).kind == "lastn"
        assert HistoryQuery(EID, ATTR, period_s=MINUTE_S).kind == "rollup"
        assert HistoryQuery(EID, ATTR, aggregate=True).kind == "aggregate"

    def test_effective_method_defaults_to_mean(self):
        assert HistoryQuery(EID, ATTR, period_s=60.0).effective_method == "mean"
        assert HistoryQuery(
            EID, ATTR, period_s=60.0, method="sum").effective_method == "sum"

    @pytest.mark.parametrize("kwargs,match", [
        (dict(last_n=3, period_s=60.0), "cannot combine"),
        (dict(last_n=3, aggregate=True), "cannot combine"),
        (dict(aggregate=True, period_s=60.0), "cannot combine"),
        (dict(last_n=0), "must be >= 1"),
        (dict(period_s=0.0), "must be positive"),
        (dict(period_s=-5.0), "must be positive"),
        (dict(method="mean"), "only applies to rollup"),
        (dict(period_s=60.0, method="median"), "unknown rollup method"),
    ])
    def test_invalid_shapes_raise(self, kwargs, match):
        _sim, _broker, history = make_history(rollup_periods=(MINUTE_S,))
        with pytest.raises(QueryError, match=match):
            history.read(HistoryQuery(EID, ATTR, **kwargs))

    def test_result_carries_query_and_provenance(self):
        sim, broker, history = make_history()
        feed(sim, broker, 4)
        query = HistoryQuery(EID, ATTR)
        result = history.read(query)
        assert isinstance(result, HistoryResult)
        assert result.query is query
        assert result.kind == "raw"
        assert result.source == "memory"
        assert result.scanned_samples == 4


class TestSources:
    def test_columnar_without_backend_raises(self):
        _sim, _broker, history = make_history()
        with pytest.raises(QueryError, match="no columnar backend"):
            history.read(HistoryQuery(EID, ATTR), source="columnar")

    def test_unknown_source_raises(self):
        _sim, _broker, history = make_history()
        with pytest.raises(QueryError, match="unknown history source"):
            history.read(HistoryQuery(EID, ATTR), source="disk")

    def test_auto_prefers_bound_columnar(self):
        sim, broker, history = make_history()
        feed(sim, broker, 3)

        class FakeReader:
            def read(self, query):
                return HistoryResult(query, query.kind, "columnar",
                                     rows=[(0.0, 42.0)])

        history.bind_columnar(FakeReader())
        assert history.columnar is not None
        auto = history.read(HistoryQuery(EID, ATTR))
        assert auto.source == "columnar" and auto.rows == [(0.0, 42.0)]
        # Forcing memory still reads the rings.
        mem = history.read(HistoryQuery(EID, ATTR), source="memory")
        assert mem.source == "memory" and len(mem.rows) == 3


class TestReadEquivalence:
    """Each shim answers exactly what the typed read answers."""

    def test_all_shapes(self):
        sim, broker, history = make_history(rollup_periods=(MINUTE_S,))
        feed(sim, broker, 30)
        read = lambda **kw: history.read(HistoryQuery(EID, ATTR, **kw),
                                         source="memory")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert history.series(EID, ATTR) == read().rows
            assert history.last_n(EID, ATTR, 5) == read(last_n=5).rows
            assert history.range(EID, ATTR, since=50.0, until=150.0) == \
                read(since=50.0, until=150.0).rows
            assert history.aggregate(EID, ATTR) == read(aggregate=True).stats
            assert history.rollup(EID, ATTR, MINUTE_S, method="sum") == \
                read(period_s=MINUTE_S, method="sum").rows
            assert history.downsample(EID, ATTR, MINUTE_S) == \
                read(period_s=MINUTE_S, method="mean").rows


class TestDeprecationShims:
    @pytest.mark.parametrize("name,call", [
        ("series", lambda h: h.series(EID, ATTR)),
        ("last_n", lambda h: h.last_n(EID, ATTR, 2)),
        ("range", lambda h: h.range(EID, ATTR)),
        ("aggregate", lambda h: h.aggregate(EID, ATTR)),
        ("rollup", lambda h: h.rollup(EID, ATTR, MINUTE_S)),
        ("downsample", lambda h: h.downsample(EID, ATTR, MINUTE_S)),
    ])
    def test_warns_once_then_stays_quiet(self, name, call):
        _sim, _broker, history = make_history(rollup_periods=(MINUTE_S,))
        qualified = f"ShortTermHistory.{name}"
        history_module._DEPRECATION_WARNED.discard(qualified)
        with pytest.warns(DeprecationWarning, match=f"{qualified} is deprecated"):
            call(history)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            call(history)  # second call must not warn again

    def test_attach_store_shim_still_wires_the_sink(self):
        _sim, broker, history = make_history()
        seen = []

        class Sink:
            def on_sample(self, entity_id, attr, t, v):
                seen.append((entity_id, attr, t, v))

        history_module._DEPRECATION_WARNED.discard(
            "ShortTermHistory.attach_store")
        with pytest.warns(DeprecationWarning, match="attach_store is deprecated"):
            history.attach_store(Sink())
        broker.update_attributes(EID, {ATTR: 0.5})
        assert len(seen) == 1 and seen[0][:2] == (EID, ATTR)
