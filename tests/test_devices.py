"""Tests for device models: telemetry, commands, battery, failures, actuation."""

import pytest

from repro.devices import (
    Battery,
    CenterPivot,
    DeviceConfig,
    Drone,
    Pump,
    SoilMoistureProbe,
    Valve,
    WaterFlowMeter,
    WeatherStation,
    decode_payload,
    encode_payload,
)
from repro.mqtt import MqttBroker, MqttClient
from repro.network import Network, RadioModel
from repro.physics import Field, LOAM, SOYBEAN
from repro.physics.weather import EMILIA_ROMAGNA, WeatherGenerator
from repro.simkernel import Simulator
from repro.simkernel.clock import HOUR


def lossless():
    return RadioModel("t", latency_s=0.01, bandwidth_bps=1e6, loss_rate=0.0)


class Harness:
    """Sim + network + broker + an observer subscribed to everything."""

    def __init__(self, seed=1):
        self.sim = Simulator(seed=seed)
        self.net = Network(self.sim)
        self.broker = MqttBroker(self.sim, "broker")
        self.net.add_node(self.broker)
        self.observer = MqttClient(self.sim, "observer", "broker")
        self.net.add_node(self.observer)
        self.net.connect("observer", "broker", lossless())
        self.messages = []
        self.observer.connect()
        self.observer.subscribe(
            "swamp/#", handler=lambda t, p, q, r: self.messages.append((t, decode_payload(p)))
        )
        self.commander = MqttClient(self.sim, "commander", "broker")
        self.net.add_node(self.commander)
        self.net.connect("commander", "broker", lossless())
        self.commander.connect()
        self.field = Field("f", 2, 2, LOAM, SOYBEAN, self.sim.rng.stream("field"))

    def add_device(self, cls, config, **kwargs):
        device = cls(self.sim, self.net, config, "broker", **kwargs)
        self.net.connect(device.client.address, "broker", lossless())
        device.start()
        return device

    def send_command(self, device, command):
        self.commander.publish(device.command_topic, encode_payload(command), qos=1)

    def telemetry(self, device_id):
        return [m for t, m in self.messages if t.endswith(f"attrs/{device_id}") and m]


class TestCodec:
    def test_roundtrip(self):
        data = {"a": 1, "b": [1, 2], "c": "x"}
        assert decode_payload(encode_payload(data)) == data

    def test_garbage_returns_none(self):
        assert decode_payload(b"\xff\xfe") is None
        assert decode_payload(b"not json") is None

    def test_non_dict_rejected(self):
        assert decode_payload(b"[1,2]") is None

    def test_compact_encoding(self):
        assert b" " not in encode_payload({"a": 1, "b": 2})


class TestBattery:
    def test_draw_and_deplete(self):
        battery = Battery(10.0)
        assert battery.draw(4.0, "radio")
        assert battery.fraction_remaining == pytest.approx(0.6)
        assert not battery.draw(7.0, "radio")
        assert battery.depleted
        assert battery.remaining_j == 0.0

    def test_category_accounting(self):
        battery = Battery(100.0)
        battery.draw(10.0, "radio")
        battery.draw(5.0, "radio")
        battery.draw(2.0, "cpu")
        assert battery.drawn("radio") == 15.0
        assert battery.total_drawn() == 17.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            Battery(0.0)
        with pytest.raises(ValueError):
            Battery(10.0).draw(-1.0)


class TestSoilProbe:
    def test_reports_zone_moisture(self):
        h = Harness()
        zone = h.field.zone(0, 0)
        probe = h.add_device(
            SoilMoistureProbe,
            DeviceConfig("probe1", "farmA", "soil-probe", report_interval_s=600),
            zone=zone,
        )
        h.sim.run(until=3600.0)
        reports = h.telemetry("probe1")
        assert len(reports) >= 4
        for report in reports:
            assert report["soilMoisture"] == pytest.approx(zone.theta, abs=0.05)
            assert report["zone"] == zone.zone_id
            assert "ts" in report

    def test_tamper_hook_mutates_reading(self):
        h = Harness()
        probe = h.add_device(
            SoilMoistureProbe,
            DeviceConfig("probe1", "farmA", "soil-probe", report_interval_s=600),
            zone=h.field.zone(0, 0),
        )
        probe.tamper_hooks.append(lambda m: {**m, "soilMoisture": 0.999})
        h.sim.run(until=2000.0)
        assert all(r["soilMoisture"] == 0.999 for r in h.telemetry("probe1"))

    def test_battery_death_stops_reports(self):
        h = Harness()
        probe = h.add_device(
            SoilMoistureProbe,
            DeviceConfig("probe1", "farmA", "soil-probe",
                         report_interval_s=600, battery_capacity_j=0.5),
            zone=h.field.zone(0, 0),
        )
        h.sim.run(until=4 * 3600.0)
        assert probe.dead
        count_at_death = len(h.telemetry("probe1"))
        assert count_at_death <= 6  # ~0.14 J per report on a 0.5 J battery
        h.sim.run(until=8 * 3600.0)
        assert len(h.telemetry("probe1")) == count_at_death

    def test_transient_failure_pauses_reports(self):
        h = Harness()
        probe = h.add_device(
            SoilMoistureProbe,
            DeviceConfig("probe1", "farmA", "soil-probe", report_interval_s=600),
            zone=h.field.zone(0, 0),
        )
        probe.failed = True
        h.sim.run(until=3600.0)
        assert h.telemetry("probe1") == []
        probe.failed = False
        h.sim.run(until=7200.0)
        assert len(h.telemetry("probe1")) >= 3


class TestDeviceLifecycle:
    """stop() must kill *every* loop the device spawned.

    Regression: start() used to discard the `_failure_loop` handle, so a
    stopped device kept flipping `failed` and emitting trace events
    forever.
    """

    def _failure_traces(self, h, device_id):
        return [
            r
            for r in h.sim.trace
            if r.category == "device"
            and r.message in ("transient failure", "repaired")
            and r.data.get("device") == device_id
        ]

    def test_stop_kills_failure_loop(self):
        h = Harness()
        probe = h.add_device(
            SoilMoistureProbe,
            DeviceConfig(
                "probe1", "farmA", "soil-probe",
                report_interval_s=600, mtbf_s=1800.0, repair_time_s=600.0,
            ),
            zone=h.field.zone(0, 0),
        )
        assert probe._failure_process is not None and probe._failure_process.alive
        h.sim.run(until=2 * 3600.0)
        probe.stop()
        assert probe._process is None and probe._failure_process is None
        failures_at_stop = len(self._failure_traces(h, "probe1"))
        reports_at_stop = len(h.telemetry("probe1"))
        probe.failed = False
        h.sim.run(until=24 * 3600.0)
        assert len(self._failure_traces(h, "probe1")) == failures_at_stop
        assert len(h.telemetry("probe1")) == reports_at_stop
        assert probe.failed is False

    def test_stop_without_failure_loop(self):
        h = Harness()
        probe = h.add_device(
            SoilMoistureProbe,
            DeviceConfig("probe1", "farmA", "soil-probe", report_interval_s=600),
            zone=h.field.zone(0, 0),
        )
        h.sim.run(until=3600.0)
        probe.stop()  # no failure loop configured: must not blow up
        count = len(h.telemetry("probe1"))
        h.sim.run(until=2 * 3600.0)
        assert len(h.telemetry("probe1")) == count

    def test_stop_is_idempotent(self):
        h = Harness()
        probe = h.add_device(
            SoilMoistureProbe,
            DeviceConfig("probe1", "farmA", "soil-probe",
                         report_interval_s=600, mtbf_s=900.0),
            zone=h.field.zone(0, 0),
        )
        h.sim.run(until=1800.0)
        probe.stop()
        probe.stop()


class TestWeatherStation:
    def test_reports_weather(self):
        h = Harness()
        station = h.add_device(
            WeatherStation,
            DeviceConfig("ws1", "farmA", "weather-station", report_interval_s=900),
        )
        gen = WeatherGenerator(EMILIA_ROMAGNA, h.sim.rng.stream("wx"))
        station.today = gen.step()
        h.sim.run(until=3600.0)
        reports = h.telemetry("ws1")
        assert reports
        for key in ("tMin", "tMax", "rh", "wind", "solar", "rain", "et0"):
            assert key in reports[0]

    def test_rh_clamped_to_physical_range(self):
        # Instrument noise on a near-saturated day must not report >100%.
        from repro.physics.weather import DailyWeather

        h = Harness()
        station = h.add_device(
            WeatherStation,
            DeviceConfig("ws1", "farmA", "weather-station", report_interval_s=300),
        )
        station.today = DailyWeather(
            day_of_year=180, day_index=0, tmin_c=22.0, tmax_c=30.0,
            rh_mean_pct=99.9, wind_ms=0.01, solar_mj_m2=0.1,
            rain_mm=12.0, et0_mm=3.1,
        )
        h.sim.run(until=24 * 3600.0)
        reports = h.telemetry("ws1")
        assert len(reports) >= 50
        assert all(0.0 <= r["rh"] <= 100.0 for r in reports)
        assert any(r["rh"] == 100.0 for r in reports)  # noise did clip
        assert all(r["wind"] >= 0.0 and r["solar"] >= 0.0 for r in reports)

    def test_no_reports_before_first_day(self):
        h = Harness()
        h.add_device(
            WeatherStation,
            DeviceConfig("ws1", "farmA", "weather-station", report_interval_s=900),
        )
        h.sim.run(until=3600.0)
        assert h.telemetry("ws1") == []


class TestFlowMeter:
    def test_totalizes_and_rates(self):
        h = Harness()
        meter = h.add_device(
            WaterFlowMeter,
            DeviceConfig("fm1", "farmA", "flow-meter", report_interval_s=600),
        )
        meter.add_flow(5.0)
        h.sim.run(until=3600.0)
        meter.add_flow(2.5)
        h.sim.run(until=7200.0)
        reports = h.telemetry("fm1")
        assert reports[-1]["totalFlow"] == pytest.approx(7.5)

    def test_negative_flow_rejected(self):
        h = Harness()
        meter = h.add_device(
            WaterFlowMeter, DeviceConfig("fm1", "farmA", "flow-meter")
        )
        with pytest.raises(ValueError):
            meter.add_flow(-1.0)


class TestValve:
    def test_open_command_applies_water(self):
        h = Harness()
        zone = h.field.zone(0, 0)
        zone.water_balance.theta = 0.20
        valve = h.add_device(
            Valve,
            DeviceConfig("v1", "farmA", "valve", report_interval_s=600),
            zone=zone, rate_mm_h=10.0,
        )
        h.sim.run(until=10.0)
        h.send_command(valve, {"cmd": "open", "duration_s": 3600})
        h.sim.run(until=2 * 3600.0)
        assert valve.total_applied_mm == pytest.approx(10.0, rel=0.05)
        assert zone.water_balance.cum_irrigation_mm == pytest.approx(10.0, rel=0.05)
        assert not valve.is_open

    def test_depth_command(self):
        h = Harness()
        zone = h.field.zone(0, 0)
        valve = h.add_device(
            Valve, DeviceConfig("v2", "farmA", "valve"), zone=zone, rate_mm_h=8.0
        )
        h.sim.run(until=10.0)
        h.send_command(valve, {"cmd": "open", "depth_mm": 4.0})
        h.sim.run(until=3 * 3600.0)
        assert valve.total_applied_mm == pytest.approx(4.0, rel=0.05)

    def test_close_command_stops_early(self):
        h = Harness()
        zone = h.field.zone(0, 0)
        valve = h.add_device(
            Valve, DeviceConfig("v3", "farmA", "valve"), zone=zone, rate_mm_h=10.0
        )
        h.sim.run(until=10.0)
        h.send_command(valve, {"cmd": "open", "duration_s": 7200})
        h.sim.run(until=1800.0)
        h.send_command(valve, {"cmd": "close"})
        h.sim.run(until=3 * 3600.0)
        assert valve.total_applied_mm < 6.0

    def test_command_ack_published(self):
        h = Harness()
        valve = h.add_device(
            Valve, DeviceConfig("v4", "farmA", "valve"), zone=h.field.zone(0, 0)
        )
        h.sim.run(until=10.0)
        h.send_command(valve, {"cmd": "open", "duration_s": 60})
        h.sim.run(until=100.0)
        acks = [m for t, m in h.messages if t.endswith("cmdexe/v4") and m]
        assert acks and acks[0]["result"] == "ok"

    def test_bad_command_rejected(self):
        h = Harness()
        valve = h.add_device(
            Valve, DeviceConfig("v5", "farmA", "valve"), zone=h.field.zone(0, 0)
        )
        h.sim.run(until=10.0)
        h.send_command(valve, {"cmd": "open"})  # no duration/depth
        h.send_command(valve, {"cmd": "explode"})
        h.sim.run(until=100.0)
        acks = [m["result"] for t, m in h.messages if t.endswith("cmdexe/v5") and m]
        assert "bad-arguments" in acks and "unknown-command" in acks

    def test_meters_pump_and_flow(self):
        h = Harness()
        zone = h.field.zone(0, 0)
        pump = h.add_device(Pump, DeviceConfig("p1", "farmA", "pump"), head_m=40.0)
        meter = h.add_device(WaterFlowMeter, DeviceConfig("fm2", "farmA", "flow-meter"))
        valve = h.add_device(
            Valve, DeviceConfig("v6", "farmA", "valve"),
            zone=zone, rate_mm_h=10.0, pump=pump, flow_meter=meter,
        )
        h.sim.run(until=10.0)
        valve.open_for(3600.0)
        h.sim.run(until=2 * 3600.0)
        # 10mm on 1 ha = 100 m3
        assert pump.total_m3 == pytest.approx(100.0, rel=0.05)
        assert meter.total_m3 == pytest.approx(100.0, rel=0.05)
        assert pump.total_kwh > 10.0  # 100 m3 * 0.002725 * 40 / 0.75 ≈ 14.5


class TestPump:
    def test_energy_model(self):
        h = Harness()
        pump = h.add_device(
            Pump, DeviceConfig("p2", "farmA", "pump"), head_m=45.0, efficiency=0.75
        )
        energy = pump.pump_volume(100.0)
        assert energy == pytest.approx(100 * 0.002725 * 45.0 / 0.75)

    def test_invalid_efficiency(self):
        h = Harness()
        with pytest.raises(ValueError):
            h.add_device(Pump, DeviceConfig("p3", "farmA", "pump"), efficiency=0.0)

    def test_start_stop_commands(self):
        h = Harness()
        pump = h.add_device(Pump, DeviceConfig("p4", "farmA", "pump"))
        h.sim.run(until=10.0)
        h.send_command(pump, {"cmd": "start"})
        h.sim.run(until=20.0)
        assert pump.running
        h.send_command(pump, {"cmd": "stop"})
        h.sim.run(until=30.0)
        assert not pump.running


class TestCenterPivot:
    def make_pivot(self, h, depth_map=None):
        pump = h.add_device(Pump, DeviceConfig("pp", "farmA", "pump"))
        pivot = h.add_device(
            CenterPivot,
            DeviceConfig("pivot1", "farmA", "center-pivot", report_interval_s=1800),
            zones=h.field.zones, max_application_rate_mm_h=10.0, pump=pump,
        )
        return pivot, pump

    def test_uniform_pass(self):
        h = Harness()
        pivot, pump = self.make_pivot(h)
        h.sim.run(until=10.0)
        h.send_command(pivot, {"cmd": "start_pass", "depth_mm": 5.0})
        h.sim.run(until=10 * HOUR)
        assert pivot.passes_completed == 1
        for zone in h.field:
            assert zone.water_balance.cum_irrigation_mm == pytest.approx(5.0)
        assert pump.total_m3 == pytest.approx(4 * 5.0 * 10.0)

    def test_vri_prescription(self):
        h = Harness()
        pivot, pump = self.make_pivot(h)
        prescription = {z.zone_id: (8.0 if z.row == 0 else 2.0) for z in h.field}
        h.sim.run(until=10.0)
        pivot.start_pass(prescription)
        h.sim.run(until=10 * HOUR)
        for zone in h.field:
            expected = 8.0 if zone.row == 0 else 2.0
            assert zone.water_balance.cum_irrigation_mm == pytest.approx(expected)

    def test_pass_duration_scales_with_depth(self):
        h = Harness()
        pivot, _ = self.make_pivot(h)
        shallow = {z.zone_id: 2.0 for z in h.field}
        deep = {z.zone_id: 10.0 for z in h.field}
        assert pivot.pass_duration_s(deep) > pivot.pass_duration_s(shallow) * 3

    def test_stop_interrupts_pass(self):
        h = Harness()
        pivot, _ = self.make_pivot(h)
        h.sim.run(until=10.0)
        pivot.start_pass({z.zone_id: 10.0 for z in h.field})
        h.sim.run(until=1.5 * HOUR)
        pivot.stop_pass()
        h.sim.run(until=10 * HOUR)
        assert pivot.passes_completed == 0
        assert pivot.total_applied_mm < 40.0

    def test_busy_rejects_second_pass(self):
        h = Harness()
        pivot, _ = self.make_pivot(h)
        h.sim.run(until=10.0)
        pivot.start_pass({z.zone_id: 5.0 for z in h.field})
        h.sim.run(until=600.0)
        h.send_command(pivot, {"cmd": "start_pass", "depth_mm": 3.0})
        h.sim.run(until=700.0)
        acks = [m["result"] for t, m in h.messages if t.endswith("cmdexe/pivot1") and m]
        assert "busy" in acks

    def test_move_energy_accumulates(self):
        h = Harness()
        pivot, _ = self.make_pivot(h)
        h.sim.run(until=10.0)
        pivot.start_pass({z.zone_id: 2.0 for z in h.field})
        h.sim.run(until=5 * HOUR)
        assert pivot.move_energy_kwh == pytest.approx(4 * 0.6)
        assert pivot.total_energy_kwh() > pivot.move_energy_kwh

    def test_empty_zone_list_rejected(self):
        h = Harness()
        with pytest.raises(ValueError):
            h.add_device(
                CenterPivot, DeviceConfig("pivotX", "farmA", "center-pivot"), zones=[]
            )


class TestDrone:
    def test_survey_publishes_all_zones(self):
        h = Harness()
        drone = h.add_device(
            Drone,
            DeviceConfig("drone1", "farmA", "drone", report_interval_s=3600),
            field=h.field, seconds_per_zone=10.0,
        )
        h.sim.run(until=10.0)
        h.send_command(drone, {"cmd": "survey"})
        h.sim.run(until=600.0)
        observations = [m for m in h.telemetry("drone1") if m.get("zone")]
        assert len(observations) == len(h.field)
        assert {o["zone"] for o in observations} == {z.zone_id for z in h.field}
        assert all(0.0 <= o["ndvi"] <= 1.0 for o in observations)
        assert drone.surveys_completed == 1

    def test_survey_summary_published(self):
        h = Harness()
        drone = h.add_device(
            Drone, DeviceConfig("drone2", "farmA", "drone"),
            field=h.field, seconds_per_zone=5.0,
        )
        h.sim.run(until=10.0)
        drone.start_survey()
        h.sim.run(until=600.0)
        summaries = [m for m in h.telemetry("drone2") if m.get("surveyDone")]
        assert summaries and summaries[0]["observations"] == 4

    def test_busy_while_surveying(self):
        h = Harness()
        drone = h.add_device(
            Drone, DeviceConfig("drone3", "farmA", "drone"),
            field=h.field, seconds_per_zone=30.0,
        )
        h.sim.run(until=10.0)
        drone.start_survey()
        h.sim.run(until=20.0)
        h.send_command(drone, {"cmd": "survey"})
        h.sim.run(until=60.0)
        acks = [m["result"] for t, m in h.messages if t.endswith("cmdexe/drone3") and m]
        assert "busy" in acks
