"""Unit tests for the service registry and platform runtime."""

import pytest

from repro.platform.registry import (
    DependencyError,
    LifecycleError,
    PlatformError,
    PlatformRuntime,
    Service,
    ServiceRegistry,
    ServiceState,
)


class TestServiceRegistry:
    def test_duplicate_name_rejected(self):
        registry = ServiceRegistry()
        registry.register(Service("a"))
        with pytest.raises(PlatformError):
            registry.register(Service("a"))

    def test_unknown_dependency_rejected(self):
        registry = ServiceRegistry()
        registry.register(Service("a", depends_on=("ghost",)))
        with pytest.raises(DependencyError):
            registry.start_order()

    def test_cycle_detected(self):
        registry = ServiceRegistry()
        registry.register(Service("a", depends_on=("b",)))
        registry.register(Service("b", depends_on=("a",)))
        with pytest.raises(DependencyError):
            registry.start_order()

    def test_start_order_respects_dependencies(self):
        registry = ServiceRegistry()
        registry.register(Service("c", depends_on=("a", "b")))
        registry.register(Service("a"))
        registry.register(Service("b", depends_on=("a",)))
        assert [s.name for s in registry.start_order()] == ["a", "b", "c"]

    def test_registration_order_preserved_when_already_topological(self):
        # The determinism contract: when registration order is a valid
        # topological order, start order must reproduce it exactly —
        # including dependency-free services registered late.
        registry = ServiceRegistry()
        registry.register(Service("tiers"))
        registry.register(Service("agent", depends_on=("tiers",)))
        registry.register(Service("physics"))  # dep-free, registered third
        registry.register(Service("devices", depends_on=("agent", "physics")))
        assert [s.name for s in registry.start_order()] == [
            "tiers", "agent", "physics", "devices",
        ]


class TestPlatformRuntime:
    def test_lifecycle_order_and_states(self):
        calls = []
        runtime = PlatformRuntime()
        runtime.register(
            "a",
            configure=lambda rt: calls.append("configure:a"),
            start=lambda rt: calls.append("start:a"),
            shutdown=lambda rt: calls.append("shutdown:a"),
        )
        runtime.register(
            "b", depends_on=("a",),
            start=lambda rt: calls.append("start:b"),
            shutdown=lambda rt: calls.append("shutdown:b"),
        )
        runtime.start()
        assert runtime.started
        assert runtime.states() == {"a": "started", "b": "started"}
        runtime.shutdown()
        # Shutdown runs in reverse start order.
        assert calls == [
            "configure:a", "start:a", "start:b", "shutdown:b", "shutdown:a",
        ]
        assert runtime.states() == {"a": "shutdown", "b": "shutdown"}

    def test_start_and_shutdown_are_idempotent(self):
        starts = []
        stops = []
        runtime = PlatformRuntime()
        runtime.register("a", start=lambda rt: starts.append(1),
                         shutdown=lambda rt: stops.append(1))
        runtime.start()
        runtime.start()
        runtime.shutdown()
        runtime.shutdown()
        assert starts == [1]
        assert stops == [1]

    def test_register_after_start_raises(self):
        runtime = PlatformRuntime()
        runtime.register("a")
        runtime.start()
        with pytest.raises(LifecycleError):
            runtime.register("b")

    def test_failed_start_marks_service_and_propagates(self):
        runtime = PlatformRuntime()
        runtime.register("ok")
        runtime.register("boom", depends_on=("ok",),
                         start=lambda rt: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            runtime.start()
        assert runtime.service("ok").state is ServiceState.STARTED
        assert runtime.service("boom").state is ServiceState.FAILED

    def test_provides_exposes_domain_object(self):
        runtime = PlatformRuntime()
        sentinel = object()
        runtime.register("a", provides=sentinel)
        assert runtime.provided("a") is sentinel

    def test_service_subclass_hooks(self):
        events = []

        class MyService(Service):
            def on_configure(self, runtime):
                events.append("configure")

            def on_start(self, runtime):
                events.append("start")

            def on_shutdown(self, runtime):
                events.append("shutdown")

        runtime = PlatformRuntime()
        runtime.registry.register(MyService("custom"))
        runtime.start()
        runtime.shutdown()
        assert events == ["configure", "start", "shutdown"]

    def test_runtime_defaults_to_null_metrics(self):
        runtime = PlatformRuntime()
        assert runtime.metrics.enabled is False


class TestRebuildHooks:
    def test_rebuild_defaults_to_start_hook(self):
        calls = []
        runtime = PlatformRuntime()
        runtime.register("a", start=lambda rt: calls.append("start:a"))
        runtime.start(rebuilding=True)
        assert calls == ["start:a"]
        assert runtime.rebuilding is True

    def test_explicit_rebuild_hook_replaces_start(self):
        calls = []
        runtime = PlatformRuntime()
        runtime.register(
            "a",
            start=lambda rt: calls.append("start:a"),
            rebuild=lambda rt: calls.append("rebuild:a"),
        )
        runtime.start(rebuilding=True)
        assert calls == ["rebuild:a"]
        assert runtime.service("a").state is ServiceState.STARTED

    def test_rebuild_hook_not_used_on_cold_start(self):
        calls = []
        runtime = PlatformRuntime()
        runtime.register(
            "a",
            start=lambda rt: calls.append("start:a"),
            rebuild=lambda rt: calls.append("rebuild:a"),
        )
        runtime.start()
        assert calls == ["start:a"]
        assert runtime.rebuilding is False
