"""Tests for the soil water balance, crop model, field grid and NDVI."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.physics.crop import GUASPARI_GRAPE, MAIZE, SOYBEAN, YieldTracker
from repro.physics.field import Field
from repro.physics.ndvi import NdviTracker, ndvi_for_zone
from repro.physics.soil import CLAY, LOAM, SANDY_LOAM, SoilProperties, SoilWaterBalance
from repro.simkernel.rng import RngRegistry


class TestSoilProperties:
    def test_invalid_ordering_rejected(self):
        with pytest.raises(ValueError):
            SoilProperties("bad", theta_sat=0.3, theta_fc=0.4, theta_wp=0.1,
                           max_infiltration_mm_day=50, drainage_rate=0.5)

    def test_scaled_preserves_validity(self):
        for factor in (0.5, 0.8, 1.0, 1.3, 2.0):
            scaled = LOAM.scaled(factor)
            assert scaled.theta_wp < scaled.theta_fc < scaled.theta_sat

    def test_scaled_changes_capacity(self):
        small = LOAM.scaled(0.6)
        big = LOAM.scaled(1.3)
        assert (small.theta_fc - small.theta_wp) < (big.theta_fc - big.theta_wp)


class TestWaterBalance:
    def make(self, soil=LOAM, **kw):
        return SoilWaterBalance(soil, root_depth_m=0.5, **kw)

    def test_starts_at_field_capacity(self):
        wb = self.make()
        assert wb.theta == LOAM.theta_fc
        assert wb.depletion_mm == 0.0
        assert wb.available_fraction == 1.0

    def test_taw_raw(self):
        wb = self.make()
        # TAW = (0.28-0.13)*0.5m*1000 = 75 mm; RAW = 0.5*75
        assert wb.total_available_water_mm == pytest.approx(75.0)
        assert wb.readily_available_water_mm == pytest.approx(37.5)

    def test_et_extraction_lowers_theta(self):
        wb = self.make()
        wb.step(et_crop_potential_mm=5.0)
        assert wb.theta < LOAM.theta_fc
        assert wb.cum_et_actual_mm == pytest.approx(5.0)

    def test_no_stress_above_raw(self):
        wb = self.make()
        wb.step(10.0)  # depletion 10 < RAW 37.5
        assert wb.stress_coefficient_ks == 1.0

    def test_stress_grows_below_raw(self):
        wb = self.make()
        for _ in range(12):
            wb.step(5.0)  # drives depletion past RAW
        assert 0.0 < wb.stress_coefficient_ks < 1.0

    def test_ks_zero_at_wilting_point(self):
        wb = self.make(initial_theta=LOAM.theta_wp + 1e-9)
        assert wb.stress_coefficient_ks == pytest.approx(0.0, abs=1e-6)

    def test_cannot_extract_below_wilting_point(self):
        wb = self.make(initial_theta=LOAM.theta_wp + 0.01)
        for _ in range(50):
            wb.step(10.0)
        assert wb.theta >= LOAM.theta_wp - 1e-12

    def test_irrigation_raises_theta(self):
        wb = self.make(initial_theta=0.20)
        wb.irrigate(20.0)
        assert wb.theta == pytest.approx(0.20 + 20.0 / 500.0)
        assert wb.cum_irrigation_mm == 20.0

    def test_drainage_above_field_capacity(self):
        wb = self.make()
        wb.rain(60.0)
        theta_wet = wb.theta
        result = wb.step(0.0)
        assert result["drainage_mm"] > 0
        assert LOAM.theta_fc < wb.theta < theta_wet
        # Repeated steps converge back to field capacity.
        for _ in range(30):
            wb.step(0.0)
        assert wb.theta == pytest.approx(LOAM.theta_fc, abs=1e-3)

    def test_runoff_above_infiltration_capacity(self):
        wb = self.make(soil=CLAY)  # 25 mm/day max infiltration
        result = wb.rain(80.0)
        assert result["runoff_mm"] == pytest.approx(55.0)

    def test_ponding_above_saturation_runs_off(self):
        wb = SoilWaterBalance(SANDY_LOAM, root_depth_m=0.1, initial_theta=SANDY_LOAM.theta_fc)
        result = wb.apply_water(100.0)  # 100mm into 0.1m profile
        assert wb.theta == SANDY_LOAM.theta_sat
        assert result["runoff_mm"] > 0

    def test_negative_inputs_rejected(self):
        wb = self.make()
        with pytest.raises(ValueError):
            wb.apply_water(-1.0)
        with pytest.raises(ValueError):
            wb.step(-1.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SoilWaterBalance(LOAM, root_depth_m=0.0)
        with pytest.raises(ValueError):
            SoilWaterBalance(LOAM, initial_theta=0.9)

    def test_water_accounting_keys(self):
        wb = self.make()
        wb.irrigate(10)
        wb.rain(5)
        wb.step(3)
        acc = wb.water_accounting()
        assert acc["irrigation_mm"] == 10
        assert acc["rain_mm"] == 5
        assert acc["et_actual_mm"] == pytest.approx(3.0)

    @given(
        irrigation=st.lists(st.floats(min_value=0, max_value=40), min_size=1, max_size=30),
        et=st.lists(st.floats(min_value=0, max_value=10), min_size=1, max_size=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_theta_stays_physical(self, irrigation, et):
        wb = self.make()
        for irr, demand in zip(irrigation, et):
            wb.irrigate(irr)
            wb.step(demand)
            assert LOAM.theta_wp - 1e-9 <= wb.theta <= LOAM.theta_sat + 1e-9

    @given(st.lists(st.floats(min_value=0, max_value=30), min_size=5, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_property_mass_balance(self, inputs):
        """Water in = water out + storage change (within float tolerance)."""
        wb = self.make(initial_theta=0.20)
        start_mm = wb.theta * 500.0
        for mm in inputs:
            wb.rain(mm)
            wb.step(4.0)
        end_mm = wb.theta * 500.0
        acc = wb.water_accounting()
        water_in = acc["rain_mm"] + acc["irrigation_mm"]
        water_out = acc["et_actual_mm"] + acc["drainage_mm"] + acc["runoff_mm"]
        assert water_in - water_out == pytest.approx(end_mm - start_mm, abs=1e-6)


class TestCrop:
    def test_season_length(self):
        assert SOYBEAN.season_days == 120

    def test_stage_lookup(self):
        assert SOYBEAN.stage_at(0).name == "initial"
        assert SOYBEAN.stage_at(19).name == "initial"
        assert SOYBEAN.stage_at(20).name == "development"
        assert SOYBEAN.stage_at(500).name == "late-ripening"

    def test_stage_negative_day_rejected(self):
        with pytest.raises(ValueError):
            SOYBEAN.stage_at(-1)

    def test_kc_curve_shape(self):
        kc_start = SOYBEAN.kc_at(5)
        kc_mid = SOYBEAN.kc_at(60)
        kc_end = SOYBEAN.kc_at(119)
        assert kc_start < kc_mid
        assert kc_end < kc_mid
        assert kc_mid == pytest.approx(1.15)

    def test_kc_continuous_across_stages(self):
        for day in range(1, SOYBEAN.season_days):
            delta = abs(SOYBEAN.kc_at(day) - SOYBEAN.kc_at(day - 1))
            assert delta < 0.06  # no jumps

    def test_root_depth_monotone(self):
        depths = [SOYBEAN.root_depth_at(d) for d in range(SOYBEAN.season_days)]
        assert all(b >= a - 1e-9 for a, b in zip(depths, depths[1:]))
        assert depths[-1] == pytest.approx(1.0)

    def test_kc_after_season_clamps(self):
        assert SOYBEAN.kc_at(10_000) == SOYBEAN.stages[-1].kc


class TestYieldTracker:
    def test_no_stress_full_yield(self):
        tracker = YieldTracker(SOYBEAN)
        for day in range(SOYBEAN.season_days):
            tracker.record_day(day, 5.0, 5.0)
        assert tracker.relative_yield == pytest.approx(1.0)
        assert tracker.yield_t_ha == pytest.approx(SOYBEAN.max_yield_t_ha)

    def test_uniform_deficit_scales_yield(self):
        tracker = YieldTracker(SOYBEAN)
        for day in range(SOYBEAN.season_days):
            tracker.record_day(day, 4.0, 5.0)  # 20% deficit everywhere
        assert tracker.relative_yield < 0.8  # multiplicative penalty stacks

    def test_flowering_stress_hurts_more_than_ripening(self):
        flowering = YieldTracker(SOYBEAN)
        ripening = YieldTracker(SOYBEAN)
        for day in range(SOYBEAN.season_days):
            stage = SOYBEAN.stage_at(day).name
            flowering.record_day(day, 2.5 if stage == "mid-flowering" else 5.0, 5.0)
            ripening.record_day(day, 2.5 if stage == "late-ripening" else 5.0, 5.0)
        assert flowering.relative_yield < ripening.relative_yield

    def test_total_failure_zero_yield(self):
        tracker = YieldTracker(MAIZE)
        for day in range(MAIZE.season_days):
            tracker.record_day(day, 0.0, 6.0)
        assert tracker.relative_yield == 0.0

    def test_no_et_demand_no_penalty(self):
        tracker = YieldTracker(SOYBEAN)
        tracker.record_day(0, 0.0, 0.0)
        assert tracker.relative_yield == 1.0


class TestField:
    def make(self, rows=4, cols=4, cv=0.2, seed=0):
        return Field(
            "test", rows, cols, LOAM, SOYBEAN,
            RngRegistry(seed).stream("field"), spatial_cv=cv,
        )

    def test_grid_size(self):
        field = self.make(3, 5)
        assert len(field) == 15
        assert field.area_ha == 15.0

    def test_invalid_grid_rejected(self):
        with pytest.raises(ValueError):
            self.make(0, 3)
        with pytest.raises(ValueError):
            Field("x", 2, 2, LOAM, SOYBEAN, RngRegistry(0).stream("f"), spatial_cv=-1)

    def test_zone_lookup(self):
        field = self.make()
        zone = field.zone(1, 2)
        assert zone.row == 1 and zone.col == 2
        assert field.zone_by_id(zone.zone_id) is zone
        with pytest.raises(KeyError):
            field.zone_by_id("nope")

    def test_zero_cv_uniform(self):
        field = self.make(cv=0.0)
        assert all(z.capacity_factor == 1.0 for z in field)
        assert field.capacity_cv() == 0.0

    def test_cv_realized(self):
        field = self.make(rows=10, cols=10, cv=0.25, seed=3)
        assert field.capacity_cv() == pytest.approx(0.25, abs=0.08)

    def test_spatial_correlation(self):
        """Neighbouring zones should be more alike than distant ones."""
        field = self.make(rows=12, cols=12, cv=0.3, seed=5)
        neighbor_diffs, distant_diffs = [], []
        for r in range(11):
            for c in range(11):
                here = field.zone(r, c).capacity_factor
                neighbor_diffs.append(abs(here - field.zone(r, c + 1).capacity_factor))
                distant = field.zone((r + 6) % 12, (c + 6) % 12).capacity_factor
                distant_diffs.append(abs(here - distant))
        assert sum(neighbor_diffs) / len(neighbor_diffs) < sum(distant_diffs) / len(distant_diffs)

    def test_advance_day_progresses_all_zones(self):
        field = self.make()
        field.advance_day(et0_mm=5.0, rain_mm=0.0)
        assert all(z.season_day == 1 for z in field)
        assert all(z.theta < z.water_balance.soil.theta_fc for z in field)

    def test_unirrigated_dry_season_loses_yield(self):
        field = self.make(cv=0.0)
        for _ in range(SOYBEAN.season_days):
            field.advance_day(et0_mm=6.0, rain_mm=0.0)
        assert field.mean_relative_yield() < 0.4

    def test_well_irrigated_keeps_yield(self):
        field = self.make(cv=0.0)
        for _ in range(SOYBEAN.season_days):
            for zone in field:
                if zone.water_balance.depletion_mm > zone.water_balance.readily_available_water_mm * 0.8:
                    zone.irrigate(zone.water_balance.depletion_mm)
            field.advance_day(et0_mm=6.0, rain_mm=0.0)
        assert field.mean_relative_yield() > 0.95

    def test_irrigation_volume_accounting(self):
        field = self.make(rows=2, cols=2, cv=0.0)
        field.zone(0, 0).irrigate(10.0)  # 10mm on 1 ha = 100 m3
        assert field.total_irrigation_m3() == pytest.approx(100.0)


class TestNdvi:
    def make_zone(self):
        field = Field("n", 1, 1, LOAM, SOYBEAN, RngRegistry(0).stream("f"))
        return field.zone(0, 0)

    def test_ndvi_range(self):
        zone = self.make_zone()
        assert 0.0 <= ndvi_for_zone(zone) <= 1.0

    def test_ndvi_peaks_mid_season(self):
        zone = self.make_zone()
        early = ndvi_for_zone(zone)
        zone.season_day = 60
        mid = ndvi_for_zone(zone)
        assert mid > early

    def test_stress_lowers_ndvi(self):
        zone = self.make_zone()
        zone.season_day = 60
        healthy = ndvi_for_zone(zone, stress_memory=1.0)
        stressed = ndvi_for_zone(zone, stress_memory=0.2)
        assert stressed < healthy

    def test_tracker_lags_stress(self):
        zone = self.make_zone()
        zone.season_day = 60
        tracker = NdviTracker(zone, memory=0.9)
        before = tracker.ndvi()
        tracker.record_day(0.0)  # one stressed day barely moves canopy
        after_one = tracker.ndvi()
        for _ in range(30):
            tracker.record_day(0.0)
        after_many = tracker.ndvi()
        assert before - after_one < 0.05
        assert after_many < after_one

    def test_tracker_invalid_memory(self):
        with pytest.raises(ValueError):
            NdviTracker(self.make_zone(), memory=1.0)
