"""Integration tests for the MQTT broker and client over the network substrate."""

import pytest

from repro.mqtt import Connect, ConnectReturnCode, MqttBroker, MqttClient
from repro.network import Network, RadioModel
from repro.network.link import LinkState
from repro.simkernel import Simulator


def lossless(latency=0.005):
    return RadioModel("test", latency_s=latency, bandwidth_bps=10e6, loss_rate=0.0)


def lossy(rate, latency=0.005):
    return RadioModel("lossy", latency_s=latency, bandwidth_bps=10e6, loss_rate=rate)


def build(sim, n_clients=2, model=None, **client_kwargs):
    net = Network(sim)
    broker = MqttBroker(sim, "broker")
    net.add_node(broker)
    clients = []
    for i in range(n_clients):
        c = MqttClient(sim, f"c{i}", "broker", **client_kwargs)
        net.add_node(c)
        net.connect(f"c{i}", "broker", model or lossless())
        clients.append(c)
    return net, broker, clients


class TestConnect:
    def test_connect_handshake(self):
        sim = Simulator(seed=1)
        net, broker, (c,) = build(sim, 1)
        c.connect()
        sim.run(until=1.0)
        assert c.connected
        assert broker.connected_clients() == ["c0"]

    def test_on_connect_callback(self):
        sim = Simulator(seed=1)
        net, broker, (c,) = build(sim, 1)
        results = []
        c.on_connect = results.append
        c.connect()
        sim.run(until=1.0)
        assert results == [True]

    def test_empty_client_id_rejected(self):
        sim = Simulator(seed=1)
        net, broker, (c,) = build(sim, 1)
        c.client_id = ""
        c.auto_reconnect = False
        c.connect()
        sim.run(until=1.0)
        assert not c.connected
        assert broker.stats.rejected_connects == 1

    def test_authenticator_rejects(self):
        sim = Simulator(seed=1)
        net = Network(sim)
        broker = MqttBroker(
            sim,
            "broker",
            authenticator=lambda c: (
                ConnectReturnCode.ACCEPTED if c.password == "secret" else ConnectReturnCode.BAD_CREDENTIALS
            ),
        )
        net.add_node(broker)
        good = MqttClient(sim, "good", "broker", password="secret")
        bad = MqttClient(sim, "bad", "broker", password="wrong", auto_reconnect=False)
        for c in (good, bad):
            net.add_node(c)
            net.connect(c.address, "broker", lossless())
            c.connect()
        sim.run(until=1.0)
        assert good.connected
        assert not bad.connected

    def test_session_takeover(self):
        sim = Simulator(seed=1)
        net, broker, clients = build(sim, 2)
        a, b = clients
        b.client_id = a.client_id = "same-id"
        a.connect()
        sim.run(until=0.5)
        b.connect()
        sim.run(until=1.0)
        session = broker.sessions["same-id"]
        assert session.address == "c1"

    def test_reconnect_after_timeout(self):
        sim = Simulator(seed=1)
        net, broker, (c,) = build(sim, 1)
        net.partition("c0", "broker")
        c.connect()
        sim.run(until=5.0)
        assert not c.connected
        net.heal("c0", "broker")
        sim.run(until=30.0)
        assert c.connected  # auto-reconnect with backoff found the healed link


class TestPubSub:
    def test_qos0_roundtrip(self):
        sim = Simulator(seed=1)
        net, broker, (pub, sub) = build(sim, 2)
        got = []
        pub.connect()
        sub.connect()
        sim.run(until=0.5)
        sub.subscribe("farm/soil/#", qos=0, handler=lambda t, p, q, r: got.append((t, p)))
        sim.run(until=1.0)
        pub.publish("farm/soil/p1", b"0.23")
        sim.run(until=2.0)
        assert got == [("farm/soil/p1", b"0.23")]

    def test_no_delivery_without_subscription(self):
        sim = Simulator(seed=1)
        net, broker, (pub, sub) = build(sim, 2)
        got = []
        pub.connect()
        sub.connect()
        sim.run(until=0.5)
        sub.subscribe("other/#", handler=lambda t, p, q, r: got.append(p))
        sim.run(until=1.0)
        pub.publish("farm/soil/p1", b"x")
        sim.run(until=2.0)
        assert got == []

    def test_multiple_subscribers_fanout(self):
        sim = Simulator(seed=1)
        net, broker, clients = build(sim, 4)
        got = {c.address: [] for c in clients[1:]}
        for c in clients:
            c.connect()
        sim.run(until=0.5)
        for c in clients[1:]:
            c.subscribe("t/#", handler=lambda t, p, q, r, addr=c.address: got[addr].append(p))
        sim.run(until=1.0)
        clients[0].publish("t/x", b"v")
        sim.run(until=2.0)
        assert all(v == [b"v"] for v in got.values())

    def test_qos1_delivery_on_lossy_link(self):
        sim = Simulator(seed=11)
        net, broker, (pub, sub) = build(sim, 2, model=lossy(0.3))
        got = []
        pub.outbox.retry_interval_s = 0.5
        pub.outbox.max_retries = 30
        sub.subscribe_retry_s = 1.0
        pub.connect()
        sub.connect()
        while not (pub.connected and sub.connected):
            sim.run(until=sim.now + 5.0)
        sub.subscribe("t", qos=1, handler=lambda t, p, q, r: got.append(p))
        sim.run(until=sim.now + 10.0)
        broker.sessions["c1"].outbox.max_retries = 30
        broker.sessions["c1"].outbox.retry_interval_s = 0.5
        for i in range(20):
            while not pub.publish("t", bytes([i]), qos=1):
                sim.run(until=sim.now + 2.0)
            sim.run(until=sim.now + 1.0)
        sim.run(until=sim.now + 120.0)
        # At-least-once: nothing missing (duplicates possible).
        assert set(got) == {bytes([i]) for i in range(20)}

    def test_qos2_exactly_once_on_lossy_link(self):
        sim = Simulator(seed=5)
        net, broker, (pub, sub) = build(sim, 2, model=lossy(0.3))
        got = []
        pub.outbox.retry_interval_s = 0.5
        pub.outbox.max_retries = 30
        sub.subscribe_retry_s = 1.0
        pub.connect()
        sub.connect()
        while not (pub.connected and sub.connected):
            sim.run(until=sim.now + 5.0)
        sub.subscribe("t", qos=2, handler=lambda t, p, q, r: got.append(p))
        sim.run(until=sim.now + 10.0)
        broker.sessions["c1"].outbox.max_retries = 30
        broker.sessions["c1"].outbox.retry_interval_s = 0.5
        for i in range(10):
            while not pub.publish("t", bytes([i]), qos=2):
                sim.run(until=sim.now + 2.0)
            sim.run(until=sim.now + 2.0)
        sim.run(until=sim.now + 300.0)
        # Exactly once end-to-end: no duplicates, nothing missing.
        assert sorted(got) == [bytes([i]) for i in range(10)]

    def test_publish_while_disconnected_returns_false(self):
        sim = Simulator(seed=1)
        net, broker, (c,) = build(sim, 1)
        assert c.publish("t", b"x") is False

    def test_qos_downgrade_to_subscription(self):
        sim = Simulator(seed=1)
        net, broker, (pub, sub) = build(sim, 2)
        got = []
        pub.connect()
        sub.connect()
        sim.run(until=0.5)
        sub.subscribe("t", qos=0, handler=lambda t, p, q, r: got.append(q))
        sim.run(until=1.0)
        pub.publish("t", b"x", qos=2)
        sim.run(until=5.0)
        assert got == [0]  # delivered at min(sub_qos, pub_qos)


class TestRetained:
    def test_retained_delivered_on_subscribe(self):
        sim = Simulator(seed=1)
        net, broker, (pub, sub) = build(sim, 2)
        got = []
        pub.connect()
        sim.run(until=0.5)
        pub.publish("cfg/pivot", b"speed=3", retain=True)
        sim.run(until=1.0)
        sub.connect()
        sim.run(until=1.5)
        sub.subscribe("cfg/#", handler=lambda t, p, q, r: got.append((t, p, r)))
        sim.run(until=2.0)
        assert got == [("cfg/pivot", b"speed=3", True)]

    def test_retained_overwritten(self):
        sim = Simulator(seed=1)
        net, broker, (pub, sub) = build(sim, 2)
        got = []
        pub.connect()
        sim.run(until=0.5)
        pub.publish("cfg", b"v1", retain=True)
        pub.publish("cfg", b"v2", retain=True)
        sim.run(until=1.0)
        sub.connect()
        sim.run(until=1.5)
        sub.subscribe("cfg", handler=lambda t, p, q, r: got.append(p))
        sim.run(until=2.0)
        assert got == [b"v2"]

    def test_retained_cleared_by_empty_payload(self):
        sim = Simulator(seed=1)
        net, broker, (pub, sub) = build(sim, 2)
        got = []
        pub.connect()
        sim.run(until=0.5)
        pub.publish("cfg", b"v1", retain=True)
        pub.publish("cfg", b"", retain=True)
        sim.run(until=1.0)
        sub.connect()
        sim.run(until=1.5)
        sub.subscribe("cfg", handler=lambda t, p, q, r: got.append(p))
        sim.run(until=2.0)
        assert got == []


class TestKeepaliveAndWill:
    def test_will_published_on_session_expiry(self):
        sim = Simulator(seed=1)
        net, broker, clients = build(
            sim, 2, keepalive_s=5.0,
        )
        dead, watcher = clients
        dead.will = ("status/dead", b"offline", 0, False)
        got = []
        dead.connect()
        watcher.connect()
        sim.run(until=0.5)
        watcher.subscribe("status/#", handler=lambda t, p, q, r: got.append((t, p)))
        sim.run(until=1.0)
        # Sever the dead client's link; its pings stop reaching the broker.
        net.partition("c0", "broker")
        sim.run(until=60.0)
        assert ("status/dead", b"offline") in got
        assert broker.stats.session_expirations >= 1

    def test_clean_disconnect_suppresses_will(self):
        sim = Simulator(seed=1)
        net, broker, clients = build(sim, 2, keepalive_s=5.0)
        leaver, watcher = clients
        leaver.will = ("status/leaver", b"offline", 0, False)
        got = []
        leaver.connect()
        watcher.connect()
        sim.run(until=0.5)
        watcher.subscribe("status/#", handler=lambda t, p, q, r: got.append(p))
        sim.run(until=1.0)
        leaver.disconnect()
        sim.run(until=60.0)
        assert got == []

    def test_pings_keep_session_alive(self):
        sim = Simulator(seed=1)
        net, broker, (c,) = build(sim, 1, keepalive_s=5.0)
        c.connect()
        sim.run(until=120.0)
        assert c.connected
        assert broker.stats.session_expirations == 0
        assert c.stats.pings > 10


class TestPersistentSession:
    def test_offline_queue_flushed_on_resume(self):
        sim = Simulator(seed=1)
        net, broker, (pub, sub) = build(sim, 2, clean_session=False, keepalive_s=0)
        got = []
        pub.connect()
        sub.connect()
        sim.run(until=0.5)
        sub.subscribe("t", qos=1, handler=lambda t, p, q, r: got.append(p))
        sim.run(until=1.0)
        sub.disconnect()
        # Mark the broker session as still present but disconnected.
        sim.run(until=2.0)
        pub.publish("t", b"while-away", qos=1)
        sim.run(until=3.0)
        assert got == []
        sub.connect()
        sim.run(until=10.0)
        assert got == [b"while-away"]

    def test_qos0_not_queued_offline(self):
        sim = Simulator(seed=1)
        net, broker, (pub, sub) = build(sim, 2, clean_session=False, keepalive_s=0)
        got = []
        pub.connect()
        sub.connect()
        sim.run(until=0.5)
        sub.subscribe("t", qos=1, handler=lambda t, p, q, r: got.append(p))
        sim.run(until=1.0)
        sub.disconnect()
        sim.run(until=2.0)
        pub.publish("t", b"qos0-lost", qos=0)
        sim.run(until=3.0)
        sub.connect()
        sim.run(until=10.0)
        assert got == []


class TestAuthorization:
    def make_acl_broker(self, sim):
        def authorizer(session, action, topic):
            # Clients may only touch topics under their own farm prefix.
            farm = session.username or ""
            return topic.startswith(f"{farm}/")

        net = Network(sim)
        broker = MqttBroker(sim, "broker", authorizer=authorizer)
        net.add_node(broker)
        return net, broker

    def test_cross_farm_publish_denied(self):
        sim = Simulator(seed=1)
        net, broker = self.make_acl_broker(sim)
        attacker = MqttClient(sim, "atk", "broker", username="farmB")
        victim = MqttClient(sim, "vic", "broker", username="farmA")
        for c in (attacker, victim):
            net.add_node(c)
            net.connect(c.address, "broker", lossless())
            c.connect()
        sim.run(until=0.5)
        got = []
        victim.subscribe("farmA/commands", handler=lambda t, p, q, r: got.append(p))
        sim.run(until=1.0)
        attacker.publish("farmA/commands", b"open-valve")
        victim.publish("farmA/commands", b"legit")
        sim.run(until=2.0)
        assert got == [b"legit"]
        assert broker.stats.denied_publish == 1

    def test_cross_farm_subscribe_denied(self):
        sim = Simulator(seed=1)
        net, broker = self.make_acl_broker(sim)
        spy = MqttClient(sim, "spy", "broker", username="farmB")
        farmer = MqttClient(sim, "farmer", "broker", username="farmA")
        for c in (spy, farmer):
            net.add_node(c)
            net.connect(c.address, "broker", lossless())
            c.connect()
        sim.run(until=0.5)
        leaked = []
        spy.subscribe("farmA/yield", handler=lambda t, p, q, r: leaked.append(p))
        sim.run(until=1.0)
        farmer.publish("farmA/yield", b"4.2t/ha")
        sim.run(until=2.0)
        assert leaked == []
        assert broker.stats.denied_subscribe == 1
        assert "farmA/yield" not in spy.granted


class TestBrokerRestart:
    def test_restart_drops_sessions_and_counts_abandoned_flights(self):
        sim = Simulator(seed=1)
        net, broker, (pub, sub) = build(sim)
        got = []
        pub.connect()
        sub.connect()
        sub.subscribe("t/#", qos=1, handler=lambda *a: got.append(a))
        sim.run(until=2.0)
        # Partition the subscriber so a QoS 1 flight to it stays unacked.
        net.partition("c1", "broker")
        pub.publish("t/x", b"hello", qos=1)
        sim.run(until=3.0)
        session = broker.sessions["c1"]
        assert session.outbox.in_flight_count == 1
        broker.restart()
        assert broker.stats.restarts == 1
        assert broker.sessions == {}
        assert broker.connected_clients() == []
        # The abandoned flight landed in the outbox's expired count.
        assert session.outbox.expired == 1

    def test_restart_preserves_retained_messages(self):
        sim = Simulator(seed=1)
        net, broker, (pub, sub) = build(sim)
        pub.connect()
        sim.run(until=1.0)
        pub.publish("t/state", b"42", retain=True)
        sim.run(until=2.0)
        broker.restart()
        got = []
        sub.connect()
        sub.subscribe("t/#", handler=lambda t, p, q, r: got.append(p))
        sim.run(until=4.0)
        assert got == [b"42"]

    def test_client_learns_of_restart_from_disconnect_and_reconnects(self):
        """The broker answers packets from unknown peers with a DISCONNECT
        (the TCP RST of the model); the client must tear down, back off and
        re-establish its session — including its subscriptions."""
        sim = Simulator(seed=1)
        net, broker, (c, other) = build(sim)
        got = []
        c.connect()
        c.subscribe("t/#", handler=lambda t, p, q, r: got.append(p))
        sim.run(until=2.0)
        assert c.connected
        broker.restart()
        # The client's next keepalive ping hits an unknown-peer DISCONNECT.
        c._ping()
        sim.run(until=120.0)
        assert c.connected
        assert c.stats.connects == 2
        assert broker.connected_clients() == ["c0"]
        # Subscriptions were re-established on the fresh session.
        other.connect()
        sim.run(until=125.0)
        other.publish("t/y", b"post-restart")
        sim.run(until=130.0)
        assert got == [b"post-restart"]


class TestReconnectBackoff:
    def test_backoff_grows_and_is_jittered(self):
        sim = Simulator(seed=1)
        net, broker, (c,) = build(sim, 1)
        delays = []
        original_schedule = sim.schedule

        def spy(delay, callback, args=(), **kwargs):
            if kwargs.get("label") == "c0:reconnect":
                delays.append(delay)
            return original_schedule(delay, callback, args, **kwargs)

        sim.schedule = spy
        net.partition("c0", "broker")  # every CONNECT times out
        c.connect()
        sim.run(until=300.0)
        assert len(delays) >= 4
        # Base doubles 1 → 2 → 4 → 8...; jitter adds up to +25% on top.
        for i, delay in enumerate(delays):
            base = min(2.0 ** i, c.reconnect_backoff_max_s)
            assert base <= delay <= base * 1.25
        # Jitter actually engaged (a plain doubling would sit on the base).
        assert any(delay > min(2.0 ** i, 60.0) for i, delay in enumerate(delays))

    def test_backoff_caps_at_maximum(self):
        sim = Simulator(seed=2)
        net, broker, (c,) = build(sim, 1)
        net.partition("c0", "broker")
        c.connect()
        sim.run(until=1200.0)
        assert c._reconnect_backoff_s <= c.reconnect_backoff_max_s

    def test_backoff_resets_after_successful_connect(self):
        sim = Simulator(seed=3)
        net, broker, (c,) = build(sim, 1)
        net.partition("c0", "broker")
        c.connect()
        sim.run(until=100.0)
        assert c._reconnect_backoff_s > c.reconnect_backoff_initial_s
        net.heal("c0", "broker")
        sim.run(until=300.0)
        assert c.connected
        assert c._reconnect_backoff_s == c.reconnect_backoff_initial_s

    def test_two_clients_draw_independent_jitter(self):
        """Backoff jitter comes from per-client streams: a shared outage
        must not produce lockstep reconnect storms."""
        sim = Simulator(seed=4)
        net, broker, clients = build(sim)
        delays = {"c0": [], "c1": []}
        original_schedule = sim.schedule

        def spy(delay, callback, args=(), **kwargs):
            label = kwargs.get("label", "")
            if label.endswith(":reconnect"):
                delays[label.split(":")[0]].append(delay)
            return original_schedule(delay, callback, args, **kwargs)

        sim.schedule = spy
        net.partition("c0", "broker")
        net.partition("c1", "broker")
        for c in clients:
            c.connect()
        sim.run(until=200.0)
        assert delays["c0"] and delays["c1"]
        assert delays["c0"] != delays["c1"]

    def test_delay_sequence_restarts_from_initial_after_connack(self):
        """Pin the escalation across two outages: the CONNACK between them
        resets the whole sequence (1, 2, 4, ... twice over), it does not
        resume where the first outage left off (..., 8, 16)."""
        sim = Simulator(seed=5)
        net, broker, (c,) = build(sim, 1)
        delays = []
        original_schedule = sim.schedule

        def spy(delay, callback, args=(), **kwargs):
            if kwargs.get("label") == "c0:reconnect":
                delays.append(delay)
            return original_schedule(delay, callback, args, **kwargs)

        sim.schedule = spy
        net.partition("c0", "broker")
        c.connect()
        sim.run(until=60.0)  # CONNECT timeouts are 10 s: ~3 retries escalate
        assert len(delays) >= 2
        net.heal("c0", "broker")
        sim.run(until=120.0)
        assert c.connected
        # Everything scheduled before the session came back (including the
        # in-flight retry that straddled the heal) belongs to chain #1.
        first_outage = len(delays)
        net.partition("c0", "broker")
        sim.run(until=300.0)
        second = delays[first_outage:]
        assert len(second) >= 2
        # Both sequences follow base-2^i × jitter from delay #0 again.
        for sequence in (delays[:first_outage], second):
            for i, delay in enumerate(sequence):
                base = min(2.0 ** i, c.reconnect_backoff_max_s)
                assert base <= delay <= base * 1.25, (sequence, i)

    def test_concurrent_triggers_do_not_fork_reconnect_chains(self):
        """A CONNACK timeout racing a broker Disconnect must leave exactly
        one pending reconnect chain — duplicates double-escalate the
        backoff and double the CONNECT load on a struggling broker."""
        sim = Simulator(seed=6)
        net, broker, (c,) = build(sim, 1)
        fired = []
        original_schedule = sim.schedule

        def spy(delay, callback, args=(), **kwargs):
            if kwargs.get("label") == "c0:reconnect":
                fired.append((sim.now, delay))
            return original_schedule(delay, callback, args, **kwargs)

        sim.schedule = spy
        net.partition("c0", "broker")
        c.connect()
        sim.run(until=5.0)
        # Simulate the race: a second failure signal lands while the first
        # retry is already pending.
        c._schedule_reconnect()
        c._schedule_reconnect()
        sim.run(until=100.0)
        # Never two live timers: consecutive schedules are spaced by at
        # least the earlier delay (a forked chain would interleave).
        for (t0, d0), (t1, _) in zip(fired, fired[1:]):
            assert t1 >= t0 + d0
        # And the escalation stayed single-chain (2^i, not 4^i).
        for i, (_, delay) in enumerate(fired):
            base = min(2.0 ** i, c.reconnect_backoff_max_s)
            assert base <= delay <= base * 1.25


class TestWireSizes:
    def test_publish_size_scales_with_payload(self):
        from repro.mqtt.packets import Publish

        small = Publish(topic="t", payload=b"x")
        large = Publish(topic="t", payload=b"x" * 100)
        assert large.wire_size() - small.wire_size() == 99

    def test_qos_adds_packet_id_bytes(self):
        from repro.mqtt.packets import Publish

        q0 = Publish(topic="t", payload=b"x", qos=0)
        q1 = Publish(topic="t", payload=b"x", qos=1)
        assert q1.wire_size() == q0.wire_size() + 2

    def test_connect_size_includes_will(self):
        plain = Connect(client_id="c")
        with_will = Connect(client_id="c", will_topic="w", will_payload=b"gone")
        assert with_will.wire_size() > plain.wire_size()
