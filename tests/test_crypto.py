"""Tests for the simulation-grade crypto: KDF, DH, AEAD, replay, channels."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.security.crypto import (
    AeadError,
    DhKeyPair,
    MODP_PRIME,
    ReplayWindow,
    SecureChannel,
    SecureChannelPair,
    hkdf,
    open_payload,
    seal_payload,
    shared_secret,
)
from repro.simkernel.rng import RngRegistry


def streams(seed=0):
    reg = RngRegistry(seed)
    return reg.stream("a"), reg.stream("b")


class TestHkdf:
    def test_deterministic(self):
        assert hkdf(b"ikm", 32, b"salt", b"info") == hkdf(b"ikm", 32, b"salt", b"info")

    def test_different_info_different_keys(self):
        assert hkdf(b"ikm", 32, b"s", b"a") != hkdf(b"ikm", 32, b"s", b"b")

    def test_length_control(self):
        for n in (1, 16, 32, 33, 64, 100):
            assert len(hkdf(b"ikm", n)) == n

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            hkdf(b"ikm", 0)
        with pytest.raises(ValueError):
            hkdf(b"ikm", 256 * 32)

    def test_rfc5869_test_vector_1(self):
        # RFC 5869 A.1 (SHA-256).
        ikm = bytes.fromhex("0b" * 22)
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        okm = hkdf(ikm, 42, salt, info)
        assert okm == bytes.fromhex(
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )


class TestDh:
    def test_shared_secret_agrees(self):
        a, b = streams()
        alice, bob = DhKeyPair(a), DhKeyPair(b)
        assert alice.shared_with(bob.public) == bob.shared_with(alice.public)

    def test_different_pairs_different_secrets(self):
        a, b = streams(1)
        c, d = streams(2)
        s1 = DhKeyPair(a).shared_with(DhKeyPair(b).public)
        s2 = DhKeyPair(c).shared_with(DhKeyPair(d).public)
        assert s1 != s2

    def test_invalid_public_rejected(self):
        a, _ = streams()
        key = DhKeyPair(a)
        for bad in (0, 1, MODP_PRIME - 1, MODP_PRIME):
            with pytest.raises(ValueError):
                shared_secret(key.private, bad)

    def test_secret_fixed_width(self):
        a, b = streams()
        assert len(DhKeyPair(a).shared_with(DhKeyPair(b).public)) == 256


class TestAead:
    KEYS = (b"e" * 32, b"m" * 32)
    NONCE = b"n" * 12

    def test_roundtrip(self):
        sealed = seal_payload(*self.KEYS, self.NONCE, b"hello", b"ad")
        assert open_payload(*self.KEYS, sealed, b"ad") == b"hello"

    def test_ciphertext_differs_from_plaintext(self):
        sealed = seal_payload(*self.KEYS, self.NONCE, b"hello world")
        assert b"hello world" not in sealed

    def test_wrong_key_pair_fails(self):
        sealed = seal_payload(*self.KEYS, self.NONCE, b"secret")
        with pytest.raises(AeadError):
            open_payload(b"x" * 32, b"y" * 32, sealed)

    def test_wrong_enc_key_with_right_mac_yields_garbage(self):
        # Encrypt-then-MAC authenticates the ciphertext, not the enc key;
        # a wrong enc key passes the MAC but decrypts to noise.  Channel
        # keys are always derived together, so this cannot happen in use.
        sealed = seal_payload(*self.KEYS, self.NONCE, b"secret")
        assert open_payload(b"x" * 32, self.KEYS[1], sealed) != b"secret"

    def test_wrong_mac_key_fails(self):
        sealed = seal_payload(*self.KEYS, self.NONCE, b"secret")
        with pytest.raises(AeadError):
            open_payload(self.KEYS[0], b"x" * 32, sealed)

    def test_bitflip_detected(self):
        sealed = bytearray(seal_payload(*self.KEYS, self.NONCE, b"secret"))
        sealed[14] ^= 0x01
        with pytest.raises(AeadError):
            open_payload(*self.KEYS, bytes(sealed))

    def test_wrong_ad_fails(self):
        sealed = seal_payload(*self.KEYS, self.NONCE, b"secret", b"topic-a")
        with pytest.raises(AeadError):
            open_payload(*self.KEYS, sealed, b"topic-b")

    def test_truncated_fails(self):
        sealed = seal_payload(*self.KEYS, self.NONCE, b"secret")
        with pytest.raises(AeadError):
            open_payload(*self.KEYS, sealed[:10])

    def test_bad_nonce_length(self):
        with pytest.raises(ValueError):
            seal_payload(*self.KEYS, b"short", b"x")

    def test_empty_plaintext(self):
        sealed = seal_payload(*self.KEYS, self.NONCE, b"")
        assert open_payload(*self.KEYS, sealed) == b""

    @given(st.binary(max_size=300), st.binary(max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_property_roundtrip(self, plaintext, ad):
        sealed = seal_payload(*self.KEYS, self.NONCE, plaintext, ad)
        assert open_payload(*self.KEYS, sealed, ad) == plaintext


class TestReplayWindow:
    def test_in_order_accepted(self):
        window = ReplayWindow()
        assert all(window.check_and_update(i) for i in range(10))

    def test_duplicate_rejected(self):
        window = ReplayWindow()
        assert window.check_and_update(5)
        assert not window.check_and_update(5)
        assert window.rejected == 1

    def test_out_of_order_within_window(self):
        window = ReplayWindow(window_size=8)
        assert window.check_and_update(10)
        assert window.check_and_update(7)
        assert not window.check_and_update(7)

    def test_too_old_rejected(self):
        window = ReplayWindow(window_size=8)
        assert window.check_and_update(100)
        assert not window.check_and_update(91)  # offset 9 >= 8

    def test_negative_rejected(self):
        assert not ReplayWindow().check_and_update(-1)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            ReplayWindow(0)

    @given(st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_property_no_sequence_accepted_twice(self, sequence):
        window = ReplayWindow()
        accepted = []
        for seq in sequence:
            if window.check_and_update(seq):
                accepted.append(seq)
        assert len(accepted) == len(set(accepted))


class TestSecureChannel:
    def make_pair(self, seed=0):
        a, b = streams(seed)
        return SecureChannelPair(a, b)

    def test_roundtrip_between_endpoints(self):
        pair = self.make_pair()
        wire = pair.endpoint_a.seal(b"telemetry", b"topic")
        assert pair.endpoint_b.open(wire, b"topic") == b"telemetry"

    def test_replayed_message_rejected(self):
        pair = self.make_pair()
        wire = pair.endpoint_a.seal(b"cmd:open-valve", b"t")
        assert pair.endpoint_b.open(wire, b"t") == b"cmd:open-valve"
        assert pair.endpoint_b.open(wire, b"t") is None
        assert pair.endpoint_b.stats.replays_rejected == 1

    def test_cross_channel_isolation(self):
        pair1 = self.make_pair(seed=1)
        pair2 = self.make_pair(seed=2)
        wire = pair1.endpoint_a.seal(b"secret", b"t")
        assert pair2.endpoint_b.open(wire, b"t") is None
        assert pair2.endpoint_b.stats.auth_failures == 1

    def test_directional_keys(self):
        """a->b traffic cannot be decrypted as if it were b->a traffic."""
        pair = self.make_pair()
        wire = pair.endpoint_a.seal(b"x", b"t")
        assert pair.endpoint_a.open(wire, b"t") is None

    def test_topic_binding(self):
        pair = self.make_pair()
        wire = pair.endpoint_a.seal(b"x", b"swamp/farmA/attrs/p1")
        assert pair.endpoint_b.open(wire, b"swamp/farmB/attrs/p1") is None

    def test_garbage_rejected(self):
        pair = self.make_pair()
        assert pair.endpoint_b.open(b"short", b"t") is None
        assert pair.endpoint_b.open(b"\x00" * 100, b"t") is None

    def test_mqtt_hooks(self):
        pair = self.make_pair()
        payload, wire = pair.endpoint_a.mqtt_encoder("t/x", b"data")
        assert payload == wire  # ciphertext is the payload: end-to-end
        assert b"data" not in wire
        assert pair.endpoint_b.mqtt_decoder_from_wire("t/x", wire) == b"data"

    def test_energy_cost_positive_and_linear(self):
        small = SecureChannel.energy_cost_j(10)
        large = SecureChannel.energy_cost_j(1000)
        assert 0 < small < large

    def test_overhead_constant(self):
        pair = self.make_pair()
        wire = pair.endpoint_a.seal(b"x" * 50, b"t")
        assert len(wire) == 50 + SecureChannel.overhead_bytes()


class TestEndToEndMqttEncryption:
    def test_eavesdropper_sees_only_ciphertext(self):
        from repro.mqtt import MqttBroker, MqttClient
        from repro.network import Network, RadioModel
        from repro.simkernel import Simulator

        sim = Simulator(seed=5)
        net = Network(sim)
        broker = MqttBroker(sim, "broker")
        net.add_node(broker)
        model = RadioModel("t", 0.01, 1e6, 0.0)
        publisher = MqttClient(sim, "pub", "broker")
        subscriber = MqttClient(sim, "sub", "broker")
        for client in (publisher, subscriber):
            net.add_node(client)
            net.connect(client.address, "broker", model)

        pair = SecureChannelPair(sim.rng.stream("dev"), sim.rng.stream("plat"))
        publisher.payload_encoder = pair.endpoint_a.mqtt_encoder
        subscriber.payload_decoder = pair.endpoint_b.mqtt_decoder_from_wire

        tapped = []
        net.link("pub", "broker").add_tap(lambda p: tapped.append(p.observable()))

        received = []
        publisher.connect()
        subscriber.connect()
        sim.run(until=1.0)
        subscriber.subscribe("farm/yield", handler=lambda t, p, q, r: received.append(p))
        sim.run(until=2.0)
        publisher.publish("farm/yield", b"4.2 t/ha")
        sim.run(until=3.0)

        assert received == [b"4.2 t/ha"]
        wire_frames = [t for t in tapped if isinstance(t, bytes)]
        assert wire_frames, "tap should have seen the publish wire bytes"
        assert all(b"4.2" not in frame for frame in wire_frames)
