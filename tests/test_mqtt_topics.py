"""Topic name/filter validation and matching tests (MQTT 3.1.1 rules)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mqtt.topics import TopicError, topic_matches, validate_filter, validate_topic


class TestValidateTopic:
    def test_plain_topic_ok(self):
        assert validate_topic("farm/a/soil") == "farm/a/soil"

    def test_empty_rejected(self):
        with pytest.raises(TopicError):
            validate_topic("")

    def test_wildcards_rejected_in_names(self):
        for bad in ("a/+/b", "a/#", "+", "#"):
            with pytest.raises(TopicError):
                validate_topic(bad)

    def test_nul_rejected(self):
        with pytest.raises(TopicError):
            validate_topic("a\x00b")

    def test_empty_levels_allowed(self):
        assert validate_topic("a//b") == "a//b"


class TestValidateFilter:
    def test_wildcards_ok(self):
        for good in ("a/+/b", "a/#", "+", "#", "+/+", "a/+/#"):
            assert validate_filter(good) == good

    def test_hash_must_be_last(self):
        with pytest.raises(TopicError):
            validate_filter("a/#/b")

    def test_hash_must_be_whole_level(self):
        with pytest.raises(TopicError):
            validate_filter("a/b#")

    def test_plus_must_be_whole_level(self):
        with pytest.raises(TopicError):
            validate_filter("a/b+/c")

    def test_empty_rejected(self):
        with pytest.raises(TopicError):
            validate_filter("")


class TestMatching:
    @pytest.mark.parametrize(
        "topic_filter,topic,expected",
        [
            ("a/b/c", "a/b/c", True),
            ("a/b/c", "a/b/d", False),
            ("a/+/c", "a/b/c", True),
            ("a/+/c", "a/x/c", True),
            ("a/+/c", "a/b/c/d", False),
            ("a/#", "a/b/c/d", True),
            ("a/#", "a", True),  # '#' includes the parent level
            ("#", "a/b", True),
            ("+", "a", True),
            ("+", "a/b", False),
            ("+/+", "a/b", True),
            ("sport/+/player1", "sport/tennis/player1", True),
            ("a/b", "a/b/c", False),
            ("a/b/c", "a/b", False),
            ("a//b", "a//b", True),
            ("a/+/b", "a//b", True),  # '+' matches an empty level
        ],
    )
    def test_cases(self, topic_filter, topic, expected):
        assert topic_matches(topic_filter, topic) is expected

    def test_dollar_topics_hidden_from_leading_wildcards(self):
        assert not topic_matches("#", "$SYS/broker/load")
        assert not topic_matches("+/broker/load", "$SYS/broker/load")
        assert topic_matches("$SYS/#", "$SYS/broker/load")

    @given(st.lists(st.text(alphabet="abcz09-_", min_size=1, max_size=6), min_size=1, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_property_exact_filter_matches_itself(self, levels):
        topic = "/".join(levels)
        assert topic_matches(topic, topic)

    @given(st.lists(st.text(alphabet="abcz09", min_size=1, max_size=4), min_size=1, max_size=5))
    @settings(max_examples=100, deadline=None)
    def test_property_hash_matches_everything_nondollar(self, levels):
        topic = "/".join(levels)
        assert topic_matches("#", topic)

    @given(st.lists(st.text(alphabet="abc", min_size=1, max_size=3), min_size=2, max_size=5))
    @settings(max_examples=100, deadline=None)
    def test_property_plus_substitution_matches(self, levels):
        topic = "/".join(levels)
        for i in range(len(levels)):
            with_plus = levels.copy()
            with_plus[i] = "+"
            assert topic_matches("/".join(with_plus), topic)
