"""Seed-pinned pilot reports + platform-runtime assembly invariants.

The expected report dicts below were captured from the pre-refactor
monolithic ``PilotRunner.__init__`` at the same seeds.  The builder-stage
refactor must keep every field bit-identical (floats compared exactly:
the event order, RNG draws and arithmetic must not change at all), and
enabling metrics must not perturb the run either.

Re-pin note: the cloud fixture's ``measures_processed``/
``broker_publishes_in`` moved by one (3055/3071 → 3054/3070) when the
link layer's FIFO bug was fixed — previously a small jitter draw could
let a later frame overtake an earlier one on the same link, and the
cloud fixture's WAN happened to deliver one message in reversed order.
The clamped (correct) arrival order is pinned here.

Re-pin note (batched sampling, Tier B): when ``batched_sampling`` became
the pilot default, device reports moved from per-device phase-shifted
firmware-loop events to one sweep event per (farm, report-interval)
group with a single group phase drawn from the ``sweep:<farm>`` stream
(see repro/devices/sweep.py).  Event timestamps and RNG consumption
legitimately changed, which shifted sampling-dependent report fields:
fog ``irrigation_m3`` 640.79… → 641.49…, ``measures_processed`` 3063 →
3064, ``broker_publishes_in``/``replicator_synced`` 3079/3078 →
3082/3082; cloud ``irrigation_m3`` 607.29… → 614.49…,
``relative_yield`` 1.0 → 0.99814; mobile_fog_pivot ``irrigation_m3``
1715.1 → 1669.0, ``commands_sent`` 6 → 5, ``relative_yield`` 1.0 →
0.99973.  The fog fixture's WAN congestion burst (the one that
deterministically opened the uplink breaker once under supervision) no
longer occurs with batched report timing, so SUPERVISED_DELTA is now
empty.  All fields remain within the same agronomic envelope; only the
schedule changed, not the physics.
"""

import dataclasses

import pytest

from repro.core.deployment import DeploymentKind
from repro.core.pilot import PilotConfig, PilotRunner
from repro.core.security_profile import SecurityConfig
from repro.physics.crop import SOYBEAN
from repro.physics.soil import LOAM
from repro.physics.weather import BARREIRAS_MATOPIBA

BASE = dict(
    name="pin", farm="pinfarm", climate=BARREIRAS_MATOPIBA, crop=SOYBEAN,
    soil=LOAM, rows=2, cols=2, spatial_cv=0.1, season_days=10,
    start_day_of_year=150, initial_theta=0.20,
    deployment=DeploymentKind.FOG, irrigation_kind="valves",
    scheduler_kind="smart", seed=3,
)

FIXTURES = {
    "fog": dict(BASE),
    "cloud": dict(BASE, deployment=DeploymentKind.CLOUD_ONLY, seed=7,
                  security=SecurityConfig(auth=True)),
    "mobile_fog_pivot": dict(BASE, deployment=DeploymentKind.MOBILE_FOG,
                             irrigation_kind="pivot", rows=3, cols=3, seed=11),
}

PINNED = {
    "fog": {
        "name": "pin", "season_days": 10,
        "irrigation_m3": 641.4999999999998,
        "irrigation_mm_per_ha": 16.037499999999994,
        "rain_mm": 2.714988640705466,
        "pump_kwh": 104.88525000000017,
        "pivot_move_kwh": 0.0,
        "relative_yield": 1.0, "yield_t": 16.8,
        "decision_cycles": 10, "decisions": 40, "commands_sent": 8,
        "skipped_no_data": 0, "skipped_stale": 0,
        "measures_processed": 3064, "measures_dropped_unprovisioned": 0,
        "broker_publishes_in": 3082, "broker_denied": 0,
        "devices_dead": 0,
        "replicator_synced": 3082, "replicator_dropped": 0,
        "alerts": 0, "quarantined_devices": 0,
        "resilience_restarts": 0, "breaker_opens": 0,
        "degraded_episodes": 0, "reconciled_decisions": 0,
    },
    "cloud": {
        "name": "pin", "season_days": 10,
        "irrigation_m3": 614.4999999999999,
        "irrigation_mm_per_ha": 15.362499999999997,
        "rain_mm": 4.106462029682147,
        "pump_kwh": 100.4707500000002,
        "pivot_move_kwh": 0.0,
        "relative_yield": 0.9981380238299484,
        "yield_t": 16.768718800343134,
        "decision_cycles": 10, "decisions": 40, "commands_sent": 8,
        "skipped_no_data": 0, "skipped_stale": 0,
        "measures_processed": 3054, "measures_dropped_unprovisioned": 0,
        "broker_publishes_in": 3070, "broker_denied": 0,
        "devices_dead": 0,
        "replicator_synced": 0, "replicator_dropped": 0,
        "alerts": 0, "quarantined_devices": 0,
        "resilience_restarts": 0, "breaker_opens": 0,
        "degraded_episodes": 0, "reconciled_decisions": 0,
    },
    "mobile_fog_pivot": {
        "name": "pin", "season_days": 10,
        "irrigation_m3": 1669.0,
        "irrigation_mm_per_ha": 18.544444444444444,
        "rain_mm": 0.0,
        "pump_kwh": 272.8815,
        "pivot_move_kwh": 27.00000000000002,
        "relative_yield": 0.9997272912202999,
        "yield_t": 37.78969160812734,
        "decision_cycles": 10, "decisions": 90, "commands_sent": 5,
        "skipped_no_data": 0, "skipped_stale": 0,
        "measures_processed": 5215, "measures_dropped_unprovisioned": 0,
        "broker_publishes_in": 5227, "broker_denied": 0,
        "devices_dead": 0,
        "replicator_synced": 5227, "replicator_dropped": 0,
        "alerts": 0, "quarantined_devices": 0,
        "resilience_restarts": 0, "breaker_opens": 0,
        "degraded_episodes": 0, "reconciled_decisions": 0,
    },
}

EXPECTED_START_ORDER = [
    "security.stack",
    "platform.tiers",
    "messaging.agent",
    "physics.environment",
    "devices.fleet",
    "devices.provisioning",
    "decision.scheduler",
    "security.detection",
    "security.command_tap",
]


def run_fixture(name, **overrides):
    config = PilotConfig(**{**FIXTURES[name], **overrides})
    runner = PilotRunner(config)
    runner.run_season()
    return runner


@pytest.mark.parametrize("fixture", sorted(FIXTURES))
def test_reports_bit_identical_to_pre_refactor_baseline(fixture):
    runner = run_fixture(fixture)
    assert dataclasses.asdict(runner.report()) == PINNED[fixture]


# What enabling the resilience layer changes about each pinned fault-free
# fixture: nothing platform-visible.  Under legacy per-device sampling the
# fog fixture's WAN hit one genuine congestion burst (~t=468540: three
# consecutive sync batches expired) that deterministically opened the
# uplink breaker once; batched sampling spreads the sync load differently
# and the burst no longer occurs, so both deltas are now empty.  The
# supervisor's own idle path (watchdog checks over healthy services) never
# perturbs the event schedule, which is why every report field must still
# match PINNED exactly.
SUPERVISED_DELTA = {
    "fog": {},
    "cloud": {},  # no replicator, no uplink breaker
}


@pytest.mark.parametrize("fixture", ["fog", "cloud"])
def test_idle_supervision_does_not_change_the_run(fixture):
    from repro.resilience import ResilienceConfig

    supervised = run_fixture(fixture, resilience=ResilienceConfig())
    expected = {**PINNED[fixture], **SUPERVISED_DELTA[fixture]}
    assert dataclasses.asdict(supervised.report()) == expected
    assert supervised.supervisor is not None
    assert all(s == "healthy" for s in supervised.supervisor.states().values())
    assert supervised.report().resilience_restarts == 0


@pytest.mark.parametrize("fixture", ["fog", "cloud"])
def test_disabling_metrics_does_not_change_the_run(fixture):
    with_metrics = dataclasses.asdict(run_fixture(fixture).report())
    without = dataclasses.asdict(
        run_fixture(fixture, metrics_enabled=False).report()
    )
    assert with_metrics == without == PINNED[fixture]


def test_runtime_assembles_services_in_monolith_order():
    runner = PilotRunner(PilotConfig(**FIXTURES["fog"]))
    assert list(runner.runtime.states()) == EXPECTED_START_ORDER
    order = [s.name for s in runner.runtime.registry.start_order()]
    assert order == EXPECTED_START_ORDER
    assert all(state == "started" for state in runner.runtime.states().values())


def test_runtime_shuts_down_when_run_ends():
    runner = run_fixture("fog")
    assert all(state == "shutdown" for state in runner.runtime.states().values())


def test_runtime_exposes_layer_objects_via_provides():
    runner = PilotRunner(PilotConfig(**FIXTURES["fog"]))
    assert runner.runtime.provided("security.stack") is runner.security
    assert runner.runtime.provided("messaging.agent") is runner.agent
    assert runner.runtime.provided("physics.environment") is runner.field
    assert runner.runtime.provided("decision.scheduler") is runner.scheduler
    tiers = runner.runtime.provided("platform.tiers")
    assert tiers["fog"] is runner.fog
    assert tiers["broker_address"] == runner.broker_address


def test_metrics_snapshot_covers_at_least_five_subsystems():
    runner = run_fixture("fog")
    snapshot = runner.metrics_snapshot()
    assert snapshot["enabled"] is True
    counters = snapshot["counters"]
    active_prefixes = {
        name.split(".", 1)[0]
        for name, value in counters.items() if value > 0
    }
    assert {"mqtt", "context", "fog", "scheduler", "iota"} <= active_prefixes
    gauges = snapshot["gauges"]
    assert gauges["simkernel.events_executed"] > 0
    assert gauges["simkernel.events_per_sec"] > 0
    # A few spot checks tying instruments to the pinned report.
    assert runner.metrics.total("iota.measures_processed") == 3064
    assert runner.metrics.total("mqtt.publishes_in") == 3082
    assert runner.metrics.total("scheduler.commands_sent") == 8
    assert runner.metrics.total("fog.updates_synced") == 3082


def test_disabled_metrics_registry_is_inert():
    runner = run_fixture("fog", metrics_enabled=False)
    assert runner.metrics.enabled is False
    snapshot = runner.metrics_snapshot()
    assert snapshot["enabled"] is False
    assert snapshot["counters"] == {}
    assert snapshot["gauges"] == {}
