"""Checkpoint/restore: the pinned-fixture bit-identity guarantee.

The headline contract (ISSUE 6): for each pinned pilot fixture,
``snapshot`` at mid-season, restore **in a fresh process**, run to the
end — the report is byte-identical to the pinned uninterrupted run.  The
fresh process matters: it proves the checkpoint file carries everything
the run needs (no hidden in-process state).
"""

import dataclasses
import json
import os
import subprocess
import sys

import pytest

from repro.core import checkpoint as cp
from repro.core.pilot import PilotConfig, PilotRunner
from repro.core.pilots import PILOT_BUILDERS
from repro.core.run import RunOptions, run
from repro.simkernel.clock import DAY

from tests.test_pilot_pinned import FIXTURES, PINNED

TINY_MATOPIBA = dict(seed=3, rows=2, cols=2, season_days=4, probe_interval_s=7200.0)


def _fresh_process_restore(path) -> dict:
    """Run restore_and_resume(path) in a brand-new interpreter."""
    code = (
        "import json, sys; "
        "from repro.core.checkpoint import restore_and_resume; "
        "print(json.dumps(restore_and_resume(sys.argv[1])))"
    )
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", code, str(path)],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


@pytest.mark.parametrize("fixture", sorted(FIXTURES))
def test_restore_in_fresh_process_is_byte_identical(fixture, tmp_path):
    """snapshot(mid-season) → fresh-process restore → run to end == PINNED."""
    config = PilotConfig(**FIXTURES[fixture])
    runner = PilotRunner(config)
    runner.run_until(5 * DAY)
    path = tmp_path / f"{fixture}.ck"
    cp.save_checkpoint(cp.snapshot(runner), str(path))
    report = _fresh_process_restore(path)
    assert report == PINNED[fixture]


class TestSnapshotRestore:
    def _paused_runner(self, barrier_days=2):
        runner = PILOT_BUILDERS["matopiba"](**TINY_MATOPIBA)
        runner.run_until(barrier_days * DAY)
        return runner

    def test_in_process_round_trip(self, tmp_path):
        baseline = PILOT_BUILDERS["matopiba"](**TINY_MATOPIBA)
        expected = dataclasses.asdict(baseline.run_season())

        runner = self._paused_runner()
        recipe = cp.RunRecipe(pilot="matopiba", builder_kwargs=TINY_MATOPIBA)
        path = tmp_path / "run.ck"
        cp.save_checkpoint(cp.snapshot(runner, recipe=recipe), str(path))
        assert cp.restore_and_resume(str(path)) == expected

    def test_restore_overlays_original_wall_time(self, tmp_path):
        runner = self._paused_runner()
        ck = cp.snapshot(
            runner, recipe=cp.RunRecipe(pilot="matopiba", builder_kwargs=TINY_MATOPIBA)
        )
        assert ck.kernel.wall_time_s == runner.sim.wall_time_s
        restored = cp.restore(ck)
        assert restored.runner.sim.wall_time_s == ck.kernel.wall_time_s
        assert restored.replay_wall_s > 0.0

    def test_tampered_checkpoint_raises_state_mismatch(self):
        runner = self._paused_runner()
        ck = cp.snapshot(
            runner, recipe=cp.RunRecipe(pilot="matopiba", builder_kwargs=TINY_MATOPIBA)
        )
        ck.kernel.events_executed += 1
        with pytest.raises(cp.CheckpointStateMismatch, match="reconverge"):
            cp.restore(ck)

    def test_unpicklable_config_raises_checkpoint_error(self, tmp_path):
        # cbec's config carries the canal-network supply_gate closure; a
        # config-mode recipe must fail loudly, pointing at the named-pilot
        # alternative.
        runner = PILOT_BUILDERS["cbec"](seed=1)
        runner.run_until(DAY)
        with pytest.raises(cp.CheckpointError, match="supply_gate"):
            cp.save_checkpoint(cp.snapshot(runner), str(tmp_path / "bad.ck"))

    def test_closure_pilot_restores_via_named_recipe(self, tmp_path):
        baseline = PILOT_BUILDERS["cbec"](seed=1)
        baseline.run_days(3)
        expected = dataclasses.asdict(baseline.report())

        runner = PILOT_BUILDERS["cbec"](seed=1)
        runner.run_until(DAY)
        ck = cp.snapshot(
            runner,
            recipe=cp.RunRecipe(pilot="cbec", builder_kwargs=dict(seed=1)),
            horizon_s=3 * DAY,
        )
        path = tmp_path / "cbec.ck"
        cp.save_checkpoint(ck, str(path))
        resumed = cp.resume(cp.restore(str(path)))
        assert dataclasses.asdict(resumed) == expected

    def test_version_gate(self, tmp_path):
        runner = self._paused_runner()
        ck = cp.snapshot(
            runner, recipe=cp.RunRecipe(pilot="matopiba", builder_kwargs=TINY_MATOPIBA)
        )
        ck.version = cp.CHECKPOINT_VERSION + 1
        path = tmp_path / "future.ck"
        cp.save_checkpoint(ck, str(path))
        with pytest.raises(cp.CheckpointError, match="version"):
            cp.load_checkpoint(str(path))

    def test_load_rejects_non_checkpoint_payload(self, tmp_path):
        import pickle

        path = tmp_path / "junk.ck"
        path.write_bytes(pickle.dumps({"not": "a checkpoint"}))
        with pytest.raises(cp.CheckpointError, match="RunCheckpoint"):
            cp.load_checkpoint(str(path))

    def test_saved_checkpoints_are_sealed_blobs(self, tmp_path):
        from repro.store.segment import SEALED_MAGIC, read_sealed

        runner = self._paused_runner()
        path = tmp_path / "sealed.ck"
        cp.save_checkpoint(cp.snapshot(
            runner,
            recipe=cp.RunRecipe(pilot="matopiba", builder_kwargs=TINY_MATOPIBA),
        ), str(path))
        assert path.read_bytes()[: len(SEALED_MAGIC)] == SEALED_MAGIC
        read_sealed(str(path))  # frame verifies end-to-end
        assert cp.load_checkpoint(str(path)).kernel is not None

    @pytest.mark.parametrize("cut_back", [1, 17, 4096])
    def test_torn_checkpoint_is_rejected_loudly(self, tmp_path, cut_back):
        """A crash mid-checkpoint-write must never restore garbage: any
        truncation of the sealed file fails the CRC gate with a typed
        error instead of unpickling a partial stream."""
        runner = self._paused_runner()
        path = tmp_path / "torn.ck"
        cp.save_checkpoint(cp.snapshot(
            runner,
            recipe=cp.RunRecipe(pilot="matopiba", builder_kwargs=TINY_MATOPIBA),
        ), str(path))
        blob = path.read_bytes()
        assert len(blob) > cut_back
        path.write_bytes(blob[:-cut_back])
        with pytest.raises(cp.CheckpointError, match="torn or corrupt"):
            cp.load_checkpoint(str(path))

    def test_corrupted_checkpoint_byte_is_rejected_loudly(self, tmp_path):
        runner = self._paused_runner()
        path = tmp_path / "flipped.ck"
        cp.save_checkpoint(cp.snapshot(
            runner,
            recipe=cp.RunRecipe(pilot="matopiba", builder_kwargs=TINY_MATOPIBA),
        ), str(path))
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(cp.CheckpointError, match="torn or corrupt"):
            cp.load_checkpoint(str(path))


class TestRunOptionsIntegration:
    def test_checkpointed_run_report_matches_plain_run(self, tmp_path):
        plain = run(RunOptions(pilot="matopiba", seed=3,
                               pilot_kwargs=dict(TINY_MATOPIBA)))
        path = tmp_path / "run.ck"
        checkpointed = run(RunOptions(
            pilot="matopiba", seed=3, pilot_kwargs=dict(TINY_MATOPIBA),
            checkpoint=str(path),
        ))
        assert dataclasses.asdict(checkpointed.report) == dataclasses.asdict(plain.report)
        assert path.exists()
        # The file restores to the same end state.
        assert cp.restore_and_resume(str(path)) == dataclasses.asdict(plain.report)

    def test_checkpoint_every_writes_latest_barrier(self, tmp_path):
        path = tmp_path / "run.ck"
        result = run(RunOptions(
            pilot="matopiba", seed=3, pilot_kwargs=dict(TINY_MATOPIBA),
            checkpoint=str(path), checkpoint_every_s=float(DAY),
        ))
        ck = cp.load_checkpoint(str(path))
        # Horizon is season_end_s = 4*DAY + HOUR, so the last interior
        # daily barrier (and hence the surviving write) sits at day 4.
        assert ck.barrier_s == 4 * DAY
        assert cp.restore_and_resume(str(path)) == dataclasses.asdict(result.report)

    def test_restore_option_resumes(self, tmp_path):
        path = tmp_path / "run.ck"
        original = run(RunOptions(
            pilot="matopiba", seed=3, pilot_kwargs=dict(TINY_MATOPIBA),
            checkpoint=str(path),
        ))
        resumed = run(RunOptions(restore=str(path)))
        assert dataclasses.asdict(resumed.report) == dataclasses.asdict(original.report)

    def test_checkpoint_rejected_in_chaos_mode(self, tmp_path):
        with pytest.raises(ValueError, match="chaos"):
            run(RunOptions(chaos=True, checkpoint=str(tmp_path / "x.ck")))

    def test_nonpositive_interval_rejected(self, tmp_path):
        with pytest.raises(cp.CheckpointError, match="positive"):
            run(RunOptions(
                pilot="matopiba", seed=3, pilot_kwargs=dict(TINY_MATOPIBA),
                checkpoint=str(tmp_path / "x.ck"), checkpoint_every_s=0.0,
            ))


class TestCliIntegration:
    def test_parser_accepts_checkpoint_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "matopiba", "--checkpoint", "x.ck", "--checkpoint-every", "86400"]
        )
        assert args.checkpoint == "x.ck"
        assert args.checkpoint_every == 86400.0

    def test_parser_accepts_restore_without_pilot(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["run", "--restore", "x.ck"])
        assert args.restore == "x.ck"
        assert args.pilot == "matopiba"  # unused default

    def test_checkpoint_and_restore_mutually_exclusive(self, tmp_path):
        import io

        from repro.cli import main

        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["run", "matopiba", "--checkpoint", "a", "--restore", "b"],
                 out=io.StringIO())

    def test_cli_restore_round_trip(self, tmp_path):
        import io

        from repro.cli import main

        path = tmp_path / "run.ck"
        original = run(RunOptions(
            pilot="matopiba", seed=3, pilot_kwargs=dict(TINY_MATOPIBA),
            checkpoint=str(path),
        ))
        out = io.StringIO()
        assert main(["run", "--restore", str(path)], out=out) == 0
        text = out.getvalue()
        assert f"restored from {path}" in text
        assert f"{original.report.irrigation_m3:.1f} m3" in text
