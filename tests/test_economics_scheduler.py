"""Tests for season economics and the platform scheduler's direct API."""

import pytest

from repro.agents import DeviceProvision, IoTAgent
from repro.analytics import SeasonEconomics, Tariffs, deployment_benefit_eur, price_season
from repro.context import ContextBroker
from repro.core.pilot import PilotReport
from repro.irrigation import PlatformScheduler, SoilMoisturePolicy
from repro.mqtt import MqttBroker
from repro.network import Network, RadioModel
from repro.simkernel import Simulator


def make_report(**overrides):
    defaults = dict(
        name="r", season_days=120, irrigation_m3=10_000.0, irrigation_mm_per_ha=400.0,
        rain_mm=50.0, pump_kwh=2_000.0, pivot_move_kwh=100.0, relative_yield=0.98,
        yield_t=100.0, decision_cycles=120, decisions=1000, commands_sent=50,
        skipped_no_data=0, skipped_stale=0, measures_processed=10_000,
        measures_dropped_unprovisioned=0, broker_publishes_in=10_000, broker_denied=0,
        devices_dead=0, replicator_synced=10_000, replicator_dropped=0,
        alerts=0, quarantined_devices=0,
    )
    defaults.update(overrides)
    return PilotReport(**defaults)


class TestEconomics:
    def test_price_season_flat_tariff(self):
        economics = price_season(make_report(), Tariffs(0.10, 0.20, 400.0))
        assert economics.water_cost_eur == pytest.approx(1_000.0)
        assert economics.energy_cost_eur == pytest.approx(2_100.0 * 0.20)
        assert economics.revenue_eur == pytest.approx(40_000.0)
        assert economics.gross_margin_eur == pytest.approx(40_000.0 - 1_000.0 - 420.0)

    def test_water_cost_override(self):
        economics = price_season(make_report(), water_cost_override_eur=777.0)
        assert economics.water_cost_eur == 777.0

    def test_default_tariffs(self):
        economics = price_season(make_report())
        assert economics.input_cost_eur > 0
        assert economics.revenue_eur > economics.input_cost_eur

    def test_invalid_tariffs(self):
        with pytest.raises(ValueError):
            Tariffs(water_eur_m3=-0.1)

    def test_deployment_benefit(self):
        smart = price_season(make_report(irrigation_m3=8_000.0))
        fixed = price_season(make_report(irrigation_m3=16_000.0, pump_kwh=4_000.0))
        benefit = deployment_benefit_eur(smart, fixed)
        assert benefit > 0  # same revenue, lower input cost

    def test_benefit_accounts_for_yield_loss(self):
        # Saving water by starving the crop is not a benefit.
        starved = price_season(make_report(irrigation_m3=2_000.0, yield_t=60.0))
        healthy = price_season(make_report(irrigation_m3=10_000.0, yield_t=100.0))
        assert deployment_benefit_eur(starved, healthy) < 0


class SchedulerRig:
    """Scheduler + agent + context, no devices (commands observed directly)."""

    def __init__(self, seed=5, **scheduler_kwargs):
        self.sim = Simulator(seed=seed)
        self.net = Network(self.sim)
        broker = MqttBroker(self.sim, "broker")
        self.net.add_node(broker)
        self.context = ContextBroker(self.sim)
        self.agent = IoTAgent(self.sim, self.net, "iota", "broker", self.context, "farm")
        self.net.connect("iota", "broker", RadioModel("t", 0.01, 1e6, 0.0))
        self.agent.start()
        self.agent.provision(DeviceProvision("v1", "", "urn:Valve:v1", "Valve",
                                             commands=("open",)))
        self.scheduler = PlatformScheduler(
            self.sim, self.context, self.agent, policy=SoilMoisturePolicy(),
            **scheduler_kwargs,
        )
        self.commands = []
        self.agent.command_observers.append(
            lambda d, c, t: self.commands.append((d, c, t))
        )
        self.scheduler.bind_valve(
            "urn:zone:1", "v1",
            theta_fc=0.28, theta_wp=0.13, root_depth_m=0.5,
            depletion_fraction_p=0.5, area_ha=2.0,
        )
        # Let the agent's MQTT connection settle before cycles run.
        self.sim.run(until=1.0)

    def set_moisture(self, theta, entity="urn:zone:1"):
        self.context.ensure_entity(entity, "AgriParcel")
        self.context.update_attributes(entity, {"soilMoisture": theta})


class TestPlatformSchedulerDirect:
    def test_dry_zone_commands_open(self):
        rig = SchedulerRig()
        rig.set_moisture(0.18)  # depletion 50mm > trigger (0.9*37.5)
        rig.scheduler.run_cycle()
        assert len(rig.commands) == 1
        device, command, _t = rig.commands[0]
        assert device == "v1" and command["cmd"] == "open"
        assert command["depth_mm"] > 0

    def test_wet_zone_no_command(self):
        rig = SchedulerRig()
        rig.set_moisture(0.27)
        rig.scheduler.run_cycle()
        assert rig.commands == []
        assert rig.scheduler.stats.decisions == 1

    def test_missing_data_skipped(self):
        rig = SchedulerRig()
        rig.scheduler.run_cycle()  # entity never created
        assert rig.scheduler.stats.skipped_no_data == 1
        assert rig.commands == []

    def test_stale_data_skipped(self):
        rig = SchedulerRig(max_data_age_s=3600.0)
        rig.set_moisture(0.18)
        rig.sim.schedule_at(7200.0, rig.scheduler.run_cycle)
        rig.sim.run(until=7300.0)
        assert rig.scheduler.stats.skipped_stale == 1
        assert rig.commands == []

    def test_non_numeric_moisture_skipped(self):
        rig = SchedulerRig()
        rig.context.ensure_entity("urn:zone:1", "AgriParcel")
        rig.context.update_attributes("urn:zone:1", {"soilMoisture": "broken"})
        rig.scheduler.run_cycle()
        assert rig.scheduler.stats.skipped_no_data == 1

    def test_supply_gate_scales_depth(self):
        captured = {}

        def gate(total_m3):
            captured["requested"] = total_m3
            return 0.5

        rig = SchedulerRig(supply_gate=gate)
        rig.set_moisture(0.18)
        rig.scheduler.run_cycle()
        # Requested volume = depth * 2 ha * 10.
        _d, command, _t = rig.commands[0]
        assert captured["requested"] == pytest.approx(command["depth_mm"] * 2 * 2.0 * 10.0, rel=0.02)
        # Depth halved by the gate (captured request is the ungated depth).

    def test_supply_gate_not_called_when_nothing_needed(self):
        calls = []
        rig = SchedulerRig(supply_gate=lambda m3: calls.append(m3) or 1.0)
        rig.set_moisture(0.27)
        rig.scheduler.run_cycle()
        assert calls == []

    def test_forecast_provider_used(self):
        rig = SchedulerRig(forecast_provider=lambda: 100.0)
        rig.set_moisture(0.18)
        rig.scheduler.run_cycle()
        assert rig.commands == []  # heavy rain forecast: skip
        assert rig.scheduler.decision_log[-1]["reason"] == "rain-expected"

    def test_decision_log_grows(self):
        rig = SchedulerRig()
        rig.set_moisture(0.18)
        rig.scheduler.run_cycle()
        rig.set_moisture(0.27)
        rig.scheduler.run_cycle()
        assert len(rig.scheduler.decision_log) == 2

    def test_cycle_loop_runs_daily(self):
        rig = SchedulerRig()
        rig.set_moisture(0.27)
        rig.scheduler.start()

        def refresh():
            while True:
                rig.set_moisture(0.27)
                yield 43200.0

        rig.sim.spawn(refresh(), "refresh")
        # First cycle at 06:00, then daily: 0.25d, 1.25d, 2.25d, 3.25d.
        rig.sim.run(until=3.5 * 86400.0)
        assert rig.scheduler.stats.cycles == 4


class TestPlatformSchedulerPivot:
    def make_rig(self, uniform=False):
        rig = SchedulerRig(uniform_pivot=uniform)
        # Uncap application so per-zone depths actually differ.
        rig.scheduler.policy = SoilMoisturePolicy(max_application_mm=60.0)
        rig.scheduler._valve_bindings.clear()
        rig.agent.provision(DeviceProvision(
            "pivot1", "", "urn:CenterPivot:p", "CenterPivot", commands=("start_pass",)
        ))
        zones = []
        for i in range(3):
            zones.append({
                "entity_id": f"urn:zone:{i}",
                "zone_id": f"z{i}",
                "theta_fc": 0.28, "theta_wp": 0.13,
                "root_depth_m": 0.5, "p": 0.5, "area_ha": 1.0,
            })
        rig.scheduler.bind_pivot("pivot1", zones)
        return rig

    def test_vri_prescription_per_zone(self):
        rig = self.make_rig()
        rig.set_moisture(0.17, "urn:zone:0")  # very dry
        rig.set_moisture(0.20, "urn:zone:1")  # dry
        rig.set_moisture(0.27, "urn:zone:2")  # wet
        rig.scheduler.run_cycle()
        _d, command, _t = rig.commands[0]
        prescription = command["prescription"]
        assert prescription["z0"] > prescription["z1"] > 0
        assert "z2" not in prescription

    def test_uniform_mode_applies_worst_everywhere(self):
        rig = self.make_rig(uniform=True)
        rig.set_moisture(0.17, "urn:zone:0")
        rig.set_moisture(0.20, "urn:zone:1")
        rig.set_moisture(0.27, "urn:zone:2")
        rig.scheduler.run_cycle()
        _d, command, _t = rig.commands[0]
        prescription = command["prescription"]
        assert len(set(prescription.values())) == 1
        assert set(prescription) == {"z0", "z1", "z2"}

    def test_no_data_no_pass(self):
        rig = self.make_rig()
        rig.scheduler.run_cycle()
        assert rig.commands == []

    def test_all_wet_no_pass(self):
        rig = self.make_rig()
        for i in range(3):
            rig.set_moisture(0.27, f"urn:zone:{i}")
        rig.scheduler.run_cycle()
        assert rig.commands == []
