"""Tests for the behavioral-baseline detectors, spatial voter and engine."""

import pytest

from repro.context import ContextBroker
from repro.security.detection import (
    Alert,
    AlertManager,
    CusumDriftDetector,
    DetectionEngine,
    JumpDetector,
    RangeDetector,
    RateDetector,
    SpatialConsistencyDetector,
    StuckDetector,
    ZScoreDetector,
)
from repro.simkernel import Simulator
from repro.simkernel.rng import RngRegistry


def train_stream(detector, values, start_t=0.0, dt=600.0):
    t = start_t
    for v in values:
        detector.train(t, v)
        t += dt
    return t


def normal_values(n=100, mean=0.25, sigma=0.01, seed=0):
    rng = RngRegistry(seed).stream("values")
    return [rng.gauss(mean, sigma) for _ in range(n)]


class TestRangeDetector:
    def test_normal_values_score_zero(self):
        detector = RangeDetector()
        t = train_stream(detector, normal_values())
        assert detector.score(t, 0.25) == 0.0

    def test_gross_outlier_scores_high(self):
        detector = RangeDetector()
        t = train_stream(detector, normal_values())
        assert detector.score(t, 0.9) > 1.0
        assert detector.score(t, -0.5) > 1.0

    def test_untrained_scores_zero(self):
        assert RangeDetector().score(0.0, 100.0) == 0.0


class TestZScoreDetector:
    def test_moderate_bias_detected(self):
        detector = ZScoreDetector(threshold=4.0)
        t = train_stream(detector, normal_values(sigma=0.01))
        assert detector.score(t, 0.25 + 0.08) > 1.0

    def test_small_noise_ok(self):
        detector = ZScoreDetector()
        t = train_stream(detector, normal_values(sigma=0.01))
        assert detector.score(t, 0.255) < 1.0

    def test_adapts_slowly(self):
        """A slow legitimate trend should not alert forever."""
        detector = ZScoreDetector(alpha=0.2, threshold=4.0)
        t = train_stream(detector, normal_values(sigma=0.01))
        # Feed a small persistent shift; after absorption scores drop.
        scores = [detector.score(t + i * 600, 0.27) for i in range(50)]
        assert scores[-1] < scores[0]

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            ZScoreDetector(alpha=1.5)


class TestJumpDetector:
    def test_spike_detected(self):
        detector = JumpDetector()
        t = train_stream(detector, normal_values(sigma=0.005))
        assert detector.score(t, 0.55) > 1.0

    def test_smooth_change_ok(self):
        detector = JumpDetector()
        t = train_stream(detector, normal_values(sigma=0.005))
        assert detector.score(t, 0.253) < 1.0


class TestStuckDetector:
    def test_frozen_window_alerts(self):
        detector = StuckDetector(window=5)
        t = train_stream(detector, normal_values(sigma=0.01))
        score = 0.0
        for i in range(6):
            score = detector.score(t + i * 600, 0.31)
        assert score > 1.0

    def test_noisy_signal_ok(self):
        detector = StuckDetector(window=5)
        values = normal_values(sigma=0.01)
        t = train_stream(detector, values)
        for i, v in enumerate(normal_values(20, seed=9)):
            assert detector.score(t + i * 600, v) == 0.0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            StuckDetector(window=2)


class TestCusumDrift:
    def test_slow_drift_eventually_detected(self):
        detector = CusumDriftDetector()
        t = train_stream(detector, normal_values(sigma=0.01))
        rng = RngRegistry(3).stream("drift")
        detected_at = None
        for i in range(200):
            drifted = rng.gauss(0.25, 0.01) + 0.0008 * i  # slow poisoning
            if detector.score(t + i * 600, drifted) > 1.0:
                detected_at = i
                break
        assert detected_at is not None
        assert detected_at > 5  # not instant — it is genuinely slow

    def test_stationary_signal_ok(self):
        detector = CusumDriftDetector()
        t = train_stream(detector, normal_values(sigma=0.01))
        for i, v in enumerate(normal_values(100, seed=4)):
            assert detector.score(t + i * 600, v) < 1.0


class TestRateDetector:
    def test_flood_detected(self):
        detector = RateDetector()
        t = train_stream(detector, [0.0] * 50, dt=600.0)
        score = 0.0
        for i in range(10):
            score = detector.score(t + i * 10.0, 0.0)  # 60x faster
        assert score > 1.0

    def test_outage_detected(self):
        detector = RateDetector()
        t = train_stream(detector, [0.0] * 50, dt=600.0)
        score = detector.score(t + 50_000.0, 0.0)
        assert score > 1.0

    def test_normal_rate_ok(self):
        detector = RateDetector()
        t = train_stream(detector, [0.0] * 50, dt=600.0)
        for i in range(10):
            assert detector.score(t + (i + 1) * 600.0, 0.0) < 1.0


class TestSpatialConsistency:
    def make(self, rows=4, cols=4, tolerance=0.08):
        return SpatialConsistencyDetector(rows, cols, tolerance)

    def fill_honest(self, detector, value=0.45, rows=4, cols=4):
        for r in range(rows):
            for c in range(cols):
                detector.observe(r, c, f"drone-honest", value)

    def test_consistent_observation_scores_zero(self):
        detector = self.make()
        self.fill_honest(detector)
        assert detector.score(1, 1, "drone-honest") == 0.0

    def test_fabricated_value_scores_high(self):
        detector = self.make()
        self.fill_honest(detector, value=0.45)
        detector.observe(1, 1, "sybil-1", 0.85)
        assert detector.score(1, 1, "sybil-1") > 1.0

    def test_suspicious_sources_ranking_with_honest_majority(self):
        detector = self.make()
        for source in ("drone-a", "drone-b"):  # honest majority: 2 vs 1
            for r in range(4):
                for c in range(4):
                    detector.observe(r, c, source, 0.45)
        for r in range(4):
            for c in range(4):
                detector.observe(r, c, "sybil-1", 0.85)
        suspicious = detector.suspicious_sources()
        assert suspicious.get("sybil-1", 0) >= 12
        assert "drone-a" not in suspicious
        assert "drone-b" not in suspicious

    def test_one_to_one_vote_is_ambiguous(self):
        """A voting detector cannot break a 1:1 tie — both sources look
        deviant relative to the mixed median.  (Majority assumption.)"""
        detector = self.make()
        self.fill_honest(detector, value=0.45)
        for r in range(4):
            for c in range(4):
                detector.observe(r, c, "sybil-1", 0.85)
        suspicious = detector.suspicious_sources()
        assert "sybil-1" in suspicious  # flagged, along with the honest one

    def test_partial_view_returns_zero(self):
        """With almost no context the detector abstains (paper's partial
        observability point)."""
        detector = self.make()
        detector.observe(0, 0, "only-source", 0.9)
        assert detector.score(0, 0, "only-source") == 0.0

    def test_epoch_reset(self):
        detector = self.make()
        self.fill_honest(detector)
        detector.reset_epoch()
        assert detector.score_all() == {}

    def test_out_of_grid_rejected(self):
        detector = self.make()
        with pytest.raises(ValueError):
            detector.observe(10, 0, "s", 0.5)

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            SpatialConsistencyDetector(2, 2, tolerance=0.0)


class TestAlertManager:
    def make_alert(self, t, device="dev1"):
        return Alert(t, "e1", "m", "range", 2.0, 0.9, device)

    def test_quarantine_after_threshold(self):
        quarantined = []
        manager = AlertManager(quarantine_threshold=3, on_quarantine=quarantined.append)
        for i in range(3):
            manager.handle(self.make_alert(float(i)))
        assert quarantined == ["dev1"]
        assert "dev1" in manager.quarantined

    def test_window_expiry_prevents_quarantine(self):
        quarantined = []
        manager = AlertManager(
            quarantine_threshold=3, window_s=10.0, on_quarantine=quarantined.append
        )
        manager.handle(self.make_alert(0.0))
        manager.handle(self.make_alert(100.0))
        manager.handle(self.make_alert(200.0))
        assert quarantined == []

    def test_no_double_quarantine(self):
        quarantined = []
        manager = AlertManager(quarantine_threshold=2, on_quarantine=quarantined.append)
        for i in range(6):
            manager.handle(self.make_alert(float(i)))
        assert quarantined == ["dev1"]

    def test_alerts_for_filter(self):
        manager = AlertManager()
        manager.handle(self.make_alert(0.0, "a"))
        manager.handle(self.make_alert(1.0, "b"))
        assert len(manager.alerts_for("a")) == 1


class TestDetectionEngine:
    def make_engine(self, training_s=1000.0, threshold=2):
        sim = Simulator(seed=1)
        context = ContextBroker(sim)
        manager = AlertManager(quarantine_threshold=threshold)
        engine = DetectionEngine(
            sim, context, alert_manager=manager, training_window_s=training_s
        )
        context.create_entity("e1", "SoilProbe")
        return sim, context, engine, manager

    def feed(self, sim, context, values, start, dt=60.0):
        for i, v in enumerate(values):
            sim.schedule_at(
                start + i * dt,
                lambda v=v: context.update_attributes(
                    "e1", {"soilMoisture": v},
                    metadata={"soilMoisture": {"sourceDevice": "probe1"}},
                ),
            )
        sim.run()

    def test_trains_then_scores(self):
        sim, context, engine, manager = self.make_engine(training_s=1000.0)
        self.feed(sim, context, normal_values(15), start=0.0)
        assert engine.samples_trained > 0
        self.feed(sim, context, normal_values(10, seed=2), start=1020.0)
        assert engine.samples_scored > 0
        assert manager.alerts == []  # normal data: no alerts

    def test_tampered_values_raise_alerts_with_source(self):
        sim, context, engine, manager = self.make_engine()
        self.feed(sim, context, normal_values(30), start=0.0)
        self.feed(sim, context, [0.9] * 5, start=3000.0)
        assert engine.alerts_raised > 0
        assert manager.alerts[0].source_device == "probe1"

    def test_quarantine_hook_fires(self):
        sim, context, engine, manager = self.make_engine(threshold=2)
        quarantined = []
        manager.on_quarantine = quarantined.append
        self.feed(sim, context, normal_values(30), start=0.0)
        self.feed(sim, context, [0.9] * 6, start=3000.0)
        assert quarantined == ["probe1"]

    def test_non_numeric_ignored(self):
        sim, context, engine, manager = self.make_engine()
        context.update_attributes("e1", {"state": "open", "ok": True})
        assert engine.samples_trained == 0

    def test_watched_attributes_filter(self):
        sim = Simulator(seed=1)
        context = ContextBroker(sim)
        engine = DetectionEngine(sim, context, watched_attributes=["soilMoisture"])
        context.create_entity("e1", "T")
        context.update_attributes("e1", {"other": 1.0})
        assert engine.samples_trained == 0
        context.update_attributes("e1", {"soilMoisture": 0.25})
        assert engine.samples_trained == 1

    def test_profile_confidence_grows(self):
        sim, context, engine, manager = self.make_engine(training_s=1e9)
        assert engine.profile_confidence("e1", "soilMoisture") == 0.0
        self.feed(sim, context, normal_values(25), start=0.0)
        mid = engine.profile_confidence("e1", "soilMoisture")
        assert 0.0 < mid < 1.0
        self.feed(sim, context, normal_values(40, seed=5), start=10_000.0)
        assert engine.profile_confidence("e1", "soilMoisture") > mid
