"""Tests for the context broker, subscriptions and short-term history."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.context import (
    AttrFilter,
    ContextBroker,
    ContextEntity,
    HistoryQuery,
    NotFoundError,
    QueryError,
    ShortTermHistory,
    Subscription,
)
from repro.context.broker import AlreadyExistsError, ContextError, _apply_op, _parse_filter
from repro.context.query import parse_filter_expression
from repro.simkernel import Simulator


def make_broker(seed=0):
    return ContextBroker(Simulator(seed=seed))


class TestEntities:
    def test_create_and_get(self):
        broker = make_broker()
        broker.create_entity("urn:soil:z1", "SoilProbe", {"soilMoisture": 0.25})
        entity = broker.get_entity("urn:soil:z1")
        assert entity.get("soilMoisture") == 0.25
        assert entity.entity_type == "SoilProbe"

    def test_duplicate_create_rejected(self):
        broker = make_broker()
        broker.create_entity("e1", "T")
        with pytest.raises(AlreadyExistsError):
            broker.create_entity("e1", "T")

    def test_get_missing_raises(self):
        with pytest.raises(NotFoundError):
            make_broker().get_entity("ghost")

    def test_ensure_upserts(self):
        broker = make_broker()
        broker.ensure_entity("e1", "T", {"a": 1})
        broker.ensure_entity("e1", "T", {"a": 2, "b": 3})
        entity = broker.get_entity("e1")
        assert entity.get("a") == 2 and entity.get("b") == 3

    def test_delete(self):
        broker = make_broker()
        broker.create_entity("e1", "T")
        broker.delete_entity("e1")
        assert not broker.has_entity("e1")
        with pytest.raises(NotFoundError):
            broker.delete_entity("e1")

    def test_invalid_ids_rejected(self):
        with pytest.raises(ValueError):
            ContextEntity("", "T")
        with pytest.raises(ValueError):
            ContextEntity("ok", "bad type!")
        with pytest.raises(ValueError):
            ContextEntity("spaces bad", "T")

    def test_attribute_type_guessing(self):
        broker = make_broker()
        broker.create_entity("e1", "T", {
            "num": 1.5, "flag": True, "text": "x", "obj": {"a": 1}, "arr": [1],
        })
        entity = broker.get_entity("e1")
        assert entity.attribute("num").attr_type == "Number"
        assert entity.attribute("flag").attr_type == "Boolean"
        assert entity.attribute("text").attr_type == "Text"
        assert entity.attribute("obj").attr_type == "StructuredValue"
        assert entity.attribute("arr").attr_type == "StructuredValue"

    def test_update_timestamps_use_sim_clock(self):
        sim = Simulator()
        broker = ContextBroker(sim)
        broker.create_entity("e1", "T")
        sim.schedule(100.0, lambda: broker.update_attributes("e1", {"a": 1}))
        sim.run()
        assert broker.get_entity("e1").attribute("a").timestamp == 100.0

    def test_copy_is_deep_for_attributes(self):
        entity = ContextEntity("e1", "T")
        entity.set_attribute("a", 1)
        clone = entity.copy()
        clone.set_attribute("a", 2)
        assert entity.get("a") == 1


class TestFilters:
    def test_parse_all_operators(self):
        assert _parse_filter("a==5") == ("a", "==", 5.0)
        assert _parse_filter("a!=x") == ("a", "!=", "x")
        assert _parse_filter("a<=5") == ("a", "<=", 5.0)
        assert _parse_filter("a>=5") == ("a", ">=", 5.0)
        assert _parse_filter("a<5") == ("a", "<", 5.0)
        assert _parse_filter("a>5") == ("a", ">", 5.0)

    def test_parse_garbage_raises(self):
        with pytest.raises(ContextError):
            _parse_filter("nonsense")

    def test_parse_splits_on_earliest_operator(self):
        # An operator inside the *value* must not win over the one that
        # actually separates attribute and value.
        assert _parse_filter("label<a==b") == ("label", "<", "a==b")
        assert _parse_filter("status==a<b") == ("status", "==", "a<b")
        assert _parse_filter("tag!=x>=1") == ("tag", "!=", "x>=1")

    def test_parse_prefers_longest_operator_at_same_position(self):
        # ``a<=1`` is ``<=``, not ``<`` with value ``=1``.
        assert _parse_filter("a<=1") == ("a", "<=", 1.0)
        assert _parse_filter("a>=1") == ("a", ">=", 1.0)
        assert _parse_filter("a!=b") == ("a", "!=", "b")

    def test_parse_strips_whitespace(self):
        assert _parse_filter("  temp  <=  21.5 ") == ("temp", "<=", 21.5)

    def test_apply_op_string_equality(self):
        assert _apply_op("open", "==", "open")
        assert _apply_op("open", "!=", "closed")

    def test_apply_op_missing_value(self):
        assert not _apply_op(None, "==", 5.0)

    def test_apply_op_non_numeric_comparison(self):
        assert not _apply_op("text", "<", 5.0)


class TestQueries:
    def setup_entities(self, broker):
        broker.create_entity("soil-1", "SoilProbe", {"soilMoisture": 0.30, "farm": "A"})
        broker.create_entity("soil-2", "SoilProbe", {"soilMoisture": 0.15, "farm": "A"})
        broker.create_entity("soil-3", "SoilProbe", {"soilMoisture": 0.22, "farm": "B"})
        broker.create_entity("valve-1", "Valve", {"valveState": "open", "farm": "A"})

    def test_query_by_type(self):
        broker = make_broker()
        self.setup_entities(broker)
        result = broker.query(entity_type="SoilProbe")
        assert [e.entity_id for e in result] == ["soil-1", "soil-2", "soil-3"]

    def test_query_by_id_pattern(self):
        broker = make_broker()
        self.setup_entities(broker)
        result = broker.query(id_pattern=r"^soil-[12]$")
        assert len(result) == 2

    def test_query_numeric_filter(self):
        broker = make_broker()
        self.setup_entities(broker)
        dry = broker.query(
            entity_type="SoilProbe", filters=[AttrFilter("soilMoisture", "<", 0.25)]
        )
        assert {e.entity_id for e in dry} == {"soil-2", "soil-3"}

    def test_query_parsed_wire_filter(self):
        # NGSIv2 ``q`` wire strings parse at the boundary, not in the broker.
        broker = make_broker()
        self.setup_entities(broker)
        farm_a = broker.query(filters=[parse_filter_expression("farm==A")])
        assert len(farm_a) == 3

    def test_query_combined_filters(self):
        broker = make_broker()
        self.setup_entities(broker)
        result = broker.query(
            entity_type="SoilProbe",
            filters=[AttrFilter("farm", "==", "A"), AttrFilter("soilMoisture", ">=", 0.2)],
        )
        assert [e.entity_id for e in result] == ["soil-1"]

    def test_query_limit(self):
        broker = make_broker()
        self.setup_entities(broker)
        assert len(broker.query(limit=2)) == 2

    def test_query_deterministic_order(self):
        broker = make_broker()
        self.setup_entities(broker)
        first = [e.entity_id for e in broker.query()]
        second = [e.entity_id for e in broker.query()]
        assert first == second == sorted(first)


class TestSubscriptions:
    def test_notified_on_matching_update(self):
        broker = make_broker()
        broker.create_entity("e1", "SoilProbe")
        received = []
        broker.subscribe(Subscription(received.append, entity_type="SoilProbe"))
        broker.update_attributes("e1", {"soilMoisture": 0.2})
        assert len(received) == 1
        assert received[0].entity.get("soilMoisture") == 0.2
        assert received[0].changed_attrs == ["soilMoisture"]

    def test_condition_attrs_filter(self):
        broker = make_broker()
        broker.create_entity("e1", "T")
        received = []
        broker.subscribe(
            Subscription(received.append, entity_id="e1", condition_attrs=["alarm"])
        )
        broker.update_attributes("e1", {"other": 1})
        broker.update_attributes("e1", {"alarm": True})
        assert len(received) == 1

    def test_notify_attrs_projection(self):
        broker = make_broker()
        broker.create_entity("e1", "T", {"a": 1, "b": 2})
        received = []
        broker.subscribe(
            Subscription(received.append, entity_id="e1", notify_attrs=["a"])
        )
        broker.update_attributes("e1", {"a": 5})
        entity = received[0].entity
        assert entity.get("a") == 5
        assert entity.attribute("b") is None

    def test_id_pattern_subscription(self):
        broker = make_broker()
        broker.create_entity("soil-1", "T")
        broker.create_entity("valve-1", "T")
        received = []
        broker.subscribe(Subscription(received.append, id_pattern=r"^soil-"))
        broker.update_attributes("soil-1", {"x": 1})
        broker.update_attributes("valve-1", {"x": 1})
        assert len(received) == 1

    def test_throttling(self):
        sim = Simulator()
        broker = ContextBroker(sim)
        broker.create_entity("e1", "T")
        received = []
        sub = Subscription(received.append, entity_id="e1", throttling_s=10.0)
        broker.subscribe(sub)
        for t in (0.0, 1.0, 2.0, 15.0):
            sim.schedule_at(t, lambda: broker.update_attributes("e1", {"x": 1}))
        sim.run()
        assert len(received) == 2  # t=0 and t=15
        assert sub.notifications_throttled == 2

    def test_unsubscribe(self):
        broker = make_broker()
        broker.create_entity("e1", "T")
        received = []
        sub_id = broker.subscribe(Subscription(received.append, entity_id="e1"))
        broker.unsubscribe(sub_id)
        broker.update_attributes("e1", {"x": 1})
        assert received == []

    def test_subscription_needs_constraint(self):
        with pytest.raises(ValueError):
            Subscription(lambda n: None)

    def test_snapshot_isolated_from_future_updates(self):
        broker = make_broker()
        broker.create_entity("e1", "T")
        received = []
        broker.subscribe(Subscription(received.append, entity_id="e1"))
        broker.update_attributes("e1", {"x": 1})
        broker.update_attributes("e1", {"x": 2})
        assert received[0].entity.get("x") == 1
        assert received[1].entity.get("x") == 2


class TestHistory:
    def test_records_numeric_updates(self):
        sim = Simulator()
        broker = ContextBroker(sim)
        history = ShortTermHistory(broker)
        broker.create_entity("e1", "T")
        for t, v in [(10.0, 0.1), (20.0, 0.2), (30.0, 0.3)]:
            sim.schedule_at(t, lambda v=v: broker.update_attributes("e1", {"m": v}))
        sim.run()
        rows = history.read(HistoryQuery("e1", "m")).rows
        assert rows == [(10.0, 0.1), (20.0, 0.2), (30.0, 0.3)]

    def test_ignores_non_numeric(self):
        broker = make_broker()
        history = ShortTermHistory(broker)
        broker.create_entity("e1", "T")
        broker.update_attributes("e1", {"state": "open", "flag": True})
        assert history.read(HistoryQuery("e1", "state")).rows == []
        assert history.read(HistoryQuery("e1", "flag")).rows == []

    def test_last_n(self):
        broker = make_broker()
        history = ShortTermHistory(broker)
        broker.create_entity("e1", "T")
        for v in range(10):
            broker.update_attributes("e1", {"m": v})
        result = history.read(HistoryQuery("e1", "m", last_n=3))
        assert [v for _t, v in result.rows] == [7.0, 8.0, 9.0]

    def test_range_query(self):
        sim = Simulator()
        broker = ContextBroker(sim)
        history = ShortTermHistory(broker)
        broker.create_entity("e1", "T")
        for t in (5.0, 15.0, 25.0):
            sim.schedule_at(t, lambda: broker.update_attributes("e1", {"m": 1.0}))
        sim.run()
        result = history.read(HistoryQuery("e1", "m", since=10.0, until=20.0))
        assert len(result.rows) == 1

    def test_aggregate(self):
        broker = make_broker()
        history = ShortTermHistory(broker)
        broker.create_entity("e1", "T")
        for v in (1.0, 2.0, 3.0):
            broker.update_attributes("e1", {"m": v})
        agg = history.read(HistoryQuery("e1", "m", aggregate=True)).stats
        assert agg["count"] == 3
        assert agg["min"] == 1.0
        assert agg["max"] == 3.0
        assert agg["mean"] == pytest.approx(2.0)

    def test_aggregate_empty_returns_none(self):
        broker = make_broker()
        history = ShortTermHistory(broker)
        assert history.read(HistoryQuery("ghost", "m", aggregate=True)).stats is None

    def test_bounded_series(self):
        broker = make_broker()
        history = ShortTermHistory(broker, max_samples_per_series=5)
        broker.create_entity("e1", "T")
        for v in range(10):
            broker.update_attributes("e1", {"m": v})
        samples = history.read(HistoryQuery("e1", "m")).rows
        assert len(samples) == 5
        assert samples[0][1] == 5.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_property_aggregate_consistent(self, values):
        broker = make_broker()
        history = ShortTermHistory(broker)
        broker.create_entity("e1", "T")
        for v in values:
            broker.update_attributes("e1", {"m": v})
        agg = history.read(HistoryQuery("e1", "m", aggregate=True)).stats
        tolerance = 1e-9 * max(1.0, abs(agg["mean"]))
        assert agg["min"] - tolerance <= agg["mean"] <= agg["max"] + tolerance
        assert agg["count"] == len(values)


class TestCreateThenNotify:
    """Regression: condition-less subscriptions must observe entity
    creation even when the entity has no attributes yet (empty
    ``changed_attrs``), preserving create-then-notify ordering."""

    def test_creation_without_attrs_notifies_conditionless_sub(self):
        broker = make_broker()
        received = []
        broker.subscribe(Subscription(received.append, entity_type="SoilProbe"))
        broker.create_entity("e1", "SoilProbe")
        assert len(received) == 1
        assert received[0].changed_attrs == []
        assert received[0].entity.entity_id == "e1"

    def test_create_then_first_update_ordering(self):
        broker = make_broker()
        events = []
        broker.subscribe(
            Subscription(lambda n: events.append(list(n.changed_attrs)), entity_id="e1")
        )
        broker.create_entity("e1", "T")
        broker.update_attributes("e1", {"theta": 0.3})
        assert events == [[], ["theta"]]

    def test_condition_attr_subs_ignore_bare_creation(self):
        broker = make_broker()
        received = []
        broker.subscribe(
            Subscription(received.append, entity_type="T", condition_attrs=["alarm"])
        )
        broker.create_entity("e1", "T")
        assert received == []

    def test_creation_with_attrs_notifies_once(self):
        broker = make_broker()
        received = []
        broker.subscribe(Subscription(received.append, entity_type="T"))
        broker.create_entity("e1", "T", {"a": 1})
        assert len(received) == 1
        assert received[0].changed_attrs == ["a"]


class TestBatchedDispatch:
    def test_batch_coalesces_to_one_notification(self):
        broker = make_broker()
        broker.create_entity("e1", "T")
        received = []
        broker.subscribe(Subscription(received.append, entity_id="e1"))
        with broker.batch():
            broker.update_attributes("e1", {"a": 1})
            broker.update_attributes("e1", {"b": 2})
            broker.update_attributes("e1", {"a": 3})
            assert received == []  # deferred until the batch closes
        assert len(received) == 1
        assert received[0].changed_attrs == ["a", "b"]
        assert received[0].entity.get("a") == 3

    def test_batch_flushes_entities_in_first_touch_order(self):
        broker = make_broker()
        broker.create_entity("e1", "T")
        broker.create_entity("e2", "T")
        order = []
        broker.subscribe(Subscription(lambda n: order.append(n.entity.entity_id), entity_type="T"))
        with broker.batch():
            broker.update_attributes("e2", {"a": 1})
            broker.update_attributes("e1", {"a": 1})
            broker.update_attributes("e2", {"b": 1})
        assert order == ["e2", "e1"]

    def test_update_hooks_still_fire_per_update_inside_batch(self):
        broker = make_broker()
        broker.create_entity("e1", "T")
        hook_calls = []
        broker.update_hooks.append(lambda entity, changed: hook_calls.append(list(changed)))
        with broker.batch():
            broker.update_attributes("e1", {"a": 1})
            broker.update_attributes("e1", {"b": 2})
        assert hook_calls == [["a"], ["b"]]

    def test_nested_batches_flush_at_outermost_exit(self):
        broker = make_broker()
        broker.create_entity("e1", "T")
        received = []
        broker.subscribe(Subscription(received.append, entity_id="e1"))
        with broker.batch():
            with broker.batch():
                broker.update_attributes("e1", {"a": 1})
            assert received == []
        assert len(received) == 1


class TestTypedQuery:
    def setup_broker(self):
        broker = make_broker()
        broker.create_entity("soil-1", "SoilProbe", {"soilMoisture": 0.15, "farm": "A"})
        broker.create_entity("soil-2", "SoilProbe", {"soilMoisture": 0.32, "farm": "B"})
        broker.create_entity("valve-1", "Valve", {"open": True})
        return broker

    def test_query_builder(self):
        from repro.context import Query

        broker = self.setup_broker()
        dry = broker.query(Query(type="SoilProbe").where("soilMoisture", "<", 0.2))
        assert [e.entity_id for e in dry] == ["soil-1"]

    def test_attr_filter_objects_in_filters_list(self):
        from repro.context import AttrFilter

        broker = self.setup_broker()
        result = broker.query(filters=[AttrFilter("farm", "==", "A")])
        assert [e.entity_id for e in result] == ["soil-1"]

    def test_typed_path_emits_no_deprecation_warning(self):
        import warnings

        from repro.context import Query

        broker = self.setup_broker()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            broker.query(Query(type="SoilProbe").where("soilMoisture", "<", 0.2))

    def test_string_filters_are_rejected(self):
        # Deprecation cycle complete: strings now fail loudly at the broker.
        broker = self.setup_broker()
        with pytest.raises(QueryError, match="no longer accepted"):
            broker.query(filters=["soilMoisture<0.2"])

    def test_query_with_int_value_matches_numbers(self):
        from repro.context import Query

        broker = make_broker()
        broker.create_entity("e1", "T", {"count": 5})
        assert [e.entity_id for e in broker.query(Query(type="T").where("count", "==", 5))] == ["e1"]

    def test_bad_operator_rejected(self):
        from repro.context import AttrFilter, QueryError

        with pytest.raises(QueryError):
            AttrFilter("a", "~=", 1)

    def test_directly_set_attributes_are_queryable(self):
        # The IoT agent sets provisioning attributes straight on the
        # entity object; the write-through hook must index them.
        broker = make_broker()
        broker.create_entity("e1", "T")
        broker.get_entity("e1").set_attribute("deviceId", "dev-1", "Text")
        from repro.context import AttrFilter

        result = broker.query(filters=[AttrFilter("deviceId", "==", "dev-1")])
        assert [e.entity_id for e in result] == ["e1"]

    def test_delete_entity_cleans_indexes(self):
        from repro.context import Query

        broker = self.setup_broker()
        broker.delete_entity("soil-1")
        assert broker.query(Query(type="SoilProbe").where("farm", "==", "A")) == []
        assert "soil-1" not in broker._type_index.get("SoilProbe", {})

    def test_dispatch_candidates_counter(self):
        from repro.telemetry import MetricsRegistry

        sim = Simulator(seed=0, metrics=MetricsRegistry())
        broker = ContextBroker(sim)
        broker.create_entity("e1", "T")
        for i in range(5):
            broker.subscribe(Subscription(lambda n: None, entity_id=f"other-{i}"))
        broker.subscribe(Subscription(lambda n: None, entity_id="e1"))
        before = sim.metrics.total("context.dispatch_candidates")
        broker.update_attributes("e1", {"a": 1})
        # Only the one matching-id bucket is examined, not all six subs.
        assert sim.metrics.total("context.dispatch_candidates") - before == 1
