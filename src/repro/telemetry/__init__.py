"""Unified telemetry core: metrics, causal tracing and kernel profiling."""

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    Timer,
)
from repro.telemetry.profile import KernelProfiler, ProfileEntry
from repro.telemetry.tracing import (
    DeterministicSampler,
    NULL_TRACER,
    Span,
    TraceConfig,
    TraceContext,
    Tracer,
    log_sampler,
    validate_chrome_trace,
    validate_span_trees,
)

__all__ = [
    "Counter",
    "DeterministicSampler",
    "Gauge",
    "Histogram",
    "KernelProfiler",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "ProfileEntry",
    "Span",
    "TraceConfig",
    "TraceContext",
    "Tracer",
    "Timer",
    "log_sampler",
    "validate_chrome_trace",
    "validate_span_trees",
]
