"""Unified telemetry/metrics core shared by every platform subsystem."""

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    Timer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "NULL_REGISTRY",
    "Timer",
]
