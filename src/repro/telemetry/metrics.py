"""The unified metrics core.

Every platform subsystem (simkernel, MQTT, context broker, fog
replication, scheduler, security stack) publishes its hot-path counters
through one labeled :class:`MetricsRegistry` so a pilot run can export a
single JSON snapshot of cross-subsystem behaviour.

Design constraints, in order:

1. **Zero overhead when disabled.**  A disabled registry hands out
   shared null instruments whose methods are empty; callers bind the
   instrument once at construction time, so the per-event cost in no-op
   mode is one attribute access plus an empty call.  The registry never
   schedules simulator events and never draws from an RNG stream, so
   enabling or disabling metrics cannot perturb a deterministic run.
2. **Deterministic snapshots.**  Counters, gauges and histograms record
   only what callers feed them; the sole wall-clock consumer is
   :class:`Timer` (latency histograms), which reads ``perf_counter``
   outside the simulation's event ordering.
3. **Stdlib only, JSON-safe export.**
"""

import json
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

LabelPairs = Tuple[Tuple[str, str], ...]

# Default latency buckets (seconds): 1 µs .. 1 s, roughly log-spaced.
DEFAULT_TIME_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0,
)
# Default value buckets for generic histograms.
DEFAULT_BUCKETS = (1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0)


def _label_key(labels: Optional[Dict[str, str]]) -> LabelPairs:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_name(name: str, labels: LabelPairs) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: LabelPairs = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def snapshot_value(self) -> float:
        return self.value


class Gauge:
    """A value that can go up and down (queue depth, backlog, lag)."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelPairs = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot_value(self) -> float:
        return self.value


class Histogram:
    """Bucketed distribution with count/sum/min/max."""

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "total",
                 "min", "max")

    kind = "histogram"

    def __init__(
        self, name: str, labels: LabelPairs = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.labels = labels
        self.bounds = tuple(sorted(buckets))
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # last = +Inf
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot_value(self) -> Dict[str, Any]:
        buckets = {f"le_{bound:g}": c for bound, c in zip(self.bounds, self.bucket_counts)}
        buckets["le_inf"] = self.bucket_counts[-1]
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "buckets": buckets,
        }


class Timer:
    """Context manager recording wall-clock durations into a histogram.

    ``with timer: ...`` observes the elapsed seconds.  Durations are
    *measurement* only — they never feed back into simulation state.
    """

    __slots__ = ("histogram", "_started")

    kind = "timer"

    def __init__(self, histogram: Histogram) -> None:
        self.histogram = histogram
        self._started = 0.0

    @property
    def name(self) -> str:
        return self.histogram.name

    @property
    def labels(self) -> LabelPairs:
        return self.histogram.labels

    def observe(self, seconds: float) -> None:
        self.histogram.observe(seconds)

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.histogram.observe(time.perf_counter() - self._started)


class _NullInstrument:
    """Shared do-nothing instrument handed out by a disabled registry."""

    __slots__ = ()

    name = ""
    labels: LabelPairs = ()
    kind = "null"
    value = 0.0
    count = 0
    total = 0.0
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def snapshot_value(self) -> float:
        return 0.0


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Labeled factory and store for counters, gauges, histograms, timers.

    Instruments are get-or-create keyed by ``(name, sorted labels)``;
    asking for the same name with a different instrument kind raises.
    ``enabled=False`` turns the registry into a null object: every
    factory returns :data:`NULL_INSTRUMENT` and ``snapshot()`` is empty.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: Dict[Tuple[str, LabelPairs], Any] = {}
        self._callbacks: Dict[Tuple[str, LabelPairs], Callable[[], float]] = {}

    # -- factories -----------------------------------------------------------

    def _get_or_create(self, cls, name: str, labels: Optional[Dict[str, str]],
                       **kwargs):
        key = (name, _label_key(labels))
        existing = self._instruments.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {existing.kind}, "
                    f"requested {cls.kind}"
                )
            return existing
        instrument = cls(name, key[1], **kwargs)
        self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, labels: Optional[Dict[str, str]] = None) -> Counter:
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, labels: Optional[Dict[str, str]] = None) -> Gauge:
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self, name: str, labels: Optional[Dict[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        return self._get_or_create(Histogram, name, labels, buckets=buckets)

    def timer(
        self, name: str, labels: Optional[Dict[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> Timer:
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        histogram = self._get_or_create(Histogram, name, labels, buckets=buckets)
        return Timer(histogram)

    def register_callback(
        self, name: str, fn: Callable[[], float],
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        """Register a gauge evaluated lazily at snapshot time.

        Used for live depths (event queue, replication backlog) so the
        hot path pays nothing: the value is read only when exporting.
        """
        if not self.enabled:
            return
        self._callbacks[(name, _label_key(labels))] = fn

    # -- lookup -----------------------------------------------------------

    def value(self, name: str, labels: Optional[Dict[str, str]] = None) -> Any:
        """Current value of one instrument (None when absent)."""
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is not None:
            return instrument.snapshot_value()
        callback = self._callbacks.get(key)
        if callback is not None:
            return float(callback())
        return None

    def total(self, name: str) -> float:
        """Sum of a counter/gauge across every label combination."""
        total = 0.0
        for (metric_name, _), instrument in self._instruments.items():
            if metric_name == name and isinstance(instrument, (Counter, Gauge)):
                total += instrument.value
        return total

    def names(self) -> List[str]:
        return sorted({name for name, _ in self._instruments} |
                      {name for name, _ in self._callbacks})

    # -- export -----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe dump of every instrument, grouped by kind."""
        if not self.enabled:
            return {"enabled": False, "counters": {}, "gauges": {}, "histograms": {}}
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Any] = {}
        for (name, labels), instrument in sorted(self._instruments.items()):
            full = _format_name(name, labels)
            if isinstance(instrument, Counter):
                counters[full] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[full] = instrument.value
            elif isinstance(instrument, Histogram):
                histograms[full] = instrument.snapshot_value()
        for (name, labels), fn in sorted(self._callbacks.items()):
            gauges[_format_name(name, labels)] = float(fn())
        return {
            "enabled": True,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


#: Shared disabled registry: the default for components constructed
#: outside a metrics-enabled runtime.
NULL_REGISTRY = MetricsRegistry(enabled=False)
