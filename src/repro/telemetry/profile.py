"""Kernel profiling: per-process and per-service time accounting.

The ROADMAP's north star — production scale, as fast as the hardware
allows — needs data to find the next hot path.  When profiling is
enabled the simulator wraps every event callback in a ``perf_counter``
pair and attributes the wall time to the event's label (processes are
labelled ``proc:<name>``, broker sweepers ``<address>:sweep``, client
keepalives ``<client id>:ping`` and so on; unlabeled events fall back to
the callback's qualified name).

Alongside wall time the profiler tracks each key's *simulated-time*
footprint: event count, first/last sim timestamp and the derived
activity rate (events per sim-hour) — "which process burns the host
CPU" and "which process dominates sim activity" are different questions
and both matter for scaling.

Profiling reads wall time only; it never schedules events, never draws
RNG and never touches event ordering, so enabling it cannot perturb a
deterministic run (the pinned fixtures stay bit-identical).  It is off
by default; the run summary and ``--profile-top K`` surface the top-K
hottest keys, and ``profile.*`` metrics export the aggregates.
"""

from typing import Any, Dict, List, Optional

__all__ = ["KernelProfiler", "ProfileEntry"]

SIM_HOUR = 3600.0


class ProfileEntry:
    """Accumulated cost of one event key (process, service timer, ...)."""

    __slots__ = ("key", "count", "wall_s", "first_sim_t", "last_sim_t")

    def __init__(self, key: str) -> None:
        self.key = key
        self.count = 0
        self.wall_s = 0.0
        self.first_sim_t: Optional[float] = None
        self.last_sim_t = 0.0

    @property
    def sim_span_s(self) -> float:
        """Sim seconds between this key's first and last event."""
        if self.first_sim_t is None:
            return 0.0
        return self.last_sim_t - self.first_sim_t

    @property
    def events_per_sim_hour(self) -> float:
        span = self.sim_span_s
        if span <= 0.0:
            return 0.0
        return self.count / (span / SIM_HOUR)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "count": self.count,
            "wall_s": self.wall_s,
            "sim_span_s": self.sim_span_s,
            "events_per_sim_hour": self.events_per_sim_hour,
        }


def service_of(key: str) -> str:
    """Collapse an event key to its service group.

    ``proc:fw:farm-probe-0-0`` → ``proc:fw`` (all firmware loops),
    ``fog-pinhal:sweep`` → ``svc:sweep`` (all broker sweepers),
    anything without a colon (``survey``, a callback qualname) maps to
    itself.
    """
    if key.startswith("proc:"):
        rest = key[5:]
        return "proc:" + rest.split(":", 1)[0]
    if ":" in key:
        return "svc:" + key.rsplit(":", 1)[-1]
    return key


class KernelProfiler:
    """Per-event-key wall-time + sim-time accounting for one run."""

    def __init__(self) -> None:
        self._entries: Dict[str, ProfileEntry] = {}
        self.total_events = 0
        self.total_wall_s = 0.0

    # -- hot path (called by the simulator run loop) ----------------------

    def record(self, event, wall_s: float) -> None:
        key = event.label or getattr(event.callback, "__qualname__", "<event>")
        entry = self._entries.get(key)
        if entry is None:
            entry = self._entries[key] = ProfileEntry(key)
        entry.count += 1
        entry.wall_s += wall_s
        if entry.first_sim_t is None:
            entry.first_sim_t = event.time
        entry.last_sim_t = event.time
        self.total_events += 1
        self.total_wall_s += wall_s

    # -- aggregation -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[ProfileEntry]:
        return list(self._entries.values())

    def top(self, k: int = 10) -> List[ProfileEntry]:
        """The ``k`` hottest keys by accumulated wall time."""
        ranked = sorted(
            self._entries.values(), key=lambda e: (-e.wall_s, e.key)
        )
        return ranked[: max(0, k)]

    def by_service(self) -> Dict[str, ProfileEntry]:
        """Entries collapsed to service groups (see :func:`service_of`)."""
        grouped: Dict[str, ProfileEntry] = {}
        for entry in self._entries.values():
            service = service_of(entry.key)
            agg = grouped.get(service)
            if agg is None:
                agg = grouped[service] = ProfileEntry(service)
            agg.count += entry.count
            agg.wall_s += entry.wall_s
            if entry.first_sim_t is not None and (
                agg.first_sim_t is None or entry.first_sim_t < agg.first_sim_t
            ):
                agg.first_sim_t = entry.first_sim_t
            agg.last_sim_t = max(agg.last_sim_t, entry.last_sim_t)
        return grouped

    def snapshot(self, top_k: int = 10) -> Dict[str, Any]:
        return {
            "total_events": self.total_events,
            "total_wall_s": self.total_wall_s,
            "keys": len(self._entries),
            "top": [entry.to_dict() for entry in self.top(top_k)],
            "services": {
                name: entry.to_dict()
                for name, entry in sorted(self.by_service().items())
            },
        }

    def summary_lines(self, top_k: int = 10) -> List[str]:
        """Human-readable top-K block for the run summary / CLI."""
        lines = [
            f"profile: {self.total_events} events, "
            f"{self.total_wall_s * 1e3:.1f} ms wall, {len(self._entries)} keys"
        ]
        for entry in self.top(top_k):
            lines.append(
                f"  {entry.key:<40s} {entry.count:>8d} events  "
                f"{entry.wall_s * 1e3:>9.2f} ms  "
                f"{entry.events_per_sim_hour:>8.1f} ev/simh"
            )
        return lines

    def install_metrics(self, registry) -> None:
        """Register lazy ``profile.*`` gauges on the run's registry."""
        registry.register_callback("profile.keys", lambda: float(len(self._entries)))
        registry.register_callback("profile.events", lambda: float(self.total_events))
        registry.register_callback("profile.wall_s", lambda: self.total_wall_s)
        registry.register_callback(
            "profile.hottest_wall_s",
            lambda: self.top(1)[0].wall_s if self._entries else 0.0,
        )
