"""End-to-end causal tracing for the SWAMP reproduction.

The platform's security catalogue (fake-data detection, actuator
takeover, fog autonomy) presumes the question "which sensor reading
caused this irrigation actuation, via which broker hops?" is answerable.
This module makes it answerable: a :class:`TraceContext` is attached to
MQTT PUBLISH packets at the client, carried through broker routing, QoS
retransmission and offline queues, into context-broker updates and
subscription notifications, fog replication acks, scheduler decisions
and actuator commands.  The result is one span tree per causal chain —
"reading r on device d → MQTT publish → context update → notify →
scheduler decision → valve command" — queryable post-run and exportable
in Chrome-trace JSON (``chrome://tracing`` / Perfetto load it directly).

Design constraints, mirroring :mod:`repro.telemetry.metrics`:

1. **Zero overhead when disabled.**  ``NULL_TRACER`` is a shared
   disabled :class:`Tracer`; every entry point checks ``enabled`` first
   and returns immediately.  A disabled tracer never allocates, never
   schedules events and never draws from an RNG stream, so enabling or
   disabling tracing cannot perturb a deterministic run — the pinned
   pilot fixtures stay bit-identical either way.
2. **Seeded deterministic sampling.**  Head sampling is decided per
   trace from a splitmix-style hash of ``(seed, trace sequence)`` —
   never from the simulation's RNG registry, never from wall time — so
   the same seed always samples the same traces, at any rate.
3. **Sim-time spans.**  Span start/end are simulation seconds (wall
   time belongs to :mod:`repro.telemetry.profile`).  A span's ``end``
   covers its whole subtree: when a child ends after its parent (the
   normal case for asynchronous hops — the publish span closes long
   before the broker routes the packet), the ancestor chain's ``end``
   is extended so child time ranges always nest inside their parents.
4. **Bounded storage, drop-newest.**  Parents are always created before
   children, so refusing *new* spans at the cap never orphans a stored
   span; drops are counted.
"""

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "DeterministicSampler",
    "NULL_TRACER",
    "Span",
    "TraceConfig",
    "TraceContext",
    "Tracer",
    "log_sampler",
    "validate_chrome_trace",
    "validate_span_trees",
]

_MASK64 = 0xFFFFFFFFFFFFFFFF


def _splitmix64(x: int) -> int:
    """The splitmix64 finalizer: a fast, well-mixed 64-bit hash."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _fnv1a(text: str) -> int:
    """Deterministic 64-bit string hash (``hash()`` is randomized)."""
    h = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        h = ((h ^ byte) * 0x100000001B3) & _MASK64
    return h


class DeterministicSampler:
    """Head sampler: keep a trace iff hash(seed, sequence) < rate.

    The decision depends only on the constructor ``seed`` and the
    per-trace sequence number, so a run re-executed with the same seed
    samples exactly the same traces — and changing the rate only adds or
    removes traces, it never reshuffles which sequence numbers pass at a
    given rate (the hash is compared against a moving threshold).
    """

    __slots__ = ("seed", "rate", "_mix")

    def __init__(self, seed: int = 0, rate: float = 1.0) -> None:
        self.seed = seed
        self.rate = rate
        self._mix = _splitmix64(seed & _MASK64)

    def sample(self, sequence: int) -> bool:
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        x = _splitmix64((sequence & _MASK64) ^ self._mix)
        return (x >> 11) / float(1 << 53) < self.rate


def log_sampler(seed: int, rate: float):
    """A per-record sampler for :class:`~repro.simkernel.trace.TraceLog`.

    Returns ``sample(category, sequence) -> bool``; the decision mixes
    the category name into the hash so distinct categories thin
    independently (category ``n``-th records don't sample in lockstep).
    """
    sampler = DeterministicSampler(seed, rate)

    def sample(category: str, sequence: int) -> bool:
        return sampler.sample(_fnv1a(category) ^ (sequence & _MASK64))

    return sample


class TraceConfig:
    """Tracing knobs carried by :class:`~repro.core.pilot.PilotConfig`.

    ``None`` on the pilot config keeps tracing off entirely (the shared
    ``NULL_TRACER`` is installed); an instance — even a default one —
    enables it.  ``log_sample_rate`` < 1 additionally routes the
    kernel's bounded :class:`~repro.simkernel.trace.TraceLog` through
    :func:`log_sampler` so category logs thin deterministically too.
    """

    __slots__ = ("sample_rate", "max_spans", "log_sample_rate")

    def __init__(
        self,
        sample_rate: float = 1.0,
        max_spans: int = 200_000,
        log_sample_rate: float = 1.0,
    ) -> None:
        self.sample_rate = sample_rate
        self.max_spans = max_spans
        self.log_sample_rate = log_sample_rate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceConfig(sample_rate={self.sample_rate}, max_spans={self.max_spans}, "
            f"log_sample_rate={self.log_sample_rate})"
        )


class TraceContext:
    """The propagated identity of one span: (trace_id, span_id).

    This is what rides on a PUBLISH packet, an entity attribute or a
    replication update — deliberately tiny, immutable in practice, and
    excluded from every wire-size computation (it models packet
    metadata, not payload bytes).
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: int, span_id: int) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TraceContext)
            and other.trace_id == self.trace_id
            and other.span_id == self.span_id
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceContext(trace={self.trace_id}, span={self.span_id})"


class Span:
    """One operation in a trace; times are simulation seconds."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "kind",
                 "start", "end", "attrs", "links")

    def __init__(
        self,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        kind: str,
        start: float,
        attrs: Dict[str, Any],
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs
        # Causal links to spans in *other* traces (OpenTelemetry-style):
        # a scheduler decision links to the sensor-reading trace whose
        # context-broker attribute fed it.
        self.links: List[TraceContext] = []

    @property
    def ctx(self) -> TraceContext:
        return TraceContext(self.trace_id, self.span_id)

    def add_link(self, ctx: Optional[TraceContext]) -> None:
        if ctx is not None:
            self.links.append(ctx)

    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name}, trace={self.trace_id}, span={self.span_id}, "
            f"parent={self.parent_id}, t=[{self.start:.3f},"
            f"{self.end if self.end is None else round(self.end, 3)}])"
        )


class Tracer:
    """Builds, stores and queries span trees for one simulation run.

    One tracer per :class:`~repro.simkernel.simulator.Simulator`; the
    simulator binds its clock at construction.  Synchronous propagation
    uses an explicit active-span stack (``current()``); asynchronous
    hops carry a :class:`TraceContext` on the message itself and pass it
    back in as ``parent=``.
    """

    def __init__(
        self,
        enabled: bool = True,
        seed: int = 0,
        sample_rate: float = 1.0,
        max_spans: int = 200_000,
    ) -> None:
        self.enabled = enabled
        self.max_spans = max_spans
        self.sampler = DeterministicSampler(seed, sample_rate)
        self._clock = None
        self._spans: Dict[int, Span] = {}
        self._trace_order: List[int] = []  # trace ids, first-span order
        self._stack: List[Span] = []
        self._next_trace_id = 0
        self._next_span_id = 0
        self.traces_started = 0
        self.traces_sampled = 0
        self.spans_dropped = 0

    # -- wiring -----------------------------------------------------------

    def bind_clock(self, clock) -> None:
        """Attach the sim clock spans read their timestamps from.

        A disabled tracer ignores the bind: ``NULL_TRACER`` is shared
        across every untraced simulator and must stay stateless.
        """
        if self.enabled:
            self._clock = clock

    def _now(self) -> float:
        return self._clock.now if self._clock is not None else 0.0

    # -- span lifecycle -----------------------------------------------------

    def current(self) -> Optional[TraceContext]:
        """Context of the innermost active span, or None."""
        if not self._stack:
            return None
        return self._stack[-1].ctx

    def start_trace(self, name: str, kind: str, **attrs: Any) -> Optional[Span]:
        """Start a new root span; None when disabled or head-sampled out."""
        if not self.enabled:
            return None
        self.traces_started += 1
        if not self.sampler.sample(self.traces_started):
            return None
        self.traces_sampled += 1
        self._next_trace_id += 1
        return self._make_span(self._next_trace_id, None, name, kind, attrs)

    def start_span(
        self,
        name: str,
        kind: str,
        parent: Optional[TraceContext] = None,
        **attrs: Any,
    ) -> Optional[Span]:
        """Start a child span under ``parent`` (default: the active span).

        Returns None when disabled or when there is no parent — spans
        exist only inside a sampled trace, so an unsampled root cheaply
        suppresses its whole downstream tree across every hop.
        """
        if not self.enabled:
            return None
        if parent is None:
            parent = self.current()
            if parent is None:
                return None
        elif isinstance(parent, Span):
            parent = parent.ctx
        return self._make_span(parent.trace_id, parent.span_id, name, kind, attrs)

    def _make_span(
        self,
        trace_id: int,
        parent_id: Optional[int],
        name: str,
        kind: str,
        attrs: Dict[str, Any],
    ) -> Optional[Span]:
        if len(self._spans) >= self.max_spans:
            self.spans_dropped += 1
            return None
        self._next_span_id += 1
        span = Span(trace_id, self._next_span_id, parent_id, name, kind, self._now(), attrs)
        self._spans[span.span_id] = span
        if parent_id is None:
            self._trace_order.append(trace_id)
        return span

    def end_span(self, span: Optional[Span]) -> None:
        """Close ``span`` at the current sim time and re-nest ancestors.

        Simulation time is monotonic, so a child always ends at or after
        its parent *started*; when an asynchronous hop makes it end after
        the parent *ended*, every closed ancestor's end is pulled forward
        — a span's time range therefore always covers its subtree.
        """
        if span is None:
            return
        span.end = self._now()
        parent = self._spans.get(span.parent_id) if span.parent_id is not None else None
        while parent is not None and parent.end is not None and parent.end < span.end:
            parent.end = span.end
            parent = (
                self._spans.get(parent.parent_id) if parent.parent_id is not None else None
            )

    def record_span(
        self,
        name: str,
        kind: str,
        parent: Optional[TraceContext] = None,
        **attrs: Any,
    ) -> Optional[Span]:
        """A point-in-time span: started and ended at the current instant."""
        span = self.start_span(name, kind, parent=parent, **attrs)
        self.end_span(span)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        kind: str,
        parent: Optional[TraceContext] = None,
        root: bool = False,
        **attrs: Any,
    ) -> Iterator[Optional[Span]]:
        """Start a span, keep it active for the block, end it on exit.

        Yields None (and still runs the block) when disabled, unsampled
        or parentless — callers never branch on tracing state.
        """
        if not self.enabled:
            yield None
            return
        if root:
            span = self.start_trace(name, kind, **attrs)
        else:
            span = self.start_span(name, kind, parent=parent, **attrs)
        if span is None:
            yield None
            return
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            self.end_span(span)

    @contextmanager
    def activate(self, span: Optional[Span]) -> Iterator[Optional[Span]]:
        """Make an already-started span the active parent for a block."""
        if span is None:
            yield None
            return
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._spans)

    def spans(self, trace_id: Optional[int] = None) -> List[Span]:
        """Spans in creation order, optionally restricted to one trace."""
        all_spans = list(self._spans.values())
        if trace_id is None:
            return all_spans
        return [s for s in all_spans if s.trace_id == trace_id]

    def get_span(self, span_id: int) -> Optional[Span]:
        return self._spans.get(span_id)

    def trace_ids(self) -> List[int]:
        return list(self._trace_order)

    def roots(self) -> List[Span]:
        return [s for s in self._spans.values() if s.parent_id is None]

    def find(self, name: Optional[str] = None, kind: Optional[str] = None) -> List[Span]:
        return [
            s for s in self._spans.values()
            if (name is None or s.name == name) and (kind is None or s.kind == kind)
        ]

    def tree(self, trace_id: int) -> Optional[Dict[str, Any]]:
        """One trace as a nested ``{"span": ..., "children": [...]}`` dict."""
        spans = self.spans(trace_id)
        if not spans:
            return None
        children: Dict[Optional[int], List[Span]] = {}
        root = None
        for span in spans:
            if span.parent_id is None:
                root = span
            else:
                children.setdefault(span.parent_id, []).append(span)

        def build(span: Span) -> Dict[str, Any]:
            return {
                "span": span,
                "children": [build(c) for c in children.get(span.span_id, ())],
            }

        return build(root) if root is not None else None

    def path_to_root(self, span: Span) -> List[Span]:
        """The ancestor chain root → ... → ``span`` (inclusive)."""
        path = [span]
        seen = {span.span_id}
        current = span
        while current.parent_id is not None:
            parent = self._spans.get(current.parent_id)
            if parent is None or parent.span_id in seen:
                break
            path.append(parent)
            seen.add(parent.span_id)
            current = parent
        path.reverse()
        return path

    def causal_chain(self, span: Span) -> Dict[str, Any]:
        """Reconstruct the full sensor→actuation story around ``span``.

        Returns the span's own root-path plus, for every link, the
        root-path of the linked span in its own trace — for a scheduler
        decision this is exactly "reading r on device d → MQTT publish →
        context update → decision → command".
        """
        return {
            "path": [s.name for s in self.path_to_root(span)],
            "linked": [
                [s.name for s in self.path_to_root(linked)]
                for linked in (
                    self._spans.get(ctx.span_id) for ctx in span.links
                )
                if linked is not None
            ],
        }

    def stats(self) -> Dict[str, Any]:
        return {
            "spans": len(self._spans),
            "traces_started": self.traces_started,
            "traces_sampled": self.traces_sampled,
            "spans_dropped": self.spans_dropped,
        }

    # -- export -----------------------------------------------------------

    def chrome_trace(self) -> Dict[str, Any]:
        """The span set in Chrome trace-event format (complete events).

        ``pid`` is the trace id (one lane group per causal chain),
        ``tid`` indexes the span kind, timestamps are sim-time
        microseconds.  ``args`` carries the span/parent ids and links so
        the export is self-contained for tree validation.
        """
        kinds: Dict[str, int] = {}
        events = []
        for span in self._spans.values():
            tid = kinds.setdefault(span.kind, len(kinds) + 1)
            end = span.end if span.end is not None else span.start
            args = {
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "trace_id": span.trace_id,
            }
            if span.links:
                args["links"] = [
                    {"trace_id": c.trace_id, "span_id": c.span_id} for c in span.links
                ]
            for key, value in span.attrs.items():
                args.setdefault(key, value)
            events.append({
                "name": span.name,
                "cat": span.kind,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": (end - span.start) * 1e6,
                "pid": span.trace_id,
                "tid": tid,
                "args": args,
            })
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": self.stats(),
        }


#: Shared disabled tracer (the metrics NULL_REGISTRY pattern): untraced
#: simulators all point here, and every entry point exits on ``enabled``.
NULL_TRACER = Tracer(enabled=False)


# -- validation ---------------------------------------------------------------


def validate_span_trees(spans: List[Span]) -> List[str]:
    """Check the span-tree invariants; returns a list of violations.

    Invariants (the property tests and the CI trace smoke assert this
    list is empty):

    * every trace has exactly one root (``parent_id is None``);
    * every parent reference resolves inside the same trace (acyclic by
      id construction, checked anyway via walk);
    * every span ends at or after it starts;
    * every child's time range nests inside its parent's.
    """
    # Tolerance for float round-trips (the Chrome export stores µs).
    eps = 1e-6
    problems: List[str] = []
    by_id: Dict[int, Span] = {}
    by_trace: Dict[int, List[Span]] = {}
    for span in spans:
        if span.span_id in by_id:
            problems.append(f"duplicate span id {span.span_id}")
        by_id[span.span_id] = span
        by_trace.setdefault(span.trace_id, []).append(span)

    for trace_id, trace_spans in sorted(by_trace.items()):
        roots = [s for s in trace_spans if s.parent_id is None]
        if len(roots) != 1:
            problems.append(f"trace {trace_id}: {len(roots)} roots (expected 1)")
        for span in trace_spans:
            end = span.end if span.end is not None else span.start
            if end < span.start - eps:
                problems.append(f"span {span.span_id} ({span.name}): end {end} < start {span.start}")
            if span.parent_id is None:
                continue
            parent = by_id.get(span.parent_id)
            if parent is None:
                problems.append(f"span {span.span_id} ({span.name}): missing parent {span.parent_id}")
                continue
            if parent.trace_id != span.trace_id:
                problems.append(
                    f"span {span.span_id} ({span.name}): parent {parent.span_id} "
                    f"in foreign trace {parent.trace_id}"
                )
            parent_end = parent.end if parent.end is not None else parent.start
            if span.start < parent.start - eps or end > parent_end + eps:
                problems.append(
                    f"span {span.span_id} ({span.name}): range [{span.start},{end}] "
                    f"outside parent [{parent.start},{parent_end}]"
                )
            # Cycle check: walk to the root with a step bound.
            seen = set()
            current = span
            while current is not None and current.parent_id is not None:
                if current.span_id in seen:
                    problems.append(f"span {span.span_id}: cycle through {current.span_id}")
                    break
                seen.add(current.span_id)
                current = by_id.get(current.parent_id)
    return problems


def validate_chrome_trace(data: Dict[str, Any]) -> List[str]:
    """Validate an exported Chrome-trace dict against the tree invariants.

    Reconstructs spans from ``traceEvents[].args`` (the export is
    self-contained) and reuses :func:`validate_span_trees`, plus basic
    format checks — this is what the CI trace-smoke job runs against the
    ``--trace`` output file.
    """
    problems: List[str] = []
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list traceEvents"]
    spans: List[Span] = []
    for i, event in enumerate(events):
        if event.get("ph") != "X":
            problems.append(f"event {i}: ph {event.get('ph')!r} != 'X'")
            continue
        args = event.get("args", {})
        for key in ("span_id", "trace_id"):
            if not isinstance(args.get(key), int):
                problems.append(f"event {i}: missing args.{key}")
        if not isinstance(event.get("ts"), (int, float)) or not isinstance(
            event.get("dur"), (int, float)
        ):
            problems.append(f"event {i}: non-numeric ts/dur")
            continue
        span = Span(
            trace_id=args.get("trace_id", -1),
            span_id=args.get("span_id", -1),
            parent_id=args.get("parent_id"),
            name=event.get("name", "?"),
            kind=event.get("cat", "?"),
            start=event["ts"] / 1e6,
            attrs={},
        )
        span.end = (event["ts"] + event["dur"]) / 1e6
        spans.append(span)
    problems.extend(validate_span_trees(spans))
    return problems
