"""Context management: NGSIv2-style entities, broker, subscriptions, history.

The paper adopts FIWARE; its context stack is the Orion Context Broker
(entity CRUD + queries + subscriptions) with STH-Comet for short-term
history.  This package reproduces that API surface in-process:

* :class:`~repro.context.entities.ContextEntity` — id/type plus typed
  attributes with metadata;
* :class:`~repro.context.broker.ContextBroker` — CRUD, filtered queries,
  subscriptions with attribute conditions and throttling;
* :class:`~repro.context.history.ShortTermHistory` — per-attribute time
  series with range queries and aggregation, fed by a broker subscription.

Fog and cloud tiers each host a broker instance; :mod:`repro.fog`
replicates between them.
"""

from repro.context.broker import ContextBroker
from repro.context.delivery import (
    DeliveryConfig,
    DeliveryError,
    DeliveryItem,
    DeliveryManager,
    SimulatedEndpoint,
)
from repro.context.entities import Attribute, ContextEntity
from repro.context.errors import AlreadyExistsError, ContextError, NotFoundError, QueryError
from repro.context.history import HistoryQuery, HistoryResult, ShortTermHistory
from repro.context.query import AttrFilter, Query
from repro.context.subscriptions import Notification, Subscription, SubscriptionIndex

__all__ = [
    "AlreadyExistsError",
    "AttrFilter",
    "Attribute",
    "ContextBroker",
    "ContextEntity",
    "ContextError",
    "DeliveryConfig",
    "DeliveryError",
    "DeliveryItem",
    "DeliveryManager",
    "HistoryQuery",
    "HistoryResult",
    "NotFoundError",
    "Notification",
    "Query",
    "QueryError",
    "ShortTermHistory",
    "SimulatedEndpoint",
    "Subscription",
    "SubscriptionIndex",
]
