"""The context broker (Orion-equivalent).

Entity CRUD, filtered queries (type / id-pattern / attribute predicates),
and subscription dispatch.  One instance per deployment tier; the fog
package replicates entities between tiers.

Query filters use the small predicate language of NGSIv2's ``q`` parameter:
``attr==value``, ``attr!=value``, ``attr<value`` (and ``<=``, ``>``, ``>=``)
— enough for every query the SWAMP services issue.
"""

import re
from typing import Any, Callable, Dict, List, Optional

from repro.context.entities import Attribute, ContextEntity
from repro.context.subscriptions import Notification, Subscription
from repro.simkernel.simulator import Simulator


class ContextError(Exception):
    """Base error for context operations."""


class NotFoundError(ContextError):
    """Entity does not exist."""


class AlreadyExistsError(ContextError):
    """Entity id already registered."""


_OPS = ("<=", ">=", "==", "!=", "<", ">")


def _parse_filter(expression: str):
    # Split on the *earliest* operator occurrence by position (an operator
    # appearing inside the value, e.g. ``label<a==b``, must not win just
    # because it sorts earlier in _OPS), preferring the longest operator at
    # that position so ``a<=1`` parses as ``<=`` rather than ``<``.
    best_pos = -1
    best_op = None
    for op in _OPS:
        pos = expression.find(op)
        if pos < 0:
            continue
        if best_op is None or pos < best_pos or (pos == best_pos and len(op) > len(best_op)):
            best_pos, best_op = pos, op
    if best_op is None:
        raise ContextError(f"cannot parse filter expression {expression!r}")
    attr = expression[:best_pos].strip()
    raw = expression[best_pos + len(best_op):].strip()
    try:
        value: Any = float(raw)
    except ValueError:
        value = raw
    return attr, best_op, value


def _apply_op(actual: Any, op: str, expected: Any) -> bool:
    if actual is None:
        return False
    if isinstance(expected, float) and isinstance(actual, bool):
        return False
    try:
        if op == "==":
            if isinstance(expected, float):
                return float(actual) == expected
            return str(actual) == expected
        if op == "!=":
            if isinstance(expected, float):
                return float(actual) != expected
            return str(actual) != expected
        numeric_actual = float(actual)
        numeric_expected = float(expected)
    except (TypeError, ValueError):
        return False
    if op == "<":
        return numeric_actual < numeric_expected
    if op == "<=":
        return numeric_actual <= numeric_expected
    if op == ">":
        return numeric_actual > numeric_expected
    if op == ">=":
        return numeric_actual >= numeric_expected
    return False


class BrokerMetrics:
    __slots__ = ("creates", "updates", "queries", "deletes", "notifications")

    def __init__(self) -> None:
        self.creates = 0
        self.updates = 0
        self.queries = 0
        self.deletes = 0
        self.notifications = 0


class ContextBroker:
    def __init__(self, sim: Simulator, name: str = "orion") -> None:
        self.sim = sim
        self.name = name
        self.entities: Dict[str, ContextEntity] = {}
        self.subscriptions: Dict[str, Subscription] = {}
        self.metrics = BrokerMetrics()
        # Hook called on every applied update: (entity, changed_attrs).
        # The replicator and audit layers attach here.
        self.update_hooks: List[Callable[[ContextEntity, List[str]], None]] = []
        labels = {"broker": name}
        registry = sim.metrics
        self._m_creates = registry.counter("context.creates", labels)
        self._m_updates = registry.counter("context.updates", labels)
        self._m_deletes = registry.counter("context.deletes", labels)
        self._m_queries = registry.counter("context.queries", labels)
        self._m_notifications = registry.counter("context.notifications", labels)
        self._m_throttled = registry.counter("context.notifications_throttled", labels)
        self._m_query_latency = registry.timer("context.query_latency_s", labels)
        registry.register_callback(
            "context.entities", lambda: float(len(self.entities)), labels
        )
        registry.register_callback(
            "context.subscriptions", lambda: float(len(self.subscriptions)), labels
        )

    # -- entity CRUD -----------------------------------------------------------

    def create_entity(
        self, entity_id: str, entity_type: str, attrs: Optional[Dict[str, Any]] = None
    ) -> ContextEntity:
        if entity_id in self.entities:
            raise AlreadyExistsError(f"entity {entity_id!r} already exists")
        entity = ContextEntity(entity_id, entity_type)
        self.entities[entity_id] = entity
        self.metrics.creates += 1
        self._m_creates.inc()
        if attrs:
            self.update_attributes(entity_id, attrs)
        return entity

    def ensure_entity(
        self, entity_id: str, entity_type: str, attrs: Optional[Dict[str, Any]] = None
    ) -> ContextEntity:
        """Create-if-absent (the NGSI ``append`` upsert)."""
        entity = self.entities.get(entity_id)
        if entity is None:
            return self.create_entity(entity_id, entity_type, attrs)
        if attrs:
            self.update_attributes(entity_id, attrs)
        return entity

    def get_entity(self, entity_id: str) -> ContextEntity:
        entity = self.entities.get(entity_id)
        if entity is None:
            raise NotFoundError(f"entity {entity_id!r} not found")
        return entity

    def has_entity(self, entity_id: str) -> bool:
        return entity_id in self.entities

    def delete_entity(self, entity_id: str) -> None:
        if entity_id not in self.entities:
            raise NotFoundError(f"entity {entity_id!r} not found")
        del self.entities[entity_id]
        self.metrics.deletes += 1
        self._m_deletes.inc()

    def update_attributes(
        self,
        entity_id: str,
        attrs: Dict[str, Any],
        attr_types: Optional[Dict[str, str]] = None,
        metadata: Optional[Dict[str, Dict[str, Any]]] = None,
    ) -> List[str]:
        """Set attribute values; returns the list of changed attribute names.

        ``attrs`` maps name -> value.  Types default to a guess from the
        Python value; metadata is per-attribute.
        """
        entity = self.get_entity(entity_id)
        changed: List[str] = []
        for name, value in attrs.items():
            attr_type = (attr_types or {}).get(name) or _guess_type(value)
            entity.set_attribute(
                name,
                value,
                attr_type,
                (metadata or {}).get(name),
                timestamp=self.sim.now,
            )
            changed.append(name)
        if changed:
            self.metrics.updates += 1
            self._m_updates.inc()
            for hook in self.update_hooks:
                hook(entity, changed)
            self._dispatch(entity, changed)
        return changed

    # -- queries -----------------------------------------------------------

    def query(
        self,
        entity_type: Optional[str] = None,
        id_pattern: Optional[str] = None,
        filters: Optional[List[str]] = None,
        limit: Optional[int] = None,
    ) -> List[ContextEntity]:
        """Filtered entity listing, deterministic order (by id)."""
        self.metrics.queries += 1
        self._m_queries.inc()
        with self._m_query_latency:
            regex = re.compile(id_pattern) if id_pattern else None
            parsed = [_parse_filter(f) for f in (filters or [])]
            results: List[ContextEntity] = []
            for entity_id in sorted(self.entities):
                entity = self.entities[entity_id]
                if entity_type is not None and entity.entity_type != entity_type:
                    continue
                if regex is not None and not regex.search(entity_id):
                    continue
                if not all(_apply_op(entity.get(attr), op, value) for attr, op, value in parsed):
                    continue
                results.append(entity)
                if limit is not None and len(results) >= limit:
                    break
        return results

    def entity_count(self) -> int:
        return len(self.entities)

    # -- subscriptions -----------------------------------------------------------

    def subscribe(self, subscription: Subscription) -> str:
        self.subscriptions[subscription.subscription_id] = subscription
        return subscription.subscription_id

    def unsubscribe(self, subscription_id: str) -> None:
        self.subscriptions.pop(subscription_id, None)

    def _dispatch(self, entity: ContextEntity, changed: List[str]) -> None:
        now = self.sim.now
        for subscription in sorted(self.subscriptions.values(), key=lambda s: s.subscription_id):
            if not subscription.active:
                continue
            if not subscription.matches_entity(entity):
                continue
            if not subscription.triggered_by(changed):
                continue
            if now - subscription.last_notification_time < subscription.throttling_s:
                subscription.notifications_throttled += 1
                self._m_throttled.inc()
                continue
            subscription.last_notification_time = now
            subscription.notifications_sent += 1
            self.metrics.notifications += 1
            self._m_notifications.inc()
            subscription.callback(subscription.build_notification(entity, changed, now))


def _guess_type(value: Any) -> str:
    if isinstance(value, bool):
        return "Boolean"
    if isinstance(value, (int, float)):
        return "Number"
    if isinstance(value, str):
        return "Text"
    if isinstance(value, dict):
        return "StructuredValue"
    if isinstance(value, (list, tuple)):
        return "StructuredValue"
    return "None" if value is None else "Text"
