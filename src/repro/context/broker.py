"""The context broker (Orion-equivalent).

Entity CRUD, filtered queries (type / id-pattern / attribute predicates),
and subscription dispatch.  One instance per deployment tier; the fog
package replicates entities between tiers.

Query filters use the small predicate language of NGSIv2's ``q`` parameter:
``attr==value``, ``attr!=value``, ``attr<value`` (and ``<=``, ``>``, ``>=``)
— enough for every query the SWAMP services issue.
"""

import re
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

from repro.context.entities import Attribute, ContextEntity
from repro.context.errors import AlreadyExistsError, ContextError, NotFoundError, QueryError
from repro.context.query import AttrFilter, Query, apply_op, parse_filter_expression
from repro.context.subscriptions import Notification, Subscription, SubscriptionIndex
from repro.resilience.backpressure import BackpressureError, DropPolicy
from repro.simkernel.simulator import Simulator

__all__ = [
    "AlreadyExistsError",
    "AttrFilter",
    "ContextBroker",
    "ContextError",
    "NotFoundError",
    "Query",
    "QueryError",
]

# Back-compat shims for the pre-typed-query private helpers.
_apply_op = apply_op


def _parse_filter(expression: str):
    parsed = parse_filter_expression(expression)
    return parsed.attr, parsed.op, parsed.value


def _coerce_filters(filters: Optional[List[Union[str, AttrFilter]]]) -> List[AttrFilter]:
    """Validate a filter list: typed :class:`AttrFilter` objects only.

    The string-expression path completed its deprecation cycle and is
    gone; NGSIv2 ``q`` wire strings are parsed at the service boundary
    with :func:`repro.context.query.parse_filter_expression`.
    """
    coerced: List[AttrFilter] = []
    for item in filters or []:
        if isinstance(item, AttrFilter):
            coerced.append(item)
        elif isinstance(item, str):
            raise QueryError(
                f"string filter {item!r} is no longer accepted; use "
                "Query(...).where(attr, op, value), AttrFilter(attr, op, value) "
                "or parse_filter_expression() at the wire boundary"
            )
        else:
            raise QueryError(f"unsupported filter {item!r}; expected AttrFilter")
    return coerced


class BrokerMetrics:
    __slots__ = ("creates", "updates", "queries", "deletes", "notifications")

    def __init__(self) -> None:
        self.creates = 0
        self.updates = 0
        self.queries = 0
        self.deletes = 0
        self.notifications = 0


class ContextBroker:
    def __init__(self, sim: Simulator, name: str = "orion") -> None:
        self.sim = sim
        self.name = name
        self.entities: Dict[str, ContextEntity] = {}
        self.subscriptions: Dict[str, Subscription] = {}
        self._sub_index = SubscriptionIndex()
        # Query narrowing: entity ids by type, and by attribute presence.
        # Maintained through the entity write-through hook so attributes
        # set directly on the entity (the IoT agent provisions that way)
        # still index; an id listed here may therefore be a superset of
        # the ids a predicate accepts, never a subset.
        self._type_index: Dict[str, Dict[str, None]] = {}
        self._attr_index: Dict[str, Dict[str, None]] = {}
        # Batched dispatch: while a ``with broker.batch():`` block is
        # open, per-entity changed-attribute sets coalesce here and fire
        # one notification per subscription per entity at block exit.
        self._batch_depth = 0
        self._pending_dispatch: Dict[str, List[str]] = {}
        self.metrics = BrokerMetrics()
        # Hook called on every applied update: (entity, changed_attrs).
        # The replicator and audit layers attach here.
        self.update_hooks: List[Callable[[ContextEntity, List[str]], None]] = []
        # Optional admission gate on the update hot path (installed by the
        # resilience stage): a closed window sheds the update before any
        # entity work, hooks or dispatch run.
        self.update_limit = None
        labels = {"broker": name}
        registry = sim.metrics
        self._m_creates = registry.counter("context.creates", labels)
        self._m_updates = registry.counter("context.updates", labels)
        self._m_deletes = registry.counter("context.deletes", labels)
        self._m_queries = registry.counter("context.queries", labels)
        self._m_notifications = registry.counter("context.notifications", labels)
        self._m_throttled = registry.counter("context.notifications_throttled", labels)
        # Candidate subscriptions the index yielded per dispatch; a full
        # scan would examine every subscription instead.
        self._m_dispatch_candidates = registry.counter("context.dispatch_candidates", labels)
        self._m_shed = registry.counter("context.backpressure_shed", labels)
        self._m_query_latency = registry.timer("context.query_latency_s", labels)
        registry.register_callback(
            "context.entities", lambda: float(len(self.entities)), labels
        )
        registry.register_callback(
            "context.subscriptions", lambda: float(len(self.subscriptions)), labels
        )

    # -- entity CRUD -----------------------------------------------------------

    def create_entity(
        self, entity_id: str, entity_type: str, attrs: Optional[Dict[str, Any]] = None
    ) -> ContextEntity:
        if entity_id in self.entities:
            raise AlreadyExistsError(f"entity {entity_id!r} already exists")
        entity = ContextEntity(entity_id, entity_type)
        entity.on_set_attribute = self._note_attribute
        self.entities[entity_id] = entity
        self._type_index.setdefault(entity_type, {})[entity_id] = None
        self.metrics.creates += 1
        self._m_creates.inc()
        if attrs:
            self.update_attributes(entity_id, attrs)
        else:
            # Attribute-less creation still notifies condition-less
            # subscribers (changed = []), so a subscription registered
            # before the entity's first attribute set observes creation.
            self._dispatch_or_defer(entity, [])
        return entity

    def _note_attribute(self, entity_id: str, name: str) -> None:
        self._attr_index.setdefault(name, {})[entity_id] = None

    def ensure_entity(
        self, entity_id: str, entity_type: str, attrs: Optional[Dict[str, Any]] = None
    ) -> ContextEntity:
        """Create-if-absent (the NGSI ``append`` upsert)."""
        entity = self.entities.get(entity_id)
        if entity is None:
            return self.create_entity(entity_id, entity_type, attrs)
        if attrs:
            self.update_attributes(entity_id, attrs)
        return entity

    def get_entity(self, entity_id: str) -> ContextEntity:
        entity = self.entities.get(entity_id)
        if entity is None:
            raise NotFoundError(f"entity {entity_id!r} not found")
        return entity

    def has_entity(self, entity_id: str) -> bool:
        return entity_id in self.entities

    def delete_entity(self, entity_id: str) -> None:
        entity = self.entities.pop(entity_id, None)
        if entity is None:
            raise NotFoundError(f"entity {entity_id!r} not found")
        entity.on_set_attribute = None
        bucket = self._type_index.get(entity.entity_type)
        if bucket is not None:
            bucket.pop(entity_id, None)
            if not bucket:
                del self._type_index[entity.entity_type]
        for name in entity.attributes:
            ids = self._attr_index.get(name)
            if ids is not None:
                ids.pop(entity_id, None)
                if not ids:
                    del self._attr_index[name]
        self._pending_dispatch.pop(entity_id, None)
        self.metrics.deletes += 1
        self._m_deletes.inc()

    def update_attributes(
        self,
        entity_id: str,
        attrs: Dict[str, Any],
        attr_types: Optional[Dict[str, str]] = None,
        metadata: Optional[Dict[str, Dict[str, Any]]] = None,
    ) -> List[str]:
        """Set attribute values; returns the list of changed attribute names.

        ``attrs`` maps name -> value.  Types default to a guess from the
        Python value; metadata is per-attribute.

        When an admission gate is installed (``update_limit``) and its
        window is closed, the update is shed *before* the entity is
        touched: DROP policies return an empty changed list, REJECT
        raises :class:`~repro.resilience.backpressure.BackpressureError`.
        """
        now = self.sim.clock.now
        if self.update_limit is not None and not self.update_limit.admit(now):
            self._m_shed.inc()
            if self.update_limit.policy is DropPolicy.REJECT:
                raise BackpressureError(
                    f"context broker {self.name!r} shedding load"
                )
            return []
        entity = self.get_entity(entity_id)
        tracer = self.sim.tracer
        span = None
        if tracer.enabled:
            span = tracer.start_span(
                "context.update", "context", broker=self.name, entity=entity_id
            )
        changed: List[str] = []
        set_attribute = entity.set_attribute
        for name, value in attrs.items():
            attr_type = (attr_types.get(name) if attr_types else None) or _guess_type(value)
            attribute = set_attribute(
                name,
                value,
                attr_type,
                metadata.get(name) if metadata else None,
                timestamp=now,
            )
            if span is not None:
                # Stamp the written attribute with this update's context so
                # downstream readers (the scheduler) can link decisions back
                # to the sensor reading that produced the value.
                attribute.trace_ctx = span.ctx
            changed.append(name)
        if changed:
            self.metrics.updates += 1
            self._m_updates.inc()
            if span is None:
                # Fast path: activate(None) would still allocate a
                # generator context manager on every update.
                for hook in self.update_hooks:
                    hook(entity, changed)
                self._dispatch_or_defer(entity, changed)
            else:
                with tracer.activate(span):
                    for hook in self.update_hooks:
                        hook(entity, changed)
                    self._dispatch_or_defer(entity, changed)
        if span is not None:
            tracer.end_span(span)
        return changed

    @contextmanager
    def batch(self) -> Iterator["ContextBroker"]:
        """Coalesce subscription notifications across several updates.

        Inside the block, updates apply immediately (entity state, update
        hooks, history) but subscription dispatch is deferred; when the
        outermost block closes, each touched entity fires *one*
        notification per matching subscription, carrying the merged
        changed-attribute list in first-write order — instead of one
        callback per ``update_attributes`` call.  Entities flush in the
        order they were first touched, so batching stays deterministic.
        """
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0:
                pending, self._pending_dispatch = self._pending_dispatch, {}
                for entity_id, changed in pending.items():
                    entity = self.entities.get(entity_id)
                    if entity is not None:
                        self._dispatch(entity, changed)

    def _dispatch_or_defer(self, entity: ContextEntity, changed: List[str]) -> None:
        if self._batch_depth == 0:
            self._dispatch(entity, changed)
            return
        merged = self._pending_dispatch.setdefault(entity.entity_id, [])
        for name in changed:
            if name not in merged:
                merged.append(name)

    # -- queries -----------------------------------------------------------

    def query(
        self,
        entity_type: Optional[Union[str, Query]] = None,
        id_pattern: Optional[str] = None,
        filters: Optional[List[Union[str, AttrFilter]]] = None,
        limit: Optional[int] = None,
    ) -> List[ContextEntity]:
        """Filtered entity listing, deterministic order (by id).

        Accepts either a :class:`Query` as the first argument
        (``broker.query(Query(type="SoilProbe").where("soilMoisture", "<", 0.2))``)
        or the individual keyword arguments.  ``filters`` items must be
        :class:`AttrFilter` objects; plain ``q`` strings raise
        :class:`QueryError` (parse them with ``parse_filter_expression``).
        """
        if isinstance(entity_type, Query):
            q = entity_type
            entity_type = q.type
            id_pattern = id_pattern if id_pattern is not None else q.id_pattern
            limit = limit if limit is not None else q.limit
            filters = list(q.filters) + list(filters or [])
        self.metrics.queries += 1
        self._m_queries.inc()
        with self._m_query_latency:
            regex = re.compile(id_pattern) if id_pattern else None
            parsed = _coerce_filters(filters)
            # Narrow the scan through the type and attribute-presence
            # indexes: a predicate on an absent attribute never matches
            # (apply_op treats None as no-match), so intersecting presence
            # buckets cannot drop a qualifying entity.
            candidate_ids: Optional[set] = None
            if entity_type is not None:
                candidate_ids = set(self._type_index.get(entity_type, ()))
            for parsed_filter in parsed:
                ids = set(self._attr_index.get(parsed_filter.attr, ()))
                candidate_ids = ids if candidate_ids is None else candidate_ids & ids
            ordered = sorted(self.entities) if candidate_ids is None else sorted(candidate_ids)
            results: List[ContextEntity] = []
            for entity_id in ordered:
                entity = self.entities.get(entity_id)
                if entity is None:
                    continue
                if entity_type is not None and entity.entity_type != entity_type:
                    continue
                if regex is not None and not regex.search(entity_id):
                    continue
                if not all(f.matches(entity) for f in parsed):
                    continue
                results.append(entity)
                if limit is not None and len(results) >= limit:
                    break
        return results

    def entity_count(self) -> int:
        return len(self.entities)

    # -- subscriptions -----------------------------------------------------------

    def subscribe(self, subscription: Subscription) -> str:
        self.subscriptions[subscription.subscription_id] = subscription
        self._sub_index.add(subscription)
        return subscription.subscription_id

    def unsubscribe(self, subscription_id: str) -> None:
        self.subscriptions.pop(subscription_id, None)
        self._sub_index.remove(subscription_id)

    def _dispatch(self, entity: ContextEntity, changed: List[str]) -> None:
        now = self.sim.now
        # The index yields a superset of the matching subscriptions in
        # O(candidates); sorting the small candidate set by subscription
        # id reproduces the old sorted-full-scan delivery order exactly.
        candidates = self._sub_index.candidates(entity)
        self._m_dispatch_candidates.inc(len(candidates))
        for subscription in sorted(candidates, key=lambda s: s.subscription_id):
            if not subscription.active:
                continue
            if not subscription.matches_entity(entity):
                continue
            if not subscription.triggered_by(changed):
                continue
            if now - subscription.last_notification_time < subscription.throttling_s:
                subscription.notifications_throttled += 1
                self._m_throttled.inc()
                continue
            subscription.last_notification_time = now
            subscription.notifications_sent += 1
            self.metrics.notifications += 1
            self._m_notifications.inc()
            subscription.callback(subscription.build_notification(entity, changed, now))


def _guess_type(value: Any) -> str:
    if isinstance(value, bool):
        return "Boolean"
    if isinstance(value, (int, float)):
        return "Number"
    if isinstance(value, str):
        return "Text"
    if isinstance(value, dict):
        return "StructuredValue"
    if isinstance(value, (list, tuple)):
        return "StructuredValue"
    return "None" if value is None else "Text"
