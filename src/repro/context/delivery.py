"""At-least-once notification fan-out to simulated endpoints.

PR 8 left subscription delivery synchronous: the broker invoked each
subscription callback inline during the update that triggered it, so a
slow or dead receiver would stall telemetry and a failure simply lost
the notification.  This module gives notifications the same treatment
the uplink's telemetry got — a bounded queue, retries, a breaker — with
the delivery semantics NGSI brokers actually promise: **at least once**.

The pipeline, per accepted notification:

* :meth:`DeliveryManager.accept` assigns a global sequence number and
  enqueues onto the owning tenant's :class:`BoundedQueue` (``REJECT``
  policy: a full queue refuses *admission*, loudly — only accepted
  notifications participate in the delivery guarantee).
* A sim-time pump drains due items oldest-first.  Each attempt consults
  the endpoint's :class:`CircuitBreaker`; an open circuit defers the
  item without burning an attempt.
* An attempt ends ``ok``, ``error`` or ``timeout``.  Timeouts are
  *ambiguous* — the endpoint may have processed the notification before
  the deadline (``timeout_delivers``), so the retry that follows can
  land a second copy.  Endpoints deduplicate by sequence number and the
  second copy is **tagged** (``duplicate``), never silently dropped:
  that is the honest at-least-once contract.
* Retries back off exponentially with seeded jitter
  (``sim.rng.stream("delivery:<endpoint>")``) up to ``max_attempts``,
  after which the item moves to the tenant's dead-letter queue.
  :meth:`DeliveryManager.replay` re-admits dead items for redelivery.

Every terminal state is accounted: the chaos audit asserts
``accepted == delivered + dead + pending + replayed-in-flight`` — an
accepted notification may wait or die loudly, but it cannot vanish.

Nothing here is constructed unless a caller builds a manager (the
service layer's ``enable_delivery`` / ``--store``-style opt-in), so
default runs schedule no pump, draw from no new streams, and remain
bit-identical.
"""

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.context.errors import ContextError
from repro.context.subscriptions import Notification, Subscription
from repro.resilience.backpressure import BoundedQueue, DropPolicy
from repro.resilience.breaker import CircuitBreaker

__all__ = [
    "DeliveryConfig",
    "DeliveryError",
    "DeliveryItem",
    "DeliveryManager",
    "SimulatedEndpoint",
]


class DeliveryError(ContextError):
    """Raised on delivery-layer misuse (unknown endpoint, full queue...)."""


@dataclass
class DeliveryConfig:
    """Tuning knobs for the fan-out pipeline (defaults suit sim scale)."""

    queue_capacity: int = 512
    dlq_capacity: int = 256
    pump_interval_s: float = 1.0
    timeout_s: float = 5.0
    max_attempts: int = 5
    backoff_base_s: float = 2.0
    backoff_cap_s: float = 120.0
    breaker_failure_threshold: int = 3
    breaker_open_timeout_s: float = 30.0

    def validate(self) -> None:
        for field in (
            "queue_capacity", "dlq_capacity", "pump_interval_s", "timeout_s",
            "max_attempts", "backoff_base_s", "backoff_cap_s",
            "breaker_failure_threshold", "breaker_open_timeout_s",
        ):
            if getattr(self, field) <= 0:
                raise DeliveryError(
                    f"{field} must be positive, got {getattr(self, field)!r}"
                )


class SimulatedEndpoint:
    """A notification receiver with controllable failure behavior.

    ``fail_rate`` / ``timeout_rate`` are per-attempt probabilities drawn
    from the manager's per-endpoint seeded stream; ``down`` (toggled by
    the ``endpoint_outage`` fault) makes every attempt time out without
    anything landing.  ``timeout_delivers`` models the ambiguous
    timeout: the request *was* processed but the ack missed the
    deadline, so the inevitable retry produces a duplicate.

    Received notifications are deduplicated by delivery sequence number;
    both copies are counted (``received`` vs unique ``delivered_seqs``)
    so tests can assert exact at-least-once arithmetic.
    """

    def __init__(
        self,
        name: str,
        fail_rate: float = 0.0,
        timeout_rate: float = 0.0,
        timeout_delivers: bool = True,
    ) -> None:
        self.name = name
        self.fail_rate = fail_rate
        self.timeout_rate = timeout_rate
        self.timeout_delivers = timeout_delivers
        self.down = False
        self.received = 0
        self.duplicates = 0
        self.delivered_seqs: Set[int] = set()
        self.log: List[Tuple[float, int, str]] = []

    def _land(self, seq: int, now: float) -> bool:
        """Record arrival of ``seq``; True when it is a duplicate."""
        duplicate = seq in self.delivered_seqs
        self.delivered_seqs.add(seq)
        self.received += 1
        if duplicate:
            self.duplicates += 1
        self.log.append((now, seq, "duplicate" if duplicate else "delivered"))
        return duplicate

    def attempt(self, item: "DeliveryItem", rng, now: float) -> str:
        """One delivery attempt; returns ``ok`` / ``error`` / ``timeout``."""
        if self.down:
            return "timeout"
        draw = rng.random()
        if draw < self.fail_rate:
            return "error"
        if draw < self.fail_rate + self.timeout_rate:
            if self.timeout_delivers:
                # The notification landed; only the ack was lost.
                self._land(item.seq, now)
            return "timeout"
        item.duplicate = self._land(item.seq, now)
        return "ok"


class DeliveryItem:
    """One accepted notification moving through the pipeline."""

    __slots__ = (
        "seq", "tenant", "subscription_id", "endpoint", "notification",
        "accepted_at", "attempts", "next_attempt_at", "status",
        "duplicate", "replays", "last_outcome",
    )

    def __init__(
        self,
        seq: int,
        tenant: str,
        subscription_id: str,
        endpoint: str,
        notification: Notification,
        accepted_at: float,
    ) -> None:
        self.seq = seq
        self.tenant = tenant
        self.subscription_id = subscription_id
        self.endpoint = endpoint
        self.notification = notification
        self.accepted_at = accepted_at
        self.attempts = 0
        self.next_attempt_at = accepted_at
        self.status = "pending"
        self.duplicate = False
        self.replays = 0
        self.last_outcome = ""

    def describe(self) -> Dict[str, object]:
        return {
            "seq": self.seq,
            "subscription_id": self.subscription_id,
            "endpoint": self.endpoint,
            "status": self.status,
            "attempts": self.attempts,
            "duplicate": self.duplicate,
            "replays": self.replays,
            "last_outcome": self.last_outcome,
            "accepted_at": self.accepted_at,
        }


class DeliveryManager:
    """Per-tenant bounded queues draining to breaker-guarded endpoints."""

    def __init__(self, sim, config: Optional[DeliveryConfig] = None) -> None:
        self.sim = sim
        self.config = config if config is not None else DeliveryConfig()
        self.config.validate()
        self._endpoints: Dict[str, SimulatedEndpoint] = {}
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._queues: Dict[str, BoundedQueue] = {}
        self._dlqs: Dict[str, BoundedQueue] = {}
        self._items: List[DeliveryItem] = []
        # subscription_id -> (tenant, endpoint) for status surfacing.
        self._subs: Dict[str, Tuple[str, str]] = {}
        self._seq = 0
        self._pump = None
        self.accepted = 0
        self.delivered = 0
        self.duplicates = 0
        self.dead_lettered = 0
        self.rejected = 0
        self.retries = 0
        self.breaker_deferrals = 0
        self.replayed = 0
        metrics = sim.metrics
        self._m_accepted = metrics.counter("delivery.accepted")
        self._m_delivered = metrics.counter("delivery.delivered")
        self._m_duplicates = metrics.counter("delivery.duplicates")
        self._m_dead = metrics.counter("delivery.dead_lettered")
        self._m_rejected = metrics.counter("delivery.rejected")
        self._m_retries = metrics.counter("delivery.retries")

    # -- registration ------------------------------------------------------

    def register_endpoint(self, endpoint: SimulatedEndpoint) -> SimulatedEndpoint:
        if endpoint.name in self._endpoints:
            raise DeliveryError(f"endpoint {endpoint.name!r} already registered")
        self._endpoints[endpoint.name] = endpoint
        self._breakers[endpoint.name] = CircuitBreaker(
            f"delivery:{endpoint.name}",
            failure_threshold=self.config.breaker_failure_threshold,
            open_timeout_s=self.config.breaker_open_timeout_s,
            metrics=self.sim.metrics,
        )
        return endpoint

    def endpoint(self, name: str) -> SimulatedEndpoint:
        endpoint = self._endpoints.get(name)
        if endpoint is None:
            raise DeliveryError(
                f"unknown endpoint {name!r}; registered: {sorted(self._endpoints)}"
            )
        return endpoint

    def breaker(self, name: str) -> CircuitBreaker:
        self.endpoint(name)
        return self._breakers[name]

    def _tenant_queues(self, tenant: str) -> Tuple[BoundedQueue, BoundedQueue]:
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = BoundedQueue(
                self.config.queue_capacity, DropPolicy.REJECT
            )
            self._dlqs[tenant] = BoundedQueue(
                self.config.dlq_capacity, DropPolicy.REJECT
            )
            metrics = self.sim.metrics
            metrics.register_callback(
                "delivery.queue_depth",
                lambda q=queue: float(len(q)),
                {"tenant": tenant},
            )
            metrics.register_callback(
                "delivery.dlq_depth",
                lambda q=self._dlqs[tenant]: float(len(q)),
                {"tenant": tenant},
            )
        return queue, self._dlqs[tenant]

    def bind_subscription(
        self, subscription: Subscription, tenant: str, endpoint_name: str
    ) -> Callable[[Notification], None]:
        """Route ``subscription``'s notifications through the pipeline.

        Returns the callback to install on the subscription (the caller
        builds the subscription; this keeps the broker layer unaware of
        delivery).  Also pre-creates the tenant's queues so depth gauges
        exist before the first notification.
        """
        self.endpoint(endpoint_name)
        self._subs[subscription.subscription_id] = (tenant, endpoint_name)
        self._tenant_queues(tenant)

        def _enqueue(notification: Notification) -> None:
            self.accept(tenant, notification.subscription_id, endpoint_name, notification)

        subscription.callback = _enqueue
        return _enqueue

    # -- admission ---------------------------------------------------------

    def accept(
        self,
        tenant: str,
        subscription_id: str,
        endpoint_name: str,
        notification: Notification,
    ) -> Optional[DeliveryItem]:
        """Admit one notification; None when the tenant queue refused it."""
        self.endpoint(endpoint_name)
        queue, _dlq = self._tenant_queues(tenant)
        now = self.sim.clock.now
        item = DeliveryItem(
            self._seq, tenant, subscription_id, endpoint_name, notification, now
        )
        if not queue.push(item):
            self.rejected += 1
            self._m_rejected.inc()
            return None
        self._seq += 1
        self._items.append(item)
        self.accepted += 1
        self._m_accepted.inc()
        return item

    # -- the pump ----------------------------------------------------------

    def start(self) -> None:
        """Spawn the drain pump (idempotent)."""
        if self._pump is None:
            self._pump = self.sim.spawn(self._pump_loop(), name="delivery-pump")

    def _pump_loop(self):
        while True:
            yield self.config.pump_interval_s
            self.pump_now()

    def pump_now(self) -> int:
        """Attempt every due item once; returns deliveries made."""
        now = self.sim.clock.now
        made = 0
        for tenant in sorted(self._queues):
            queue, dlq = self._queues[tenant], self._dlqs[tenant]
            for item in queue.drain():
                if item.next_attempt_at > now:
                    queue.push(item)
                    continue
                outcome = self._attempt(item, now)
                if outcome == "delivered":
                    made += 1
                elif outcome == "dead":
                    if not dlq.push(item):
                        # A full DLQ still cannot lose the item silently:
                        # it stays pending and retries after a full
                        # backoff window.
                        item.status = "pending"
                        item.next_attempt_at = now + self.config.backoff_cap_s
                        queue.push(item)
                else:
                    queue.push(item)
        return made

    def _attempt(self, item: DeliveryItem, now: float) -> str:
        breaker = self._breakers[item.endpoint]
        if not breaker.allow(now):
            self.breaker_deferrals += 1
            item.next_attempt_at = now + self._backoff(item)
            item.last_outcome = "deferred"
            return "deferred"
        endpoint = self._endpoints[item.endpoint]
        rng = self.sim.rng.stream(f"delivery:{item.endpoint}")
        item.attempts += 1
        outcome = endpoint.attempt(item, rng, now)
        item.last_outcome = outcome
        if outcome == "ok":
            breaker.record_success(now)
            item.status = "delivered"
            self.delivered += 1
            self._m_delivered.inc()
            if item.duplicate:
                self.duplicates += 1
                self._m_duplicates.inc()
            return "delivered"
        breaker.record_failure(now)
        if item.attempts >= self.config.max_attempts:
            item.status = "dead"
            self.dead_lettered += 1
            self._m_dead.inc()
            return "dead"
        self.retries += 1
        self._m_retries.inc()
        item.next_attempt_at = now + self._backoff(item)
        return "retry"

    def _backoff(self, item: DeliveryItem) -> float:
        rng = self.sim.rng.stream(f"delivery:{item.endpoint}")
        base = self.config.backoff_base_s * (2.0 ** max(0, item.attempts - 1))
        return min(base, self.config.backoff_cap_s) * rng.uniform(0.5, 1.5)

    # -- dead letters ------------------------------------------------------

    def replay(self, tenant: str, subscription_id: Optional[str] = None) -> int:
        """Re-admit dead-lettered items for delivery; returns the count."""
        dlq = self._dlqs.get(tenant)
        if dlq is None:
            return 0
        queue = self._queues[tenant]
        kept: List[DeliveryItem] = []
        moved = 0
        now = self.sim.clock.now
        for item in dlq.drain():
            if subscription_id is not None and item.subscription_id != subscription_id:
                kept.append(item)
                continue
            item.status = "pending"
            item.attempts = 0
            item.replays += 1
            item.next_attempt_at = now
            queue.push(item)
            moved += 1
        for item in kept:
            dlq.push(item)
        self.replayed += moved
        return moved

    # -- status / audit ----------------------------------------------------

    def subscription_status(self, subscription_id: str) -> Dict[str, object]:
        """Tenant-visible delivery status for one subscription."""
        bound = self._subs.get(subscription_id)
        items = [i for i in self._items if i.subscription_id == subscription_id]
        return {
            "subscription_id": subscription_id,
            "endpoint": bound[1] if bound else None,
            "accepted": len(items),
            "delivered": sum(1 for i in items if i.status == "delivered"),
            "duplicates": sum(1 for i in items if i.duplicate),
            "dead": sum(1 for i in items if i.status == "dead"),
            "pending": sum(1 for i in items if i.status == "pending"),
            "items": [i.describe() for i in items[-20:]],
        }

    def tenant_status(self, tenant: str) -> Dict[str, object]:
        queue = self._queues.get(tenant)
        dlq = self._dlqs.get(tenant)
        items = [i for i in self._items if i.tenant == tenant]
        return {
            "tenant": tenant,
            "queue_depth": len(queue) if queue else 0,
            "dlq_depth": len(dlq) if dlq else 0,
            "accepted": len(items),
            "delivered": sum(1 for i in items if i.status == "delivered"),
            "dead": sum(1 for i in items if i.status == "dead"),
            "pending": sum(1 for i in items if i.status == "pending"),
        }

    def audit(self) -> Dict[str, object]:
        """Conservation check: accepted items are delivered, dead or pending.

        ``conserved`` is the invariant the chaos harness asserts — an
        accepted notification never disappears from the accounting, under
        any combination of endpoint outage, breaker state and replay.
        """
        delivered = sum(1 for i in self._items if i.status == "delivered")
        dead = sum(1 for i in self._items if i.status == "dead")
        pending = sum(1 for i in self._items if i.status == "pending")
        return {
            "accepted": self.accepted,
            "delivered": delivered,
            "dead": dead,
            "pending": pending,
            "duplicates": self.duplicates,
            "rejected": self.rejected,
            "retries": self.retries,
            "breaker_deferrals": self.breaker_deferrals,
            "replayed": self.replayed,
            "conserved": delivered + dead + pending == self.accepted,
        }

    def report(self) -> Dict[str, object]:
        data = self.audit()
        data["endpoints"] = {
            name: {
                "received": ep.received,
                "unique": len(ep.delivered_seqs),
                "duplicates": ep.duplicates,
                "down": ep.down,
                "breaker": self._breakers[name].state.value,
            }
            for name, ep in sorted(self._endpoints.items())
        }
        return data
