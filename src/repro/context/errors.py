"""Context-broker exceptions, rooted in the platform-wide hierarchy."""

from repro.simkernel.errors import ReproError


class ContextError(ReproError):
    """Base error for context operations."""


class NotFoundError(ContextError):
    """Entity does not exist."""


class AlreadyExistsError(ContextError):
    """Entity id already registered."""


class QueryError(ContextError):
    """Malformed query filter (bad operator, unparseable expression)."""
