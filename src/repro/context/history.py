"""Short-term history (STH-Comet equivalent).

Attaches to a :class:`~repro.context.broker.ContextBroker` via an update
hook and records every numeric attribute change as a (time, value) sample.
All query shapes STH exposes — raw range, last-N, bucketed rollups and
min/max/mean/sum/count aggregates — are served through **one typed read
API**: build a :class:`HistoryQuery`, call :meth:`ShortTermHistory.read`,
get a :class:`HistoryResult` back.  The legacy per-shape methods
(``series``/``last_n``/``range``/``aggregate``/``rollup``/``downsample``)
remain as warn-once deprecation shims for one cycle.

Series are bounded per (entity, attribute) to keep multi-season runs in
memory; eviction drops the oldest samples.

**Rollups.**  When enabled (:meth:`ShortTermHistory.enable_rollups`, or
the ``rollup_periods`` constructor argument), every sample additionally
folds into time-bucketed aggregates — one sparse bucket map per
(series, period), the STH-Comet ``aggrPeriod`` shapes (raw → minute →
hour by default).  Buckets keep ``count/min/max/sum`` so any of the five
aggregation methods reads in O(buckets in range); empty buckets are
never materialized.  Folding is pure accounting — no events scheduled,
no randomness drawn — so enabling rollups never perturbs a run's event
sequence, and rollup contents are a deterministic function of the raw
samples (late, out-of-order samples fold into the bucket their own
timestamp selects, not the newest one).  Rollups are off by default to
keep the telemetry hot path bare; the north-facing service layer enables
them when it attaches.

**Read sources.**  ``read(query)`` defaults to ``source="auto"``: the
bounded in-memory rings/buckets answer unless a columnar backend has
been bound (:meth:`ShortTermHistory.bind_columnar`, done by the store's
compaction service), in which case queries stream from sealed chunk
files plus the WAL tail with zone-map pruning — same rows, bounded
memory, and reach beyond the ring eviction horizon.  ``source="memory"``
or ``"columnar"`` forces a path.
"""

import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.context.broker import ContextBroker
from repro.context.entities import ContextEntity
from repro.context.errors import QueryError

Sample = Tuple[float, float]

#: STH-Comet's sub-day aggregation periods, in seconds.
MINUTE_S = 60.0
HOUR_S = 3600.0

#: count/min/max/sum live in one 4-slot bucket list; mean = sum/count.
ROLLUP_METHODS = ("count", "min", "max", "sum", "mean")

#: Query kinds a :class:`HistoryQuery` can resolve to.
QUERY_KINDS = ("raw", "lastn", "rollup", "aggregate")

# Names that already emitted their deprecation warning this process.
_DEPRECATION_WARNED = set()


def _warn_deprecated(name: str, replacement: str) -> None:
    if name in _DEPRECATION_WARNED:
        return
    _DEPRECATION_WARNED.add(name)
    warnings.warn(
        f"{name} is deprecated; use {replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class HistoryQuery:
    """One typed history read: which series, which shape, which window.

    Exactly one of four shapes, inferred from the fields
    (:attr:`kind`):

    * **raw** — every sample with ``since <= t <= until`` (the default);
    * **lastn** — the newest ``last_n`` samples (window ignored by the
      in-memory ring, matching STH's ``lastN``);
    * **rollup** — ``period_s`` bucketed aggregates; ``method`` is one of
      :data:`ROLLUP_METHODS` (default ``mean``), a bucket is listed when
      its *start* falls in ``[since, until]``;
    * **aggregate** — one count/min/max/sum/mean summary over the window
      (``aggregate=True``).
    """

    entity_id: str
    attr: str
    since: float = float("-inf")
    until: float = float("inf")
    last_n: Optional[int] = None
    period_s: Optional[float] = None
    method: Optional[str] = None
    aggregate: bool = False

    @property
    def kind(self) -> str:
        if self.period_s is not None:
            return "rollup"
        if self.aggregate:
            return "aggregate"
        if self.last_n is not None:
            return "lastn"
        return "raw"

    @property
    def effective_method(self) -> str:
        return self.method if self.method is not None else "mean"

    def validate(self) -> None:
        """Raise :class:`~repro.context.errors.QueryError` on shape
        conflicts (lastN+rollup, method without a period, ...)."""
        if self.last_n is not None and (self.period_s is not None or self.aggregate):
            raise QueryError("last_n cannot combine with period_s/aggregate")
        if self.aggregate and self.period_s is not None:
            raise QueryError("aggregate=True cannot combine with period_s")
        if self.last_n is not None and self.last_n < 1:
            raise QueryError(f"last_n must be >= 1, got {self.last_n}")
        if self.period_s is not None and self.period_s <= 0:
            raise QueryError(f"period_s must be positive, got {self.period_s!r}")
        if self.method is not None and self.period_s is None:
            raise QueryError("method only applies to rollup queries (set period_s)")
        if self.period_s is not None and self.effective_method not in ROLLUP_METHODS:
            raise QueryError(
                f"unknown rollup method {self.effective_method!r}; "
                f"expected one of {ROLLUP_METHODS}"
            )


@dataclass
class HistoryResult:
    """What a :meth:`ShortTermHistory.read` returned, plus how.

    ``rows`` is the ``[(t, value), ...]`` answer for raw/lastn/rollup
    queries (empty for aggregates); ``stats`` is the aggregate summary
    dict (``None`` when the window held no samples).  The scan counters
    expose the columnar path's zone-map pruning — ``pruned_blocks`` is
    how many on-disk blocks the zone maps skipped without reading.
    """

    query: HistoryQuery
    kind: str
    source: str
    rows: List[Sample] = field(default_factory=list)
    stats: Optional[Dict[str, float]] = None
    scanned_samples: int = 0
    scanned_blocks: int = 0
    pruned_blocks: int = 0


class ShortTermHistory:
    def __init__(
        self,
        broker: ContextBroker,
        max_samples_per_series: int = 50_000,
        rollup_periods: Tuple[float, ...] = (),
        max_buckets_per_series: int = 8192,
    ) -> None:
        self.broker = broker
        self.max_samples_per_series = max_samples_per_series
        self.max_buckets_per_series = max_buckets_per_series
        self._series: Dict[Tuple[str, str], Deque[Sample]] = {}
        # period_s -> series key -> bucket index -> [count, min, max, sum].
        self._rollups: Dict[float, Dict[Tuple[str, str], Dict[int, List[float]]]] = {}
        # Durable write-through sink (a DurabilityService), None by default.
        self._sink = None
        # Columnar read backend (a ColumnarReader), None by default.
        self._columnar = None
        if rollup_periods:
            self.enable_rollups(rollup_periods)
        broker.update_hooks.append(self._on_update)

    def _on_update(self, entity: ContextEntity, changed: List[str]) -> None:
        for name in changed:
            attribute = entity.attribute(name)
            if attribute is None or not isinstance(attribute.value, (int, float)):
                continue
            if isinstance(attribute.value, bool):
                continue
            key = (entity.entity_id, name)
            series = self._series.get(key)
            if series is None:
                series = deque(maxlen=self.max_samples_per_series)
                self._series[key] = series
            t, v = attribute.timestamp, float(attribute.value)
            series.append((t, v))
            if self._rollups:
                self._fold(key, t, v)
            if self._sink is not None:
                self._sink.on_sample(entity.entity_id, name, t, v)

    # -- durability ----------------------------------------------------------

    def set_sink(self, sink) -> None:
        """Write every accepted sample through ``sink`` (anything with an
        ``on_sample(entity_id, attr, t, v)`` method — in practice a
        :class:`~repro.store.durable.DurabilityService`)."""
        self._sink = sink

    def attach_store(self, store) -> None:
        """Deprecated alias of :meth:`set_sink`."""
        _warn_deprecated("ShortTermHistory.attach_store", "set_sink")
        self.set_sink(store)

    def bind_columnar(self, reader) -> None:
        """Route ``source="auto"`` reads through ``reader`` (anything
        with a ``read(HistoryQuery) -> HistoryResult`` method — in
        practice a :class:`~repro.store.columnar.ColumnarReader`)."""
        self._columnar = reader

    @property
    def columnar(self):
        return self._columnar

    def rebuild_from_samples(self, samples) -> None:
        """Crash recovery: drop all in-memory state and re-fold ``samples``.

        ``samples`` is an iterable of ``(entity_id, attr, t, v)`` in the
        original append order.  Re-folding in that order reproduces ring
        eviction *and* rollup-bucket eviction decision-for-decision, so
        reads after a rebuild are bit-identical to an uninterrupted run
        that only ever saw this prefix.
        """
        periods = tuple(self._rollups)
        self._series = {}
        self._rollups = {period: {} for period in periods}
        for entity_id, attr, t, v in samples:
            key = (entity_id, attr)
            series = self._series.get(key)
            if series is None:
                series = deque(maxlen=self.max_samples_per_series)
                self._series[key] = series
            series.append((t, v))
            if self._rollups:
                self._fold(key, t, v)

    # -- rollups -------------------------------------------------------------

    @property
    def rollup_periods(self) -> Tuple[float, ...]:
        return tuple(self._rollups)

    def enable_rollups(self, periods: Tuple[float, ...] = (MINUTE_S, HOUR_S)) -> None:
        """Start maintaining bucketed aggregates for ``periods``.

        Idempotent per period.  New periods are **backfilled** from the
        raw rings, so rollups enabled after samples were recorded cover
        whatever raw history is still retained — the same truncation STH
        applies when its raw collection is capped.
        """
        for period in periods:
            if period <= 0:
                raise QueryError(f"rollup period must be positive, got {period!r}")
            if period in self._rollups:
                continue
            self._rollups[period] = {}
            for key, series in self._series.items():
                for t, v in series:
                    self._fold_one(period, key, t, v)

    def _fold(self, key: Tuple[str, str], t: float, v: float) -> None:
        for period in self._rollups:
            self._fold_one(period, key, t, v)

    def _fold_one(self, period: float, key: Tuple[str, str], t: float, v: float) -> None:
        buckets = self._rollups[period].get(key)
        if buckets is None:
            buckets = self._rollups[period][key] = {}
        index = int(t // period)
        bucket = buckets.get(index)
        if bucket is None:
            if len(buckets) >= self.max_buckets_per_series:
                oldest = min(buckets)
                if index < oldest:
                    # A sample older than the retention horizon would be
                    # evicted immediately; dropping it keeps eviction
                    # order-independent for late stragglers.
                    return
                del buckets[oldest]
            buckets[index] = [1.0, v, v, v]
            return
        bucket[0] += 1.0
        if v < bucket[1]:
            bucket[1] = v
        if v > bucket[2]:
            bucket[2] = v
        bucket[3] += v

    # -- the unified read API ------------------------------------------------

    def read(self, query: HistoryQuery, source: str = "auto") -> HistoryResult:
        """Answer ``query`` from ``source``.

        ``"auto"`` streams from the bound columnar backend when one is
        attached (:meth:`bind_columnar`) and falls back to the in-memory
        rings/buckets otherwise; ``"memory"`` / ``"columnar"`` force a
        path (the latter raises :class:`QueryError` when no backend is
        bound).  Where both paths retain the data, they answer
        bit-identically — the columnar path additionally reaches past
        ring/bucket eviction, since disk keeps what memory dropped.
        """
        query.validate()
        if source == "auto":
            source = "columnar" if self._columnar is not None else "memory"
        if source == "columnar":
            if self._columnar is None:
                raise QueryError(
                    "no columnar backend bound; enable store compaction or "
                    "query with source='memory'"
                )
            return self._columnar.read(query)
        if source != "memory":
            raise QueryError(
                f"unknown history source {source!r}; "
                "expected 'auto', 'memory' or 'columnar'"
            )
        return self._read_memory(query)

    def _read_memory(self, query: HistoryQuery) -> HistoryResult:
        kind = query.kind
        if kind == "rollup":
            return self._memory_rollup(query)
        key = (query.entity_id, query.attr)
        series = self._series.get(key, ())
        scanned = len(series)
        if kind == "lastn":
            rows = list(series)[-query.last_n:] if series else []
            return HistoryResult(query, kind, "memory", rows=rows,
                                 scanned_samples=scanned)
        rows = [s for s in series if query.since <= s[0] <= query.until]
        if kind == "raw":
            return HistoryResult(query, kind, "memory", rows=rows,
                                 scanned_samples=scanned)
        stats = None
        if rows:
            values = [v for _t, v in rows]
            stats = {
                "count": float(len(values)),
                "min": min(values),
                "max": max(values),
                "sum": sum(values),
                "mean": sum(values) / len(values),
            }
        return HistoryResult(query, kind, "memory", stats=stats,
                             scanned_samples=scanned)

    def _memory_rollup(self, query: HistoryQuery) -> HistoryResult:
        period_s = query.period_s
        by_series = self._rollups.get(period_s)
        if by_series is None:
            raise QueryError(
                f"rollup period {period_s!r} not enabled; "
                f"enabled: {sorted(self._rollups)}"
            )
        buckets = by_series.get((query.entity_id, query.attr))
        result = HistoryResult(query, "rollup", "memory")
        if not buckets:
            return result
        method = query.effective_method
        result.scanned_blocks = len(buckets)
        for index in sorted(buckets):
            start = index * period_s
            if start < query.since or start > query.until:
                continue
            count, vmin, vmax, vsum = buckets[index]
            if method == "count":
                value = count
            elif method == "min":
                value = vmin
            elif method == "max":
                value = vmax
            elif method == "sum":
                value = vsum
            else:
                value = vsum / count
            result.rows.append((start, value))
        return result

    # -- deprecated per-shape read methods -----------------------------------

    def rollup(
        self,
        entity_id: str,
        attr: str,
        period_s: float,
        since: float = float("-inf"),
        until: float = float("inf"),
        method: str = "mean",
    ) -> List[Tuple[float, float]]:
        """Deprecated: build a :class:`HistoryQuery` and call :meth:`read`."""
        _warn_deprecated("ShortTermHistory.rollup", "read(HistoryQuery(period_s=...))")
        query = HistoryQuery(entity_id, attr, since=since, until=until,
                             period_s=period_s, method=method)
        return self.read(query, source="memory").rows

    def downsample(
        self,
        entity_id: str,
        attr: str,
        period_s: float,
        since: float = float("-inf"),
        until: float = float("inf"),
    ) -> List[Tuple[float, float]]:
        """Deprecated: build a :class:`HistoryQuery` and call :meth:`read`."""
        _warn_deprecated(
            "ShortTermHistory.downsample",
            "read(HistoryQuery(period_s=..., method='mean'))",
        )
        query = HistoryQuery(entity_id, attr, since=since, until=until,
                             period_s=period_s, method="mean")
        return self.read(query, source="memory").rows

    def series(self, entity_id: str, attr: str) -> List[Sample]:
        """Deprecated: build a :class:`HistoryQuery` and call :meth:`read`."""
        _warn_deprecated("ShortTermHistory.series", "read(HistoryQuery(...))")
        return self.read(HistoryQuery(entity_id, attr), source="memory").rows

    def last_n(self, entity_id: str, attr: str, n: int) -> List[Sample]:
        """Deprecated: build a :class:`HistoryQuery` and call :meth:`read`."""
        _warn_deprecated("ShortTermHistory.last_n", "read(HistoryQuery(last_n=...))")
        query = HistoryQuery(entity_id, attr, last_n=n)
        return self.read(query, source="memory").rows

    def range(
        self, entity_id: str, attr: str, since: float = float("-inf"), until: float = float("inf")
    ) -> List[Sample]:
        """Deprecated: build a :class:`HistoryQuery` and call :meth:`read`."""
        _warn_deprecated("ShortTermHistory.range", "read(HistoryQuery(since=..., until=...))")
        query = HistoryQuery(entity_id, attr, since=since, until=until)
        return self.read(query, source="memory").rows

    def aggregate(
        self,
        entity_id: str,
        attr: str,
        since: float = float("-inf"),
        until: float = float("inf"),
    ) -> Optional[Dict[str, float]]:
        """Deprecated: build a :class:`HistoryQuery` and call :meth:`read`."""
        _warn_deprecated(
            "ShortTermHistory.aggregate", "read(HistoryQuery(aggregate=True))"
        )
        query = HistoryQuery(entity_id, attr, since=since, until=until, aggregate=True)
        return self.read(query, source="memory").stats

    def tracked_series(self) -> List[Tuple[str, str]]:
        return sorted(self._series)
