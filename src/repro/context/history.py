"""Short-term history (STH-Comet equivalent).

Attaches to a :class:`~repro.context.broker.ContextBroker` via an update
hook and records every numeric attribute change as a (time, value) sample.
Offers the raw and aggregated query shapes STH exposes: last-N, time-range,
and min/max/mean/sum/count over a range.

Series are bounded per (entity, attribute) to keep multi-season runs in
memory; eviction drops the oldest samples.
"""

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.context.broker import ContextBroker
from repro.context.entities import ContextEntity

Sample = Tuple[float, float]


class ShortTermHistory:
    def __init__(self, broker: ContextBroker, max_samples_per_series: int = 50_000) -> None:
        self.broker = broker
        self.max_samples_per_series = max_samples_per_series
        self._series: Dict[Tuple[str, str], Deque[Sample]] = {}
        broker.update_hooks.append(self._on_update)

    def _on_update(self, entity: ContextEntity, changed: List[str]) -> None:
        for name in changed:
            attribute = entity.attribute(name)
            if attribute is None or not isinstance(attribute.value, (int, float)):
                continue
            if isinstance(attribute.value, bool):
                continue
            key = (entity.entity_id, name)
            series = self._series.get(key)
            if series is None:
                series = deque(maxlen=self.max_samples_per_series)
                self._series[key] = series
            series.append((attribute.timestamp, float(attribute.value)))

    # -- queries -----------------------------------------------------------

    def series(self, entity_id: str, attr: str) -> List[Sample]:
        return list(self._series.get((entity_id, attr), ()))

    def last_n(self, entity_id: str, attr: str, n: int) -> List[Sample]:
        series = self._series.get((entity_id, attr))
        if not series:
            return []
        return list(series)[-n:]

    def range(
        self, entity_id: str, attr: str, since: float = float("-inf"), until: float = float("inf")
    ) -> List[Sample]:
        return [s for s in self._series.get((entity_id, attr), ()) if since <= s[0] <= until]

    def aggregate(
        self,
        entity_id: str,
        attr: str,
        since: float = float("-inf"),
        until: float = float("inf"),
    ) -> Optional[Dict[str, float]]:
        samples = self.range(entity_id, attr, since, until)
        if not samples:
            return None
        values = [v for _t, v in samples]
        return {
            "count": float(len(values)),
            "min": min(values),
            "max": max(values),
            "sum": sum(values),
            "mean": sum(values) / len(values),
        }

    def tracked_series(self) -> List[Tuple[str, str]]:
        return sorted(self._series)
