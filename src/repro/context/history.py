"""Short-term history (STH-Comet equivalent).

Attaches to a :class:`~repro.context.broker.ContextBroker` via an update
hook and records every numeric attribute change as a (time, value) sample.
Offers the raw and aggregated query shapes STH exposes: last-N, time-range,
and min/max/mean/sum/count over a range.

Series are bounded per (entity, attribute) to keep multi-season runs in
memory; eviction drops the oldest samples.

**Rollups.**  When enabled (:meth:`ShortTermHistory.enable_rollups`, or
the ``rollup_periods`` constructor argument), every sample additionally
folds into time-bucketed aggregates — one sparse bucket map per
(series, period), the STH-Comet ``aggrPeriod`` shapes (raw → minute →
hour by default).  Buckets keep ``count/min/max/sum`` so any of the five
aggregation methods reads in O(buckets in range); empty buckets are
never materialized.  Folding is pure accounting — no events scheduled,
no randomness drawn — so enabling rollups never perturbs a run's event
sequence, and rollup contents are a deterministic function of the raw
samples (late, out-of-order samples fold into the bucket their own
timestamp selects, not the newest one).  Rollups are off by default to
keep the telemetry hot path bare; the north-facing service layer enables
them when it attaches.
"""

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.context.broker import ContextBroker
from repro.context.entities import ContextEntity
from repro.context.errors import QueryError

Sample = Tuple[float, float]

#: STH-Comet's sub-day aggregation periods, in seconds.
MINUTE_S = 60.0
HOUR_S = 3600.0

#: count/min/max/sum live in one 4-slot bucket list; mean = sum/count.
ROLLUP_METHODS = ("count", "min", "max", "sum", "mean")


class ShortTermHistory:
    def __init__(
        self,
        broker: ContextBroker,
        max_samples_per_series: int = 50_000,
        rollup_periods: Tuple[float, ...] = (),
        max_buckets_per_series: int = 8192,
    ) -> None:
        self.broker = broker
        self.max_samples_per_series = max_samples_per_series
        self.max_buckets_per_series = max_buckets_per_series
        self._series: Dict[Tuple[str, str], Deque[Sample]] = {}
        # period_s -> series key -> bucket index -> [count, min, max, sum].
        self._rollups: Dict[float, Dict[Tuple[str, str], Dict[int, List[float]]]] = {}
        # Durable write-through sink (a DurabilityService), None by default.
        self._store = None
        if rollup_periods:
            self.enable_rollups(rollup_periods)
        broker.update_hooks.append(self._on_update)

    def _on_update(self, entity: ContextEntity, changed: List[str]) -> None:
        for name in changed:
            attribute = entity.attribute(name)
            if attribute is None or not isinstance(attribute.value, (int, float)):
                continue
            if isinstance(attribute.value, bool):
                continue
            key = (entity.entity_id, name)
            series = self._series.get(key)
            if series is None:
                series = deque(maxlen=self.max_samples_per_series)
                self._series[key] = series
            t, v = attribute.timestamp, float(attribute.value)
            series.append((t, v))
            if self._rollups:
                self._fold(key, t, v)
            if self._store is not None:
                self._store.on_sample(entity.entity_id, name, t, v)

    # -- durability --------------------------------------------------------

    def attach_store(self, store) -> None:
        """Write every accepted sample through ``store`` (anything with an
        ``on_sample(entity_id, attr, t, v)`` method — in practice a
        :class:`~repro.store.durable.DurabilityService`)."""
        self._store = store

    def rebuild_from_samples(self, samples) -> None:
        """Crash recovery: drop all in-memory state and re-fold ``samples``.

        ``samples`` is an iterable of ``(entity_id, attr, t, v)`` in the
        original append order.  Re-folding in that order reproduces ring
        eviction *and* rollup-bucket eviction decision-for-decision, so
        reads after a rebuild are bit-identical to an uninterrupted run
        that only ever saw this prefix.
        """
        periods = tuple(self._rollups)
        self._series = {}
        self._rollups = {period: {} for period in periods}
        for entity_id, attr, t, v in samples:
            key = (entity_id, attr)
            series = self._series.get(key)
            if series is None:
                series = deque(maxlen=self.max_samples_per_series)
                self._series[key] = series
            series.append((t, v))
            if self._rollups:
                self._fold(key, t, v)

    # -- rollups -----------------------------------------------------------

    @property
    def rollup_periods(self) -> Tuple[float, ...]:
        return tuple(self._rollups)

    def enable_rollups(self, periods: Tuple[float, ...] = (MINUTE_S, HOUR_S)) -> None:
        """Start maintaining bucketed aggregates for ``periods``.

        Idempotent per period.  New periods are **backfilled** from the
        raw rings, so rollups enabled after samples were recorded cover
        whatever raw history is still retained — the same truncation STH
        applies when its raw collection is capped.
        """
        for period in periods:
            if period <= 0:
                raise QueryError(f"rollup period must be positive, got {period!r}")
            if period in self._rollups:
                continue
            self._rollups[period] = {}
            for key, series in self._series.items():
                for t, v in series:
                    self._fold_one(period, key, t, v)

    def _fold(self, key: Tuple[str, str], t: float, v: float) -> None:
        for period in self._rollups:
            self._fold_one(period, key, t, v)

    def _fold_one(self, period: float, key: Tuple[str, str], t: float, v: float) -> None:
        buckets = self._rollups[period].get(key)
        if buckets is None:
            buckets = self._rollups[period][key] = {}
        index = int(t // period)
        bucket = buckets.get(index)
        if bucket is None:
            if len(buckets) >= self.max_buckets_per_series:
                oldest = min(buckets)
                if index < oldest:
                    # A sample older than the retention horizon would be
                    # evicted immediately; dropping it keeps eviction
                    # order-independent for late stragglers.
                    return
                del buckets[oldest]
            buckets[index] = [1.0, v, v, v]
            return
        bucket[0] += 1.0
        if v < bucket[1]:
            bucket[1] = v
        if v > bucket[2]:
            bucket[2] = v
        bucket[3] += v

    def rollup(
        self,
        entity_id: str,
        attr: str,
        period_s: float,
        since: float = float("-inf"),
        until: float = float("inf"),
        method: str = "mean",
    ) -> List[Tuple[float, float]]:
        """Bucketed aggregate series: ``[(bucket_start_s, value), ...]``.

        ``method`` is one of :data:`ROLLUP_METHODS`.  A bucket is listed
        when its *start* falls in ``[since, until]``; buckets with no
        samples are skipped (STH's sparse ``occur`` semantics).  Raises
        :class:`~repro.context.errors.QueryError` for unknown methods or
        periods that were never enabled.
        """
        if method not in ROLLUP_METHODS:
            raise QueryError(
                f"unknown rollup method {method!r}; expected one of {ROLLUP_METHODS}"
            )
        by_series = self._rollups.get(period_s)
        if by_series is None:
            raise QueryError(
                f"rollup period {period_s!r} not enabled; enabled: {sorted(self._rollups)}"
            )
        buckets = by_series.get((entity_id, attr))
        if not buckets:
            return []
        rows: List[Tuple[float, float]] = []
        for index in sorted(buckets):
            start = index * period_s
            if start < since or start > until:
                continue
            count, vmin, vmax, vsum = buckets[index]
            if method == "count":
                value = count
            elif method == "min":
                value = vmin
            elif method == "max":
                value = vmax
            elif method == "sum":
                value = vsum
            else:
                value = vsum / count
            rows.append((start, value))
        return rows

    def downsample(
        self,
        entity_id: str,
        attr: str,
        period_s: float,
        since: float = float("-inf"),
        until: float = float("inf"),
    ) -> List[Tuple[float, float]]:
        """The mean-per-bucket series (the dashboard downsampling shape)."""
        return self.rollup(entity_id, attr, period_s, since, until, method="mean")

    # -- queries -----------------------------------------------------------

    def series(self, entity_id: str, attr: str) -> List[Sample]:
        return list(self._series.get((entity_id, attr), ()))

    def last_n(self, entity_id: str, attr: str, n: int) -> List[Sample]:
        series = self._series.get((entity_id, attr))
        if not series:
            return []
        return list(series)[-n:]

    def range(
        self, entity_id: str, attr: str, since: float = float("-inf"), until: float = float("inf")
    ) -> List[Sample]:
        return [s for s in self._series.get((entity_id, attr), ()) if since <= s[0] <= until]

    def aggregate(
        self,
        entity_id: str,
        attr: str,
        since: float = float("-inf"),
        until: float = float("inf"),
    ) -> Optional[Dict[str, float]]:
        samples = self.range(entity_id, attr, since, until)
        if not samples:
            return None
        values = [v for _t, v in samples]
        return {
            "count": float(len(values)),
            "min": min(values),
            "max": max(values),
            "sum": sum(values),
            "mean": sum(values) / len(values),
        }

    def tracked_series(self) -> List[Tuple[str, str]]:
        return sorted(self._series)
