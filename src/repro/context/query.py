"""Typed query building for :meth:`ContextBroker.query`.

The broker historically took NGSIv2 ``q``-style filter *strings*
(``"soilMoisture<0.2"``).  The supported surface is now the typed builder:

    Query(type="SoilProbe").where("soilMoisture", "<", 0.2)

or a bare list of :class:`AttrFilter`.  The broker no longer accepts
string expressions (the deprecation cycle is complete — they raise
:class:`~repro.context.errors.QueryError`); callers holding NGSIv2 ``q``
wire strings — the north-facing service layer's ``GET /v2/entities`` —
parse them with :func:`parse_filter_expression` before querying.
"""

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.context.entities import ContextEntity
from repro.context.errors import QueryError

#: Comparison operators of the NGSIv2 ``q`` mini-language, longest first so
#: the string parser prefers ``<=`` over ``<`` at the same position.
OPS = ("<=", ">=", "==", "!=", "<", ">")


@dataclass(frozen=True)
class AttrFilter:
    """One attribute predicate: ``entity.<attr> <op> <value>``."""

    attr: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if not self.attr:
            raise QueryError("filter attribute name must not be empty")
        if self.op not in OPS:
            raise QueryError(f"unknown filter operator {self.op!r}; expected one of {OPS}")

    def matches(self, entity: ContextEntity) -> bool:
        return apply_op(entity.get(self.attr), self.op, self.value)


@dataclass
class Query:
    """Builder for filtered entity listings.

    ``type`` / ``id_pattern`` / ``limit`` mirror the broker keyword
    arguments; :meth:`where` appends attribute predicates and returns the
    query so calls chain.
    """

    type: Optional[str] = None
    id_pattern: Optional[str] = None
    limit: Optional[int] = None
    filters: List[AttrFilter] = field(default_factory=list)

    def where(self, attr: str, op: str, value: Any) -> "Query":
        self.filters.append(AttrFilter(attr, op, value))
        return self


def parse_filter_expression(expression: str) -> AttrFilter:
    """Parse one legacy ``q`` expression (``attr<op>value``) to a filter.

    Splits on the *earliest* operator occurrence by position (an operator
    appearing inside the value, e.g. ``label<a==b``, must not win just
    because it sorts earlier in OPS), preferring the longest operator at
    that position so ``a<=1`` parses as ``<=`` rather than ``<``.
    """
    best_pos = -1
    best_op = None
    for op in OPS:
        pos = expression.find(op)
        if pos < 0:
            continue
        if best_op is None or pos < best_pos or (pos == best_pos and len(op) > len(best_op)):
            best_pos, best_op = pos, op
    if best_op is None:
        raise QueryError(f"cannot parse filter expression {expression!r}")
    attr = expression[:best_pos].strip()
    raw = expression[best_pos + len(best_op):].strip()
    try:
        value: Any = float(raw)
    except ValueError:
        value = raw
    return AttrFilter(attr, best_op, value)


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def apply_op(actual: Any, op: str, expected: Any) -> bool:
    """Evaluate one predicate against an attribute value (None = absent)."""
    if actual is None:
        return False
    if _is_number(expected) and isinstance(actual, bool):
        return False
    try:
        if op == "==":
            if _is_number(expected):
                return float(actual) == float(expected)
            return str(actual) == expected
        if op == "!=":
            if _is_number(expected):
                return float(actual) != float(expected)
            return str(actual) != expected
        numeric_actual = float(actual)
        numeric_expected = float(expected)
    except (TypeError, ValueError):
        return False
    if op == "<":
        return numeric_actual < numeric_expected
    if op == "<=":
        return numeric_actual <= numeric_expected
    if op == ">":
        return numeric_actual > numeric_expected
    if op == ">=":
        return numeric_actual >= numeric_expected
    return False
