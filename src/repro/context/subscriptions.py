"""Subscriptions and notifications (NGSIv2 semantics).

A subscription selects entities (exact id, id regex, and/or type), watches
a set of *condition attributes* (any update to one fires the subscription;
empty = any attribute) and delivers a :class:`Notification` carrying copies
of the requested attributes.  Throttling suppresses notifications closer
together than ``throttling_s``, exactly like Orion's ``throttling`` field.
"""

import itertools
import re
from typing import Any, Callable, Dict, List, Optional

from repro.context.entities import ContextEntity

_sub_ids = itertools.count(1)


class Notification:
    """What a subscriber receives."""

    __slots__ = ("subscription_id", "entity", "changed_attrs", "time")

    def __init__(
        self, subscription_id: str, entity: ContextEntity, changed_attrs: List[str], time: float
    ) -> None:
        self.subscription_id = subscription_id
        self.entity = entity
        self.changed_attrs = changed_attrs
        self.time = time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Notification({self.subscription_id}, {self.entity.entity_id}, "
            f"changed={self.changed_attrs})"
        )


class Subscription:
    def __init__(
        self,
        callback: Callable[[Notification], None],
        entity_id: Optional[str] = None,
        id_pattern: Optional[str] = None,
        entity_type: Optional[str] = None,
        condition_attrs: Optional[List[str]] = None,
        notify_attrs: Optional[List[str]] = None,
        throttling_s: float = 0.0,
        description: str = "",
        owner: Optional[str] = None,
    ) -> None:
        if entity_id is None and id_pattern is None and entity_type is None:
            raise ValueError("subscription must constrain id, idPattern or type")
        self.subscription_id = f"sub-{next(_sub_ids)}"
        self.callback = callback
        #: Owning tenant for service-created subscriptions (None for
        #: library use); the service layer filters listings by it.
        self.owner = owner
        self.entity_id = entity_id
        self.id_regex = re.compile(id_pattern) if id_pattern else None
        self.entity_type = entity_type
        self.condition_attrs = set(condition_attrs or [])
        self.notify_attrs = list(notify_attrs) if notify_attrs else None
        self.throttling_s = throttling_s
        self.description = description
        self.active = True
        self.last_notification_time = float("-inf")
        self.notifications_sent = 0
        self.notifications_throttled = 0

    def matches_entity(self, entity: ContextEntity) -> bool:
        if self.entity_id is not None and entity.entity_id != self.entity_id:
            return False
        if self.id_regex is not None and not self.id_regex.search(entity.entity_id):
            return False
        if self.entity_type is not None and entity.entity_type != self.entity_type:
            return False
        return True

    def triggered_by(self, changed_attrs: List[str]) -> bool:
        # Condition-less subscriptions fire on *any* entity event,
        # including attribute-less creation (empty ``changed_attrs``) —
        # a subscriber registered before the entity's first attribute set
        # must still learn the entity exists.
        if not self.condition_attrs:
            return True
        return any(attr in self.condition_attrs for attr in changed_attrs)

    def build_notification(
        self, entity: ContextEntity, changed_attrs: List[str], now: float
    ) -> Notification:
        snapshot = entity.copy()
        if self.notify_attrs is not None:
            snapshot.attributes = {
                name: attr
                for name, attr in snapshot.attributes.items()
                if name in self.notify_attrs
            }
        return Notification(self.subscription_id, snapshot, list(changed_attrs), now)


class SubscriptionIndex:
    """Dispatch index bucketing subscriptions by their selector.

    The broker's hot path asks "which subscriptions could match this
    entity?"; answering by scanning every subscription is
    O(subscriptions) per update.  The index buckets each subscription
    once, by its most selective constraint:

    * exact ``entity_id``  -> the ``by id`` bucket for that id;
    * else ``entity_type`` -> the ``by type`` bucket for that type;
    * else (``id_pattern`` only) -> the residual list, scanned always.

    :meth:`candidates` returns a superset of the matching subscriptions
    (``Subscription.matches_entity`` is still applied by the dispatcher,
    so a subscription constraining both id and type is bucketed by id and
    type-checked at dispatch).  Buckets preserve insertion order; the
    dispatcher re-sorts the small candidate set by subscription id, which
    reproduces the full scan's delivery order bit-for-bit.
    """

    def __init__(self) -> None:
        self._by_id: Dict[str, Dict[str, Subscription]] = {}
        self._by_type: Dict[str, Dict[str, Subscription]] = {}
        self._residual: Dict[str, Subscription] = {}
        self._all: Dict[str, Subscription] = {}

    def __len__(self) -> int:
        return len(self._all)

    def add(self, subscription: Subscription) -> None:
        self._all[subscription.subscription_id] = subscription
        bucket = self._bucket_for(subscription)
        bucket[subscription.subscription_id] = subscription

    def remove(self, subscription_id: str) -> Optional[Subscription]:
        subscription = self._all.pop(subscription_id, None)
        if subscription is None:
            return None
        if subscription.entity_id is not None:
            bucket = self._by_id.get(subscription.entity_id)
            if bucket is not None:
                bucket.pop(subscription_id, None)
                if not bucket:
                    del self._by_id[subscription.entity_id]
        elif subscription.entity_type is not None:
            bucket = self._by_type.get(subscription.entity_type)
            if bucket is not None:
                bucket.pop(subscription_id, None)
                if not bucket:
                    del self._by_type[subscription.entity_type]
        else:
            self._residual.pop(subscription_id, None)
        return subscription

    def _bucket_for(self, subscription: Subscription) -> Dict[str, Subscription]:
        if subscription.entity_id is not None:
            return self._by_id.setdefault(subscription.entity_id, {})
        if subscription.entity_type is not None:
            return self._by_type.setdefault(subscription.entity_type, {})
        return self._residual

    def candidates(self, entity: ContextEntity) -> List[Subscription]:
        """Superset of subscriptions whose selector can match ``entity``."""
        out: List[Subscription] = []
        bucket = self._by_id.get(entity.entity_id)
        if bucket:
            out.extend(bucket.values())
        bucket = self._by_type.get(entity.entity_type)
        if bucket:
            out.extend(bucket.values())
        if self._residual:
            out.extend(self._residual.values())
        return out
