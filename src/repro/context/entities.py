"""NGSIv2 context entities and attributes."""

import re
from typing import Any, Callable, Dict, Optional

_ID_PATTERN = re.compile(r"^[A-Za-z0-9_\-:.]+$")


class Attribute:
    """One attribute of an entity: value + NGSI type + metadata."""

    __slots__ = ("name", "value", "attr_type", "metadata", "timestamp", "trace_ctx")

    def __init__(
        self,
        name: str,
        value: Any,
        attr_type: str = "Number",
        metadata: Optional[Dict[str, Any]] = None,
        timestamp: float = 0.0,
    ) -> None:
        if not name or not _ID_PATTERN.match(name):
            raise ValueError(f"invalid attribute name {name!r}")
        self.name = name
        self.value = value
        self.attr_type = attr_type
        self.metadata = metadata or {}
        self.timestamp = timestamp
        # Causal-trace context of the update that wrote this value (set by
        # the broker when tracing is on).  Deliberately excluded from
        # copy()/to_dict(): snapshots and NGSI payloads are wire artifacts.
        self.trace_ctx: Optional[Any] = None

    def copy(self) -> "Attribute":
        return Attribute(self.name, self.value, self.attr_type, dict(self.metadata), self.timestamp)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "value": self.value,
            "type": self.attr_type,
            "metadata": dict(self.metadata),
            "timestamp": self.timestamp,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Attribute({self.name}={self.value!r}:{self.attr_type})"


class ContextEntity:
    """An NGSI entity: unique (id, type) with a set of attributes."""

    def __init__(self, entity_id: str, entity_type: str) -> None:
        if not entity_id or not _ID_PATTERN.match(entity_id):
            raise ValueError(f"invalid entity id {entity_id!r}")
        if not entity_type or not _ID_PATTERN.match(entity_type):
            raise ValueError(f"invalid entity type {entity_type!r}")
        self.entity_id = entity_id
        self.entity_type = entity_type
        self.attributes: Dict[str, Attribute] = {}
        # Write-through hook set by the owning broker so attributes set
        # directly on the entity (not via update_attributes) still reach
        # the broker's query indexes.  Snapshots (copy()) never carry it.
        self.on_set_attribute: Optional[Callable[[str, str], None]] = None

    def set_attribute(
        self,
        name: str,
        value: Any,
        attr_type: str = "Number",
        metadata: Optional[Dict[str, Any]] = None,
        timestamp: float = 0.0,
    ) -> Attribute:
        attribute = Attribute(name, value, attr_type, metadata, timestamp)
        self.attributes[name] = attribute
        if self.on_set_attribute is not None:
            self.on_set_attribute(self.entity_id, name)
        return attribute

    def get(self, name: str, default: Any = None) -> Any:
        attribute = self.attributes.get(name)
        return attribute.value if attribute is not None else default

    def attribute(self, name: str) -> Optional[Attribute]:
        return self.attributes.get(name)

    def copy(self) -> "ContextEntity":
        clone = ContextEntity(self.entity_id, self.entity_type)
        clone.attributes = {name: attr.copy() for name, attr in self.attributes.items()}
        return clone

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.entity_id,
            "type": self.entity_type,
            "attributes": {name: attr.to_dict() for name, attr in self.attributes.items()},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ContextEntity({self.entity_id}:{self.entity_type}, {len(self.attributes)} attrs)"
