"""IoT agents: the MQTT ↔ NGSI bridge (FIWARE IoT-Agent equivalent)."""

from repro.agents.iot_agent import DeviceProvision, IoTAgent

__all__ = ["DeviceProvision", "IoTAgent"]
