"""The IoT agent.

Bridges the device-facing MQTT south port to the context broker's NGSI
north port, exactly as FIWARE's IoT Agents do:

* devices are *provisioned* (device id, API key, target entity, attribute
  mapping) before their traffic is accepted — unprovisioned senders are
  dropped and counted, the platform's first line of defence against Sybil
  identities (E6);
* inbound measures become entity attribute updates;
* commands flow the other way: a service calls :meth:`send_command`, the
  agent publishes on the device's command topic at QoS 1, marks the
  command ``PENDING`` on the entity and flips it to the device-reported
  result when the ``cmdexe`` ack arrives.
"""

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.context.broker import ContextBroker
from repro.devices.codec import decode_payload, encode_payload
from repro.mqtt.client import MqttClient
from repro.network.topology import Network
from repro.simkernel.simulator import Simulator


@dataclass
class DeviceProvision:
    device_id: str
    api_key: str
    entity_id: str
    entity_type: str
    # device attribute name -> entity attribute name (identity if omitted)
    attribute_map: Dict[str, str] = field(default_factory=dict)
    commands: tuple = ()

    def entity_attr(self, device_attr: str) -> str:
        return self.attribute_map.get(device_attr, device_attr)


class AgentStats:
    __slots__ = (
        "measures_processed",
        "measures_dropped_unprovisioned",
        "measures_dropped_bad_key",
        "decode_failures",
        "commands_sent",
        "commands_gated",
        "command_acks",
    )

    def __init__(self) -> None:
        self.measures_processed = 0
        self.measures_dropped_unprovisioned = 0
        self.measures_dropped_bad_key = 0
        self.decode_failures = 0
        self.commands_sent = 0
        self.commands_gated = 0
        self.command_acks = 0


class IoTAgent:
    """One agent instance per farm per deployment tier."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        address: str,
        mqtt_broker_address: str,
        context_broker: ContextBroker,
        farm: str,
    ) -> None:
        self.sim = sim
        self.farm = farm
        self.context_broker = context_broker
        self.stats = AgentStats()
        self.provisions: Dict[str, DeviceProvision] = {}
        self.client = MqttClient(
            sim, address, mqtt_broker_address, client_id=f"iota-{farm}-{address}", username=farm
        )
        network.add_node(self.client)
        # Optional policy hook evaluated before any command leaves the
        # agent: ``command_gate(device_id, command) -> bool``.  The ledger
        # smart contract and the command-rhythm monitor attach here.
        self.command_gate = None
        # Observers notified of every dispatched command (device_id,
        # command, sim-time) — rhythm learning taps this.
        self.command_observers = []
        labels = {"agent": address}
        registry = sim.metrics
        self._m_measures = registry.counter("iota.measures_processed", labels)
        self._m_dropped = registry.counter("iota.measures_dropped_unprovisioned", labels)
        self._m_commands = registry.counter("iota.commands_sent", labels)
        self._m_acks = registry.counter("iota.command_acks", labels)

    def start(self) -> None:
        self.client.connect()
        self.client.subscribe(f"swamp/{self.farm}/attrs/+", qos=0, handler=self._on_measure)
        self.client.subscribe(f"swamp/{self.farm}/cmdexe/+", qos=1, handler=self._on_command_ack)

    # -- provisioning -----------------------------------------------------------

    def provision(self, provision: DeviceProvision) -> None:
        """Register a device and materialize its entity."""
        self.provisions[provision.device_id] = provision
        entity = self.context_broker.ensure_entity(provision.entity_id, provision.entity_type)
        entity.set_attribute("deviceId", provision.device_id, "Text", timestamp=self.sim.now)
        for command in provision.commands:
            entity.set_attribute(f"{command}_status", "UNKNOWN", "commandStatus", timestamp=self.sim.now)

    def deprovision(self, device_id: str) -> None:
        self.provisions.pop(device_id, None)

    def provision_for_entity(self, entity_id: str) -> Optional[DeviceProvision]:
        for provision in self.provisions.values():
            if provision.entity_id == entity_id:
                return provision
        return None

    # -- south -> north (measures) ---------------------------------------------

    def _device_id_from_topic(self, topic: str) -> str:
        return topic.rsplit("/", 1)[-1]

    def _on_measure(self, topic: str, payload: bytes, qos: int, retain: bool) -> None:
        device_id = self._device_id_from_topic(topic)
        provision = self.provisions.get(device_id)
        if provision is None:
            self.stats.measures_dropped_unprovisioned += 1
            self._m_dropped.inc()
            self.sim.trace.emit(
                self.sim.now, "iota", "unprovisioned device dropped",
                farm=self.farm, device=device_id,
            )
            return
        measures = decode_payload(payload)
        if measures is None:
            self.stats.decode_failures += 1
            return
        timestamp = measures.pop("ts", self.sim.clock.now)
        attrs: Dict[str, Any] = {}
        metadata: Dict[str, Dict[str, Any]] = {}
        for device_attr, value in measures.items():
            entity_attr = provision.entity_attr(device_attr)
            attrs[entity_attr] = value
            metadata[entity_attr] = {"sourceDevice": device_id, "measuredAt": timestamp}
        if attrs:
            self.stats.measures_processed += 1
            self._m_measures.inc()
            tracer = self.sim.tracer
            if tracer.enabled:
                with tracer.span(
                    "iota.measure", "iota", farm=self.farm, device=device_id
                ):
                    self.context_broker.ensure_entity(provision.entity_id, provision.entity_type)
                    self.context_broker.update_attributes(provision.entity_id, attrs, metadata=metadata)
            else:
                # Fast path: span() allocates a generator context manager
                # even when tracing is off, once per measure.
                self.context_broker.ensure_entity(provision.entity_id, provision.entity_type)
                self.context_broker.update_attributes(provision.entity_id, attrs, metadata=metadata)

    # -- north -> south (commands) ---------------------------------------------

    def send_command(self, device_id: str, command: Dict[str, Any]) -> bool:
        """Dispatch a command to a provisioned device; False if unknown/offline."""
        provision = self.provisions.get(device_id)
        if provision is None:
            return False
        if self.command_gate is not None and not self.command_gate(device_id, command):
            self.stats.commands_gated += 1
            self.sim.trace.emit(
                self.sim.now, "iota", "command gated",
                farm=self.farm, device=device_id, cmd=command.get("cmd"),
            )
            return False
        name = command.get("cmd", "cmd")
        with self.sim.tracer.span(
            "iota.command", "iota", farm=self.farm, device=device_id, cmd=name
        ):
            sent = self.client.publish(
                f"swamp/{self.farm}/cmd/{device_id}", encode_payload(command), qos=1
            )
            if sent:
                self.stats.commands_sent += 1
                self._m_commands.inc()
                for observer in self.command_observers:
                    observer(device_id, command, self.sim.now)
                self.context_broker.ensure_entity(provision.entity_id, provision.entity_type)
                self.context_broker.update_attributes(
                    provision.entity_id, {f"{name}_status": "PENDING"},
                    attr_types={f"{name}_status": "commandStatus"},
                )
        return sent

    def _on_command_ack(self, topic: str, payload: bytes, qos: int, retain: bool) -> None:
        device_id = self._device_id_from_topic(topic)
        provision = self.provisions.get(device_id)
        if provision is None:
            return
        ack = decode_payload(payload)
        if ack is None:
            self.stats.decode_failures += 1
            return
        self.stats.command_acks += 1
        self._m_acks.inc()
        name = ack.get("cmd", "cmd")
        result = ack.get("result", "OK")
        with self.sim.tracer.span(
            "iota.command_ack", "iota", farm=self.farm, device=device_id, cmd=name
        ):
            self.context_broker.ensure_entity(provision.entity_id, provision.entity_type)
            self.context_broker.update_attributes(
                provision.entity_id,
                {f"{name}_status": "OK" if result == "ok" else str(result)},
                attr_types={f"{name}_status": "commandStatus"},
            )
