"""Service registry and platform runtime.

The SWAMP deployment variants (cloud / fog / mobile-fog) are different
*compositions* of the same services — broker, context, IoT agent,
replication, scheduler, security.  This module gives those compositions
an explicit shape: a :class:`Service` is registered with a
:class:`ServiceRegistry` together with its declared dependencies, and a
:class:`PlatformRuntime` drives every service through one lifecycle::

    register → configure → start → (run) → shutdown

Start order is the topological order of the dependency graph with
registration order as the deterministic tie-break; shutdown runs in
exact reverse start order.  Determinism matters here: in a discrete-event
simulation the order in which services schedule their first events fixes
the event-queue sequence numbers, so the runtime never reorders services
beyond what the dependency graph requires.
"""

import enum
from typing import Callable, Dict, List, Optional, Sequence

from repro.simkernel.errors import ReproError
from repro.telemetry.metrics import MetricsRegistry, NULL_REGISTRY


class PlatformError(ReproError):
    """Base error for runtime/registry misuse."""


class DependencyError(PlatformError):
    """Unknown or cyclic service dependency."""


class LifecycleError(PlatformError):
    """Lifecycle method called from the wrong state."""


class ServiceState(enum.Enum):
    REGISTERED = "registered"
    CONFIGURED = "configured"
    STARTED = "started"
    SHUTDOWN = "shutdown"
    FAILED = "failed"


class Service:
    """One named platform service with optional lifecycle callables.

    Subclass and override :meth:`on_configure` / :meth:`on_start` /
    :meth:`on_shutdown`, or pass plain callables — builder stages mostly
    use the callable form to wrap existing construction code.
    """

    def __init__(
        self,
        name: str,
        depends_on: Sequence[str] = (),
        configure: Optional[Callable[["PlatformRuntime"], None]] = None,
        start: Optional[Callable[["PlatformRuntime"], None]] = None,
        shutdown: Optional[Callable[["PlatformRuntime"], None]] = None,
        provides: Optional[object] = None,
        rebuild: Optional[Callable[["PlatformRuntime"], None]] = None,
    ) -> None:
        self.name = name
        self.depends_on = tuple(depends_on)
        self._configure = configure
        self._start = start
        self._shutdown = shutdown
        self._rebuild = rebuild
        self.state = ServiceState.REGISTERED
        #: The domain object this service manages (broker, agent, ...);
        #: populated by the lifecycle hooks or passed up-front.
        self.provides = provides

    # -- overridable hooks -------------------------------------------------------

    def on_configure(self, runtime: "PlatformRuntime") -> None:
        if self._configure is not None:
            self._configure(runtime)

    def on_start(self, runtime: "PlatformRuntime") -> None:
        if self._start is not None:
            self._start(runtime)

    def on_rebuild(self, runtime: "PlatformRuntime") -> None:
        """Start hook used when the runner is rebuilt for a checkpoint restore.

        The default is :meth:`on_start` — a service that schedules its
        initial events deterministically needs nothing special, because
        factory replay re-executes the run from time zero anyway.  A
        service may pass a distinct ``rebuild`` callable when restore-time
        wiring must differ from cold-start wiring (e.g. skipping external
        side effects that are not part of kernel state).
        """
        if self._rebuild is not None:
            self._rebuild(runtime)
        else:
            self.on_start(runtime)

    def on_shutdown(self, runtime: "PlatformRuntime") -> None:
        if self._shutdown is not None:
            self._shutdown(runtime)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Service({self.name!r}, state={self.state.value})"


class ServiceRegistry:
    """Name → service map with dependency-ordered iteration."""

    def __init__(self) -> None:
        self._services: Dict[str, Service] = {}
        self._order: List[str] = []  # registration order (tie-break)

    def register(self, service: Service) -> Service:
        if service.name in self._services:
            raise PlatformError(f"service {service.name!r} already registered")
        self._services[service.name] = service
        self._order.append(service.name)
        return service

    def get(self, name: str) -> Service:
        service = self._services.get(name)
        if service is None:
            raise DependencyError(f"unknown service {name!r}")
        return service

    def __contains__(self, name: str) -> bool:
        return name in self._services

    def __len__(self) -> int:
        return len(self._services)

    def names(self) -> List[str]:
        return list(self._order)

    def start_order(self) -> List[Service]:
        """Topological order, registration order as deterministic tie-break.

        Kahn's algorithm over the declared dependencies; raises
        :class:`DependencyError` on unknown dependencies or cycles.
        """
        for service in self._services.values():
            for dep in service.depends_on:
                if dep not in self._services:
                    raise DependencyError(
                        f"service {service.name!r} depends on unknown {dep!r}"
                    )
        remaining: Dict[str, set] = {
            name: set(self._services[name].depends_on) for name in self._order
        }
        ordered: List[Service] = []
        satisfied: set = set()
        # Pick ONE ready service at a time, always the earliest-registered:
        # when registration order is itself a valid topological order (the
        # builder-stage case) the start order reproduces it exactly, which
        # keeps event-queue sequence numbers — and therefore whole runs —
        # bit-identical across recompositions.
        while remaining:
            ready = next(
                (name for name in self._order
                 if name in remaining and remaining[name] <= satisfied),
                None,
            )
            if ready is None:
                cycle = ", ".join(sorted(remaining))
                raise DependencyError(f"dependency cycle among: {cycle}")
            del remaining[ready]
            satisfied.add(ready)
            ordered.append(self._services[ready])
        return ordered


class PlatformRuntime:
    """Owns the service registry, the metrics registry and the lifecycle.

    Builder stages register services; ``start()`` configures and starts
    them in dependency order; ``shutdown()`` tears them down in reverse
    start order.  Both are idempotent so a runner can be driven manually
    in tests without double-starting anything.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.registry = ServiceRegistry()
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._started_order: List[Service] = []
        self._started = False
        self._shut_down = False
        #: True while/after :meth:`start` ran in rebuild mode (checkpoint
        #: restore) — services can consult this from their hooks.
        self.rebuilding = False

    # -- registration ------------------------------------------------------------

    def register(
        self,
        name: str,
        depends_on: Sequence[str] = (),
        configure: Optional[Callable[["PlatformRuntime"], None]] = None,
        start: Optional[Callable[["PlatformRuntime"], None]] = None,
        shutdown: Optional[Callable[["PlatformRuntime"], None]] = None,
        provides: Optional[object] = None,
        rebuild: Optional[Callable[["PlatformRuntime"], None]] = None,
    ) -> Service:
        """Convenience wrapper building and registering a :class:`Service`."""
        if self._started:
            raise LifecycleError("cannot register services after start()")
        return self.registry.register(
            Service(name, depends_on=depends_on, configure=configure,
                    start=start, shutdown=shutdown, provides=provides,
                    rebuild=rebuild)
        )

    def service(self, name: str) -> Service:
        return self.registry.get(name)

    def provided(self, name: str) -> object:
        """The domain object a service manages (``service.provides``)."""
        return self.registry.get(name).provides

    # -- lifecycle ---------------------------------------------------------------

    def start(self, rebuilding: bool = False) -> None:
        """configure() then start() every service in dependency order.

        With ``rebuilding=True`` (checkpoint restore) each service's
        :meth:`~Service.on_rebuild` hook runs in place of
        :meth:`~Service.on_start` — identical by default, so the rebuilt
        runner schedules the same initial events in the same order.
        """
        if self._started:
            return
        self.rebuilding = rebuilding
        order = self.registry.start_order()
        for service in order:
            if service.state is ServiceState.REGISTERED:
                service.on_configure(self)
                service.state = ServiceState.CONFIGURED
        for service in order:
            if service.state is ServiceState.CONFIGURED:
                try:
                    if rebuilding:
                        service.on_rebuild(self)
                    else:
                        service.on_start(self)
                except Exception:
                    service.state = ServiceState.FAILED
                    raise
                service.state = ServiceState.STARTED
                self._started_order.append(service)
        self._started = True

    def shutdown(self) -> None:
        """Stop started services in reverse start order.  Idempotent."""
        if self._shut_down:
            return
        self._shut_down = True
        for service in reversed(self._started_order):
            if service.state is ServiceState.STARTED:
                service.on_shutdown(self)
                service.state = ServiceState.SHUTDOWN

    @property
    def started(self) -> bool:
        return self._started

    def states(self) -> Dict[str, str]:
        """Service name → lifecycle state (diagnostics, tests)."""
        return {name: self.registry.get(name).state.value
                for name in self.registry.names()}
