"""Platform runtime: service registry, lifecycle, and composition."""

from repro.platform.registry import (
    DependencyError,
    LifecycleError,
    PlatformError,
    PlatformRuntime,
    Service,
    ServiceRegistry,
    ServiceState,
)

__all__ = [
    "DependencyError",
    "LifecycleError",
    "PlatformError",
    "PlatformRuntime",
    "Service",
    "ServiceRegistry",
    "ServiceState",
]
