"""The stable public API of the SWAMP reproduction.

``repro.api`` is the *supported* surface: everything re-exported here (the
``__all__`` list) keeps its name and semantics across releases, while the
subpackages behind it refactor freely — routing indexes, runtime stages
and broker internals have all changed under these names without breaking
callers.  Import from here in examples, notebooks and downstream code:

    from repro.api import PilotConfig, DeploymentKind, run_pilot
    report = run_pilot(PilotConfig(name="demo", ...))

Deprecation policy (see DESIGN.md): names leave this module only after at
least one release in which their use emits a ``DeprecationWarning``
pointing at the replacement; internal modules may change at any time.
"""

from repro.context import (
    Attribute,
    AttrFilter,
    ContextBroker,
    ContextEntity,
    ContextError,
    NotFoundError,
    Notification,
    Query,
    QueryError,
    ShortTermHistory,
    Subscription,
    SubscriptionIndex,
)
from repro.core import (
    DeploymentKind,
    PilotConfig,
    PilotReport,
    PilotRunner,
    SecurityConfig,
    build_cbec_pilot,
    build_guaspari_pilot,
    build_intercrop_pilot,
    build_matopiba_pilot,
)
from repro.faults import (
    ChaosPlanGenerator,
    ChaosRunResult,
    ChaosTargets,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    check_invariants,
    run_chaos,
)
from repro.irrigation import Canal, DistributionNetwork, FarmOfftake, Reservoir
from repro.mqtt import (
    MqttBroker,
    MqttClient,
    RoutingMismatchError,
    TopicError,
    TopicTrie,
    topic_matches,
)
from repro.physics import (
    BARREIRAS_MATOPIBA,
    LOAM,
    SANDY_LOAM,
    SOYBEAN,
    ClimateProfile,
    Crop,
    Field,
    SoilProperties,
)
from repro.resilience import (
    BackpressureError,
    BoundedQueue,
    BreakerState,
    CircuitBreaker,
    DegradedModePolicy,
    DropPolicy,
    RateLimiter,
    ResilienceConfig,
    ServiceHealth,
    Supervisor,
)
from repro.simkernel import ReproError, Simulator, StopSimulation
from repro.simkernel.clock import DAY, HOUR
from repro.telemetry import MetricsRegistry

__all__ = [
    "AttrFilter",
    "Attribute",
    "BARREIRAS_MATOPIBA",
    "BackpressureError",
    "BoundedQueue",
    "BreakerState",
    "Canal",
    "ChaosPlanGenerator",
    "ChaosRunResult",
    "ChaosTargets",
    "CircuitBreaker",
    "ClimateProfile",
    "ContextBroker",
    "ContextEntity",
    "ContextError",
    "Crop",
    "DAY",
    "DegradedModePolicy",
    "DeploymentKind",
    "DistributionNetwork",
    "DropPolicy",
    "FarmOfftake",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "Field",
    "HOUR",
    "LOAM",
    "MetricsRegistry",
    "MqttBroker",
    "MqttClient",
    "NotFoundError",
    "Notification",
    "PilotConfig",
    "PilotReport",
    "PilotRunner",
    "Query",
    "QueryError",
    "RateLimiter",
    "ReproError",
    "Reservoir",
    "ResilienceConfig",
    "RoutingMismatchError",
    "SANDY_LOAM",
    "SOYBEAN",
    "SecurityConfig",
    "ServiceHealth",
    "ShortTermHistory",
    "Simulator",
    "SoilProperties",
    "StopSimulation",
    "Subscription",
    "SubscriptionIndex",
    "Supervisor",
    "TopicError",
    "TopicTrie",
    "build_cbec_pilot",
    "build_guaspari_pilot",
    "build_intercrop_pilot",
    "build_matopiba_pilot",
    "check_invariants",
    "run_chaos",
    "run_pilot",
    "topic_matches",
]


def run_pilot(config: PilotConfig) -> PilotReport:
    """Build a pilot from ``config``, run the full season, return its report."""
    return PilotRunner(config).run_season()
