"""The stable public API of the SWAMP reproduction.

``repro.api`` is the *supported* surface: everything re-exported here (the
``__all__`` list) keeps its name and semantics across releases, while the
subpackages behind it refactor freely — routing indexes, runtime stages
and broker internals have all changed under these names without breaking
callers.  Import from here in examples, notebooks and downstream code:

    from repro.api import PilotConfig, DeploymentKind, run_pilot
    report = run_pilot(PilotConfig(name="demo", ...))

Deprecation policy (see DESIGN.md): names leave this module only after at
least one release in which their use emits a ``DeprecationWarning``
pointing at the replacement; internal modules may change at any time.
"""

from repro.context import (
    Attribute,
    AttrFilter,
    ContextBroker,
    ContextEntity,
    ContextError,
    NotFoundError,
    Notification,
    Query,
    QueryError,
    ShortTermHistory,
    Subscription,
    SubscriptionIndex,
)
from repro.core import (
    DeploymentKind,
    PilotConfig,
    PilotReport,
    PilotRunner,
    SecurityConfig,
    build_cbec_pilot,
    build_guaspari_pilot,
    build_intercrop_pilot,
    build_matopiba_pilot,
)
from repro.core.checkpoint import (
    CheckpointError,
    RunCheckpoint,
    restore,
    snapshot,
)
from repro.core.run import RunOptions, RunResult, run
from repro.faults import (
    ChaosPlanGenerator,
    ChaosRunResult,
    ChaosTargets,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    check_invariants,
)
from repro.fleet import FarmSpec, FleetOptions, FleetResult, run_fleet
from repro.irrigation import Canal, DistributionNetwork, FarmOfftake, Reservoir
from repro.mqtt import (
    MqttBroker,
    MqttClient,
    RoutingMismatchError,
    TopicError,
    TopicTrie,
    topic_matches,
)
from repro.physics import (
    BARREIRAS_MATOPIBA,
    LOAM,
    SANDY_LOAM,
    SOYBEAN,
    ClimateProfile,
    Crop,
    Field,
    SoilProperties,
)
from repro.resilience import (
    BackpressureError,
    BoundedQueue,
    BreakerState,
    CircuitBreaker,
    DegradedModePolicy,
    DropPolicy,
    RateLimiter,
    ResilienceConfig,
    ServiceHealth,
    Supervisor,
)
from repro.simkernel import KernelSnapshot, ReproError, Simulator, StopSimulation
from repro.simkernel.clock import DAY, HOUR
from repro.telemetry import (
    KernelProfiler,
    MetricsRegistry,
    Span,
    TraceConfig,
    TraceContext,
    Tracer,
    validate_chrome_trace,
    validate_span_trees,
)

__all__ = [
    "AttrFilter",
    "Attribute",
    "BARREIRAS_MATOPIBA",
    "BackpressureError",
    "BoundedQueue",
    "BreakerState",
    "Canal",
    "ChaosPlanGenerator",
    "ChaosRunResult",
    "ChaosTargets",
    "CheckpointError",
    "CircuitBreaker",
    "ClimateProfile",
    "ContextBroker",
    "ContextEntity",
    "ContextError",
    "Crop",
    "DAY",
    "DegradedModePolicy",
    "DeploymentKind",
    "DistributionNetwork",
    "DropPolicy",
    "FarmOfftake",
    "FarmSpec",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "Field",
    "FleetOptions",
    "FleetResult",
    "HOUR",
    "KernelProfiler",
    "KernelSnapshot",
    "LOAM",
    "MetricsRegistry",
    "MqttBroker",
    "MqttClient",
    "NotFoundError",
    "Notification",
    "PilotConfig",
    "PilotReport",
    "PilotRunner",
    "Query",
    "QueryError",
    "RateLimiter",
    "ReproError",
    "Reservoir",
    "ResilienceConfig",
    "RoutingMismatchError",
    "RunCheckpoint",
    "RunOptions",
    "RunResult",
    "SANDY_LOAM",
    "SOYBEAN",
    "SecurityConfig",
    "ServiceHealth",
    "ShortTermHistory",
    "Simulator",
    "SoilProperties",
    "Span",
    "StopSimulation",
    "Subscription",
    "SubscriptionIndex",
    "Supervisor",
    "TopicError",
    "TopicTrie",
    "TraceConfig",
    "TraceContext",
    "Tracer",
    "build_cbec_pilot",
    "build_guaspari_pilot",
    "build_intercrop_pilot",
    "build_matopiba_pilot",
    "check_invariants",
    "restore",
    "run",
    "run_chaos",
    "run_fleet",
    "run_pilot",
    "snapshot",
    "topic_matches",
    "validate_chrome_trace",
    "validate_span_trees",
]

# One-line documentation per exported name.  The facade contract test
# asserts this stays in lockstep with ``__all__`` — adding an export
# without documenting it fails CI.
DOCS = {
    "AttrFilter": "Attribute-level filter for context subscriptions.",
    "Attribute": "One typed attribute of a context entity, with timestamp.",
    "BARREIRAS_MATOPIBA": "Climate profile for the MATOPIBA pilot site.",
    "BackpressureError": "Raised when a bounded queue rejects under pressure.",
    "BoundedQueue": "Fixed-capacity queue with selectable overflow policy.",
    "BreakerState": "Circuit-breaker state machine states (closed/open/half-open).",
    "Canal": "One canal segment of an irrigation distribution network.",
    "ChaosPlanGenerator": "Seeded random fault-plan generator for chaos runs.",
    "ChaosRunResult": "Outcome of a chaos run: report, invariants, fingerprint.",
    "ChaosTargets": "Which subsystems a chaos plan is allowed to break.",
    "CheckpointError": "A run checkpoint could not be written, read or rebuilt.",
    "CircuitBreaker": "Half-open circuit breaker guarding an unreliable dependency.",
    "ClimateProfile": "Seasonal weather statistics driving the weather generator.",
    "ContextBroker": "NGSI-style entity store with queries and subscriptions.",
    "ContextEntity": "One entity (device, zone, ...) in the context broker.",
    "ContextError": "Base error for context-broker operations.",
    "Crop": "Crop parameters: Kc curve, root depth, yield response.",
    "DAY": "Seconds per simulated day.",
    "DegradedModePolicy": "Rules for local autonomy when the uplink is down.",
    "DeploymentKind": "Where platform services run: cloud, fog or mobile fog.",
    "DistributionNetwork": "Canal network allocating water to farm offtakes.",
    "DropPolicy": "What a bounded queue drops when full (oldest/newest/reject).",
    "FarmOfftake": "A farm's connection point on the distribution network.",
    "FarmSpec": "One farm in a fleet: pilot name plus builder overrides.",
    "FaultEvent": "One scheduled fault: target, kind, start and duration.",
    "FaultInjector": "Applies fault events to live services and recovers them.",
    "FaultPlan": "An ordered, serializable collection of fault events.",
    "FaultPlanError": "Raised for malformed or unsatisfiable fault plans.",
    "Field": "Spatial grid of soil zones under one farm.",
    "FleetOptions": "All knobs for a sharded multi-farm fleet run.",
    "FleetResult": "Merged fleet outcome: per-farm reports, totals, fingerprint.",
    "HOUR": "Seconds per simulated hour.",
    "KernelProfiler": "Per-event-key sim/wall-time accounting for the kernel loop.",
    "KernelSnapshot": "Versioned picklable capture of the kernel's state.",
    "LOAM": "Loam soil property preset.",
    "MetricsRegistry": "Counter/gauge/histogram registry with JSON snapshots.",
    "MqttBroker": "Topic-trie MQTT broker with QoS and retained messages.",
    "MqttClient": "MQTT client with outbox, retransmission and subscriptions.",
    "NotFoundError": "Raised when a context entity or attribute is missing.",
    "Notification": "One subscription notification delivered to a subscriber.",
    "PilotConfig": "Complete configuration of one pilot scenario.",
    "PilotReport": "End-of-season results: water, energy, yield, telemetry.",
    "PilotRunner": "Builds and runs one pilot: services, devices, season loop.",
    "Query": "Context-broker query: entity/type patterns plus attr filters.",
    "QueryError": "Raised for malformed context queries.",
    "RateLimiter": "Token-bucket limiter for command and sync flows.",
    "ReproError": "Base exception for the whole reproduction.",
    "Reservoir": "Source reservoir feeding a distribution network.",
    "ResilienceConfig": "Toggles and budgets for the resilience subsystem.",
    "RoutingMismatchError": "Raised when trie and linear-scan routing disagree.",
    "RunCheckpoint": "A run frozen at a barrier: rebuild recipe plus kernel fingerprint.",
    "RunOptions": "All knobs for one run; pass to run().",
    "RunResult": "Return of run(): report plus runner and chaos handles.",
    "SANDY_LOAM": "Sandy-loam soil property preset.",
    "SOYBEAN": "Soybean crop preset (MATOPIBA pilot).",
    "SecurityConfig": "Which security countermeasures are enabled for a run.",
    "ServiceHealth": "Supervisor's per-service liveness/restart bookkeeping.",
    "ShortTermHistory": "Bounded per-attribute history ring in the context broker.",
    "Simulator": "Discrete-event kernel: clock, event queue, RNGs, metrics.",
    "SoilProperties": "Soil water-holding parameters.",
    "Span": "One timed operation in a trace, with parent and links.",
    "StopSimulation": "Raise inside an event to end the run cleanly.",
    "Subscription": "A context subscription: query, attrs, notify endpoint.",
    "SubscriptionIndex": "Inverted index matching updates to subscriptions.",
    "Supervisor": "Restarts crashed services with exponential backoff.",
    "TopicError": "Raised for invalid MQTT topic or filter syntax.",
    "TopicTrie": "Prefix trie matching topics against wildcard filters.",
    "TraceConfig": "Tracing knobs: sample rates and span cap.",
    "TraceContext": "Immutable (trace_id, span_id) pair propagated across hops.",
    "Tracer": "Causal tracer: spans, head sampling, Chrome-trace export.",
    "build_cbec_pilot": "Factory for the CBEC pilot (canal-fed tomato).",
    "build_guaspari_pilot": "Factory for the Guaspari pilot (deficit-irrigated grapes).",
    "build_intercrop_pilot": "Factory for the Intercrop pilot (desalination mix).",
    "build_matopiba_pilot": "Factory for the MATOPIBA pilot (VRI center pivot).",
    "check_invariants": "Post-run invariant checks over a finished runner.",
    "restore": "Rebuild a checkpointed run, replay to its barrier and verify.",
    "run": "Single entrypoint: build and run one pilot per RunOptions.",
    "run_chaos": "Deprecated: use run(RunOptions(chaos=True)).",
    "run_fleet": "Run a sharded multi-farm fleet and merge deterministically.",
    "run_pilot": "Deprecated: use run(RunOptions(config=...)).",
    "snapshot": "Freeze a paused runner into a picklable RunCheckpoint.",
    "topic_matches": "True if an MQTT topic matches a wildcard filter.",
    "validate_chrome_trace": "Check an exported Chrome trace for invariant violations.",
    "validate_span_trees": "Check span trees are rooted, acyclic and nested.",
}

# -- deprecated shims --------------------------------------------------------

_DEPRECATION_WARNED = set()


def _warn_deprecated(name: str, replacement: str) -> None:
    """Emit the one-per-process DeprecationWarning for a legacy entrypoint."""
    if name in _DEPRECATION_WARNED:
        return
    _DEPRECATION_WARNED.add(name)
    import warnings

    warnings.warn(
        f"repro.api.{name} is deprecated; use {replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def run_pilot(config: PilotConfig) -> PilotReport:
    """Deprecated: use ``run(RunOptions(config=config)).report``.

    Kept as a thin shim per the deprecation policy above; behaviour is
    bit-identical to the historical implementation.
    """
    _warn_deprecated("run_pilot", "repro.api.run(RunOptions(config=...))")
    return run(RunOptions(config=config)).report


def run_chaos(seed, **kwargs):
    """Deprecated: use ``run(RunOptions(chaos=True, seed=...))``.

    Forwards verbatim to :func:`repro.faults.chaos.run_chaos`, which stays
    the non-deprecated implementation for chaos-specific knobs (targets,
    season_days, generator kwargs) that RunOptions does not model.
    """
    _warn_deprecated("run_chaos", "repro.api.run(RunOptions(chaos=True))")
    from repro.faults.chaos import run_chaos as _run_chaos

    return _run_chaos(seed, **kwargs)
