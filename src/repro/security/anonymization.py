"""Data anonymization for cross-farm sharing (k-anonymity).

The paper: "data anonymization is another helpful technique for data
governance".  SWAMP pilots share telemetry with researchers and water
authorities; records carry quasi-identifiers (location, farm size, crop)
that re-identify farms when joined with public registries.

Pipeline:

1. **pseudonymize** direct identifiers (farm name → stable opaque token);
2. **generalize** quasi-identifiers (coordinates → grid cells, area →
   buckets);
3. enforce **k-anonymity**: suppress records whose quasi-identifier
   combination appears in fewer than k records.

The utility/risk trade-off is measurable: generalization coarsens
analytics (utility loss) while k bounds the re-identification rate
(experiment E12).
"""

import hashlib
from collections import Counter
from typing import Any, Dict, List, Optional, Sequence, Tuple


def pseudonymize(identifier: str, secret_salt: bytes) -> str:
    """Stable opaque token for a direct identifier."""
    return hashlib.sha256(secret_salt + identifier.encode("utf-8")).hexdigest()[:16]


def generalize_coordinate(value: float, cell_size: float) -> float:
    """Snap a coordinate to its grid cell origin."""
    if cell_size <= 0:
        raise ValueError("cell size must be positive")
    return (value // cell_size) * cell_size


def generalize_bucket(value: float, edges: Sequence[float]) -> str:
    """Map a numeric value to a labelled bucket: '<e0', '[e0,e1)', ..., '>=eN'."""
    if not edges:
        raise ValueError("need at least one bucket edge")
    previous = None
    for edge in edges:
        if previous is not None and edge <= previous:
            raise ValueError("bucket edges must be strictly increasing")
        previous = edge
    if value < edges[0]:
        return f"<{edges[0]:g}"
    for low, high in zip(edges, edges[1:]):
        if low <= value < high:
            return f"[{low:g},{high:g})"
    return f">={edges[-1]:g}"


class Anonymizer:
    def __init__(
        self,
        secret_salt: bytes,
        quasi_identifiers: Sequence[str],
        direct_identifiers: Sequence[str] = ("farm",),
        coordinate_cell: float = 0.1,
        area_buckets: Sequence[float] = (10.0, 50.0, 200.0),
    ) -> None:
        self.secret_salt = secret_salt
        self.quasi_identifiers = list(quasi_identifiers)
        self.direct_identifiers = list(direct_identifiers)
        self.coordinate_cell = coordinate_cell
        self.area_buckets = list(area_buckets)
        self.suppressed_count = 0

    def _generalize_record(self, record: Dict[str, Any]) -> Dict[str, Any]:
        output = dict(record)
        for key in self.direct_identifiers:
            if key in output:
                output[key] = pseudonymize(str(output[key]), self.secret_salt)
        for key in ("lat", "lon"):
            if key in output and isinstance(output[key], (int, float)):
                output[key] = generalize_coordinate(float(output[key]), self.coordinate_cell)
        if "area_ha" in output and isinstance(output["area_ha"], (int, float)):
            output["area_ha"] = generalize_bucket(float(output["area_ha"]), self.area_buckets)
        return output

    def _quasi_key(self, record: Dict[str, Any]) -> Tuple:
        return tuple(record.get(k) for k in self.quasi_identifiers)

    def anonymize(self, records: List[Dict[str, Any]], k: int = 2) -> List[Dict[str, Any]]:
        """Generalize + enforce k-anonymity by suppression.

        Returns the released records; ``suppressed_count`` accumulates the
        number withheld.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        generalized = [self._generalize_record(r) for r in records]
        counts = Counter(self._quasi_key(r) for r in generalized)
        released = [r for r in generalized if counts[self._quasi_key(r)] >= k]
        self.suppressed_count += len(generalized) - len(released)
        return released


def reidentification_rate(
    released: List[Dict[str, Any]],
    adversary_knowledge: List[Dict[str, Any]],
    quasi_identifiers: Sequence[str],
) -> float:
    """Fraction of adversary targets uniquely matched in the release.

    The adversary knows each target's quasi-identifiers (from public
    registries) in *generalized* form; a target is re-identified when
    exactly one released record matches.
    """
    if not adversary_knowledge:
        return 0.0
    release_counts = Counter(
        tuple(r.get(k) for k in quasi_identifiers) for r in released
    )
    hits = 0
    for target in adversary_knowledge:
        key = tuple(target.get(k) for k in quasi_identifiers)
        if release_counts.get(key, 0) == 1:
            hits += 1
    return hits / len(adversary_knowledge)


def utility_error(
    original: List[Dict[str, Any]],
    released: List[Dict[str, Any]],
    value_key: str,
) -> Optional[float]:
    """Relative error of the released mean vs. the true mean."""
    true_values = [r[value_key] for r in original if isinstance(r.get(value_key), (int, float))]
    released_values = [r[value_key] for r in released if isinstance(r.get(value_key), (int, float))]
    if not true_values or not released_values:
        return None
    true_mean = sum(true_values) / len(true_values)
    released_mean = sum(released_values) / len(released_values)
    if true_mean == 0:
        return abs(released_mean - true_mean)
    return abs(released_mean - true_mean) / abs(true_mean)
