"""Sliding-window replay protection (the scheme of DTLS/IPsec)."""


class ReplayWindow:
    """Accepts each sequence number at most once, within a sliding window.

    Numbers more than ``window_size`` behind the highest seen are rejected
    outright (too old to track), duplicates inside the window are rejected,
    and the window slides forward with new maxima.
    """

    def __init__(self, window_size: int = 64) -> None:
        if window_size < 1:
            raise ValueError("window size must be >= 1")
        self.window_size = window_size
        self._max_seen = -1
        self._bitmap = 0  # bit i = (max_seen - i) was seen
        self.accepted = 0
        self.rejected = 0

    def check_and_update(self, seq: int) -> bool:
        """True if ``seq`` is fresh (and records it); False for replays."""
        if seq < 0:
            self.rejected += 1
            return False
        if seq > self._max_seen:
            shift = seq - self._max_seen
            self._bitmap = ((self._bitmap << shift) | 1) & ((1 << self.window_size) - 1)
            self._max_seen = seq
            self.accepted += 1
            return True
        offset = self._max_seen - seq
        if offset >= self.window_size:
            self.rejected += 1
            return False
        if self._bitmap & (1 << offset):
            self.rejected += 1
            return False
        self._bitmap |= 1 << offset
        self.accepted += 1
        return True
