"""HKDF (RFC 5869) over HMAC-SHA256."""

import hashlib
import hmac

_HASH_LEN = 32


def hkdf(input_key_material: bytes, length: int, salt: bytes = b"", info: bytes = b"") -> bytes:
    """Extract-then-expand key derivation."""
    if length <= 0 or length > 255 * _HASH_LEN:
        raise ValueError(f"cannot derive {length} bytes")
    pseudo_random_key = hmac.new(salt or b"\x00" * _HASH_LEN, input_key_material, hashlib.sha256).digest()
    blocks = []
    previous = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        previous = hmac.new(
            pseudo_random_key, previous + info + bytes([counter]), hashlib.sha256
        ).digest()
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]
