"""Authenticated encryption (encrypt-then-MAC, HMAC-SHA256 throughout).

The keystream is HMAC-SHA256 used as a PRF in counter mode over the nonce
(a standard construction); the tag is HMAC-SHA256 over
``nonce || associated_data || ciphertext`` with an independent key.  Wire
format::

    nonce (12B) || ciphertext || tag (16B, truncated HMAC)

Simulation-grade (see package docstring) but structurally faithful: wrong
key, flipped bit, truncation and nonce reuse across different plaintexts
all behave as the real thing would.
"""

import hashlib
import hmac

NONCE_LEN = 12
TAG_LEN = 16
_BLOCK = 32


class AeadError(Exception):
    """Authentication failure on open."""


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    blocks = []
    counter = 0
    while sum(len(b) for b in blocks) < length:
        blocks.append(
            hmac.new(key, nonce + counter.to_bytes(4, "big"), hashlib.sha256).digest()
        )
        counter += 1
    return b"".join(blocks)[:length]


def _xor(data: bytes, keystream: bytes) -> bytes:
    return bytes(a ^ b for a, b in zip(data, keystream))


def seal_payload(
    enc_key: bytes, mac_key: bytes, nonce: bytes, plaintext: bytes, associated_data: bytes = b""
) -> bytes:
    if len(nonce) != NONCE_LEN:
        raise ValueError(f"nonce must be {NONCE_LEN} bytes")
    ciphertext = _xor(plaintext, _keystream(enc_key, nonce, len(plaintext)))
    tag = hmac.new(mac_key, nonce + associated_data + ciphertext, hashlib.sha256).digest()[:TAG_LEN]
    return nonce + ciphertext + tag


def open_payload(
    enc_key: bytes, mac_key: bytes, sealed: bytes, associated_data: bytes = b""
) -> bytes:
    if len(sealed) < NONCE_LEN + TAG_LEN:
        raise AeadError("sealed payload too short")
    nonce = sealed[:NONCE_LEN]
    ciphertext = sealed[NONCE_LEN:-TAG_LEN]
    tag = sealed[-TAG_LEN:]
    expected = hmac.new(mac_key, nonce + associated_data + ciphertext, hashlib.sha256).digest()[:TAG_LEN]
    if not hmac.compare_digest(tag, expected):
        raise AeadError("authentication failed")
    return _xor(ciphertext, _keystream(enc_key, nonce, len(ciphertext)))
