"""Finite-field Diffie-Hellman over the RFC 3526 2048-bit MODP group.

Private keys come from the deterministic experiment RNG (so runs are
reproducible); in the real platform they would come from the OS CSPRNG.
"""

from repro.simkernel.rng import SeededStream

# RFC 3526 group 14 (2048-bit MODP), generator 2.
MODP_PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
    "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
    "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
    "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D"
    "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F"
    "83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9"
    "DE2BCBF6955817183995497CEA956AE515D2261898FA0510"
    "15728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)
GENERATOR = 2


class DhKeyPair:
    """One party's ephemeral key pair."""

    def __init__(self, rng: SeededStream) -> None:
        # 256 bits of private exponent is ample for the group.
        self.private = int.from_bytes(rng.token_bytes(32), "big") | 1
        self.public = pow(GENERATOR, self.private, MODP_PRIME)

    def shared_with(self, peer_public: int) -> bytes:
        return shared_secret(self.private, peer_public)


def shared_secret(private: int, peer_public: int) -> bytes:
    """The DH shared secret as fixed-width bytes."""
    if not 1 < peer_public < MODP_PRIME - 1:
        raise ValueError("invalid peer public key")
    value = pow(peer_public, private, MODP_PRIME)
    return value.to_bytes(256, "big")
