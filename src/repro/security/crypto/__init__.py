"""Simulation-grade cryptography.

These are real constructions built only on the Python standard library
(``hashlib``/``hmac``), faithful in *shape* — key exchange, KDF, AEAD with
nonces and tags, replay windows — so the platform exercises genuine
key-management and authenticated-encryption code paths and the experiments
can price their energy cost (E13).  They are **not** audited production
cryptography; see DESIGN.md's substitution table.
"""

from repro.security.crypto.aead import AeadError, open_payload, seal_payload
from repro.security.crypto.channel import ChannelStats, SecureChannel, SecureChannelPair
from repro.security.crypto.dh import DhKeyPair, MODP_PRIME, shared_secret
from repro.security.crypto.kdf import hkdf
from repro.security.crypto.replay import ReplayWindow

__all__ = [
    "AeadError",
    "ChannelStats",
    "DhKeyPair",
    "MODP_PRIME",
    "ReplayWindow",
    "SecureChannel",
    "SecureChannelPair",
    "hkdf",
    "open_payload",
    "seal_payload",
    "shared_secret",
]
