"""Secure channel: the glue between crypto and the MQTT clients.

A :class:`SecureChannelPair` holds the shared session keys (derived from a
DH exchange via HKDF) for a device↔platform relationship.  Each side gets
a :class:`SecureChannel` that plugs into
:attr:`repro.mqtt.client.MqttClient.payload_encoder` / ``payload_decoder``:

* outbound payloads are sealed; the MQTT publish carries the *plaintext*
  object for the simulator's benefit but tags the network packet with the
  ciphertext as ``wire_bytes``, so wire taps (eavesdroppers, E7) observe
  only ciphertext;
* inbound payloads are opened, with sequence-number replay protection;
  failures are counted and dropped.

The channel also prices its own energy: per-byte crypto cost plus a fixed
per-message cost, which devices charge to their battery (E13).
"""

from typing import Optional, Tuple

from repro.security.crypto.aead import AeadError, NONCE_LEN, TAG_LEN, open_payload, seal_payload
from repro.security.crypto.dh import DhKeyPair
from repro.security.crypto.kdf import hkdf
from repro.security.crypto.replay import ReplayWindow
from repro.simkernel.rng import SeededStream

# Representative software-crypto cost on a Cortex-M-class MCU.
CRYPTO_ENERGY_J_PER_BYTE = 0.00000085
CRYPTO_ENERGY_J_PER_MSG = 0.00045
SEQ_LEN = 8


class ChannelStats:
    __slots__ = ("sealed", "opened", "auth_failures", "replays_rejected", "bytes_sealed")

    def __init__(self) -> None:
        self.sealed = 0
        self.opened = 0
        self.auth_failures = 0
        self.replays_rejected = 0
        self.bytes_sealed = 0


class SecureChannel:
    """One direction-agnostic endpoint of a paired channel."""

    def __init__(self, send_keys: Tuple[bytes, bytes], recv_keys: Tuple[bytes, bytes],
                 rng: SeededStream) -> None:
        self._send_enc, self._send_mac = send_keys
        self._recv_enc, self._recv_mac = recv_keys
        self._rng = rng
        self._send_seq = 0
        self._replay = ReplayWindow()
        self.stats = ChannelStats()

    # -- raw seal/open -----------------------------------------------------------
    #
    # The nonce is derived from the sequence number (zero-padded to 12
    # bytes) rather than transmitted: sequence numbers never repeat within
    # a direction and each direction has its own keys, so nonces are
    # unique per key.  This shaves 12 bytes off every frame — material on
    # LoRa-class radio where per-byte TX energy dominates the security
    # overhead (experiment E13).

    @staticmethod
    def _nonce_from_seq(seq_bytes: bytes) -> bytes:
        return b"\x00" * (NONCE_LEN - SEQ_LEN) + seq_bytes

    def seal(self, plaintext: bytes, associated_data: bytes = b"") -> bytes:
        seq_bytes = self._send_seq.to_bytes(SEQ_LEN, "big")
        self._send_seq += 1
        nonce = self._nonce_from_seq(seq_bytes)
        sealed = seal_payload(
            self._send_enc, self._send_mac, nonce, plaintext, associated_data + seq_bytes
        )
        self.stats.sealed += 1
        self.stats.bytes_sealed += len(plaintext)
        # Strip the nonce from the wire image: the receiver reconstructs
        # it from the sequence number.
        return seq_bytes + sealed[NONCE_LEN:]

    def open(self, wire: bytes, associated_data: bytes = b"") -> Optional[bytes]:
        """Returns the plaintext, or None (counted) on any failure."""
        if len(wire) < SEQ_LEN + TAG_LEN:
            self.stats.auth_failures += 1
            return None
        seq_bytes = wire[:SEQ_LEN]
        seq = int.from_bytes(seq_bytes, "big")
        sealed = self._nonce_from_seq(seq_bytes) + wire[SEQ_LEN:]
        try:
            plaintext = open_payload(
                self._recv_enc, self._recv_mac, sealed, associated_data + seq_bytes
            )
        except AeadError:
            self.stats.auth_failures += 1
            return None
        if not self._replay.check_and_update(seq):
            self.stats.replays_rejected += 1
            return None
        self.stats.opened += 1
        return plaintext

    # -- MQTT integration -----------------------------------------------------------

    def mqtt_encoder(self, topic: str, payload: bytes) -> Tuple[bytes, bytes]:
        """payload_encoder hook: returns (payload, wire_bytes).

        The ciphertext *is* the MQTT payload — encryption is end-to-end
        through the broker, which cannot read device data (the paper's
        per-farm confidentiality requirement).  It is also tagged as the
        packet's wire bytes so link taps observe ciphertext.
        """
        wire = self.seal(payload, associated_data=topic.encode("utf-8"))
        return wire, wire

    def mqtt_decoder_from_wire(self, topic: str, wire: bytes) -> Optional[bytes]:
        return self.open(wire, associated_data=topic.encode("utf-8"))

    # -- cost model -----------------------------------------------------------

    @staticmethod
    def energy_cost_j(payload_bytes: int) -> float:
        return CRYPTO_ENERGY_J_PER_MSG + payload_bytes * CRYPTO_ENERGY_J_PER_BYTE

    @staticmethod
    def overhead_bytes() -> int:
        return SEQ_LEN + TAG_LEN


class SecureChannelPair:
    """Derives both endpoints' keys from a DH handshake."""

    def __init__(self, rng_a: SeededStream, rng_b: SeededStream, context: bytes = b"swamp") -> None:
        key_a = DhKeyPair(rng_a)
        key_b = DhKeyPair(rng_b)
        secret_a = key_a.shared_with(key_b.public)
        secret_b = key_b.shared_with(key_a.public)
        assert secret_a == secret_b
        material = hkdf(secret_a, 4 * 32, salt=b"swamp-channel", info=context)
        a_to_b = (material[0:32], material[32:64])
        b_to_a = (material[64:96], material[96:128])
        self.endpoint_a = SecureChannel(send_keys=a_to_b, recv_keys=b_to_a, rng=rng_a)
        self.endpoint_b = SecureChannel(send_keys=b_to_a, recv_keys=a_to_b, rng=rng_b)
