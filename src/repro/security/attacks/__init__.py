"""Executable threat models (paper §III).

Every attack the paper names is a class here that acts on the *same*
substrate the legitimate platform uses — real MQTT packets, real links,
real tamper hooks — so defences are tested against mechanics, not
strawmen:

* :class:`~repro.security.attacks.dos.DosFlood` — "a DoS attack in the
  sensors, irrigation actuators or in the distribution system may affect
  the availability of the system";
* :class:`~repro.security.attacks.dos.RadioJammer` — field-radio jamming;
* :class:`~repro.security.attacks.tamper.SensorTamper` — "changes in the
  values of some sensors ... cause systems to take wrong actions";
* :class:`~repro.security.attacks.sybil.SybilSwarm` — "a drone or sensor
  node performing the Sybil attack could send fake images and false
  measurements";
* :class:`~repro.security.attacks.eavesdrop.Eavesdropper` — "using
  eavesdropping, intruders may have access to private data about the farm
  and crop yield";
* :class:`~repro.security.attacks.rogue.RogueActuatorController` — "if an
  attacker takes control of the actuators, the irrigation and water
  distribution is compromised";
* :class:`~repro.security.attacks.replay.PacketReplayer` — replay of
  captured telemetry/commands.
"""

from repro.security.attacks.dos import DosFlood, RadioJammer
from repro.security.attacks.eavesdrop import Eavesdropper
from repro.security.attacks.replay import PacketReplayer
from repro.security.attacks.rogue import RogueActuatorController
from repro.security.attacks.sybil import SybilSwarm
from repro.security.attacks.tamper import SensorTamper, TamperMode

__all__ = [
    "DosFlood",
    "Eavesdropper",
    "PacketReplayer",
    "RadioJammer",
    "RogueActuatorController",
    "SensorTamper",
    "SybilSwarm",
    "TamperMode",
]
