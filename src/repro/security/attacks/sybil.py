"""Sybil attack: fabricated identities feeding fake field data.

The swarm spawns N fake "drones" (MQTT clients with made-up device ids)
publishing fabricated NDVI observations painting the crop as the attacker
wishes — typically *healthy* over zones that are actually stressed, so the
farmer under-irrigates, or vice versa.  Two strengths:

* ``provisioned=False`` (default): identities unknown to the IoT agent —
  measures are dropped at provisioning (the platform's baseline defence);
* ``provisioned=True``: the attacker has compromised provisioning (stolen
  API keys), so the fake data enters the context broker and only
  behavioral/spatial detection (E6/E8) can catch it.
"""

from typing import Dict, List, Optional

from repro.devices.codec import encode_payload
from repro.mqtt.client import MqttClient
from repro.network.topology import Network
from repro.physics.field import Field
from repro.simkernel.simulator import Simulator


class SybilSwarm:
    def __init__(
        self,
        sim: Simulator,
        network: Network,
        broker_address: str,
        link_model,
        farm: str,
        field: Field,
        identity_count: int = 5,
        fake_ndvi: float = 0.85,
        fake_noise: float = 0.01,
        report_interval_s: float = 600.0,
        target_zones: Optional[List[str]] = None,
        password: Optional[str] = None,
    ) -> None:
        if identity_count < 1:
            raise ValueError("need at least one Sybil identity")
        self.sim = sim
        self.farm = farm
        self.field = field
        self.fake_ndvi = fake_ndvi
        self.fake_noise = fake_noise
        self.report_interval_s = report_interval_s
        self.target_zones = target_zones  # None = all zones
        self.active = False
        self.reports_sent = 0
        self._rng = sim.rng.stream(f"attack:sybil:{farm}")
        self.identities: List[MqttClient] = []
        for i in range(identity_count):
            client = MqttClient(
                sim, f"atk:sybil{i}", broker_address,
                client_id=f"fake-drone-{i}", username=farm, password=password,
            )
            network.add_node(client)
            network.connect(client.address, broker_address, link_model)
            self.identities.append(client)

    def device_ids(self) -> List[str]:
        return [client.client_id for client in self.identities]

    def start(self) -> None:
        self.active = True
        for client in self.identities:
            client.connect()
            self.sim.spawn(self._loop(client), f"sybil:{client.client_id}")

    def stop(self) -> None:
        self.active = False

    def _zones(self):
        if self.target_zones is None:
            return list(self.field)
        wanted = set(self.target_zones)
        return [z for z in self.field if z.zone_id in wanted]

    def _loop(self, client: MqttClient):
        yield self._rng.uniform(0.0, self.report_interval_s)
        topic = f"swamp/{self.farm}/attrs/{client.client_id}"
        while self.active:
            if client.connected:
                for zone in self._zones():
                    ndvi = self._rng.bounded_gauss(self.fake_ndvi, self.fake_noise, 0.0, 1.0)
                    payload = encode_payload(
                        {
                            "ndvi": round(ndvi, 4),
                            "zone": zone.zone_id,
                            "row": zone.row,
                            "col": zone.col,
                            "ts": round(self.sim.now, 3),
                        }
                    )
                    if client.publish(topic, payload, qos=0):
                        self.reports_sent += 1
            yield self.report_interval_s
