"""Packet replay: capture MQTT publishes off a link and re-inject them.

Captured frames are re-published later from the attacker's own node —
stale soil-moisture readings replayed during a dry-down make the platform
believe the field is still wet (a tamper effect achieved without touching
any device).  Against a :class:`~repro.security.crypto.SecureChannel`, the
sequence-number replay window rejects every re-injected frame.
"""

from typing import List, Optional, Tuple

from repro.mqtt.client import MqttClient
from repro.mqtt.packets import Publish
from repro.network.topology import Network
from repro.simkernel.simulator import Simulator


class PacketReplayer:
    def __init__(
        self,
        sim: Simulator,
        network: Network,
        capture_pairs: List[Tuple[str, str]],
        broker_address: str,
        link_model,
        topic_prefix: str = "swamp/",
        password: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.capture_pairs = list(capture_pairs)
        self.topic_prefix = topic_prefix
        self.captured: List[Publish] = []
        self.replayed = 0
        self._taps = []
        self.client = MqttClient(
            sim, "atk:replayer", broker_address, client_id="replayer", password=password
        )
        network.add_node(self.client)
        network.connect(self.client.address, broker_address, link_model)

    def start_capture(self) -> None:
        self.client.connect()
        for a, b in self.capture_pairs:
            for link in self.network.links_between(a, b):
                tap = self._make_tap()
                link.add_tap(tap)
                self._taps.append((link, tap))

    def stop_capture(self) -> None:
        for link, tap in self._taps:
            link.remove_tap(tap)
        self._taps.clear()

    def _make_tap(self):
        def tap(packet):
            publish = packet.payload
            if isinstance(publish, Publish) and publish.topic.startswith(self.topic_prefix):
                self.captured.append(
                    Publish(topic=publish.topic, payload=publish.payload, qos=0)
                )

        return tap

    def replay_all(self) -> int:
        """Re-inject every captured frame now; returns count sent."""
        sent = 0
        for publish in self.captured:
            if self.client.publish(publish.topic, publish.payload, qos=0):
                sent += 1
        self.replayed += sent
        return sent

    def replay_loop(self, interval_s: float = 300.0) -> None:
        """Keep replaying the capture on an interval (sustained staleness)."""

        def loop():
            while True:
                yield interval_s
                self.replay_all()

        self.sim.spawn(loop(), "replayer-loop")
