"""Denial-of-service attacks: broker flooding and radio jamming."""

from typing import List, Optional

from repro.mqtt.client import MqttClient
from repro.mqtt.packets import Publish
from repro.network.topology import Network
from repro.simkernel.simulator import Simulator


class DosFlood:
    """Floods the MQTT broker with junk publishes from attacker nodes.

    Each bot is a real MQTT client on a real link: the flood competes for
    link bandwidth and broker queues exactly as legitimate traffic does,
    so delivery ratio and decision latency degrade mechanically (E4).
    Bots connect like any client — if the broker requires token
    authentication the connect is refused and the flood falls back to
    hammering CONNECT, which still consumes link capacity but far less
    than accepted publishes (this is the measurable value of E10's auth).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        broker_address: str,
        link_model,
        bot_count: int = 4,
        rate_msgs_per_s: float = 50.0,
        payload_bytes: int = 400,
        topic: str = "swamp/flood/junk",
        password: Optional[str] = None,
    ) -> None:
        if bot_count < 1 or rate_msgs_per_s <= 0:
            raise ValueError("need at least one bot and a positive rate")
        self.sim = sim
        self.network = network
        self.rate_msgs_per_s = rate_msgs_per_s
        self.payload_bytes = payload_bytes
        self.topic = topic
        self.active = False
        self.messages_sent = 0
        self.bots: List[MqttClient] = []
        self._rng = sim.rng.stream("attack:dos")
        for i in range(bot_count):
            bot = MqttClient(
                sim, f"atk:bot{i}", broker_address,
                client_id=f"bot-{i}", password=password, keepalive_s=0,
            )
            network.add_node(bot)
            network.connect(bot.address, broker_address, link_model)
            self.bots.append(bot)
        self._processes = []

    def start(self, duration_s: Optional[float] = None) -> None:
        self.active = True
        for bot in self.bots:
            bot.connect()
            self._processes.append(
                self.sim.spawn(self._bot_loop(bot), f"dos:{bot.client_id}")
            )
        if duration_s is not None:
            self.sim.schedule(duration_s, self.stop, label="dos:stop")

    def stop(self) -> None:
        self.active = False

    def _bot_loop(self, bot: MqttClient):
        per_bot_rate = self.rate_msgs_per_s / len(self.bots)
        junk = b"\x00" * self.payload_bytes
        while self.active:
            yield self._rng.expovariate(per_bot_rate)
            if not self.active:
                break
            if bot.connected:
                # qos0 junk straight at the broker.
                bot.publish(self.topic, junk, qos=0)
                self.messages_sent += 1
            else:
                # Auth keeps bots out: burn the link with connect attempts.
                bot.connect()


class RadioJammer:
    """Jams the radio links between the given node pairs (field-level DoS)."""

    def __init__(self, network: Network, pairs: List[tuple], loss: float = 0.9) -> None:
        if not 0.0 < loss <= 1.0:
            raise ValueError("jam loss must be in (0, 1]")
        self.network = network
        self.pairs = list(pairs)
        self.loss = loss
        self.active = False

    def start(self) -> None:
        self.active = True
        for a, b in self.pairs:
            self.network.jam(a, b, loss=self.loss)

    def stop(self) -> None:
        self.active = False
        for a, b in self.pairs:
            self.network.unjam(a, b)
