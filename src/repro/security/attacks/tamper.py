"""Sensor tampering: corrupt readings at the device boundary.

Installs a tamper hook on a device (physical compromise or firmware
implant), mutating the measure dict before it is encoded and published.
Modes cover the signatures the detection literature distinguishes:

* ``BIAS``   — constant additive offset (mis-calibration attack);
* ``DRIFT``  — offset growing linearly in time (slow poisoning, hardest
  for threshold detectors);
* ``SPIKE``  — occasional large outliers;
* ``STUCK``  — freeze at the last value (dead/clamped sensor);
* ``SCALE``  — multiplicative gain error.
"""

import enum
from typing import Any, Dict, Optional

from repro.devices.base import Device
from repro.simkernel.simulator import Simulator


class TamperMode(enum.Enum):
    BIAS = "bias"
    DRIFT = "drift"
    SPIKE = "spike"
    STUCK = "stuck"
    SCALE = "scale"


class SensorTamper:
    """One tamper instance on one device attribute."""

    def __init__(
        self,
        sim: Simulator,
        device: Device,
        attribute: str,
        mode: TamperMode,
        magnitude: float,
        spike_probability: float = 0.1,
        drift_per_day: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.device = device
        self.attribute = attribute
        self.mode = mode
        self.magnitude = magnitude
        self.spike_probability = spike_probability
        self.drift_per_day = drift_per_day if drift_per_day is not None else magnitude
        self.started_at: Optional[float] = None
        self.active = False
        self.samples_tampered = 0
        self._stuck_value: Optional[float] = None
        self._rng = sim.rng.stream(f"attack:tamper:{device.config.device_id}:{attribute}")
        self._hook = self._tamper

    def start(self) -> None:
        if self.active:
            return
        self.active = True
        self.started_at = self.sim.now
        self.device.tamper_hooks.append(self._hook)
        self.sim.trace.emit(
            self.sim.now, "attack", "tamper started",
            device=self.device.config.device_id, mode=self.mode.value,
        )

    def stop(self) -> None:
        if not self.active:
            return
        self.active = False
        try:
            self.device.tamper_hooks.remove(self._hook)
        except ValueError:
            pass

    def _tamper(self, measures: Dict[str, Any]) -> Dict[str, Any]:
        if self.attribute not in measures:
            return measures
        value = measures[self.attribute]
        if not isinstance(value, (int, float)):
            return measures
        mutated = dict(measures)
        if self.mode is TamperMode.BIAS:
            mutated[self.attribute] = value + self.magnitude
        elif self.mode is TamperMode.DRIFT:
            days = (self.sim.now - (self.started_at or 0.0)) / 86400.0
            mutated[self.attribute] = value + self.drift_per_day * days
        elif self.mode is TamperMode.SPIKE:
            if self._rng.bernoulli(self.spike_probability):
                mutated[self.attribute] = value + self.magnitude
        elif self.mode is TamperMode.STUCK:
            if self._stuck_value is None:
                self._stuck_value = value
            mutated[self.attribute] = self._stuck_value
        elif self.mode is TamperMode.SCALE:
            mutated[self.attribute] = value * self.magnitude
        if mutated[self.attribute] != value:
            self.samples_tampered += 1
        return mutated
