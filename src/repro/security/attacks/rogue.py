"""Rogue actuator control: unauthorized irrigation commands.

The attacker publishes commands straight onto a device's command topic —
"if an attacker takes control of the actuators, the irrigation and water
distribution is compromised, wrongly irrigating some crop."  Success
depends entirely on the broker's authentication/ACL configuration, which
is what E10 measures: an open broker executes the flood-the-field command;
a PEP-guarded broker refuses the connect or denies the publish.
"""

from typing import Any, Dict, List, Optional

from repro.devices.codec import encode_payload
from repro.mqtt.client import MqttClient
from repro.network.topology import Network
from repro.simkernel.simulator import Simulator


class RogueActuatorController:
    def __init__(
        self,
        sim: Simulator,
        network: Network,
        broker_address: str,
        link_model,
        farm: str,
        password: Optional[str] = None,
        username: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self.farm = farm
        self.commands_attempted = 0
        self.client = MqttClient(
            sim, "atk:rogue", broker_address,
            client_id="rogue-controller", username=username or farm, password=password,
        )
        network.add_node(self.client)
        network.connect(self.client.address, broker_address, link_model)
        self.acks_seen: List[Dict[str, Any]] = []

    def start(self) -> None:
        self.client.connect()
        self.client.subscribe(
            f"swamp/{self.farm}/cmdexe/+", qos=0, handler=self._on_ack
        )

    def _on_ack(self, topic: str, payload: bytes, qos: int, retain: bool) -> None:
        from repro.devices.codec import decode_payload

        ack = decode_payload(payload)
        if ack is not None:
            self.acks_seen.append(ack)

    def inject_command(self, device_id: str, command: Dict[str, Any]) -> bool:
        """Attempt one command injection; True if the publish left the client."""
        self.commands_attempted += 1
        return self.client.publish(
            f"swamp/{self.farm}/cmd/{device_id}", encode_payload(command), qos=1
        )

    def flood_field(self, valve_ids: List[str], hours: float = 12.0) -> int:
        """The crop-destruction move: open every valve for ``hours``."""
        injected = 0
        for valve_id in valve_ids:
            if self.inject_command(valve_id, {"cmd": "open", "duration_s": hours * 3600.0}):
                injected += 1
        return injected
