"""Passive eavesdropping and the yield-inference analytic.

The attacker taps links (radio sniffing or a compromised switch) and
harvests whatever is *observable* on the wire: plaintext payloads when the
channel is unencrypted, ciphertext otherwise.  On top of the harvest sits
the analytic the paper worries about — estimating farm yield from stolen
telemetry to front-run commodity markets.
"""

from typing import Any, Dict, List, Optional, Tuple

from repro.devices.codec import decode_payload
from repro.mqtt.packets import Publish
from repro.network.topology import Network
from repro.simkernel.simulator import Simulator


class Eavesdropper:
    def __init__(self, sim: Simulator, network: Network, pairs: List[Tuple[str, str]]) -> None:
        self.sim = sim
        self.network = network
        self.pairs = list(pairs)
        self.frames_observed = 0
        self.bytes_observed = 0
        self.plaintext_records: List[Dict[str, Any]] = []
        self.ciphertext_frames = 0
        self._taps = []
        self.active = False

    def start(self) -> None:
        if self.active:
            return
        self.active = True
        for a, b in self.pairs:
            for link in self.network.links_between(a, b):
                tap = self._make_tap()
                link.add_tap(tap)
                self._taps.append((link, tap))

    def stop(self) -> None:
        self.active = False
        for link, tap in self._taps:
            link.remove_tap(tap)
        self._taps.clear()

    def _make_tap(self):
        def tap(packet):
            self.frames_observed += 1
            self.bytes_observed += packet.size_bytes
            observed = packet.observable()
            payload = None
            if isinstance(observed, Publish):
                payload = observed.payload
            elif isinstance(observed, bytes):
                payload = observed
            if payload is None:
                return
            decoded = decode_payload(payload) if isinstance(payload, bytes) else None
            if decoded is not None:
                self.plaintext_records.append(decoded)
            else:
                self.ciphertext_frames += 1

        return tap

    # -- the market-manipulation analytic ---------------------------------------

    def harvested_attribute(self, name: str) -> List[float]:
        return [
            float(record[name])
            for record in self.plaintext_records
            if isinstance(record.get(name), (int, float))
        ]

    def estimate_mean(self, name: str) -> Optional[float]:
        values = self.harvested_attribute(name)
        if not values:
            return None
        return sum(values) / len(values)

    def leakage_ratio(self) -> float:
        """Fraction of observed frames that yielded readable records."""
        total = len(self.plaintext_records) + self.ciphertext_frames
        if total == 0:
            return 0.0
        return len(self.plaintext_records) / total


def market_advantage_eur(
    yield_estimate_error: float,
    farm_production_t: float,
    price_eur_t: float = 380.0,
    exploitable_fraction: float = 0.25,
) -> float:
    """Proxy for the attacker's trading advantage.

    The tighter the attacker's yield estimate (lower relative error), the
    more of the farm's production value they can front-run.  A crude but
    monotone model: advantage = (1 - error) · fraction · production · price,
    floored at zero.  Used only to *rank* plaintext vs. encrypted scenarios
    in E7, not as an economic prediction.
    """
    if farm_production_t < 0 or price_eur_t < 0:
        raise ValueError("production and price must be non-negative")
    accuracy = max(0.0, 1.0 - max(0.0, yield_estimate_error))
    return accuracy * exploitable_fraction * farm_production_t * price_eur_t
