"""Identity manager (Keyrock equivalent).

Stores principals — human users, services and devices — with salted,
hashed credentials, role assignments and farm membership.  Per-farm data
isolation ("it is important to keep data apart from farms in our pilots")
hangs off the ``farm`` attribute here.
"""

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.simkernel.rng import SeededStream


@dataclass
class Principal:
    principal_id: str
    kind: str  # "user" | "service" | "device"
    farm: Optional[str]
    roles: Set[str] = field(default_factory=set)
    salt: bytes = b""
    credential_hash: bytes = b""
    enabled: bool = True


def _hash_credential(salt: bytes, secret: str) -> bytes:
    return hashlib.pbkdf2_hmac("sha256", secret.encode("utf-8"), salt, 1000)


class IdentityManager:
    def __init__(self, rng: SeededStream) -> None:
        self._rng = rng
        self._principals: Dict[str, Principal] = {}

    def register(
        self,
        principal_id: str,
        secret: str,
        kind: str = "user",
        farm: Optional[str] = None,
        roles: Optional[Set[str]] = None,
    ) -> Principal:
        if principal_id in self._principals:
            raise ValueError(f"principal {principal_id!r} already registered")
        if kind not in ("user", "service", "device"):
            raise ValueError(f"unknown principal kind {kind!r}")
        salt = self._rng.token_bytes(16)
        principal = Principal(
            principal_id=principal_id,
            kind=kind,
            farm=farm,
            roles=set(roles or ()),
            salt=salt,
            credential_hash=_hash_credential(salt, secret),
        )
        self._principals[principal_id] = principal
        return principal

    def verify(self, principal_id: str, secret: str) -> Optional[Principal]:
        """Principal when credentials are valid and enabled, else None."""
        principal = self._principals.get(principal_id)
        if principal is None or not principal.enabled:
            return None
        expected = _hash_credential(principal.salt, secret)
        if not hmac.compare_digest(expected, principal.credential_hash):
            return None
        return principal

    def get(self, principal_id: str) -> Optional[Principal]:
        return self._principals.get(principal_id)

    def disable(self, principal_id: str) -> None:
        principal = self._principals.get(principal_id)
        if principal is not None:
            principal.enabled = False

    def enable(self, principal_id: str) -> None:
        principal = self._principals.get(principal_id)
        if principal is not None:
            principal.enabled = True

    def grant_role(self, principal_id: str, role: str) -> None:
        self._principals[principal_id].roles.add(role)

    def revoke_role(self, principal_id: str, role: str) -> None:
        self._principals[principal_id].roles.discard(role)

    def principals_of_farm(self, farm: str):
        return sorted(
            (p for p in self._principals.values() if p.farm == farm),
            key=lambda p: p.principal_id,
        )
