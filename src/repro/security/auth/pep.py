"""Policy Enforcement Point (Wilma equivalent) + audit log.

The PEP fronts every protected API: it introspects the bearer token with
the OAuth server, asks the PDP, records an audit entry and returns the
verdict.  It also provides adapters for the two enforcement surfaces the
platform actually has:

* MQTT broker ``authenticator``/``authorizer`` hooks (device CONNECT with
  token-as-password, per-farm topic ACLs);
* context-API guard used by services before broker queries/updates.
"""

from dataclasses import dataclass
from typing import List, Optional

from repro.mqtt.broker import BrokerSession
from repro.mqtt.packets import Connect, ConnectReturnCode
from repro.security.auth.oauth import OAuthServer
from repro.security.auth.pdp import PolicyDecisionPoint
from repro.simkernel.simulator import Simulator


@dataclass
class AuditRecord:
    time: float
    principal: Optional[str]
    action: str
    resource: str
    allowed: bool
    reason: str


class PepProxy:
    def __init__(
        self,
        sim: Simulator,
        oauth: OAuthServer,
        pdp: PolicyDecisionPoint,
        max_audit_records: int = 100_000,
    ) -> None:
        self.sim = sim
        self.oauth = oauth
        self.pdp = pdp
        self.audit_log: List[AuditRecord] = []
        self.max_audit_records = max_audit_records
        self.allowed_count = 0
        self.denied_count = 0
        # Per-request processing latency model (token check + PDP walk).
        self.overhead_s = 0.0015
        self._m_allowed = sim.metrics.counter("security.auth_checks",
                                              {"verdict": "allowed"})
        self._m_denied = sim.metrics.counter("security.auth_checks",
                                             {"verdict": "denied"})

    def _audit(self, principal: Optional[str], action: str, resource: str,
               allowed: bool, reason: str) -> None:
        if len(self.audit_log) >= self.max_audit_records:
            self.audit_log.pop(0)
        self.audit_log.append(
            AuditRecord(self.sim.now, principal, action, resource, allowed, reason)
        )
        if allowed:
            self.allowed_count += 1
            self._m_allowed.inc()
        else:
            self.denied_count += 1
            self._m_denied.inc()

    # -- generic enforcement -----------------------------------------------------

    def check(self, access_token: str, action: str, resource: str) -> bool:
        token = self.oauth.introspect(access_token)
        if token is None:
            self._audit(None, action, resource, False, "invalid-token")
            return False
        principal = self.oauth.identity.get(token.principal_id)
        allowed = self.pdp.decide(principal, action, resource)
        self._audit(
            principal.principal_id, action, resource, allowed,
            "pdp-permit" if allowed else "pdp-deny",
        )
        return allowed

    # -- MQTT adapters -----------------------------------------------------------

    def mqtt_authenticator(self, connect: Connect) -> ConnectReturnCode:
        """Broker CONNECT hook: the password field carries a bearer token."""
        token = self.oauth.introspect(connect.password or "")
        if token is None:
            self._audit(connect.client_id, "connect", "mqtt", False, "invalid-token")
            return ConnectReturnCode.BAD_CREDENTIALS
        principal = self.oauth.identity.get(token.principal_id)
        if principal is None:
            self._audit(connect.client_id, "connect", "mqtt", False, "unknown-principal")
            return ConnectReturnCode.NOT_AUTHORIZED
        self._audit(principal.principal_id, "connect", "mqtt", True, "token-ok")
        return ConnectReturnCode.ACCEPTED

    def mqtt_authorizer(self, session: BrokerSession, action: str, topic: str) -> bool:
        """Broker publish/subscribe hook, backed by the PDP."""
        principal = self.oauth.identity.get(session.client_id) or (
            self.oauth.identity.get(session.username) if session.username else None
        )
        if principal is None:
            self._audit(session.client_id, action, topic, False, "unknown-principal")
            return False
        allowed = self.pdp.decide(principal, action, topic)
        self._audit(
            principal.principal_id, action, topic, allowed,
            "pdp-permit" if allowed else "pdp-deny",
        )
        return allowed

    # -- reporting -----------------------------------------------------------

    def denied_records(self) -> List[AuditRecord]:
        return [r for r in self.audit_log if not r.allowed]
