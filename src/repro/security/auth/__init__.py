"""Identity, OAuth 2.0 and access control (FIWARE security GEs).

The paper: "The access to the platform must be allowed only for identified
and authorized users, using FIWARE security generic enablers (GE) and the
OAuth 2.0 protocol" and "each owner controls their data and decides the
access control to the data and the services".

* :class:`~repro.security.auth.identity.IdentityManager` — Keyrock-like
  user/device registry with salted credential storage, roles and farms;
* :class:`~repro.security.auth.oauth.OAuthServer` — password,
  client-credentials and refresh-token grants, expiring bearer tokens,
  introspection and revocation, all on the simulation clock;
* :class:`~repro.security.auth.pdp.PolicyDecisionPoint` — XACML-style
  rules (subject role/farm × resource pattern × action), deny-unless-permit;
* :class:`~repro.security.auth.pep.PepProxy` — the Wilma-style enforcement
  point gluing token validation to PDP decisions, with an audit log.
"""

from repro.security.auth.identity import IdentityManager, Principal
from repro.security.auth.oauth import OAuthError, OAuthServer, Token
from repro.security.auth.pdp import Policy, PolicyDecisionPoint
from repro.security.auth.pep import AuditRecord, PepProxy

__all__ = [
    "AuditRecord",
    "IdentityManager",
    "OAuthError",
    "OAuthServer",
    "PepProxy",
    "Policy",
    "PolicyDecisionPoint",
    "Principal",
    "Token",
]
