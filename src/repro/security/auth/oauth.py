"""OAuth 2.0 authorization server (the protocol the paper mandates).

Implements the grants the platform uses:

* **password** — human users and dashboards;
* **client_credentials** — services (IoT agents, schedulers);
* **refresh_token** — long-lived sessions without re-sending passwords.

Tokens are opaque bearer strings with expiry on the *simulation* clock,
introspection and revocation.  Wrong credentials, expired/revoked tokens
and unknown grants all fail closed.
"""

from dataclasses import dataclass
from typing import Dict, Optional

from repro.security.auth.identity import IdentityManager, Principal
from repro.simkernel.rng import SeededStream
from repro.simkernel.simulator import Simulator


class OAuthError(Exception):
    def __init__(self, error: str, description: str = "") -> None:
        super().__init__(f"{error}: {description}" if description else error)
        self.error = error


@dataclass
class Token:
    access_token: str
    refresh_token: Optional[str]
    principal_id: str
    scope: str
    issued_at: float
    expires_at: float
    revoked: bool = False

    def active(self, now: float) -> bool:
        return not self.revoked and now < self.expires_at


class OAuthServer:
    def __init__(
        self,
        sim: Simulator,
        identity: IdentityManager,
        rng: SeededStream,
        access_token_ttl_s: float = 3600.0,
        refresh_token_ttl_s: float = 30 * 86400.0,
    ) -> None:
        self.sim = sim
        self.identity = identity
        self._rng = rng
        self.access_token_ttl_s = access_token_ttl_s
        self.refresh_token_ttl_s = refresh_token_ttl_s
        self._tokens: Dict[str, Token] = {}
        self._refresh_tokens: Dict[str, Token] = {}
        self.issued_count = 0
        self.rejected_count = 0

    def _new_token_string(self) -> str:
        return self._rng.token_bytes(24).hex()

    def _issue(self, principal: Principal, scope: str, with_refresh: bool) -> Token:
        now = self.sim.now
        token = Token(
            access_token=self._new_token_string(),
            refresh_token=self._new_token_string() if with_refresh else None,
            principal_id=principal.principal_id,
            scope=scope,
            issued_at=now,
            expires_at=now + self.access_token_ttl_s,
        )
        self._tokens[token.access_token] = token
        if token.refresh_token:
            self._refresh_tokens[token.refresh_token] = token
        self.issued_count += 1
        return token

    # -- grants -----------------------------------------------------------

    def password_grant(self, username: str, password: str, scope: str = "") -> Token:
        principal = self.identity.verify(username, password)
        if principal is None or principal.kind == "device":
            self.rejected_count += 1
            raise OAuthError("invalid_grant", "bad credentials")
        return self._issue(principal, scope, with_refresh=True)

    def client_credentials_grant(self, client_id: str, client_secret: str, scope: str = "") -> Token:
        principal = self.identity.verify(client_id, client_secret)
        if principal is None or principal.kind != "service":
            self.rejected_count += 1
            raise OAuthError("invalid_client", "bad client credentials")
        return self._issue(principal, scope, with_refresh=False)

    def device_grant(self, device_id: str, device_key: str) -> Token:
        """Token for a provisioned device (the MQTT CONNECT credential)."""
        principal = self.identity.verify(device_id, device_key)
        if principal is None or principal.kind != "device":
            self.rejected_count += 1
            raise OAuthError("invalid_client", "bad device credentials")
        return self._issue(principal, "telemetry", with_refresh=False)

    def refresh_grant(self, refresh_token: str) -> Token:
        old = self._refresh_tokens.get(refresh_token)
        if old is None or old.revoked:
            self.rejected_count += 1
            raise OAuthError("invalid_grant", "unknown refresh token")
        if self.sim.now - old.issued_at > self.refresh_token_ttl_s:
            self.rejected_count += 1
            raise OAuthError("invalid_grant", "refresh token expired")
        principal = self.identity.get(old.principal_id)
        if principal is None or not principal.enabled:
            self.rejected_count += 1
            raise OAuthError("invalid_grant", "principal disabled")
        # Rotation: the old refresh token is single-use.
        del self._refresh_tokens[refresh_token]
        old.revoked = True
        return self._issue(principal, old.scope, with_refresh=True)

    # -- validation -----------------------------------------------------------

    def introspect(self, access_token: str) -> Optional[Token]:
        """The active token, or None (expired/revoked/unknown)."""
        token = self._tokens.get(access_token)
        if token is None or not token.active(self.sim.now):
            return None
        principal = self.identity.get(token.principal_id)
        if principal is None or not principal.enabled:
            return None
        return token

    def revoke(self, access_token: str) -> None:
        token = self._tokens.get(access_token)
        if token is not None:
            token.revoked = True
            if token.refresh_token:
                self._refresh_tokens.pop(token.refresh_token, None)

    def revoke_principal(self, principal_id: str) -> int:
        """Revoke every live token of a principal (incident response)."""
        count = 0
        for token in self._tokens.values():
            if token.principal_id == principal_id and not token.revoked:
                token.revoked = True
                count += 1
        return count
