"""Policy Decision Point (AuthZForce equivalent, XACML-style).

Policies match on subject attributes (role, farm), a resource pattern and
an action set, and carry an effect.  The combining algorithm is
**deny-overrides, deny-unless-permit**: an explicit matching deny wins; no
matching permit means deny.  The farm-isolation rule the paper requires is
expressed with the ``same_farm`` flag: the resource must embed the
subject's own farm (``swamp/<farm>/...`` or ``urn:...:<farm>:...``).
"""

import re
from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.security.auth.identity import Principal


@dataclass
class Policy:
    name: str
    effect: str  # "permit" | "deny"
    actions: Set[str]
    resource_pattern: str  # regex over the resource string
    roles: Optional[Set[str]] = None  # None = any role
    farms: Optional[Set[str]] = None  # None = any farm
    same_farm: bool = False
    _regex: re.Pattern = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.effect not in ("permit", "deny"):
            raise ValueError(f"effect must be permit/deny, got {self.effect!r}")
        self._regex = re.compile(self.resource_pattern)

    def matches(self, principal: Principal, action: str, resource: str) -> bool:
        if action not in self.actions:
            return False
        if not self._regex.search(resource):
            return False
        if self.roles is not None and not (self.roles & principal.roles):
            return False
        if self.farms is not None and principal.farm not in self.farms:
            return False
        if self.same_farm:
            if principal.farm is None or principal.farm not in resource:
                return False
        return True


class PolicyDecisionPoint:
    def __init__(self) -> None:
        self.policies: List[Policy] = []
        self.decisions = 0
        self.permits = 0
        self.denies = 0

    def add_policy(self, policy: Policy) -> None:
        self.policies.append(policy)

    def decide(self, principal: Principal, action: str, resource: str) -> bool:
        """True = permit.  Deny-overrides, deny-unless-permit."""
        self.decisions += 1
        permitted = False
        for policy in self.policies:
            if not policy.matches(principal, action, resource):
                continue
            if policy.effect == "deny":
                self.denies += 1
                return False
            permitted = True
        if permitted:
            self.permits += 1
        else:
            self.denies += 1
        return permitted
