"""Security subsystems.

The paper's §III is a catalogue of threats and required mechanisms; each
maps to a subpackage here:

* :mod:`~repro.security.crypto` — confidentiality/integrity ("state of the
  practice cryptography", simulation-grade constructions);
* :mod:`~repro.security.auth` — identity, OAuth 2.0, PEP/PDP access control
  (FIWARE security GEs);
* :mod:`~repro.security.attacks` — executable threat models: DoS, jamming,
  Sybil, sensor tampering, replay, eavesdropping, rogue actuators;
* :mod:`~repro.security.detection` — the behavioral-baseline anomaly
  detection the paper calls the most relevant challenge;
* :mod:`~repro.security.ledger` — blockchain device lifecycle + smart
  contracts;
* :mod:`~repro.security.sdn` — centralized network view and reactive
  quarantine;
* :mod:`~repro.security.anonymization` — k-anonymity for cross-farm data
  governance.
"""
