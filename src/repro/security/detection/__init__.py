"""Behavioral-baseline anomaly detection.

The paper's thesis: "one of the most relevant challenges ... is dealing
with the multitude of behaviors from IoT application and what would be
considered as normal and what would be considered as a threat", and "a
baseline must be created to promote security effectiveness" — while
acknowledging the system "will probably have a partial view of the
environment".

Implementation:

* per-(entity, attribute) statistical detectors
  (:mod:`~repro.security.detection.detectors`): range, z-score, jump,
  stuck-value, CUSUM drift, report-rate;
* a cross-sensor spatial-consistency voter
  (:mod:`~repro.security.detection.spatial`) that exploits field coherence
  to catch Sybil/fake data that is individually plausible;
* the :class:`~repro.security.detection.engine.DetectionEngine` that
  subscribes to the context broker, learns baselines over a training
  window, scores every update, raises alerts and (optionally) quarantines
  offending devices — closing the loop the paper asks for.
"""

from repro.security.detection.detectors import (
    CusumDriftDetector,
    JumpDetector,
    RangeDetector,
    RateDetector,
    StuckDetector,
    ZScoreDetector,
)
from repro.security.detection.engine import Alert, AlertManager, DetectionEngine
from repro.security.detection.sequence import CommandRhythmMonitor, EventSequenceModel
from repro.security.detection.spatial import SpatialConsistencyDetector

__all__ = [
    "Alert",
    "AlertManager",
    "CommandRhythmMonitor",
    "CusumDriftDetector",
    "DetectionEngine",
    "EventSequenceModel",
    "JumpDetector",
    "RangeDetector",
    "RateDetector",
    "SpatialConsistencyDetector",
    "StuckDetector",
    "ZScoreDetector",
]
