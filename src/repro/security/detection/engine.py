"""Detection engine: wires the detectors to the platform.

Subscribes to context-broker updates, learns per-(entity, attribute)
baselines during a training window, then scores every subsequent update
through the full detector bank.  Scores ≥ 1.0 raise an
:class:`Alert`; the :class:`AlertManager` debounces alerts per device and
invokes a quarantine hook once a device crosses the alert budget —
typically deprovisioning it at the IoT agent and/or blocking it at the
SDN controller.
"""

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.context.broker import ContextBroker
from repro.context.entities import ContextEntity
from repro.security.detection.detectors import (
    CusumDriftDetector,
    JumpDetector,
    RangeDetector,
    RateDetector,
    StuckDetector,
    ZScoreDetector,
)
from repro.simkernel.simulator import Simulator


@dataclass
class Alert:
    time: float
    entity_id: str
    attribute: str
    detector: str
    score: float
    value: float
    source_device: Optional[str]


def default_detector_bank():
    return {
        "range": RangeDetector(),
        "zscore": ZScoreDetector(),
        "jump": JumpDetector(),
        "stuck": StuckDetector(),
        "cusum": CusumDriftDetector(),
        "rate": RateDetector(),
    }


class AlertManager:
    """Debounce + quarantine policy over the alert stream."""

    def __init__(
        self,
        quarantine_threshold: int = 5,
        window_s: float = 86400.0,
        on_quarantine: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.quarantine_threshold = quarantine_threshold
        self.window_s = window_s
        self.on_quarantine = on_quarantine
        self.alerts: List[Alert] = []
        self.quarantined: Dict[str, float] = {}
        self._recent: Dict[str, List[float]] = defaultdict(list)

    def handle(self, alert: Alert) -> None:
        self.alerts.append(alert)
        key = alert.source_device or alert.entity_id
        if key in self.quarantined:
            return
        timestamps = self._recent[key]
        timestamps.append(alert.time)
        cutoff = alert.time - self.window_s
        self._recent[key] = [t for t in timestamps if t >= cutoff]
        if len(self._recent[key]) >= self.quarantine_threshold:
            self.quarantined[key] = alert.time
            if self.on_quarantine is not None:
                self.on_quarantine(key)

    def alerts_for(self, device_or_entity: str) -> List[Alert]:
        return [
            a for a in self.alerts
            if a.source_device == device_or_entity or a.entity_id == device_or_entity
        ]


class DetectionEngine:
    def __init__(
        self,
        sim: Simulator,
        context: ContextBroker,
        alert_manager: Optional[AlertManager] = None,
        training_window_s: float = 7 * 86400.0,
        watched_attributes: Optional[List[str]] = None,
        alert_threshold: float = 1.0,
        detector_factory: Callable[[], dict] = default_detector_bank,
    ) -> None:
        self.sim = sim
        self.context = context
        self.alert_manager = alert_manager or AlertManager()
        self.training_window_s = training_window_s
        self.watched_attributes = set(watched_attributes) if watched_attributes else None
        self.alert_threshold = alert_threshold
        self.detector_factory = detector_factory
        self._banks: Dict[Tuple[str, str], dict] = {}
        self._started_at = sim.now
        self.samples_trained = 0
        self.samples_scored = 0
        self.alerts_raised = 0
        registry = sim.metrics
        self._m_trained = registry.counter("security.detector_samples_trained")
        self._m_scored = registry.counter("security.detector_samples_scored")
        self._m_alerts = registry.counter("security.detector_alerts")
        context.update_hooks.append(self._on_update)

    @property
    def training(self) -> bool:
        return self.sim.now - self._started_at < self.training_window_s

    def _bank(self, entity_id: str, attribute: str) -> dict:
        key = (entity_id, attribute)
        bank = self._banks.get(key)
        if bank is None:
            bank = self.detector_factory()
            self._banks[key] = bank
        return bank

    def _on_update(self, entity: ContextEntity, changed: List[str]) -> None:
        for name in changed:
            if self.watched_attributes is not None and name not in self.watched_attributes:
                continue
            attribute = entity.attribute(name)
            if attribute is None or isinstance(attribute.value, bool):
                continue
            if not isinstance(attribute.value, (int, float)):
                continue
            value = float(attribute.value)
            source = attribute.metadata.get("sourceDevice")
            bank = self._bank(entity.entity_id, name)
            now = self.sim.now
            if self.training:
                for detector in bank.values():
                    detector.train(now, value)
                self.samples_trained += 1
                self._m_trained.inc()
                continue
            self.samples_scored += 1
            self._m_scored.inc()
            for detector_name, detector in bank.items():
                score = detector.score(now, value)
                if score >= self.alert_threshold:
                    self.alerts_raised += 1
                    self._m_alerts.inc()
                    self.alert_manager.handle(
                        Alert(
                            time=now,
                            entity_id=entity.entity_id,
                            attribute=name,
                            detector=detector_name,
                            score=score,
                            value=value,
                            source_device=source,
                        )
                    )

    # -- reporting -----------------------------------------------------------

    def profile_confidence(self, entity_id: str, attribute: str) -> float:
        """How much baseline the engine has for a signal, in [0, 1].

        The paper's partial-observability caveat: with few training
        samples the profile "does not necessarily correspond to that
        crop"; consumers should weight alerts by this confidence.
        """
        bank = self._banks.get((entity_id, attribute))
        if bank is None:
            return 0.0
        range_detector = bank.get("range")
        count = getattr(getattr(range_detector, "_stats", None), "count", 0)
        return min(1.0, count / 50.0)
