"""Per-signal statistical detectors.

Each detector consumes one (time, value) stream and follows the same
protocol: ``train(t, x)`` during the baseline window, then
``score(t, x) -> float`` where 0 is perfectly normal and scores ≥ 1.0 are
alert-worthy.  Detector choice maps to tamper signature (E5/E8):

=============  ==========================================
Detector       Catches
=============  ==========================================
Range          gross bias, impossible values
ZScore         moderate bias, spikes
Jump           spikes, step changes
Stuck          frozen/clamped sensors
CusumDrift     slow drift poisoning
Rate           floods (too fast), outages (too slow)
=============  ==========================================
"""

import math
from collections import deque
from typing import Deque, Optional


class _WelfordStats:
    """Streaming mean/variance."""

    __slots__ = ("count", "mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def add(self, x: float) -> None:
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)

    @property
    def std(self) -> float:
        if self.count < 2:
            return 0.0
        return math.sqrt(self._m2 / (self.count - 1))


class RangeDetector:
    """Alerts when a value leaves the trained envelope ± margin·σ."""

    def __init__(self, margin_sigmas: float = 4.0, min_sigma: float = 1e-6) -> None:
        self.margin_sigmas = margin_sigmas
        self.min_sigma = min_sigma
        self._stats = _WelfordStats()
        self._low = math.inf
        self._high = -math.inf

    def train(self, t: float, x: float) -> None:
        self._stats.add(x)
        self._low = min(self._low, x)
        self._high = max(self._high, x)

    def score(self, t: float, x: float) -> float:
        if self._stats.count < 3:
            return 0.0
        sigma = max(self._stats.std, self.min_sigma)
        margin = self.margin_sigmas * sigma
        if self._low - margin <= x <= self._high + margin:
            return 0.0
        overshoot = max(self._low - margin - x, x - self._high - margin)
        return 1.0 + overshoot / margin


class ZScoreDetector:
    """EWMA z-score; alert scales with |z| above the threshold."""

    def __init__(self, alpha: float = 0.05, threshold: float = 4.0, min_sigma: float = 1e-6) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha in (0,1)")
        self.alpha = alpha
        self.threshold = threshold
        self.min_sigma = min_sigma
        self._trained = _WelfordStats()
        self._mean: Optional[float] = None
        self._var: Optional[float] = None

    def train(self, t: float, x: float) -> None:
        self._trained.add(x)

    def _ensure_state(self) -> None:
        if self._mean is None:
            self._mean = self._trained.mean
            self._var = max(self._trained.std ** 2, self.min_sigma ** 2)

    def score(self, t: float, x: float) -> float:
        if self._trained.count < 3:
            return 0.0
        self._ensure_state()
        sigma = math.sqrt(max(self._var, self.min_sigma ** 2))
        z = abs(x - self._mean) / sigma
        # Update the running state with the new sample (slowly absorbs
        # legitimate seasonal movement).
        self._mean = (1 - self.alpha) * self._mean + self.alpha * x
        self._var = (1 - self.alpha) * self._var + self.alpha * (x - self._mean) ** 2
        return z / self.threshold


class JumpDetector:
    """Alerts on sample-to-sample deltas far beyond trained deltas."""

    def __init__(self, margin_sigmas: float = 5.0, min_sigma: float = 1e-6) -> None:
        self.margin_sigmas = margin_sigmas
        self.min_sigma = min_sigma
        self._delta_stats = _WelfordStats()
        self._last: Optional[float] = None

    def train(self, t: float, x: float) -> None:
        if self._last is not None:
            self._delta_stats.add(abs(x - self._last))
        self._last = x

    def score(self, t: float, x: float) -> float:
        if self._last is None or self._delta_stats.count < 3:
            self._last = x
            return 0.0
        delta = abs(x - self._last)
        self._last = x
        limit = self._delta_stats.mean + self.margin_sigmas * max(
            self._delta_stats.std, self.min_sigma
        )
        if delta <= limit or limit <= 0:
            return 0.0
        return delta / limit


class StuckDetector:
    """Alerts when the last N values are byte-identical.

    Real sensors carry noise; a perfectly flat window means a frozen
    reading (STUCK tamper or a dead transducer).
    """

    def __init__(self, window: int = 12) -> None:
        if window < 3:
            raise ValueError("window must be >= 3")
        self.window = window
        self._values: Deque[float] = deque(maxlen=window)

    def train(self, t: float, x: float) -> None:
        self._values.append(x)

    def score(self, t: float, x: float) -> float:
        self._values.append(x)
        if len(self._values) < self.window:
            return 0.0
        first = self._values[0]
        if all(v == first for v in self._values):
            return 1.5
        return 0.0


class CusumDriftDetector:
    """Two-sided CUSUM on the trained mean — catches slow poisoning.

    On alarm the accumulators reset (alarm-and-restart, the standard CUSUM
    operating mode): a genuinely drifting signal re-accumulates and alarms
    again quickly, while a legitimate signal that wandered (soil moisture
    is cyclo-stationary, not i.i.d.) produces an isolated alert and goes
    quiet — which is what lets the AlertManager's alert-budget separate
    the two.
    """

    def __init__(self, slack_sigmas: float = 0.75, threshold_sigmas: float = 10.0,
                 min_sigma: float = 1e-6) -> None:
        self.slack_sigmas = slack_sigmas
        self.threshold_sigmas = threshold_sigmas
        self.min_sigma = min_sigma
        self._trained = _WelfordStats()
        self._s_high = 0.0
        self._s_low = 0.0

    def train(self, t: float, x: float) -> None:
        self._trained.add(x)

    def score(self, t: float, x: float) -> float:
        if self._trained.count < 3:
            return 0.0
        sigma = max(self._trained.std, self.min_sigma)
        slack = self.slack_sigmas * sigma
        centered = x - self._trained.mean
        self._s_high = max(0.0, self._s_high + centered - slack)
        self._s_low = max(0.0, self._s_low - centered - slack)
        threshold = self.threshold_sigmas * sigma
        score = max(self._s_high, self._s_low) / threshold
        if score >= 1.0:
            self._s_high = 0.0
            self._s_low = 0.0
        return score


class RateDetector:
    """Report-rate envelope: floods and outages both score.

    Trains on inter-arrival times; scores the rate over a sliding window
    against the trained mean interval.
    """

    def __init__(self, fast_factor: float = 4.0, slow_factor: float = 4.0, window: int = 8) -> None:
        self.fast_factor = fast_factor
        self.slow_factor = slow_factor
        self._intervals = _WelfordStats()
        self._last_t: Optional[float] = None
        self._recent: Deque[float] = deque(maxlen=window)

    def train(self, t: float, x: float) -> None:
        if self._last_t is not None and t > self._last_t:
            self._intervals.add(t - self._last_t)
        self._last_t = t

    def score(self, t: float, x: float) -> float:
        if self._last_t is None or self._intervals.count < 3:
            self._last_t = t
            return 0.0
        interval = t - self._last_t
        self._last_t = t
        if interval <= 0:
            return 1.0
        self._recent.append(interval)
        mean_recent = sum(self._recent) / len(self._recent)
        expected = self._intervals.mean
        if expected <= 0:
            return 0.0
        if mean_recent < expected / self.fast_factor:
            return expected / (mean_recent * self.fast_factor)
        if mean_recent > expected * self.slow_factor:
            return mean_recent / (expected * self.slow_factor)
        return 0.0
