"""Spatial cross-sensor consistency.

A field is physically coherent: neighbouring zones share weather and
(correlated) soils, so their soil moisture and NDVI move together.  A
fabricated reading that is plausible in isolation (a Sybil's "healthy
0.85 NDVI") still disagrees with honest neighbours over a stressed area.
The detector scores each observation against the median of the other
observations for the same zone and the trained zone-to-neighbour spread.

Observations are keyed by (zone, source): multiple sources reporting one
zone (honest drone + Sybils) vote against each other; the median is robust
as long as honest sources are the majority *or* the fabricated values sit
far from the field's physical state.
"""

import math
from collections import defaultdict
from typing import Dict, List, Optional, Tuple


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


class SpatialConsistencyDetector:
    """Scores zone observations against cross-source and neighbour medians."""

    def __init__(self, grid_rows: int, grid_cols: int, tolerance: float = 0.08) -> None:
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        self.rows = grid_rows
        self.cols = grid_cols
        self.tolerance = tolerance
        # (row, col) -> {source: value} for the current epoch.
        self._observations: Dict[Tuple[int, int], Dict[str, float]] = defaultdict(dict)

    def reset_epoch(self) -> None:
        self._observations.clear()

    def observe(self, row: int, col: int, source: str, value: float) -> None:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ValueError(f"zone ({row},{col}) outside grid")
        self._observations[(row, col)][source] = value

    def _neighbour_values(self, row: int, col: int, exclude_source: str) -> List[float]:
        values: List[float] = []
        for dr in (-1, 0, 1):
            for dc in (-1, 0, 1):
                rr, cc = row + dr, col + dc
                if not (0 <= rr < self.rows and 0 <= cc < self.cols):
                    continue
                for source, value in self._observations.get((rr, cc), {}).items():
                    if rr == row and cc == col and source == exclude_source:
                        continue
                    values.append(value)
        return values

    def score(self, row: int, col: int, source: str) -> float:
        """Anomaly score for one source's observation of one zone."""
        own = self._observations.get((row, col), {}).get(source)
        if own is None:
            return 0.0
        reference = self._neighbour_values(row, col, exclude_source=source)
        if len(reference) < 2:
            return 0.0  # partial view: not enough context to judge
        deviation = abs(own - _median(reference))
        if deviation <= self.tolerance:
            return 0.0
        return deviation / self.tolerance

    def score_all(self) -> Dict[Tuple[int, int, str], float]:
        """Scores for every observation in the epoch (deterministic order)."""
        results: Dict[Tuple[int, int, str], float] = {}
        for (row, col) in sorted(self._observations):
            for source in sorted(self._observations[(row, col)]):
                results[(row, col, source)] = self.score(row, col, source)
        return results

    def suspicious_sources(self, alert_threshold: float = 1.0) -> Dict[str, int]:
        """Source -> count of zones where it scored above threshold."""
        counts: Dict[str, int] = defaultdict(int)
        for (row, col, source), score in self.score_all().items():
            if score >= alert_threshold:
                counts[source] += 1
        return dict(counts)
