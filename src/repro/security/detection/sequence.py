"""Event-sequence behaviour model.

The paper's sharpest formulation of the baseline challenge is about
*sequences*, not values: "to understand and correlate the expected sequence
of events and behavior of agriculture applications".  Irrigation commands
follow rhythms — a valve opens after a dry-down, in the morning cycle, at
most once a day; a pivot pass follows a scheduler decision which follows
fresh telemetry.  An attacker who replays a *plausible value* still breaks
the *rhythm*: commands at 3 a.m., opens with no preceding dry-down, five
opens in an hour.

:class:`EventSequenceModel` learns a first-order Markov model over
discretized platform events — (event type, time-of-day bucket) — plus
inter-event gap statistics per transition, then scores new events by the
improbability of their transition and timing.  Smoothing keeps unseen
transitions finite; scores ≥ 1 are alert-worthy, matching the detector
protocol in :mod:`repro.security.detection.detectors`.
"""

import math
from collections import defaultdict
from typing import Dict, Hashable, List, Optional, Tuple

DAY_S = 86400.0


class _GapStats:
    __slots__ = ("count", "mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def add(self, x: float) -> None:
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)

    @property
    def std(self) -> float:
        if self.count < 2:
            return 0.0
        return math.sqrt(self._m2 / (self.count - 1))


def _time_bucket(t: float, buckets_per_day: int) -> int:
    seconds_into_day = t % DAY_S
    return int(seconds_into_day / (DAY_S / buckets_per_day))


class EventSequenceModel:
    """First-order Markov model over (event, time-of-day-bucket) symbols."""

    def __init__(
        self,
        buckets_per_day: int = 6,
        smoothing: float = 0.1,
        surprise_threshold_bits: float = 6.0,
        min_training_events: int = 10,
        online_learning: bool = True,
    ) -> None:
        if buckets_per_day < 1:
            raise ValueError("need at least one time bucket")
        if smoothing <= 0:
            raise ValueError("smoothing must be positive")
        self.buckets_per_day = buckets_per_day
        self.smoothing = smoothing
        self.surprise_threshold_bits = surprise_threshold_bits
        self.min_training_events = min_training_events
        # Online learning: non-anomalous scored events keep refining the
        # model (normal drift is absorbed); anomalous ones never do (an
        # attacker cannot poison the baseline by repeating the attack).
        self.online_learning = online_learning
        self._transitions: Dict[Hashable, Dict[Hashable, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        self._gaps: Dict[Tuple[Hashable, Hashable], _GapStats] = defaultdict(_GapStats)
        self._symbols: set = set()
        self._last: Optional[Tuple[Hashable, float]] = None
        self.trained_events = 0

    # -- symbolization -----------------------------------------------------------

    def symbol(self, event_type: str, t: float) -> Tuple[str, int]:
        return (event_type, _time_bucket(t, self.buckets_per_day))

    # -- training -----------------------------------------------------------

    def train(self, event_type: str, t: float) -> None:
        current = self.symbol(event_type, t)
        self._symbols.add(current)
        if self._last is not None:
            previous, previous_t = self._last
            self._transitions[previous][current] += 1
            self._gaps[(previous, current)].add(t - previous_t)
        self._last = (current, t)
        self.trained_events += 1

    def end_training(self) -> None:
        """Forget the dangling last event so scoring starts fresh."""
        self._last = None

    # -- scoring -----------------------------------------------------------

    def transition_probability(self, previous: Hashable, current: Hashable) -> float:
        """Laplace-smoothed P(current | previous)."""
        row = self._transitions.get(previous, {})
        vocabulary = max(1, len(self._symbols))
        total = sum(row.values()) + self.smoothing * vocabulary
        return (row.get(current, 0) + self.smoothing) / total

    def surprise_bits(self, previous: Hashable, current: Hashable) -> float:
        return -math.log2(self.transition_probability(previous, current))

    def score(self, event_type: str, t: float) -> float:
        """Anomaly score for the next event (0 normal, ≥1 alert-worthy).

        Combines transition surprise with gap timing: an expected
        transition arriving wildly off-schedule still scores.  A context
        (previous symbol) that was itself never observed is flagged
        outright — it can only exist downstream of an earlier anomaly.
        """
        if self.trained_events < self.min_training_events:
            self._observe(event_type, t)
            return 0.0
        current = self.symbol(event_type, t)
        if self._last is None:
            self._last = (current, t)
            return 0.0
        previous, previous_t = self._last
        row = self._transitions.get(previous)
        if not row:
            score = 1.2  # novel context: downstream of an anomaly
        else:
            surprise = self.surprise_bits(previous, current)
            score = surprise / self.surprise_threshold_bits
            gap_stats = self._gaps.get((previous, current))
            if gap_stats is not None and gap_stats.count >= 3 and gap_stats.std > 0:
                gap = t - previous_t
                z = abs(gap - gap_stats.mean) / max(gap_stats.std, 1.0)
                score = max(score, z / 8.0)
        if score < 1.0:
            if self.online_learning:
                self._symbols.add(current)
                self._transitions[previous][current] += 1
                self._gaps[(previous, current)].add(t - previous_t)
            # Only non-anomalous events become scoring context.  An
            # anomalous event must not poison the chain: in a pooled model
            # the *next* legitimate command (often another device's) would
            # otherwise score as "downstream of an anomaly" and be
            # misattributed as a second alert.
            self._last = (current, t)
        return score

    def _observe(self, event_type: str, t: float) -> None:
        # While under-trained, keep learning silently.
        self.train(event_type, t)

    # -- inspection -----------------------------------------------------------

    def known_transitions(self) -> List[Tuple[Hashable, Hashable, int]]:
        result = []
        for previous, row in self._transitions.items():
            for current, count in row.items():
                result.append((previous, current, count))
        return sorted(result, key=lambda item: (-item[2], str(item[0]), str(item[1])))


class CommandRhythmMonitor:
    """Platform integration: learns the command rhythm per device.

    Feed it every actuator command (the IoT agent's ``send_command`` and
    the broker-visible command topic both work); after the training window
    it scores each command and calls ``on_alert`` for improbable ones —
    the sequence-level complement to the per-value detectors, and the one
    that catches *replayed* or *injected* commands whose payloads are
    individually plausible.
    """

    def __init__(
        self,
        training_window_s: float = 7 * DAY_S,
        alert_threshold: float = 1.0,
        on_alert=None,
        buckets_per_day: int = 6,
        group_of=None,
    ) -> None:
        self.training_window_s = training_window_s
        self.alert_threshold = alert_threshold
        self.on_alert = on_alert
        self.buckets_per_day = buckets_per_day
        # Commands are sparse per device (a valve opens a handful of times
        # per week) — pooling devices of the same class into one model is
        # what makes the rhythm learnable inside a season.  ``group_of``
        # maps a device id to its pool key; default is per-device.
        self.group_of = group_of or (lambda device_id: device_id)
        self._models: Dict[str, EventSequenceModel] = {}
        self._started_at: Optional[float] = None
        self.alerts: List[dict] = []

    def _model(self, group: str) -> EventSequenceModel:
        model = self._models.get(group)
        if model is None:
            model = EventSequenceModel(buckets_per_day=self.buckets_per_day)
            self._models[group] = model
        return model

    def observe(self, device_id: str, command_name: str, t: float) -> float:
        """Record a command; returns its anomaly score (0 during training)."""
        if self._started_at is None:
            self._started_at = t
        model = self._model(self.group_of(device_id))
        if t - self._started_at < self.training_window_s:
            model.train(command_name, t)
            return 0.0
        score = model.score(command_name, t)
        if score >= self.alert_threshold:
            alert = {"time": t, "device": device_id, "command": command_name,
                     "score": score}
            self.alerts.append(alert)
            if self.on_alert is not None:
                self.on_alert(alert)
        return score

    def alerts_for(self, device_id: str) -> List[dict]:
        return [a for a in self.alerts if a["device"] == device_id]
