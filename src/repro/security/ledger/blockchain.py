"""Proof-of-authority blockchain for device lifecycle events.

A small permissioned chain: named validators take turns sealing blocks of
pending transactions; block integrity is a SHA-256 hash chain over a
canonical serialization.  ``verify_chain`` detects any retroactive edit —
the audit property the paper wants from "track all the attributes,
relationships and events related to a device".
"""

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


class LedgerError(Exception):
    pass


@dataclass(frozen=True)
class LifecycleEvent:
    """One transaction: something happened to a device."""

    device_id: str
    event: str  # manufactured | provisioned | activated | key_rotated | ...
    actor: str  # who performed/attested the event
    time: float
    data: Dict[str, Any] = field(default_factory=dict)

    def canonical(self) -> str:
        return json.dumps(
            {
                "device_id": self.device_id,
                "event": self.event,
                "actor": self.actor,
                "time": self.time,
                "data": self.data,
            },
            sort_keys=True,
            separators=(",", ":"),
        )


@dataclass
class Block:
    index: int
    previous_hash: str
    validator: str
    time: float
    transactions: List[LifecycleEvent]
    block_hash: str = ""

    def compute_hash(self) -> str:
        body = json.dumps(
            {
                "index": self.index,
                "previous_hash": self.previous_hash,
                "validator": self.validator,
                "time": self.time,
                "transactions": [tx.canonical() for tx in self.transactions],
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(body.encode("utf-8")).hexdigest()


class Blockchain:
    def __init__(self, validators: List[str]) -> None:
        if not validators:
            raise LedgerError("need at least one validator")
        self.validators = list(validators)
        genesis = Block(0, "0" * 64, "genesis", 0.0, [])
        genesis.block_hash = genesis.compute_hash()
        self.blocks: List[Block] = [genesis]
        self.pending: List[LifecycleEvent] = []

    def submit(self, event: LifecycleEvent) -> None:
        self.pending.append(event)

    def seal_block(self, time: float) -> Optional[Block]:
        """Current validator seals all pending transactions; None if none."""
        if not self.pending:
            return None
        validator = self.validators[len(self.blocks) % len(self.validators)]
        block = Block(
            index=len(self.blocks),
            previous_hash=self.blocks[-1].block_hash,
            validator=validator,
            time=time,
            transactions=self.pending,
        )
        block.block_hash = block.compute_hash()
        self.pending = []
        self.blocks.append(block)
        return block

    def verify_chain(self) -> bool:
        """True when every hash link and block hash is intact."""
        for i, block in enumerate(self.blocks):
            if block.block_hash != block.compute_hash():
                return False
            if i > 0:
                previous = self.blocks[i - 1]
                if block.previous_hash != previous.block_hash:
                    return False
                if block.validator not in self.validators:
                    return False
        return True

    def events(self, device_id: Optional[str] = None) -> List[LifecycleEvent]:
        """All committed events, in chain order, optionally per device."""
        result: List[LifecycleEvent] = []
        for block in self.blocks:
            for tx in block.transactions:
                if device_id is None or tx.device_id == device_id:
                    result.append(tx)
        return result

    @property
    def height(self) -> int:
        return len(self.blocks)
