"""Blockchain device lifecycle ledger and smart contracts.

The paper: blockchain "will have great importance in the security of IoT.
One possible application is in the supply chain and lifecycle of an IoT
device ... it is possible to track all the attributes, relationships and
events related to a device", and "the use of smart contracts is also a
promising mechanism ... for authentication, authorization, and privacy".

* :class:`~repro.security.ledger.blockchain.Blockchain` —
  proof-of-authority hash-chained blocks of
  :class:`~repro.security.ledger.blockchain.LifecycleEvent` transactions;
* :class:`~repro.security.ledger.registry.DeviceLifecycleRegistry` — the
  state machine replayed from the chain (manufactured → provisioned →
  active → retired/revoked) with clone detection;
* :class:`~repro.security.ledger.contracts.AuthorizationContract` —
  deterministic rules over chain state gating platform actions
  (e.g. "only an *active*, *untampered* device owned by this farm may
  receive actuator commands").
"""

from repro.security.ledger.blockchain import Block, Blockchain, LedgerError, LifecycleEvent
from repro.security.ledger.contracts import AuthorizationContract, ContractRule
from repro.security.ledger.registry import DeviceLifecycleRegistry, DeviceState

__all__ = [
    "AuthorizationContract",
    "Block",
    "Blockchain",
    "ContractRule",
    "DeviceLifecycleRegistry",
    "DeviceState",
    "LedgerError",
    "LifecycleEvent",
]
