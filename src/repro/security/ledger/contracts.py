"""Smart contracts: deterministic authorization rules over chain state.

A contract is a conjunction of :class:`ContractRule` predicates evaluated
against the :class:`~repro.security.ledger.registry.DeviceLifecycleRegistry`
(itself a pure replay of the chain).  The canonical SWAMP contract gates
actuator commands: the target device must be ACTIVE, owned by the
requesting farm, and free of lifecycle violations.  Every evaluation is
logged — an on-chain-auditable authorization trail.
"""

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.security.ledger.registry import DeviceLifecycleRegistry, DeviceState


@dataclass
class ContractRule:
    name: str
    predicate: Callable[[DeviceLifecycleRegistry, str, Dict], bool]
    description: str = ""


def rule_device_active() -> ContractRule:
    return ContractRule(
        "device-active",
        lambda registry, device_id, ctx: registry.state_of(device_id) is DeviceState.ACTIVE,
        "target device must be in the ACTIVE lifecycle state",
    )


def rule_owned_by(context_key: str = "farm") -> ContractRule:
    return ContractRule(
        "owned-by-requester",
        lambda registry, device_id, ctx: (
            registry.owner_of(device_id) is not None
            and registry.owner_of(device_id) == ctx.get(context_key)
        ),
        "target device must be owned by the requesting farm",
    )


def rule_no_violations() -> ContractRule:
    def predicate(registry: DeviceLifecycleRegistry, device_id: str, ctx: Dict) -> bool:
        return not any(v.event.device_id == device_id for v in registry.violations)

    return ContractRule(
        "clean-lifecycle",
        predicate,
        "target device must have no lifecycle violations (clones, bad transitions)",
    )


@dataclass
class ContractDecision:
    device_id: str
    allowed: bool
    failed_rule: Optional[str]
    context: Dict


class AuthorizationContract:
    def __init__(self, registry: DeviceLifecycleRegistry, rules: Optional[List[ContractRule]] = None) -> None:
        self.registry = registry
        self.rules = rules if rules is not None else [
            rule_device_active(),
            rule_owned_by(),
            rule_no_violations(),
        ]
        self.decisions: List[ContractDecision] = []

    def authorize(self, device_id: str, context: Optional[Dict] = None) -> bool:
        """Evaluate all rules; refresh registry state from the chain first."""
        self.registry.refresh()
        context = context or {}
        failed: Optional[str] = None
        for rule in self.rules:
            if not rule.predicate(self.registry, device_id, context):
                failed = rule.name
                break
        decision = ContractDecision(device_id, failed is None, failed, dict(context))
        self.decisions.append(decision)
        return decision.allowed

    def denials(self) -> List[ContractDecision]:
        return [d for d in self.decisions if not d.allowed]
