"""Device lifecycle state replayed from the chain.

The registry is a pure function of committed chain events, so two parties
replaying the same chain agree on every device's state — the property
that makes contract decisions auditable.  Illegal transitions (e.g. a
second ``manufactured`` for the same id — a counterfeit/clone) do not
change state; they are recorded as violations.
"""

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.security.ledger.blockchain import Blockchain, LifecycleEvent


class DeviceState(enum.Enum):
    UNKNOWN = "unknown"
    MANUFACTURED = "manufactured"
    PROVISIONED = "provisioned"
    ACTIVE = "active"
    SUSPENDED = "suspended"
    RETIRED = "retired"
    REVOKED = "revoked"


# event -> (allowed source states, resulting state)
_TRANSITIONS = {
    "manufactured": ({DeviceState.UNKNOWN}, DeviceState.MANUFACTURED),
    "provisioned": ({DeviceState.MANUFACTURED}, DeviceState.PROVISIONED),
    "activated": ({DeviceState.PROVISIONED, DeviceState.SUSPENDED}, DeviceState.ACTIVE),
    "suspended": ({DeviceState.ACTIVE}, DeviceState.SUSPENDED),
    "key_rotated": ({DeviceState.ACTIVE, DeviceState.PROVISIONED}, None),  # no state change
    "transferred": ({DeviceState.ACTIVE, DeviceState.PROVISIONED}, None),
    "retired": ({DeviceState.ACTIVE, DeviceState.SUSPENDED, DeviceState.PROVISIONED},
                DeviceState.RETIRED),
    "revoked": (set(DeviceState) - {DeviceState.UNKNOWN}, DeviceState.REVOKED),
}


@dataclass
class DeviceRecord:
    device_id: str
    state: DeviceState = DeviceState.UNKNOWN
    owner: Optional[str] = None
    manufacturer: Optional[str] = None
    history: List[LifecycleEvent] = field(default_factory=list)


@dataclass
class Violation:
    event: LifecycleEvent
    reason: str


class DeviceLifecycleRegistry:
    def __init__(self, chain: Blockchain) -> None:
        self.chain = chain
        self.devices: Dict[str, DeviceRecord] = {}
        self.violations: List[Violation] = []
        self._replayed_events = 0
        self.replay()

    def replay(self) -> None:
        """Rebuild all state from the chain (idempotent full replay)."""
        self.devices = {}
        self.violations = []
        self._replayed_events = 0
        for event in self.chain.events():
            self._apply(event)

    def refresh(self) -> None:
        """Apply only events committed since the last replay/refresh."""
        events = self.chain.events()
        for event in events[self._replayed_events:]:
            self._apply(event)

    def _apply(self, event: LifecycleEvent) -> None:
        self._replayed_events += 1
        record = self.devices.setdefault(event.device_id, DeviceRecord(event.device_id))
        transition = _TRANSITIONS.get(event.event)
        if transition is None:
            self.violations.append(Violation(event, f"unknown event {event.event!r}"))
            return
        allowed_states, next_state = transition
        if record.state not in allowed_states:
            self.violations.append(
                Violation(event, f"{event.event} not allowed from {record.state.value}")
            )
            return
        record.history.append(event)
        if next_state is not None:
            record.state = next_state
        if event.event == "manufactured":
            record.manufacturer = event.actor
        if event.event in ("provisioned", "transferred"):
            record.owner = event.data.get("owner", event.actor)

    # -- queries -----------------------------------------------------------

    def state_of(self, device_id: str) -> DeviceState:
        record = self.devices.get(device_id)
        return record.state if record else DeviceState.UNKNOWN

    def owner_of(self, device_id: str) -> Optional[str]:
        record = self.devices.get(device_id)
        return record.owner if record else None

    def clone_violations(self) -> List[Violation]:
        """Violations signalling duplicate 'manufactured' ids — the
        counterfeit-device signature the paper's supply-chain use case
        exists to catch."""
        return [
            v for v in self.violations
            if v.event.event == "manufactured" and "not allowed" in v.reason
        ]
