"""SDN controller: centralized network view + reactive security app.

The paper: "SDN architecture for IoT allows administrators to have a
centralized view of the IoT system and to implement security services."

The controller taps every link to maintain per-flow statistics (a flow is
``(src, flow-label)``), giving the centralized view; the bundled security
app watches flow rates and reacts:

* **quarantine** — a network-wide firewall rule dropping all traffic from
  a source address (used against DoS bots and quarantined devices);
* **rate-limit** — probabilistic drop above a per-flow budget.

Experiment E4 runs the same flood with the app on and off.
"""

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.network.packet import Packet
from repro.network.topology import Network
from repro.simkernel.simulator import Simulator

FlowKey = Tuple[str, str]  # (source address, flow label)


@dataclass
class FlowStats:
    packets: int = 0
    bytes: int = 0
    window_packets: int = 0
    prev_window_packets: int = 0
    first_seen: float = 0.0
    last_seen: float = 0.0


class SdnController:
    def __init__(self, sim: Simulator, network: Network, window_s: float = 10.0) -> None:
        self.sim = sim
        self.network = network
        self.window_s = window_s
        self.flows: Dict[FlowKey, FlowStats] = defaultdict(FlowStats)
        self.quarantined: Set[str] = set()
        self._rate_limits: Dict[str, float] = {}  # flow label -> pkts/s budget
        self._rng = sim.rng.stream("sdn")
        self._firewall_installed = False
        self._attach_taps()
        sim.spawn(self._window_loop(), "sdn:window")

    # -- telemetry plane -----------------------------------------------------------

    def _attach_taps(self) -> None:
        for link in self.network.links.values():
            link.add_tap(self._account)
        # Links created after the controller comes up are tapped on the
        # spot — the centralized view stays complete as devices join.
        self.network.on_link_added.append(lambda link: link.add_tap(self._account))

    def watch_new_links(self) -> None:
        """Re-scan topology for untapped links (defensive; normally the
        on_link_added hook keeps coverage complete)."""
        for link in self.network.links.values():
            if self._account not in link.taps:
                link.add_tap(self._account)

    def _account(self, packet: Packet) -> None:
        key = (packet.src, packet.flow)
        stats = self.flows[key]
        if stats.packets == 0:
            stats.first_seen = self.sim.clock.now
        stats.packets += 1
        stats.window_packets += 1
        stats.bytes += packet.size_bytes
        stats.last_seen = self.sim.clock.now

    def _window_loop(self):
        while True:
            yield self.window_s
            for stats in self.flows.values():
                stats.prev_window_packets = stats.window_packets
                stats.window_packets = 0

    def flow_rate(self, key: FlowKey) -> float:
        """Packets/s over the busier of the current and previous window —
        robust to being sampled right after a window rollover."""
        stats = self.flows[key]
        return max(stats.window_packets, stats.prev_window_packets) / self.window_s

    def top_talkers(self, n: int = 5) -> List[Tuple[FlowKey, FlowStats]]:
        return sorted(
            self.flows.items(), key=lambda item: (-item[1].packets, item[0])
        )[:n]

    # -- control plane -----------------------------------------------------------

    def _ensure_firewall(self) -> None:
        if not self._firewall_installed:
            self.network.add_firewall(self._filter)
            self._firewall_installed = True

    def _filter(self, packet: Packet, hop_src: str, hop_dst: str) -> bool:
        if packet.src in self.quarantined:
            return False
        budget = self._rate_limits.get(packet.flow)
        if budget is not None:
            rate = self.flow_rate((packet.src, packet.flow))
            if rate > budget:
                # Drop with probability proportional to the excess.
                drop_probability = min(0.95, 1.0 - budget / rate)
                if self._rng.bernoulli(drop_probability):
                    return False
        return True

    def quarantine(self, address: str) -> None:
        self._ensure_firewall()
        self.quarantined.add(address)
        self.sim.trace.emit(self.sim.now, "sdn", "quarantined", address=address)

    def release(self, address: str) -> None:
        self.quarantined.discard(address)

    def rate_limit(self, flow_label: str, packets_per_s: float) -> None:
        if packets_per_s <= 0:
            raise ValueError("rate budget must be positive")
        self._ensure_firewall()
        self._rate_limits[flow_label] = packets_per_s


class FloodDefenseApp:
    """Security app: quarantine sources whose rate exceeds the threshold."""

    def __init__(
        self,
        controller: SdnController,
        threshold_pkts_per_s: float = 20.0,
        check_interval_s: float = 10.0,
        allowlist: Optional[Set[str]] = None,
    ) -> None:
        self.controller = controller
        self.threshold = threshold_pkts_per_s
        self.allowlist = allowlist or set()
        self.quarantine_actions = 0
        controller.sim.spawn(self._loop(check_interval_s), "sdn:flood-defense")

    def _loop(self, interval_s: float):
        while True:
            yield interval_s
            for (src, label), stats in sorted(self.controller.flows.items()):
                if src in self.allowlist or src in self.controller.quarantined:
                    continue
                rate = self.controller.flow_rate((src, label))
                if rate > self.threshold:
                    self.controller.quarantine(src)
                    self.quarantine_actions += 1
