"""Seasonal behaviour profiles.

The paper argues security needs a baseline of "the expected sequence of
events and behavior of agriculture applications", while warning that with
partial observability "applications may create a partial profile of the
crop ... which does not necessarily correspond to that crop".

:class:`SeasonProfileBuilder` turns short-term-history series into a
day-indexed profile (mean ± std per season day across sources/years) and
exposes a *confidence* figure driven by sample support, so consumers can
weight profile-based judgements exactly as the paper prescribes.
"""

import math
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.context.history import HistoryQuery, ShortTermHistory

DAY_S = 86400.0


class DayProfile:
    __slots__ = ("count", "mean", "_m2")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def add(self, x: float) -> None:
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)

    @property
    def std(self) -> float:
        if self.count < 2:
            return 0.0
        return math.sqrt(self._m2 / (self.count - 1))


class SeasonProfileBuilder:
    def __init__(self, history: ShortTermHistory, season_start_s: float = 0.0) -> None:
        self.history = history
        self.season_start_s = season_start_s
        self._days: Dict[Tuple[str, int], DayProfile] = defaultdict(DayProfile)
        self._attributes: set = set()

    def ingest(self, entity_id: str, attribute: str) -> int:
        """Fold one entity's series into the profile; returns samples used."""
        samples = self.history.read(
            HistoryQuery(entity_id, attribute), source="memory").rows
        for t, value in samples:
            day = int((t - self.season_start_s) // DAY_S)
            if day < 0:
                continue
            self._days[(attribute, day)].add(value)
            self._attributes.add(attribute)
        return len(samples)

    def expected(self, attribute: str, day: int) -> Optional[Tuple[float, float]]:
        """(mean, std) of the profile on ``day``, or None if unseen."""
        profile = self._days.get((attribute, day))
        if profile is None or profile.count == 0:
            return None
        return (profile.mean, profile.std)

    def confidence(self, attribute: str, day: int, full_support: int = 20) -> float:
        """Profile confidence in [0,1] from sample support on that day."""
        profile = self._days.get((attribute, day))
        if profile is None:
            return 0.0
        return min(1.0, profile.count / full_support)

    def deviation_score(self, attribute: str, day: int, value: float,
                        min_std: float = 1e-6) -> Optional[float]:
        """|z| of ``value`` against the profile, scaled by confidence.

        Low-confidence days yield proportionally lower scores — the
        partial-profile caveat made operational: a thin profile cannot
        condemn a reading by itself.
        """
        expected = self.expected(attribute, day)
        if expected is None:
            return None
        mean, std = expected
        z = abs(value - mean) / max(std, min_std)
        return z * self.confidence(attribute, day)

    def days_covered(self, attribute: str) -> int:
        return sum(1 for (attr, _day) in self._days if attr == attribute)
