"""Analytics services running on the context data.

* :class:`~repro.analytics.ndvi_map.NdviMapService` — assembles per-zone
  NDVI maps from drone observations in the context broker, classifies
  stress zones, computes map error against ground truth and screens
  observations against the crop's physically expected NDVI band (the
  cross-modality check that catches Sybil data the paper worries about);
* :class:`~repro.analytics.profiles.SeasonProfileBuilder` — per-attribute
  daily trajectory profiles ("the expected sequence of events and behavior
  of agriculture applications"), consumed as detection baselines and for
  partial-observability confidence.
"""

from repro.analytics.economics import SeasonEconomics, Tariffs, deployment_benefit_eur, price_season
from repro.analytics.ndvi_map import NdviMapService, expected_ndvi_band
from repro.analytics.profiles import SeasonProfileBuilder

__all__ = [
    "NdviMapService",
    "SeasonEconomics",
    "SeasonProfileBuilder",
    "Tariffs",
    "deployment_benefit_eur",
    "expected_ndvi_band",
    "price_season",
]
