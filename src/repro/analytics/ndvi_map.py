"""NDVI map assembly and fake-data screening.

Drone observations arrive at the context broker as updates to the drone's
entity (attributes ``ndvi``, ``zone``, ``row``, ``col``).  The service
subscribes to those updates and maintains, per epoch, the latest value each
*source* reported for each *zone*.  On top of the raw map:

* ``consensus_map`` — per-zone median across sources (robust to a minority
  of fake sources);
* ``stress_zones`` — zones whose consensus NDVI sits below a threshold;
* ``map_error`` — mean absolute error against ground truth (E6's metric);
* ``screen_with_band`` — drops observations outside the crop's physically
  possible NDVI band for the current season day, the cross-modality check
  that catches "healthy canopy" claims before the canopy exists.
"""

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.context.broker import ContextBroker
from repro.context.entities import ContextEntity
from repro.context.subscriptions import Notification, Subscription
from repro.physics.crop import Crop
from repro.physics.field import Field
from repro.physics.ndvi import ndvi_for_zone


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def expected_ndvi_band(crop: Crop, season_day: int, slack: float = 0.05) -> Tuple[float, float]:
    """Physically possible NDVI range on ``season_day``.

    Lower bound: fully stressed canopy; upper: unstressed; ± slack for
    sensor noise.  Anything outside is not a plausible measurement of this
    crop at this stage, whatever the attacker claims.
    """
    kc_span = max(s.kc for s in crop.stages) - min(s.kc for s in crop.stages)
    kc_min = min(s.kc for s in crop.stages)
    kc = crop.kc_at(max(0, season_day))
    canopy = (kc - kc_min) / kc_span if kc_span > 0 else 1.0
    low = crop.ndvi_min + (crop.ndvi_max - crop.ndvi_min) * canopy * 0.55
    high = crop.ndvi_min + (crop.ndvi_max - crop.ndvi_min) * canopy * 1.0
    return (max(0.0, low - slack), min(1.0, high + slack))


class NdviMapService:
    def __init__(
        self,
        context: ContextBroker,
        field: Field,
        entity_id_pattern: str = r"^urn:Drone:",
    ) -> None:
        self.context = context
        self.field = field
        # zone_id -> {source: ndvi}
        self.observations: Dict[str, Dict[str, float]] = defaultdict(dict)
        self.rejected_out_of_band = 0
        self.screening_crop: Optional[Crop] = None
        self.season_day = 0
        context.subscribe(
            Subscription(
                self._on_notification,
                id_pattern=entity_id_pattern,
                condition_attrs=["ndvi"],
                description="ndvi-map",
            )
        )

    # -- ingestion -----------------------------------------------------------

    def enable_band_screening(self, crop: Crop) -> None:
        self.screening_crop = crop

    def set_season_day(self, day: int) -> None:
        self.season_day = day

    def _on_notification(self, notification: Notification) -> None:
        entity = notification.entity
        ndvi = entity.get("ndvi")
        zone_id = entity.get("zone")
        if not isinstance(ndvi, (int, float)) or not isinstance(zone_id, str):
            return
        source = entity.get("deviceId") or entity.entity_id
        if self.screening_crop is not None:
            low, high = expected_ndvi_band(self.screening_crop, self.season_day)
            if not low <= float(ndvi) <= high:
                self.rejected_out_of_band += 1
                return
        self.observations[zone_id][source] = float(ndvi)

    def reset_epoch(self) -> None:
        self.observations.clear()
        self.rejected_out_of_band = 0

    # -- analysis -----------------------------------------------------------

    def consensus_map(self) -> Dict[str, float]:
        """Per-zone median across sources."""
        return {
            zone_id: _median(list(by_source.values()))
            for zone_id, by_source in sorted(self.observations.items())
            if by_source
        }

    def coverage(self) -> float:
        """Fraction of field zones with at least one observation."""
        return len(self.observations) / len(self.field) if len(self.field) else 0.0

    def stress_zones(self, threshold: float = 0.55) -> List[str]:
        return sorted(
            zone_id for zone_id, value in self.consensus_map().items() if value < threshold
        )

    def truth_map(self, trackers: Optional[Dict[str, object]] = None) -> Dict[str, float]:
        """Ground-truth NDVI per zone (from trackers when supplied)."""
        truth: Dict[str, float] = {}
        for zone in self.field:
            tracker = (trackers or {}).get(zone.zone_id)
            truth[zone.zone_id] = tracker.ndvi() if tracker is not None else ndvi_for_zone(zone)
        return truth

    def map_error(self, trackers: Optional[Dict[str, object]] = None) -> Optional[float]:
        """Mean absolute NDVI error of the consensus vs. ground truth."""
        consensus = self.consensus_map()
        if not consensus:
            return None
        truth = self.truth_map(trackers)
        errors = [abs(value - truth[zone_id]) for zone_id, value in consensus.items()
                  if zone_id in truth]
        return sum(errors) / len(errors) if errors else None

    def misclassified_stress_zones(
        self, threshold: float = 0.55, trackers: Optional[Dict[str, object]] = None
    ) -> int:
        """Zones whose stress classification flips vs. ground truth."""
        consensus = self.consensus_map()
        truth = self.truth_map(trackers)
        flips = 0
        for zone_id, value in consensus.items():
            if zone_id not in truth:
                continue
            if (value < threshold) != (truth[zone_id] < threshold):
                flips += 1
        return flips
