"""Season economics: turning platform reports into money.

The paper motivates SWAMP economically (water scarcity, energy cost, crop
quality and the commodity market).  This module prices a season:

* water by source (well/canal/desalination tariffs — the Intercrop cost
  structure) or a flat tariff;
* pumping/pivot energy at an electricity tariff;
* revenue from yield at a crop price;

and produces the number the farmer actually compares: profit, and the
profit delta between two platform configurations (e.g. smart vs fixed
calendar — the business case for deploying SWAMP at all).
"""

from dataclasses import dataclass
from typing import Optional

from repro.core.pilot import PilotReport


@dataclass(frozen=True)
class Tariffs:
    """Per-pilot prices.  Defaults are representative EU-farm magnitudes."""

    water_eur_m3: float = 0.12
    energy_eur_kwh: float = 0.18
    crop_price_eur_t: float = 380.0

    def __post_init__(self) -> None:
        if min(self.water_eur_m3, self.energy_eur_kwh, self.crop_price_eur_t) < 0:
            raise ValueError("tariffs must be non-negative")


@dataclass
class SeasonEconomics:
    name: str
    water_cost_eur: float
    energy_cost_eur: float
    revenue_eur: float

    @property
    def input_cost_eur(self) -> float:
        return self.water_cost_eur + self.energy_cost_eur

    @property
    def gross_margin_eur(self) -> float:
        return self.revenue_eur - self.input_cost_eur


def price_season(report: PilotReport, tariffs: Optional[Tariffs] = None,
                 water_cost_override_eur: Optional[float] = None) -> SeasonEconomics:
    """Price one season report.

    ``water_cost_override_eur`` lets source-mix pilots pass their exact
    cumulative source cost (from
    :class:`~repro.irrigation.sources.SourceMixOptimizer`) instead of the
    flat tariff.
    """
    tariffs = tariffs or Tariffs()
    water_cost = (
        water_cost_override_eur
        if water_cost_override_eur is not None
        else report.irrigation_m3 * tariffs.water_eur_m3
    )
    return SeasonEconomics(
        name=report.name,
        water_cost_eur=water_cost,
        energy_cost_eur=report.total_energy_kwh * tariffs.energy_eur_kwh,
        revenue_eur=report.yield_t * tariffs.crop_price_eur_t,
    )


def deployment_benefit_eur(
    smart: SeasonEconomics, baseline: SeasonEconomics
) -> float:
    """The season-level business case: smart margin minus baseline margin."""
    return smart.gross_margin_eur - baseline.gross_margin_eur
