"""Link technology profiles.

Each profile bundles the latency/bandwidth/loss characteristics and the
per-byte transmit energy of one link class found in the SWAMP pilots.
Numbers are representative of the technology class (LoRa SF7-ish field
radio, farm Wi-Fi, wired LAN, rural WAN backhaul), not of any specific
hardware; experiments only rely on their relative ordering.
"""

from typing import Optional


class RadioModel:
    """Static characteristics of a link technology."""

    def __init__(
        self,
        name: str,
        latency_s: float,
        bandwidth_bps: float,
        loss_rate: float,
        jitter_s: float = 0.0,
        tx_energy_j_per_byte: float = 0.0,
        mtu_bytes: Optional[int] = None,
        duty_cycle: float = 1.0,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0,1), got {loss_rate}")
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0.0 < duty_cycle <= 1.0:
            raise ValueError(f"duty_cycle must be in (0,1], got {duty_cycle}")
        self.name = name
        self.latency_s = latency_s
        self.bandwidth_bps = bandwidth_bps
        self.loss_rate = loss_rate
        self.jitter_s = jitter_s
        self.tx_energy_j_per_byte = tx_energy_j_per_byte
        self.mtu_bytes = mtu_bytes
        # Regulatory airtime budget (ETSI-style: 1% for the EU 868 MHz
        # band LoRa uses).  Enforced per transmitter by the link: frames
        # beyond the budget in the current window are dropped at the
        # radio, which self-limits DoS floods launched *from* field nodes.
        self.duty_cycle = duty_cycle

    def serialization_delay(self, size_bytes: int) -> float:
        """Time to clock ``size_bytes`` onto the wire."""
        return size_bytes * 8.0 / self.bandwidth_bps

    def tx_energy(self, size_bytes: int) -> float:
        """Joules spent transmitting ``size_bytes``."""
        return size_bytes * self.tx_energy_j_per_byte

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RadioModel({self.name!r})"


# LoRa-class field radio: long latency, ~5.5 kbps, lossy, costly per byte,
# 1 % regulatory duty cycle (EU 868 MHz).
LORA_FIELD = RadioModel(
    name="lora-field",
    latency_s=0.15,
    bandwidth_bps=5_500.0,
    loss_rate=0.02,
    jitter_s=0.05,
    tx_energy_j_per_byte=0.0012,
    mtu_bytes=222,
    duty_cycle=0.01,
)

# Farm Wi-Fi between gateway, fog node and pivot controllers.
WIFI_FARM = RadioModel(
    name="wifi-farm",
    latency_s=0.004,
    bandwidth_bps=20_000_000.0,
    loss_rate=0.003,
    jitter_s=0.002,
    tx_energy_j_per_byte=0.00002,
)

# Wired LAN inside the fog/cloud rack.
ETHERNET_LAN = RadioModel(
    name="ethernet-lan",
    latency_s=0.0005,
    bandwidth_bps=1_000_000_000.0,
    loss_rate=0.0,
)

# Rural WAN backhaul farm -> cloud (ADSL/4G-class).
WAN_BACKHAUL = RadioModel(
    name="wan-backhaul",
    latency_s=0.045,
    bandwidth_bps=8_000_000.0,
    loss_rate=0.005,
    jitter_s=0.01,
)
