"""Network node base class.

Anything with a network address derives from :class:`NetworkNode`: devices,
gateways, fog nodes, cloud hosts, attackers.  A node receives packets via
:meth:`on_packet` and sends through the :class:`~repro.network.topology.Network`.
"""

from typing import TYPE_CHECKING, Any, Optional

from repro.network.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.topology import Network


class NetworkNode:
    """A named endpoint attached to the network."""

    def __init__(self, address: str) -> None:
        self.address = address
        self.network: Optional["Network"] = None
        self.rx_packets = 0
        self.rx_bytes = 0
        self.tx_packets = 0
        self.tx_bytes = 0

    def attach(self, network: "Network") -> None:
        self.network = network

    def send(
        self,
        dst: str,
        payload: Any,
        size_bytes: int,
        flow: str = "",
        wire_bytes: Optional[bytes] = None,
    ) -> Optional["Packet"]:
        """Send a packet; returns it, or ``None`` if the node is detached
        or no route exists (callers treat that as a silent drop, like a
        host with no default route)."""
        network = self.network
        if network is None:
            return None
        # Inline of network.make_packet + network.transmit: one packet is
        # built per simulated send, so the two pass-through frames showed
        # up at season scale.
        packet = Packet(
            self.address, dst, payload, size_bytes,
            created_at=network.sim.clock.now, flow=flow, wire_bytes=wire_bytes,
        )
        sent = network._forward(packet, self.address)
        if sent:
            self.tx_packets += 1
            self.tx_bytes += size_bytes
            return packet
        return None

    def deliver(self, packet: "Packet") -> None:
        """Called by the network when a packet arrives."""
        self.rx_packets += 1
        self.rx_bytes += packet.size_bytes
        self.on_packet(packet)

    def on_packet(self, packet: "Packet") -> None:
        """Override in subclasses to handle traffic."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.address!r})"
