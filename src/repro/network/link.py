"""Point-to-point links with latency, bandwidth, loss, queueing and taps.

A link is directional (A→B); :class:`~repro.network.topology.Network` creates
one per direction.  The queueing model is a single FIFO transmit queue with a
bounded backlog: each packet occupies the wire for its serialization delay,
and packets arriving when the backlog already exceeds ``max_backlog_s``
seconds of queued transmission time are tail-dropped.  This is what makes
DoS floods (experiment E4) actually degrade service instead of being
absorbed by an infinitely elastic simulator.

Taps observe every packet that traverses the link — the hook used both by
eavesdropping attackers and by the SDN flow-statistics collector.
"""

import enum
from typing import Callable, List, Optional

from repro.network.packet import Packet
from repro.network.radio import RadioModel
from repro.simkernel.events import PRIORITY_NETWORK
from repro.simkernel.rng import SeededStream
from repro.simkernel.simulator import Simulator


class LinkState(enum.Enum):
    UP = "up"
    DOWN = "down"  # partition / disconnection
    JAMMED = "jammed"  # radio jamming attack


class LinkStats:
    """Counters a link keeps for experiments and the SDN collector."""

    __slots__ = ("sent", "delivered", "dropped_loss", "dropped_queue",
                 "dropped_down", "dropped_duty", "bytes_delivered")

    def __init__(self) -> None:
        self.sent = 0
        self.delivered = 0
        self.dropped_loss = 0
        self.dropped_queue = 0
        self.dropped_down = 0
        self.dropped_duty = 0
        self.bytes_delivered = 0

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.sent if self.sent else 1.0


class Link:
    """One direction of a connection between two nodes."""

    def __init__(
        self,
        sim: Simulator,
        src: str,
        dst: str,
        model: RadioModel,
        rng: SeededStream,
        deliver: Callable[[Packet], None],
        max_backlog_s: float = 2.0,
    ) -> None:
        self.sim = sim
        self.src = src
        self.dst = dst
        self.model = model
        self.rng = rng
        self._deliver = deliver
        self.max_backlog_s = max_backlog_s
        self.state = LinkState.UP
        self.stats = LinkStats()
        self.taps: List[Callable[[Packet], None]] = []
        # Absolute sim time until which the transmitter is busy.
        self._busy_until = 0.0
        # Absolute sim time of the most recent scheduled arrival: a FIFO
        # wire never reorders, so later frames may not overtake earlier
        # ones just because they drew less jitter.
        self._last_arrival = 0.0
        # Extra loss imposed by jamming (fraction of packets corrupted).
        self.jam_loss = 0.0
        # Regulatory duty-cycle accounting (rolling 1-hour windows).
        self.duty_window_s = 3600.0
        self._duty_window_start = 0.0
        self._airtime_used_s = 0.0
        # Event label is fixed per link; formatting it per transmit was a
        # measurable slice of the hottest event key on season runs.
        self._event_label = f"link:{src}->{dst}"

    # -- control -----------------------------------------------------------

    def set_state(self, state: LinkState) -> None:
        self.state = state

    def add_tap(self, tap: Callable[[Packet], None]) -> None:
        self.taps.append(tap)

    def remove_tap(self, tap: Callable[[Packet], None]) -> None:
        try:
            self.taps.remove(tap)
        except ValueError:
            pass

    # -- data path -----------------------------------------------------------

    def transmit(self, packet: Packet) -> bool:
        """Enqueue ``packet`` for transmission.

        Returns ``True`` if the packet entered the wire (it may still be
        lost in flight), ``False`` if it was dropped at the queue or the
        link is down.
        """
        stats = self.stats
        stats.sent += 1
        if self.state is LinkState.DOWN:
            stats.dropped_down += 1
            return False
        now = self.sim.clock.now
        busy_until = self._busy_until
        if busy_until - now > self.max_backlog_s:
            stats.dropped_queue += 1
            return False
        model = self.model
        # Inline of model.serialization_delay (same expression, same float).
        serialization = packet.size_bytes * 8.0 / model.bandwidth_bps
        if model.duty_cycle < 1.0:
            elapsed = now - self._duty_window_start
            if elapsed >= self.duty_window_s:
                # Advance by whole windows (not to `now`): re-anchoring the
                # window at the current packet would drift the budget
                # periods and hand out fresh airtime early after idle gaps.
                self._duty_window_start += (elapsed // self.duty_window_s) * self.duty_window_s
                self._airtime_used_s = 0.0
            budget = model.duty_cycle * self.duty_window_s
            if self._airtime_used_s + serialization > budget:
                self.stats.dropped_duty += 1
                return False
            self._airtime_used_s += serialization
        start = busy_until if busy_until > now else now
        self._busy_until = start + serialization
        jitter = self.rng.uniform(0.0, model.jitter_s) if model.jitter_s else 0.0
        arrival = start + serialization + model.latency_s + jitter
        if arrival < self._last_arrival:
            arrival = self._last_arrival
        self._last_arrival = arrival
        self.sim.schedule(
            arrival - now,
            self._arrive,
            (packet,),
            priority=PRIORITY_NETWORK,
            label=self._event_label,
        )
        return True

    def _arrive(self, packet: Packet) -> None:
        # Taps see the wire even for packets that are then lost; a radio
        # eavesdropper hears corrupted frames too, but we only expose frames
        # that would decode, which is the conservative choice for leakage
        # measurement.
        if self.state is LinkState.DOWN:
            self.stats.dropped_down += 1
            return
        loss = self.model.loss_rate
        if self.state is LinkState.JAMMED:
            loss = min(0.999, loss + self.jam_loss)
        if loss and self.rng.bernoulli(loss):
            self.stats.dropped_loss += 1
            return
        for tap in self.taps:
            tap(packet)
        self.stats.delivered += 1
        self.stats.bytes_delivered += packet.size_bytes
        self._deliver(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.src}->{self.dst}, {self.model.name}, {self.state.value})"
