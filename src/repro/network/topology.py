"""The network: node registry, links, routing and fault injection.

Routing is static shortest-path over the link graph, recomputed lazily when
topology changes.  SWAMP topologies are small (tens of nodes per farm), so
a BFS per (src, dst) pair with caching is plenty.

Fault injection lives here because both dependability experiments (fog
availability under partition, E9) and attacks (jamming) manipulate links.
"""

from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from repro.network.link import Link, LinkState
from repro.network.node import NetworkNode
from repro.network.packet import Packet
from repro.network.radio import RadioModel
from repro.simkernel.simulator import Simulator

# Sentinel distinguishing "no cached route" from a cached None (unroutable).
_ROUTE_MISS = object()


class Network:
    """Registry of nodes and directional links, with static routing."""

    def __init__(self, sim: Simulator, name: str = "net") -> None:
        self.sim = sim
        self.name = name
        self.nodes: Dict[str, NetworkNode] = {}
        self.links: Dict[Tuple[str, str], Link] = {}
        self._routes: Dict[Tuple[str, str], Optional[List[str]]] = {}
        self._firewall: List[Callable[[Packet, str, str], bool]] = []
        # Observers notified whenever a link is created (SDN taps etc.).
        self.on_link_added: List[Callable[[Link], None]] = []

    # -- topology construction ------------------------------------------------

    def add_node(self, node: NetworkNode) -> NetworkNode:
        if node.address in self.nodes:
            raise ValueError(f"duplicate node address {node.address!r}")
        self.nodes[node.address] = node
        node.attach(self)
        self._routes.clear()
        return node

    def remove_node(self, address: str) -> None:
        self.nodes.pop(address, None)
        for key in [k for k in self.links if address in k]:
            del self.links[key]
        self._routes.clear()

    def connect(
        self,
        a: str,
        b: str,
        model: RadioModel,
        bidirectional: bool = True,
        max_backlog_s: float = 2.0,
    ) -> Link:
        """Create link(s) between existing nodes; returns the a→b link."""
        for addr in (a, b):
            if addr not in self.nodes:
                raise KeyError(f"unknown node {addr!r}")
        link = self._make_link(a, b, model, max_backlog_s)
        if bidirectional:
            self._make_link(b, a, model, max_backlog_s)
        self._routes.clear()
        return link

    def _make_link(self, src: str, dst: str, model: RadioModel, max_backlog_s: float) -> Link:
        rng = self.sim.rng.stream(f"net:{self.name}:link:{src}->{dst}")
        link = Link(
            self.sim,
            src,
            dst,
            model,
            rng,
            deliver=lambda packet, _dst=dst: self._hop_arrived(packet, _dst),
            max_backlog_s=max_backlog_s,
        )
        self.links[(src, dst)] = link
        for observer in self.on_link_added:
            observer(link)
        return link

    def link(self, src: str, dst: str) -> Link:
        return self.links[(src, dst)]

    def links_between(self, a: str, b: str) -> List[Link]:
        return [self.links[k] for k in ((a, b), (b, a)) if k in self.links]

    # -- fault / attack injection -------------------------------------------------

    def partition(self, a: str, b: str) -> None:
        """Cut both directions between ``a`` and ``b``."""
        for link in self.links_between(a, b):
            link.set_state(LinkState.DOWN)
        self._routes.clear()

    def heal(self, a: str, b: str) -> None:
        for link in self.links_between(a, b):
            link.set_state(LinkState.UP)
        self._routes.clear()

    def jam(self, a: str, b: str, loss: float = 0.9) -> None:
        for link in self.links_between(a, b):
            link.set_state(LinkState.JAMMED)
            link.jam_loss = loss

    def unjam(self, a: str, b: str) -> None:
        for link in self.links_between(a, b):
            link.set_state(LinkState.UP)
            link.jam_loss = 0.0

    def add_firewall(self, rule: Callable[[Packet, str, str], bool]) -> None:
        """Install a hop filter: ``rule(packet, hop_src, hop_dst) -> allow``.

        The SDN quarantine app uses this to drop flows network-wide.
        """
        self._firewall.append(rule)

    def remove_firewall(self, rule: Callable[[Packet, str, str], bool]) -> None:
        try:
            self._firewall.remove(rule)
        except ValueError:
            pass

    # -- routing / forwarding ------------------------------------------------------

    def make_packet(
        self,
        src: str,
        dst: str,
        payload,
        size_bytes: int,
        flow: str = "",
        wire_bytes: Optional[bytes] = None,
    ) -> Packet:
        return Packet(
            src, dst, payload, size_bytes, created_at=self.sim.clock.now, flow=flow, wire_bytes=wire_bytes
        )

    def transmit(self, packet: Packet) -> bool:
        """Inject ``packet`` at its source; returns False when unroutable."""
        return self._forward(packet, packet.src)

    def _forward(self, packet: Packet, at: str) -> bool:
        # Cache-hit fast path of _route, inlined: every hop of every
        # packet resolves a route, and almost all are hits.
        route = self._routes.get((at, packet.dst), _ROUTE_MISS)
        if route is _ROUTE_MISS:
            route = self._route(at, packet.dst)
        if not route or len(route) < 2:
            return False
        next_hop = route[1]
        for rule in self._firewall:
            if not rule(packet, at, next_hop):
                return False
        link = self.links.get((at, next_hop))
        if link is None:
            return False
        return link.transmit(packet)

    def _hop_arrived(self, packet: Packet, at: str) -> None:
        if at == packet.dst:
            node = self.nodes.get(at)
            if node is not None:
                node.deliver(packet)
            return
        self._forward(packet, at)

    def _route(self, src: str, dst: str) -> Optional[List[str]]:
        key = (src, dst)
        if key in self._routes:
            return self._routes[key]
        route = self._bfs(src, dst)
        self._routes[key] = route
        return route

    def _bfs(self, src: str, dst: str) -> Optional[List[str]]:
        if src == dst:
            return [src]
        # Adjacency over UP/JAMMED links only; DOWN links are unroutable so
        # traffic re-routes around a partition if a path exists.
        adjacency: Dict[str, List[str]] = {}
        for (a, b), link in self.links.items():
            if link.state is not LinkState.DOWN:
                adjacency.setdefault(a, []).append(b)
        for neighbors in adjacency.values():
            neighbors.sort()  # determinism
        frontier = deque([src])
        parents: Dict[str, str] = {src: src}
        while frontier:
            current = frontier.popleft()
            for neighbor in adjacency.get(current, ()):
                if neighbor in parents:
                    continue
                parents[neighbor] = current
                if neighbor == dst:
                    path = [dst]
                    while path[-1] != src:
                        path.append(parents[path[-1]])
                    path.reverse()
                    return path
                frontier.append(neighbor)
        return None

    # -- inspection ------------------------------------------------------

    def route_of(self, src: str, dst: str) -> Optional[List[str]]:
        """Current route, for tests and the SDN view."""
        return self._route(src, dst)

    def total_stats(self) -> Dict[str, int]:
        totals = {"sent": 0, "delivered": 0, "dropped_loss": 0, "dropped_queue": 0, "dropped_down": 0}
        for link in self.links.values():
            totals["sent"] += link.stats.sent
            totals["delivered"] += link.stats.delivered
            totals["dropped_loss"] += link.stats.dropped_loss
            totals["dropped_queue"] += link.stats.dropped_queue
            totals["dropped_down"] += link.stats.dropped_down
        return totals
